//! Criterion micro-benchmarks for the duplicate finders (Experiment E12):
//! per-letter processing cost and end-to-end cost on a full length-(n+1)
//! stream.

use criterion::{criterion_group, criterion_main, Criterion};
use lps_duplicates::{DuplicateFinder, ShortStreamDuplicateFinder};
use lps_hash::SeedSequence;
use lps_stream::duplicate_stream_n_plus_1;

fn bench_duplicate_finders(c: &mut Criterion) {
    let n: u64 = 1 << 10;
    let mut group = c.benchmark_group("duplicates");

    let mut seeds = SeedSequence::new(1);
    let mut finder = DuplicateFinder::new(n, 0.25, &mut seeds);
    group.bench_function("theorem3_process_letter", |b| {
        let mut i = 0u64;
        b.iter(|| {
            finder.process_letter(i % n);
            i += 1;
        })
    });

    let mut seeds = SeedSequence::new(2);
    let mut short = ShortStreamDuplicateFinder::new(n, 16, 0.25, &mut seeds);
    group.bench_function("theorem4_process_letter", |b| {
        let mut i = 0u64;
        b.iter(|| {
            short.process_letter(i % n);
            i += 1;
        })
    });

    // end to end on a full stream, construction included
    let mut gen = SeedSequence::new(3);
    let (stream, _) = duplicate_stream_n_plus_1(n, 3, &mut gen);
    group.sample_size(10);
    group.bench_function("theorem3_end_to_end_n1024", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let mut seeds = SeedSequence::new(100 + t);
            t += 1;
            let mut finder = DuplicateFinder::new(n, 0.25, &mut seeds);
            finder.process_stream(&stream);
            finder.report()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_duplicate_finders
}
criterion_main!(benches);

//! Criterion micro-benchmarks for the parallel sharded ingestion engine:
//! single-thread batched ingestion versus the engine at 1/2/4/8 shards for
//! the two structures whose per-update work is heavy enough to parallelise
//! (sparse recovery and the Theorem 2 L0 sampler). The wall-clock scaling
//! suite behind the `BENCH_samplers.json` shard records (E14) lives in
//! `lps_bench::throughput`; these benches give per-call numbers. Shard
//! speedups require physical cores — on a single-core host expect ratios
//! near 1 (the engine then measures its coordination overhead).

use criterion::{criterion_group, criterion_main, Criterion};
use lps_bench::throughput::workload;
use lps_core::L0Sampler;
use lps_engine::parallel_ingest;
use lps_hash::SeedSequence;
use lps_sketch::SparseRecovery;

const N: u64 = 1 << 16;
const UPDATES: usize = 8 * 1024;

fn bench_engine_sparse_recovery(c: &mut Criterion) {
    let updates = workload(N, UPDATES, 11);
    let mut group = c.benchmark_group("engine_sparse_recovery");
    let mut seeds = SeedSequence::new(11);
    let proto = SparseRecovery::new(N, 8, &mut seeds);
    let mut sequential = proto.clone();
    group.bench_function("sequential_8k", |b| b.iter(|| sequential.process_batch(&updates)));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards_{shards}_8k"), |b| {
            b.iter(|| parallel_ingest(&proto, &updates, shards))
        });
    }
    group.finish();
}

fn bench_engine_l0_sampler(c: &mut Criterion) {
    let updates = workload(N, UPDATES, 12);
    let mut group = c.benchmark_group("engine_l0_sampler");
    let mut seeds = SeedSequence::new(12);
    let proto = L0Sampler::new(N, 0.25, &mut seeds);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards_{shards}_8k"), |b| {
            b.iter(|| parallel_ingest(&proto, &updates, shards))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_sparse_recovery, bench_engine_l0_sampler);
criterion_main!(benches);

//! Criterion micro-benchmarks for the heavy hitter structures (Experiment
//! E12): update throughput and reporting cost for count-sketch vs count-min.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lps_hash::SeedSequence;
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_stream::zipf_stream;

fn bench_heavy_hitters(c: &mut Criterion) {
    let n: u64 = 1 << 14;
    let mut group = c.benchmark_group("heavy_hitters");
    for &phi in &[0.125f64, 0.03125] {
        let mut seeds = SeedSequence::new(1);
        let mut cs = CountSketchHeavyHitters::new(n, 1.0, phi, &mut seeds);
        group.bench_with_input(BenchmarkId::new("count_sketch_update", phi), &phi, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                cs.update(i % n, 1);
                i += 1;
            })
        });
        let mut cm = CountMinHeavyHitters::new(n, phi, &mut seeds);
        group.bench_with_input(BenchmarkId::new("count_min_update", phi), &phi, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                cm.update(i % n, 1);
                i += 1;
            })
        });
    }

    // reporting cost on a realistic stream (smaller n: reporting scans all coordinates)
    let n_small: u64 = 1 << 12;
    let mut gen = SeedSequence::new(2);
    let stream = zipf_stream(n_small, 20_000, 1.3, &mut gen);
    let mut seeds = SeedSequence::new(3);
    let mut loaded = CountSketchHeavyHitters::new(n_small, 1.0, 0.125, &mut seeds);
    loaded.process(&stream);
    group.sample_size(10);
    group.bench_function("count_sketch_report_n4096", |b| b.iter(|| loaded.report()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_heavy_hitters
}
criterion_main!(benches);

//! Criterion micro-benchmarks for the samplers (Experiment E12): update
//! throughput and recovery (sample) cost of the precision Lp sampler and the
//! L0 sampler, against the AKO and FIS baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lps_core::{AkoSampler, FisL0Sampler, L0Sampler, LpSampler, PrecisionLpSampler};
use lps_hash::SeedSequence;
use lps_stream::{sparse_vector_stream, Update};

fn bench_precision_sampler(c: &mut Criterion) {
    let n: u64 = 1 << 14;
    let mut group = c.benchmark_group("precision_lp_sampler");
    for &(p, eps) in &[(1.0f64, 0.25f64), (1.5, 0.25)] {
        let mut seeds = SeedSequence::new(1);
        let mut sampler = PrecisionLpSampler::new(n, p, eps, &mut seeds);
        group.bench_with_input(BenchmarkId::new("update", format!("p{p}_eps{eps}")), &p, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                sampler.process_update(Update::new(i % n, 1));
                i += 1;
            })
        });
    }
    // recovery on a small instance (decoding is O(n log n))
    let n_small: u64 = 1 << 10;
    let mut seeds = SeedSequence::new(2);
    let stream = sparse_vector_stream(n_small, 50, 20, &mut seeds);
    let mut sampler = PrecisionLpSampler::new(n_small, 1.0, 0.25, &mut seeds);
    sampler.process_stream(&stream);
    group.bench_function("sample_n1024", |b| b.iter(|| sampler.sample()));
    group.finish();
}

fn bench_ako_baseline(c: &mut Criterion) {
    let n: u64 = 1 << 14;
    let mut group = c.benchmark_group("ako_baseline");
    let mut seeds = SeedSequence::new(3);
    let mut sampler = AkoSampler::new(n, 1.0, 0.25, &mut seeds);
    group.bench_function("update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            sampler.process_update(Update::new(i % n, 1));
            i += 1;
        })
    });
    group.finish();
}

fn bench_l0_samplers(c: &mut Criterion) {
    let n: u64 = 1 << 14;
    let mut group = c.benchmark_group("l0_samplers");
    let mut seeds = SeedSequence::new(4);
    let mut ours = L0Sampler::new(n, 0.25, &mut seeds);
    group.bench_function("theorem2_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            ours.process_update(Update::new(i % n, 1));
            i += 1;
        })
    });
    let mut fis = FisL0Sampler::new(n, &mut seeds);
    group.bench_function("fis_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            fis.process_update(Update::new(i % n, 1));
            i += 1;
        })
    });
    // recovery cost
    let mut seeds = SeedSequence::new(5);
    let stream = sparse_vector_stream(n, 100, 9, &mut seeds);
    let mut loaded = L0Sampler::new(n, 0.25, &mut seeds);
    loaded.process_stream(&stream);
    group.bench_function("theorem2_sample", |b| b.iter(|| loaded.sample()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_precision_sampler, bench_ako_baseline, bench_l0_samplers
}
criterion_main!(benches);

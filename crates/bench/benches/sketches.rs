//! Criterion micro-benchmarks for the linear sketches (Experiment E12):
//! update throughput and recovery cost of count-sketch, AMS, the p-stable
//! norm estimator and exact sparse recovery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lps_hash::SeedSequence;
use lps_sketch::{AmsSketch, CountSketch, LinearSketch, PStableSketch, SparseRecovery};

fn bench_count_sketch(c: &mut Criterion) {
    let n: u64 = 1 << 16;
    let mut group = c.benchmark_group("count_sketch");
    for &m in &[8usize, 64] {
        let mut seeds = SeedSequence::new(1);
        let mut cs = CountSketch::with_default_rows(n, m, &mut seeds);
        group.bench_with_input(BenchmarkId::new("update", m), &m, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                cs.update(i % n, 1.0);
                i += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("estimate", m), &m, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                let v = cs.estimate(i % n);
                i += 1;
                v
            })
        });
    }
    group.finish();
}

fn bench_ams_and_pstable(c: &mut Criterion) {
    let n: u64 = 1 << 16;
    let mut group = c.benchmark_group("norm_sketches");
    let mut seeds = SeedSequence::new(2);
    let mut ams = AmsSketch::with_default_shape(n, &mut seeds);
    group.bench_function("ams_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            ams.update(i % n, 1.0);
            i += 1;
        })
    });
    let mut ps = PStableSketch::with_default_rows(n, 1.0, &mut seeds);
    group.bench_function("pstable_update_p1", |b| {
        let mut i = 0u64;
        b.iter(|| {
            ps.update(i % n, 1.0);
            i += 1;
        })
    });
    group.finish();
}

fn bench_sparse_recovery(c: &mut Criterion) {
    let n: u64 = 1 << 16;
    let mut group = c.benchmark_group("sparse_recovery");
    for &cap in &[8usize, 64] {
        let mut seeds = SeedSequence::new(3);
        let mut rec = SparseRecovery::new(n, cap, &mut seeds);
        group.bench_with_input(BenchmarkId::new("update", cap), &cap, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                rec.update(i % n, 1);
                i += 1;
            })
        });
        // recovery of a vector at the sparsity capacity
        let mut seeds = SeedSequence::new(4);
        let mut full = SparseRecovery::new(n, cap, &mut seeds);
        for k in 0..cap as u64 {
            full.update(k * 97 % n, 3);
        }
        group.bench_with_input(BenchmarkId::new("recover", cap), &cap, |b, _| {
            b.iter(|| full.recover())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_count_sketch, bench_ams_and_pstable, bench_sparse_recovery
}
criterion_main!(benches);

//! Criterion micro-benchmarks for the batched update path: sequential vs
//! batched ingestion for the structures with specialized `process_batch`
//! implementations, plus the pre-optimization reference path where one is
//! retained (sparse recovery, L0 sampler). The wall-clock suite behind
//! `BENCH_samplers.json` lives in `lps_bench::throughput`; these benches
//! give per-call numbers for finer-grained regression hunting.

use criterion::{criterion_group, criterion_main, Criterion};
use lps_bench::throughput::workload;
use lps_core::{L0Sampler, LpSampler};
use lps_hash::SeedSequence;
use lps_sketch::{CountSketch, LinearSketch, SparseRecovery};

const N: u64 = 1 << 16;
const BATCH: usize = 1024;

fn bench_sparse_recovery(c: &mut Criterion) {
    let updates = workload(N, BATCH, 1);
    let mut group = c.benchmark_group("sparse_recovery_throughput");
    let mut seeds = SeedSequence::new(1);
    let proto = SparseRecovery::new(N, 8, &mut seeds);

    let mut reference = proto.clone();
    group.bench_function("reference_1k", |b| {
        b.iter(|| {
            for u in &updates {
                reference.update_reference(u.index, u.delta);
            }
        })
    });
    let mut sequential = proto.clone();
    group.bench_function("sequential_1k", |b| {
        b.iter(|| {
            for u in &updates {
                sequential.update(u.index, u.delta);
            }
        })
    });
    let mut batched = proto;
    group.bench_function("batched_1k", |b| b.iter(|| batched.process_batch(&updates)));
    group.finish();
}

fn bench_l0_sampler(c: &mut Criterion) {
    let updates = workload(N, BATCH, 2);
    let mut group = c.benchmark_group("l0_sampler_throughput");
    let mut seeds = SeedSequence::new(2);
    let proto = L0Sampler::new(N, 0.25, &mut seeds);

    let mut reference = proto.clone();
    group.bench_function("reference_1k", |b| {
        b.iter(|| {
            for u in &updates {
                reference.process_update_reference(*u);
            }
        })
    });
    let mut sequential = proto.clone();
    group.bench_function("sequential_1k", |b| {
        b.iter(|| {
            for u in &updates {
                sequential.process_update(*u);
            }
        })
    });
    let mut batched = proto;
    group.bench_function("batched_1k", |b| b.iter(|| batched.process_batch(&updates)));
    group.finish();
}

fn bench_count_sketch(c: &mut Criterion) {
    let updates = workload(N, BATCH, 3);
    let mut group = c.benchmark_group("count_sketch_throughput");
    let mut seeds = SeedSequence::new(3);
    let proto = CountSketch::with_default_rows(N, 16, &mut seeds);

    let mut sequential = proto.clone();
    group.bench_function("sequential_1k", |b| {
        b.iter(|| {
            for u in &updates {
                sequential.update_int(*u);
            }
        })
    });
    let mut batched = proto;
    group.bench_function("batched_1k", |b| b.iter(|| batched.process_batch(&updates)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sparse_recovery, bench_l0_sampler, bench_count_sketch
}
criterion_main!(benches);

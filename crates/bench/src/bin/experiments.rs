//! Experiment harness entry point.
//!
//! Usage:
//!   cargo run --release -p lps-bench --bin experiments -- all [--full]
//!   cargo run --release -p lps-bench --bin experiments -- e1 e5 e9
//!   cargo run --release -p lps-bench --bin experiments -- bench --json
//!   cargo run --release -p lps-bench --bin experiments -- bench --json --check baseline.json
//!   cargo run --release -p lps-bench --bin experiments -- checkpoint --dir D [--shards K]
//!   cargo run --release -p lps-bench --bin experiments -- checkpoint --merge --dir D
//!   cargo run --release -p lps-bench --bin experiments -- crashtest --dir D [--kills K] [--seed S]
//!   cargo run --release -p lps-bench --bin experiments -- serve [--dim N] [--seed S]
//!   cargo run --release -p lps-bench --bin experiments -- feed --addr A [--updates N]
//!   cargo run --release -p lps-bench --bin experiments -- servetest [--updates N]
//!   cargo run --release -p lps-bench --bin experiments -- workload <spec.toml>... [--json] [--check]
//!
//! Without `--full` the harness runs in "quick" mode (fewer trials), which is
//! what EXPERIMENTS.md reports; `--full` multiplies the trial counts. The
//! `bench` experiment runs the update-path throughput suite (E13), the
//! sharded-ingestion engine scaling suite (E14), the multi-tenant
//! registry suite (E15), and the field-kernel micro-bench suite (E17,
//! scalar vs lane-parallel); with `--json` it also writes the results to
//! `BENCH_samplers.json` so every PR leaves a machine-readable perf
//! datapoint. `--check <path>` re-reads a committed
//! baseline document, compares the gated headline speedups, and exits
//! non-zero on a regression beyond the tolerance — this is the CI perf gate.
//!
//! The `checkpoint` subcommand exercises the cross-process persistence
//! pipeline: without `--merge` it ingests a deterministic workload through
//! the sharded engine and writes one encoded shard file per worker into
//! `--dir`; with `--merge` (run it in a fresh process) it reads the shard
//! files back, merges them with seed-compatibility validation, and
//! digest-compares against sequential ingestion — exiting non-zero on any
//! mismatch.
//!
//! The `crashtest` subcommand is the crash-recovery harness: it re-spawns
//! this binary as a child (`--child`) that routes Zipf traffic into a
//! `FileSpill` and aborts mid-run, then reopens the torn log and verifies
//! every committed record survived (see `lps_bench::crashtest`).
//!
//! The `serve`/`feed`/`servetest` subcommands drive the streaming service
//! over real TCP: `servetest` spawns a `serve` child of this binary, reads
//! the bound address off its stdout, streams update batches plus a shard
//! checkpoint set at it (with live queries mid-ingestion and a deliberate
//! plan-mismatch rejection), and digest-compares every catalog structure
//! against sequential ingestion — exiting non-zero on any mismatch (see
//! `lps_bench::service_loopback`).
//!
//! The `workload` subcommand runs declarative workload specs (crate
//! `lps-workload`, specs under `crates/workload/specs/`) against both the
//! in-process engine core and the socket service over loopback, ramping
//! the offered rate to saturation and recording p50/p99/p999 per step;
//! `--json` merges a `workloads` array into `BENCH_samplers.json` and
//! `--check` validates the stamped artifact (see
//! `lps_bench::workload_cli`).

use lps_bench::*;

/// Run the `checkpoint` subcommand; returns the process exit code.
fn run_checkpoint(args: &[String]) -> i32 {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| panic!("{flag} needs a value")))
    };
    let dir =
        std::path::PathBuf::from(value_of("--dir").expect("checkpoint requires --dir <directory>"));
    let merge = args.iter().any(|a| a == "--merge");
    if merge {
        match checkpoint_merge(&dir) {
            Ok(outcomes) => {
                print!("{}", render_outcomes("merge", &outcomes));
                if outcomes.iter().all(|o| o.matched) {
                    println!("checkpoint merge: all digests match sequential ingestion");
                    0
                } else {
                    println!("checkpoint merge: DIGEST MISMATCH");
                    1
                }
            }
            Err(e) => {
                eprintln!("checkpoint merge failed: {e}");
                1
            }
        }
    } else {
        let shards: usize =
            value_of("--shards").map(|s| s.parse().expect("--shards needs a number")).unwrap_or(4);
        match checkpoint_write(&dir, shards) {
            Ok(outcomes) => {
                print!("{}", render_outcomes("write", &outcomes));
                println!(
                    "checkpoint write: {} structures x {shards} shards -> {}",
                    outcomes.len(),
                    dir.display()
                );
                0
            }
            Err(e) => {
                eprintln!("checkpoint write failed: {e}");
                1
            }
        }
    }
}

/// Run the `crashtest` subcommand; returns the process exit code.
fn run_crashtest(args: &[String]) -> i32 {
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| panic!("{flag} needs a value")))
    };
    let dir =
        std::path::PathBuf::from(value_of("--dir").expect("crashtest requires --dir <directory>"));
    let seed: u64 =
        value_of("--seed").map(|s| s.parse().expect("--seed needs a number")).unwrap_or(1);
    if args.iter().any(|a| a == "--child") {
        let kill_after: u64 = value_of("--kill-after")
            .expect("--child requires --kill-after <commits>")
            .parse()
            .expect("--kill-after needs a number");
        crashtest_child(&dir, seed, kill_after)
    } else {
        let kills: u32 =
            value_of("--kills").map(|s| s.parse().expect("--kills needs a number")).unwrap_or(8);
        crashtest_parent(&dir, kills, seed)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("checkpoint") {
        std::process::exit(run_checkpoint(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("crashtest") {
        std::process::exit(run_crashtest(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(serve_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("feed") {
        std::process::exit(feed_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("servetest") {
        std::process::exit(servetest_main(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("workload") {
        std::process::exit(workload_main(&args[1..]));
    }
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let check_baseline: Option<String> = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().expect("--check requires a baseline path"));
    let quick = !full;
    let selected: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // skip flags and the value consumed by --check
            let consumed_by_check = *i > 0 && args[i - 1] == "--check";
            !(a.starts_with("--") || consumed_by_check)
        })
        .map(|(_, a)| a.clone())
        .collect();
    let run_everything = selected.is_empty() || selected.iter().any(|s| s == "all");

    let wants = |id: &str| run_everything || selected.iter().any(|s| s == id);

    // The throughput suites (E13 + E14) only run when asked for by name or
    // via --json / --check — they are perf measurements, not one of the
    // paper's statistical experiments, so `all` does not imply them.
    if selected.iter().any(|s| s == "bench") || json || check_baseline.is_some() {
        let meta = BenchMeta::collect();
        // Read the baseline BEFORE --json can overwrite it: `--json --check
        // BENCH_samplers.json` must compare against the committed bytes, not
        // against the freshly written results.
        let baseline_doc = check_baseline.as_ref().map(|baseline_path| {
            std::fs::read_to_string(baseline_path)
                .unwrap_or_else(|e| panic!("read perf baseline {baseline_path}: {e}"))
        });
        let mut records = throughput_suite(quick);
        println!("{}", throughput_table(&records).render());
        let scaling = engine_scaling_suite(quick);
        println!("{}", engine_scaling_table(&scaling, meta.host_cpus).render());
        records.extend(scaling);
        let strategies = strategy_comparison_suite(quick);
        println!("{}", strategy_comparison_table(&strategies, meta.host_cpus).render());
        records.extend(strategies);
        let kernels = kernel_suite(quick);
        println!("{}", kernel_table(&kernels).render());
        records.extend(kernels);
        let service = service_suite(quick);
        println!("{}", service_table(&service).render());
        records.extend(service);
        let registry = registry_suite(quick);
        println!("{}", registry_table(&registry).render());
        if json {
            let path = "BENCH_samplers.json";
            std::fs::write(path, to_json(&records, &registry, quick, &meta))
                .expect("write BENCH_samplers.json");
            println!("wrote {path}");
        }
        if let (Some(baseline_path), Some(baseline_doc)) = (&check_baseline, &baseline_doc) {
            let fresh_mode = if quick { "quick" } else { "full" };
            if let Some(baseline_mode) = parse_mode(baseline_doc) {
                if baseline_mode != fresh_mode {
                    println!(
                        "perf gate note: comparing a {fresh_mode}-mode run against a \
                         {baseline_mode}-mode baseline — ratios are dimensionless but \
                         workload sizes differ, so expect extra noise"
                    );
                }
            }
            let baseline_class =
                parse_runner_class(baseline_doc).unwrap_or_else(|| "unspecified".to_string());
            if let Some(advice) = seed_baseline_advice(&baseline_class) {
                println!("{advice}");
            } else if baseline_class != meta.runner_class {
                println!(
                    "perf gate note: baseline runner class '{baseline_class}' differs from \
                     this run's '{}' — per-class baselines live under ci/perf-baselines/",
                    meta.runner_class
                );
            }
            let baseline = parse_headline(baseline_doc);
            let fresh = headline_ratios(&records);
            println!("perf gate vs {baseline_path} (tolerance {:.0}%):", GATE_TOLERANCE * 100.0);
            match check_headline_regression(&fresh, &baseline, GATE_TOLERANCE) {
                Ok(report) => {
                    for line in report {
                        println!("  {line}");
                    }
                    println!("perf gate: PASS");
                }
                Err(failures) => {
                    for line in failures {
                        println!("  {line}");
                    }
                    println!("perf gate: FAIL");
                    std::process::exit(1);
                }
            }
        }
        if !run_everything && selected.iter().all(|s| s == "bench") {
            return;
        }
    }

    if wants("e1") || wants("e4") {
        println!("{}", e1_sampler_accuracy(quick).render());
    }
    if wants("e2") {
        println!("{}", e2_sampler_space(quick).render());
    }
    if wants("e3") {
        for t in e3_l0_sampler(quick) {
            println!("{}", t.render());
        }
    }
    if wants("e5") {
        println!("{}", e5_duplicates(quick).render());
    }
    if wants("e6") {
        println!("{}", e6_duplicates_short(quick).render());
    }
    if wants("e7") {
        println!("{}", e7_duplicates_long(quick).render());
    }
    if wants("e8") {
        println!("{}", e8_heavy_hitters(quick).render());
    }
    if wants("e9") {
        println!("{}", e9_ur_protocol(quick).render());
    }
    if wants("e10") {
        for t in e10_reductions(quick) {
            println!("{}", t.render());
        }
    }
    if wants("e11") {
        println!("{}", e11_hh_reduction(quick).render());
    }
    // E15 is a perf measurement like E13/E14: it runs inside the bench block
    // above when measuring, and here only when asked for by name.
    if selected.iter().any(|s| s == "e15") {
        println!("{}", registry_table(&registry_suite(quick)).render());
    }
}

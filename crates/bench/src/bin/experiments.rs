//! Experiment harness entry point.
//!
//! Usage:
//!   cargo run --release -p lps-bench --bin experiments -- all [--full]
//!   cargo run --release -p lps-bench --bin experiments -- e1 e5 e9
//!   cargo run --release -p lps-bench --bin experiments -- bench --json
//!
//! Without `--full` the harness runs in "quick" mode (fewer trials), which is
//! what EXPERIMENTS.md reports; `--full` multiplies the trial counts. The
//! `bench` experiment runs the update-path throughput suite (E13); with
//! `--json` it also writes the results to `BENCH_samplers.json` so every PR
//! leaves a machine-readable perf datapoint.

use lps_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let quick = !full;
    let selected: Vec<String> = args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    let run_everything = selected.is_empty() || selected.iter().any(|s| s == "all");

    let wants = |id: &str| run_everything || selected.iter().any(|s| s == id);

    // The throughput suite (E13) only runs when asked for by name or via
    // --json — it is a perf measurement, not one of the paper's statistical
    // experiments, so `all` does not imply it.
    if selected.iter().any(|s| s == "bench") || json {
        let records = throughput_suite(quick);
        println!("{}", throughput_table(&records).render());
        if json {
            let path = "BENCH_samplers.json";
            std::fs::write(path, to_json(&records, quick)).expect("write BENCH_samplers.json");
            println!("wrote {path}");
        }
        if !run_everything && selected.iter().all(|s| s == "bench") {
            return;
        }
    }

    if wants("e1") || wants("e4") {
        println!("{}", e1_sampler_accuracy(quick).render());
    }
    if wants("e2") {
        println!("{}", e2_sampler_space(quick).render());
    }
    if wants("e3") {
        for t in e3_l0_sampler(quick) {
            println!("{}", t.render());
        }
    }
    if wants("e5") {
        println!("{}", e5_duplicates(quick).render());
    }
    if wants("e6") {
        println!("{}", e6_duplicates_short(quick).render());
    }
    if wants("e7") {
        println!("{}", e7_duplicates_long(quick).render());
    }
    if wants("e8") {
        println!("{}", e8_heavy_hitters(quick).render());
    }
    if wants("e9") {
        println!("{}", e9_ur_protocol(quick).render());
    }
    if wants("e10") {
        for t in e10_reductions(quick) {
            println!("{}", t.render());
        }
    }
    if wants("e11") {
        println!("{}", e11_hh_reduction(quick).render());
    }
}

//! The `experiments -- checkpoint` subcommand: the end-to-end proof that
//! sketch state survives leaving the process.
//!
//! The flow is split into two phases that the CI cross-process job runs as
//! **separate OS processes**:
//!
//! 1. `experiments -- checkpoint --dir D [--shards K]` — for every
//!    exact-arithmetic engine structure, ingest a deterministic workload
//!    through a `K`-shard [`lps_engine::IngestSession`] (alternating the
//!    round-robin and key-range plans across structures so both envelope
//!    kinds cross the process boundary), checkpoint the un-merged shard
//!    states, and write one `<structure>.shard-<i>.lps` file per shard
//!    into `D`.
//! 2. `experiments -- checkpoint --merge --dir D` — in a *fresh process*,
//!    read the shard files back, combine them with
//!    [`lps_engine::merge_checkpointed`] (which validates the stamped plan
//!    and version/seed compatibility before merging, and picks the combine
//!    operation — additive or disjoint union — from the envelope), and
//!    compare the merged `Mergeable::state_digest` against sequential
//!    single-process ingestion of the same workload. Any digest mismatch
//!    exits non-zero.
//!
//! Everything is derived from fixed master seeds, so the two phases agree on
//! the workload and the sequential reference without sharing any state
//! beyond the shard files — exactly the situation of a distributed deployment
//! checkpointing shards on one set of machines and merging them on another.

use std::path::{Path, PathBuf};

use lps_core::{FisL0Sampler, L0Sampler};
use lps_engine::{merge_checkpointed, EngineBuilder, KeyRange, PlanStrategy, ShardIngest};
use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, Persist, SparseRecovery,
};
use lps_stream::Update;

use crate::throughput::workload;

/// Dimension of the checkpoint workload vector.
const CHECKPOINT_DIMENSION: u64 = 1 << 14;
/// Number of updates in the checkpoint workload.
const CHECKPOINT_UPDATES: usize = 60_000;
/// Master seed of the workload stream.
const WORKLOAD_SEED: u64 = 0xC4EC;
/// Master seed every structure's constructor draws from.
const STRUCTURE_SEED: u64 = 0x5EED;

/// The structures the checkpoint pipeline covers: every exact-arithmetic
/// [`ShardIngest`] implementor (the ones whose cross-process merge must be
/// bit-identical to sequential ingestion).
pub const CHECKPOINT_STRUCTURES: [&str; 7] =
    ["sparse_recovery", "l0_sampler", "fis_l0", "count_sketch", "count_min", "count_median", "ams"];

/// The deterministic workload both phases regenerate independently.
fn checkpoint_workload() -> Vec<Update> {
    workload(CHECKPOINT_DIMENSION, CHECKPOINT_UPDATES, WORKLOAD_SEED)
}

fn shard_file(dir: &Path, structure: &str, shard: usize) -> PathBuf {
    dir.join(format!("{structure}.shard-{shard}.lps"))
}

/// Outcome of one structure's write or merge phase, for the report table.
#[derive(Debug)]
pub struct CheckpointOutcome {
    /// Structure identifier (one of [`CHECKPOINT_STRUCTURES`]).
    pub structure: &'static str,
    /// Digest of the merged (or, in the write phase, sequential) state.
    pub digest: u64,
    /// Total encoded bytes across the structure's shard files.
    pub bytes: u64,
    /// Whether the merged digest matched sequential ingestion (always true
    /// in the write phase, which records the expectation).
    pub matched: bool,
}

/// Ingest the workload through a `shards`-worker session under `strategy`
/// and write one plan-enveloped file per shard; returns the outcome (digest
/// = sequential reference the merge phase must reproduce).
fn write_one<T: ShardIngest + Persist + 'static>(
    structure: &'static str,
    proto: &T,
    updates: &[Update],
    shards: usize,
    strategy: PlanStrategy,
    dir: &Path,
) -> std::io::Result<CheckpointOutcome> {
    let encoded = match strategy {
        PlanStrategy::RoundRobin => {
            let mut session = EngineBuilder::new(proto).shards(shards).session();
            session.ingest_blocking(updates);
            session.checkpoint().unwrap()
        }
        PlanStrategy::KeyRange => {
            let mut session = EngineBuilder::new(proto)
                .plan(KeyRange::new(CHECKPOINT_DIMENSION, shards))
                .session();
            session.ingest_blocking(updates);
            session.checkpoint().unwrap()
        }
    };
    let mut bytes = 0u64;
    for (i, buf) in encoded.iter().enumerate() {
        bytes += buf.len() as u64;
        std::fs::write(shard_file(dir, structure, i), buf)?;
    }
    // Remove stale higher-index shard files from a previous run with a
    // larger --shards count: the merge phase scans indices upward until the
    // first missing file, so a leftover shard would be seed-compatible
    // (same fixed master seed) and silently double-count its mass.
    for stale in encoded.len().. {
        let path = shard_file(dir, structure, stale);
        if !path.exists() {
            break;
        }
        std::fs::remove_file(path)?;
    }
    let mut sequential = proto.clone();
    sequential.ingest_batch(updates);
    Ok(CheckpointOutcome { structure, digest: sequential.state_digest(), bytes, matched: true })
}

/// Read a structure's shard files back, merge them across the process
/// boundary, and digest-compare against in-process sequential ingestion.
fn merge_one<T: ShardIngest + Persist + 'static>(
    structure: &'static str,
    proto: &T,
    updates: &[Update],
    dir: &Path,
) -> Result<CheckpointOutcome, String> {
    let mut encoded = Vec::new();
    for shard in 0.. {
        let path = shard_file(dir, structure, shard);
        if !path.exists() {
            break;
        }
        encoded.push(std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?);
    }
    if encoded.is_empty() {
        return Err(format!("no shard files for {structure} in {}", dir.display()));
    }
    let bytes = encoded.iter().map(|b| b.len() as u64).sum();
    let merged: T = merge_checkpointed(&encoded).map_err(|e| format!("merge {structure}: {e}"))?;
    let mut sequential = proto.clone();
    sequential.ingest_batch(updates);
    let digest = merged.state_digest();
    Ok(CheckpointOutcome { structure, digest, bytes, matched: digest == sequential.state_digest() })
}

/// Build the prototype structures from the fixed master seed, in
/// [`CHECKPOINT_STRUCTURES`] order. Each phase rebuilds them identically, so
/// shard files and the sequential reference share every random function.
struct Prototypes {
    sparse_recovery: SparseRecovery,
    l0: L0Sampler,
    fis_l0: FisL0Sampler,
    count_sketch: CountSketch,
    count_min: CountMinSketch,
    count_median: CountMedianSketch,
    ams: AmsSketch,
}

impl Prototypes {
    fn build() -> Self {
        let n = CHECKPOINT_DIMENSION;
        let mut seeds = SeedSequence::new(STRUCTURE_SEED);
        Prototypes {
            sparse_recovery: SparseRecovery::new(n, 8, &mut seeds),
            l0: L0Sampler::new(n, 0.25, &mut seeds),
            fis_l0: FisL0Sampler::new(n, &mut seeds),
            count_sketch: CountSketch::with_default_rows(n, 16, &mut seeds),
            count_min: CountMinSketch::new(n, 256, 7, &mut seeds),
            count_median: CountMedianSketch::new(n, 256, 7, &mut seeds),
            ams: AmsSketch::with_default_shape(n, &mut seeds),
        }
    }
}

/// Phase 1: checkpoint every structure's sharded ingestion into `dir`.
pub fn checkpoint_write(dir: &Path, shards: usize) -> std::io::Result<Vec<CheckpointOutcome>> {
    std::fs::create_dir_all(dir)?;
    let updates = checkpoint_workload();
    let protos = Prototypes::build();
    // Alternate strategies across the structures so the cross-process CI
    // job exercises BOTH plan envelopes end to end: the merge phase reads
    // the strategy back out of each file, never out of this table.
    use PlanStrategy::{KeyRange as KR, RoundRobin as RR};
    Ok(vec![
        write_one("sparse_recovery", &protos.sparse_recovery, &updates, shards, KR, dir)?,
        write_one("l0_sampler", &protos.l0, &updates, shards, RR, dir)?,
        write_one("fis_l0", &protos.fis_l0, &updates, shards, KR, dir)?,
        write_one("count_sketch", &protos.count_sketch, &updates, shards, RR, dir)?,
        write_one("count_min", &protos.count_min, &updates, shards, KR, dir)?,
        write_one("count_median", &protos.count_median, &updates, shards, RR, dir)?,
        write_one("ams", &protos.ams, &updates, shards, KR, dir)?,
    ])
}

/// Phase 2: merge the shard files in `dir` and digest-compare against
/// sequential ingestion. Returns one outcome per structure; `matched` tells
/// the caller whether to fail the process.
pub fn checkpoint_merge(dir: &Path) -> Result<Vec<CheckpointOutcome>, String> {
    let updates = checkpoint_workload();
    let protos = Prototypes::build();
    Ok(vec![
        merge_one("sparse_recovery", &protos.sparse_recovery, &updates, dir)?,
        merge_one("l0_sampler", &protos.l0, &updates, dir)?,
        merge_one("fis_l0", &protos.fis_l0, &updates, dir)?,
        merge_one("count_sketch", &protos.count_sketch, &updates, dir)?,
        merge_one("count_min", &protos.count_min, &updates, dir)?,
        merge_one("count_median", &protos.count_median, &updates, dir)?,
        merge_one("ams", &protos.ams, &updates, dir)?,
    ])
}

/// Render outcomes as the console report both phases print.
pub fn render_outcomes(phase: &str, outcomes: &[CheckpointOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "checkpoint {phase}: n = {CHECKPOINT_DIMENSION}, {CHECKPOINT_UPDATES} updates\n"
    ));
    for o in outcomes {
        out.push_str(&format!(
            "  {:<16} digest {:016x}  {:>9} bytes  {}\n",
            o.structure,
            o.digest,
            o.bytes,
            if o.matched { "ok" } else { "DIGEST MISMATCH" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_merge_roundtrips_in_process() {
        let dir = std::env::temp_dir().join(format!("lps-checkpoint-test-{}", std::process::id()));
        let written = checkpoint_write(&dir, 3).expect("write phase");
        assert_eq!(written.len(), CHECKPOINT_STRUCTURES.len());
        let merged = checkpoint_merge(&dir).expect("merge phase");
        for (w, m) in written.iter().zip(merged.iter()) {
            assert_eq!(w.structure, m.structure);
            assert!(m.matched, "{} digest mismatch after disk round-trip", m.structure);
            assert_eq!(w.digest, m.digest, "{} sequential reference drifted", w.structure);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewriting_with_fewer_shards_removes_stale_files() {
        // a second write with a smaller --shards count must not leave
        // higher-index shard files behind for the merge phase to absorb
        let dir = std::env::temp_dir().join(format!("lps-checkpoint-stale-{}", std::process::id()));
        checkpoint_write(&dir, 4).expect("first write");
        checkpoint_write(&dir, 2).expect("second write");
        assert!(!shard_file(&dir, "sparse_recovery", 2).exists(), "stale shard survived");
        let merged = checkpoint_merge(&dir).expect("merge after shrink");
        for m in merged {
            assert!(m.matched, "{} digest mismatch after shard-count shrink", m.structure);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_fails_cleanly_on_missing_directory() {
        let dir = std::env::temp_dir().join("lps-checkpoint-test-missing");
        std::fs::remove_dir_all(&dir).ok();
        assert!(checkpoint_merge(&dir).is_err());
    }
}

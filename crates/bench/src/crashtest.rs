//! The crash harness behind `experiments -- crashtest`: kill a process
//! mid-spill, reopen the log, and prove no committed record was lost.
//!
//! The harness has two roles in one binary:
//!
//! * **Child** (`crashtest --child --dir D --seed S --kill-after N`): routes
//!   seeded Zipf tenant traffic through a [`SketchRegistry`] over a
//!   [`FileSpill`], with every spill `put` preceded by a durable manifest
//!   line (`tenant checksum`) — so the manifest is always a superset of the
//!   committed log. After the N-th committed record it calls
//!   [`std::process::abort`], dying at a record boundary without unwinding.
//! * **Parent** (`crashtest --dir D [--kills K] [--seed S]`): spawns the
//!   child K times with randomized kill points, asserts each died abnormally,
//!   then — to also exercise mid-record tears, which an abort at a commit
//!   boundary cannot produce — chops a random number of trailing bytes off
//!   the dead child's log before reopening it. Every record the reopened
//!   [`FileSpill`] serves must checksum-match a manifest line for its
//!   tenant, and a fresh registry over the reopened log must restore and
//!   digest every surviving tenant. A final in-process smoke drives a
//!   [`FaultySpill`] with one permanently failing tenant and checks the
//!   quarantine isolates exactly that tenant.
//!
//! CI runs the parent mode next to the `checkpoint-restore` job; a non-zero
//! exit means a committed record vanished, a torn tail leaked past recovery,
//! or quarantine failed to contain a permanent fault.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::process::Command;

use lps_hash::SeedSequence;
use lps_registry::{
    record_checksum, FaultPlan, FaultySpill, FileSpill, MemorySpill, RegistryConfig, RegistryError,
    SketchRegistry, SpillBackend,
};
use lps_sketch::SparseRecovery;
use lps_stream::{Update, Zipf};

/// Every child run and the parent's re-reader clone tenants from the same
/// prototype seed, so restored segments decode against compatible seeds.
const PROTO_SEED: u64 = 0xC4A5_4E57;

/// Tenant key space the child's Zipf traffic draws from.
const CRASH_TENANTS: u64 = 500;

/// Updates the child routes before giving up on reaching the kill point.
const CHILD_UPDATE_CAP: usize = 200_000;

/// Child exit code when the traffic cap elapses without the kill firing —
/// the parent treats it as a harness bug, not a crash.
const CHILD_SURVIVED: i32 = 3;

fn crash_proto() -> SparseRecovery {
    let mut seeds = SeedSequence::new(PROTO_SEED);
    SparseRecovery::new(1 << 16, 8, &mut seeds)
}

fn crash_config() -> RegistryConfig {
    // tiny residency so the traffic spills constantly
    RegistryConfig::new().max_resident(8).materialize_threshold(16).spill_backlog(4)
}

fn spill_path(dir: &Path) -> PathBuf {
    dir.join("crash.spill")
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.txt")
}

/// A [`FileSpill`] wrapper that makes every `put` observable and mortal:
/// it durably appends `tenant checksum` to the manifest *before* forwarding
/// to the file log (manifest ⊇ committed), and aborts the process right
/// after the `kill_after`-th successful commit.
struct ManifestSpill {
    inner: FileSpill,
    manifest: fs::File,
    committed: u64,
    kill_after: u64,
}

impl SpillBackend for ManifestSpill {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        writeln!(self.manifest, "{tenant} {:016x}", record_checksum(segment))?;
        self.manifest.sync_all()?;
        self.inner.put(tenant, segment)?;
        self.committed += 1;
        if self.committed >= self.kill_after {
            // die at a record boundary, no unwinding, no Drop
            std::process::abort();
        }
        Ok(())
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        self.inner.get(tenant)
    }

    fn remove(&mut self, tenant: u64) {
        self.inner.remove(tenant);
    }

    fn spilled(&self) -> usize {
        self.inner.spilled()
    }
}

/// Child role: route traffic until the `kill_after`-th spill commit aborts
/// the process. Returns only if the cap elapses first.
pub fn crashtest_child(dir: &Path, seed: u64, kill_after: u64) -> i32 {
    fs::create_dir_all(dir).expect("create crash dir");
    let spill = ManifestSpill {
        inner: FileSpill::create(spill_path(dir)).expect("create spill"),
        manifest: fs::File::create(manifest_path(dir)).expect("create manifest"),
        committed: 0,
        kill_after,
    };
    let mut reg = SketchRegistry::new(crash_proto(), crash_config(), spill);
    let zipf = Zipf::new(CRASH_TENANTS, 1.05);
    let mut seeds = SeedSequence::new(seed);
    for _ in 0..CHILD_UPDATE_CAP {
        let tenant = zipf.sample(&mut seeds);
        let update = Update::new(seeds.next_below(1 << 16), 1);
        reg.route_blocking(tenant, &[update]).expect("route");
    }
    eprintln!("crashtest child: cap elapsed before kill point {kill_after}");
    CHILD_SURVIVED
}

/// What one parent-side kill iteration observed.
#[derive(Debug)]
pub struct CrashOutcome {
    /// The commit count the child was told to die after.
    pub kill_after: u64,
    /// Trailing bytes chopped off the dead child's log before reopening.
    pub chopped: u64,
    /// Records the reopened log still serves (distinct tenants).
    pub recovered: usize,
    /// Whether the reopen observed (and truncated) a torn tail.
    pub torn_tail: bool,
}

fn parse_manifest(dir: &Path) -> HashMap<u64, HashSet<u64>> {
    let text = fs::read_to_string(manifest_path(dir)).expect("read manifest");
    let mut out: HashMap<u64, HashSet<u64>> = HashMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let tenant: u64 = parts.next().expect("tenant").parse().expect("tenant u64");
        let checksum = u64::from_str_radix(parts.next().expect("checksum"), 16).expect("hex");
        out.entry(tenant).or_default().insert(checksum);
    }
    out
}

/// Verify one dead child's spill directory: chop `chopped` trailing bytes,
/// reopen, and check every surviving record against the manifest, then
/// restore every surviving tenant through a fresh registry.
fn verify_crash_dir(dir: &Path, kill_after: u64, chopped: u64) -> Result<CrashOutcome, String> {
    let path = spill_path(dir);
    let len = fs::metadata(&path).map_err(|e| format!("stat spill: {e}"))?.len();
    let chopped = chopped.min(len);
    let file = fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .map_err(|e| format!("open spill for chop: {e}"))?;
    file.set_len(len - chopped).map_err(|e| format!("chop spill: {e}"))?;
    drop(file);

    let manifest = parse_manifest(dir);
    let mut reopened =
        FileSpill::open(&path).map_err(|e| format!("reopen after crash must succeed: {e}"))?;
    let torn_tail = reopened.stats().torn_tail_recoveries > 0;

    // every record the log still serves must be one the child manifested
    let mut survivors = Vec::new();
    for &tenant in manifest.keys() {
        if let Some(segment) =
            reopened.get(tenant).map_err(|e| format!("get tenant {tenant}: {e}"))?
        {
            let sum = record_checksum(&segment);
            if !manifest[&tenant].contains(&sum) {
                return Err(format!(
                    "tenant {tenant}: recovered record checksum {sum:016x} matches no manifest \
                     line — the log served bytes the child never committed"
                ));
            }
            survivors.push(tenant);
        }
    }
    if reopened.spilled() != survivors.len() {
        return Err(format!(
            "log indexes {} records but only {} belong to manifested tenants",
            reopened.spilled(),
            survivors.len()
        ));
    }

    // and a fresh registry over the reopened log must restore each survivor
    let mut reg = SketchRegistry::new(crash_proto(), crash_config(), reopened);
    for &tenant in &survivors {
        match reg.digest(tenant) {
            Ok(Some(_)) => {}
            Ok(None) => return Err(format!("tenant {tenant} vanished on restore")),
            Err(e) => return Err(format!("tenant {tenant} failed to restore: {e}")),
        }
    }

    Ok(CrashOutcome { kill_after, chopped, recovered: survivors.len(), torn_tail })
}

/// In-process quarantine smoke: one permanently failing tenant among many
/// must be quarantined without wedging or corrupting the rest.
fn quarantine_smoke(seed: u64) -> Result<(), String> {
    const DOOMED: u64 = 42;
    let plan = FaultPlan::new(seed).with_permanent_tenant(DOOMED);
    let mut reg = SketchRegistry::new(
        crash_proto(),
        crash_config(),
        FaultySpill::new(MemorySpill::new(), plan),
    );
    for tenant in 0..100u64 {
        reg.route_blocking(tenant, &[Update::new(tenant, 1)])
            .map_err(|e| format!("route tenant {tenant}: {e}"))?;
    }
    reg.drain().map_err(|e| format!("drain: {e}"))?;
    if !reg.is_quarantined(DOOMED) {
        return Err("permanently failing tenant was not quarantined".into());
    }
    if reg.quarantined_count() != 1 {
        return Err(format!("expected 1 quarantined tenant, got {}", reg.quarantined_count()));
    }
    for tenant in (0..100u64).filter(|&t| t != DOOMED) {
        match reg.digest(tenant) {
            Ok(Some(_)) => {}
            Ok(None) => return Err(format!("healthy tenant {tenant} lost its state")),
            Err(RegistryError::Quarantined { .. }) => {
                return Err(format!("healthy tenant {tenant} was wrongly quarantined"))
            }
            Err(e) => return Err(format!("healthy tenant {tenant}: {e}")),
        }
    }
    Ok(())
}

/// Parent role: run `kills` child crashes under `dir` and verify recovery
/// after each, then the quarantine smoke. Returns the process exit code.
pub fn crashtest_parent(dir: &Path, kills: u32, seed: u64) -> i32 {
    let mut rng = SeedSequence::new(seed);
    let mut failures = 0u32;
    for kill in 0..kills {
        let run_dir = dir.join(format!("run-{kill}"));
        let _ = fs::remove_dir_all(&run_dir);
        // enough commits to span several evict/restore cycles, small enough
        // that early-log tears stay reachable
        let kill_after = 5 + rng.next_below(56);
        let child_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(kill as u64);
        let status = Command::new(std::env::current_exe().expect("current exe"))
            .args([
                "crashtest",
                "--child",
                "--dir",
                run_dir.to_str().expect("utf8 dir"),
                "--seed",
                &child_seed.to_string(),
                "--kill-after",
                &kill_after.to_string(),
            ])
            .status()
            .expect("spawn crashtest child");
        if status.success() || status.code() == Some(CHILD_SURVIVED) {
            eprintln!("kill {kill}: child did not crash (status {status}) — harness bug");
            failures += 1;
            continue;
        }
        let spill_len = fs::metadata(spill_path(&run_dir)).map(|m| m.len()).unwrap_or(0);
        let chopped = rng.next_below(spill_len / 2 + 1);
        match verify_crash_dir(&run_dir, kill_after, chopped) {
            Ok(outcome) => {
                println!(
                    "kill {kill}: kill_after={} chopped={}B recovered={} torn_tail={}",
                    outcome.kill_after, outcome.chopped, outcome.recovered, outcome.torn_tail
                );
                if outcome.recovered == 0 {
                    eprintln!("kill {kill}: nothing recovered — kill point never spilled?");
                    failures += 1;
                }
            }
            Err(msg) => {
                eprintln!("kill {kill}: FAIL: {msg}");
                failures += 1;
            }
        }
    }
    match quarantine_smoke(seed) {
        Ok(()) => println!("quarantine smoke: permanent fault contained to one tenant"),
        Err(msg) => {
            eprintln!("quarantine smoke: FAIL: {msg}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("crashtest: all {kills} kills recovered every committed record");
        0
    } else {
        eprintln!("crashtest: {failures} failure(s)");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lps-crashtest-{}-{tag}", std::process::id()));
        p
    }

    #[test]
    fn quarantine_smoke_passes() {
        quarantine_smoke(7).unwrap();
    }

    /// In-process stand-in for the child+parent cycle (no abort): write a
    /// log the way the child does, then verify the way the parent does.
    #[test]
    fn verify_accepts_a_cleanly_killed_log_and_rejects_nothing() {
        let dir = scratch_dir("verify");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let spill = ManifestSpill {
            inner: FileSpill::create(spill_path(&dir)).unwrap(),
            manifest: fs::File::create(manifest_path(&dir)).unwrap(),
            committed: 0,
            kill_after: u64::MAX, // never abort in-process
        };
        let mut reg = SketchRegistry::new(crash_proto(), crash_config(), spill);
        let zipf = Zipf::new(CRASH_TENANTS, 1.05);
        let mut seeds = SeedSequence::new(11);
        for _ in 0..3_000 {
            let tenant = zipf.sample(&mut seeds);
            reg.route_blocking(tenant, &[Update::new(seeds.next_below(1 << 16), 1)]).unwrap();
        }
        reg.drain().unwrap();
        drop(reg);

        // un-chopped: every committed record survives
        let outcome = verify_crash_dir(&dir, 0, 0).unwrap();
        assert!(outcome.recovered > 0);
        assert!(!outcome.torn_tail);

        // chopped mid-record: reopen still verifies, with a torn tail
        let len = fs::metadata(spill_path(&dir)).unwrap().len();
        let outcome = verify_crash_dir(&dir, 0, 7.min(len)).unwrap();
        assert!(outcome.torn_tail || outcome.chopped == 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

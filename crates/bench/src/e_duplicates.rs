//! Experiments E5–E7: finding duplicates in streams of length n+1, n−s and
//! n+s (Theorems 3 and 4 and the final paragraph of Section 3).

use lps_duplicates::{
    DuplicateFinder, DuplicateResult, LongStreamDuplicateFinder, OversampleStrategy,
    PriorWorkDuplicateFinder, ShortStreamDuplicateFinder,
};
use lps_hash::SeedSequence;
use lps_stream::{
    duplicate_stream_n_minus_s, duplicate_stream_n_plus_1, duplicate_stream_n_plus_s, SpaceUsage,
};

use crate::report::{f3, int, Table};

/// E5: Theorem 3 on length-(n+1) streams versus the prior-work-space baseline.
pub fn e5_duplicates(quick: bool) -> Table {
    let mut table = Table::new(
        "E5: duplicates in length-(n+1) streams — Theorem 3 vs prior-work-space baseline",
        &["algorithm", "log2(n)", "trials", "found_rate", "wrong_rate", "bits"],
    );
    let trials: u64 = if quick { 40 } else { 150 };
    for &log_n in &[10u32, 12] {
        let n = 1u64 << log_n;
        let mut gen = SeedSequence::new(0xE5 + log_n as u64);
        let (stream, dups) = duplicate_stream_n_plus_1(n, 3, &mut gen);

        // Theorem 3
        let mut found = 0u64;
        let mut wrong = 0u64;
        let mut bits = 0u64;
        for t in 0..trials {
            let mut s = SeedSequence::new(1_000 + t);
            let mut finder = DuplicateFinder::new(n, 0.2, &mut s);
            finder.process_stream(&stream);
            bits = finder.bits_used();
            match finder.report() {
                DuplicateResult::Duplicate(d) if dups.contains(&d) => found += 1,
                DuplicateResult::Duplicate(_) => wrong += 1,
                _ => {}
            }
        }
        table.row(&[
            "theorem3".to_string(),
            int(log_n as u64),
            int(trials),
            f3(found as f64 / trials as f64),
            f3(wrong as f64 / trials as f64),
            int(bits),
        ]);

        // prior-work-space baseline (fewer trials; it is much slower)
        let baseline_trials = (trials / 4).max(5);
        let mut found = 0u64;
        let mut wrong = 0u64;
        let mut bits = 0u64;
        for t in 0..baseline_trials {
            let mut s = SeedSequence::new(2_000 + t);
            let mut finder = PriorWorkDuplicateFinder::new(n, 0.2, &mut s);
            finder.process_stream(&stream);
            bits = finder.bits_used();
            match finder.report() {
                DuplicateResult::Duplicate(d) if dups.contains(&d) => found += 1,
                DuplicateResult::Duplicate(_) => wrong += 1,
                _ => {}
            }
        }
        table.row(&[
            "prior-work".to_string(),
            int(log_n as u64),
            int(baseline_trials),
            f3(found as f64 / baseline_trials as f64),
            f3(wrong as f64 / baseline_trials as f64),
            int(bits),
        ]);
    }
    table
}

/// E6: Theorem 4 on length-(n−s) streams: exact certificates in the sparse
/// regime, sampling fallback in the dense regime, space as a function of s.
pub fn e6_duplicates_short(quick: bool) -> Table {
    let mut table = Table::new(
        "E6: duplicates in length-(n-s) streams (Theorem 4)",
        &["log2(n)", "s", "planted_dups", "trials", "correct_rate", "fail_rate", "bits"],
    );
    let trials: u64 = if quick { 25 } else { 80 };
    let n = 1u64 << 12;
    for &(s, planted) in &[(8u64, 0u64), (8, 2), (64, 4), (4, 300)] {
        let mut gen = SeedSequence::new(0xE6 + s + planted);
        let (stream, dups) = duplicate_stream_n_minus_s(n, s, planted, &mut gen);
        let mut correct = 0u64;
        let mut fails = 0u64;
        let mut bits = 0u64;
        for t in 0..trials {
            let mut seeds = SeedSequence::new(3_000 + t);
            let mut finder = ShortStreamDuplicateFinder::new(n, s, 0.2, &mut seeds);
            finder.process_stream(&stream);
            bits = finder.bits_used();
            match finder.report() {
                DuplicateResult::Duplicate(d) if dups.contains(&d) => correct += 1,
                DuplicateResult::NoDuplicate if dups.is_empty() => correct += 1,
                DuplicateResult::Fail => fails += 1,
                _ => {}
            }
        }
        table.row(&[
            int(12),
            int(s),
            int(planted),
            int(trials),
            f3(correct as f64 / trials as f64),
            f3(fails as f64 / trials as f64),
            int(bits),
        ]);
    }
    table
}

/// E7: duplicates in length-(n+s) streams; the strategy crossover at
/// n/s = log n and the resulting space.
pub fn e7_duplicates_long(quick: bool) -> Table {
    let mut table = Table::new(
        "E7: duplicates in length-(n+s) streams — strategy crossover at n/s = log n",
        &["log2(n)", "s", "strategy", "trials", "found_rate", "wrong_rate", "bits"],
    );
    let trials: u64 = if quick { 30 } else { 100 };
    let n = 1u64 << 12;
    for &s in &[16u64, 256, 2048] {
        let mut gen = SeedSequence::new(0xE7 + s);
        let (stream, dups) = duplicate_stream_n_plus_s(n, s, &mut gen);
        let mut found = 0u64;
        let mut wrong = 0u64;
        let mut bits = 0u64;
        let mut strategy = OversampleStrategy::L1Sampling;
        for t in 0..trials {
            let mut seeds = SeedSequence::new(4_000 + t);
            let mut finder = LongStreamDuplicateFinder::new(n, s, 0.2, &mut seeds);
            strategy = finder.strategy();
            finder.process_stream(&stream);
            bits = finder.bits_used();
            match finder.report() {
                DuplicateResult::Duplicate(d) if dups.contains(&d) => found += 1,
                DuplicateResult::Duplicate(_) => wrong += 1,
                _ => {}
            }
        }
        table.row(&[
            int(12),
            int(s),
            format!("{strategy:?}"),
            int(trials),
            f3(found as f64 / trials as f64),
            f3(wrong as f64 / trials as f64),
            int(bits),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_strategy_crossover_visible() {
        // structural check only: the constructor's strategy choice, no streaming
        let n = 1u64 << 12;
        let mut seeds = SeedSequence::new(1);
        let small_s = LongStreamDuplicateFinder::new(n, 16, 0.25, &mut seeds);
        let large_s = LongStreamDuplicateFinder::new(n, 2048, 0.25, &mut seeds);
        assert_eq!(small_s.strategy(), OversampleStrategy::L1Sampling);
        assert_eq!(large_s.strategy(), OversampleStrategy::PositionSampling);
    }
}

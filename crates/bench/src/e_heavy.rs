//! Experiment E8: heavy hitters with count-sketch at m = 1/φ^p (Section 4.4
//! upper bound) against the count-min baseline, across p and φ.

use lps_hash::SeedSequence;
use lps_heavy::{is_valid_heavy_hitter_set, CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_stream::{zipf_stream, SpaceUsage, TruthVector, Update};

use crate::report::{f3, int, Table};

/// E8: validity rate and space of the count-sketch heavy hitter algorithm.
pub fn e8_heavy_hitters(quick: bool) -> Table {
    let mut table = Table::new(
        "E8: heavy hitters on a Zipf stream with corrections — count-sketch (all p) vs count-min (p=1)",
        &["algorithm", "p", "phi", "trials", "valid_rate", "avg_reported", "exact_heavy", "bits"],
    );
    let n: u64 = 1 << 12;
    let trials: u64 = if quick { 12 } else { 40 };

    // Zipfian traffic with 10% corrections on the heavy coordinates.
    let mut gen = SeedSequence::new(0xE8);
    let mut stream = zipf_stream(n, 40_000, 1.3, &mut gen);
    let before = TruthVector::from_stream(&stream);
    for i in 0..n {
        let v = before.get(i);
        if v > 100 {
            stream.push(Update::new(i, -(v / 10)));
        }
    }
    let truth = TruthVector::from_stream(&stream);

    for &(p, phi) in &[(0.5, 0.0625), (1.0, 0.125), (1.0, 0.0625), (1.5, 0.125), (2.0, 0.25)] {
        let exact = lps_heavy::exact_heavy_hitters(&truth, p, phi);
        let mut valid = 0u64;
        let mut reported_total = 0u64;
        let mut bits = 0u64;
        for t in 0..trials {
            let mut seeds = SeedSequence::new(5_000 + t);
            let mut hh = CountSketchHeavyHitters::new(n, p, phi, &mut seeds);
            hh.process(&stream);
            bits = hh.bits_used();
            let reported = hh.report_with_norm(truth.lp_norm(p));
            reported_total += reported.len() as u64;
            if is_valid_heavy_hitter_set(&truth, p, phi, &reported).is_valid() {
                valid += 1;
            }
        }
        table.row(&[
            "count-sketch".to_string(),
            f3(p),
            f3(phi),
            int(trials),
            f3(valid as f64 / trials as f64),
            f3(reported_total as f64 / trials as f64),
            int(exact.len() as u64),
            int(bits),
        ]);
    }

    // count-min baseline, p = 1 only
    for &phi in &[0.125, 0.0625] {
        let exact = lps_heavy::exact_heavy_hitters(&truth, 1.0, phi);
        let mut valid = 0u64;
        let mut reported_total = 0u64;
        let mut bits = 0u64;
        for t in 0..trials {
            let mut seeds = SeedSequence::new(6_000 + t);
            let mut hh = CountMinHeavyHitters::new(n, phi, &mut seeds);
            hh.process(&stream);
            bits = hh.bits_used();
            let reported = hh.report_with_norm(truth.lp_norm(1.0));
            reported_total += reported.len() as u64;
            if is_valid_heavy_hitter_set(&truth, 1.0, phi, &reported).is_valid() {
                valid += 1;
            }
        }
        table.row(&[
            "count-min".to_string(),
            f3(1.0),
            f3(phi),
            int(trials),
            f3(valid as f64 / trials as f64),
            f3(reported_total as f64 / trials as f64),
            int(exact.len() as u64),
            int(bits),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_grows_as_phi_shrinks() {
        let mut s = SeedSequence::new(1);
        let coarse = CountSketchHeavyHitters::new(1 << 10, 1.0, 0.25, &mut s);
        let fine = CountSketchHeavyHitters::new(1 << 10, 1.0, 0.03125, &mut s);
        assert!(fine.bits_used() > 3 * coarse.bits_used());
    }
}

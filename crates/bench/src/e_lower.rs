//! Experiments E9–E11: the universal relation protocol (Proposition 5) and
//! the executable lower-bound reductions (Theorems 6, 7 and 9).

use lps_commgames::{
    augmented_indexing_lower_bound_bits, ur_deterministic_protocol, AugmentedIndexingInstance,
    DuplicatesToUr, HeavyHittersToAugmentedIndexing, UrInstance, UrSketchProtocol,
    UrToAugmentedIndexing,
};
use lps_hash::SeedSequence;

use crate::report::{f1, f3, int, Table};

/// E9: one-round UR protocol — correctness and message size vs the
/// deterministic n-bit protocol as n grows.
pub fn e9_ur_protocol(quick: bool) -> Table {
    let mut table = Table::new(
        "E9: universal relation — one-round L0-sketch protocol (Prop. 5) vs deterministic n bits",
        &[
            "log2(n)",
            "trials",
            "correct_rate",
            "wrong_rate",
            "sketch_msg_bits",
            "deterministic_bits",
            "msg/n",
        ],
    );
    let trials: u64 = if quick { 25 } else { 80 };
    let protocol = UrSketchProtocol::new(0.2);
    for &log_n in &[8u32, 10, 12, 14] {
        let n = 1u64 << log_n;
        let mut seeds = SeedSequence::new(0xE9 + log_n as u64);
        let mut correct = 0u64;
        let mut wrong = 0u64;
        let mut msg_bits = 0u64;
        for t in 0..trials {
            let diffs = 1 + (t % 6);
            let inst = UrInstance::random(n, diffs, &mut seeds);
            let out = protocol.run(&inst, &mut seeds);
            msg_bits = out.message_bits;
            match out.answer {
                Some(i) if inst.is_valid_answer(i) => correct += 1,
                Some(_) => wrong += 1,
                None => {}
            }
        }
        let det = ur_deterministic_protocol(&UrInstance::random(n, 1, &mut seeds));
        table.row(&[
            int(log_n as u64),
            int(trials),
            f3(correct as f64 / trials as f64),
            f3(wrong as f64 / trials as f64),
            int(msg_bits),
            int(det.message_bits),
            f1(msg_bits as f64 / n as f64),
        ]);
    }
    table
}

/// E10: the reduction chain augmented indexing → UR → L0 sampling
/// (Theorem 6) and UR → duplicates (Theorem 7).
pub fn e10_reductions(quick: bool) -> Vec<Table> {
    let trials: u64 = if quick { 25 } else { 80 };

    let mut t6 = Table::new(
        "E10a: Theorem 6 — augmented indexing solved through the UR sketch protocol",
        &[
            "s",
            "t",
            "ur_dim",
            "trials",
            "correct_rate",
            "guess_rate",
            "msg_bits",
            "mnsw_bound_bits",
        ],
    );
    for &(s, t_bits) in &[(4u32, 3u32), (6, 4), (8, 5)] {
        let red = UrToAugmentedIndexing::new(s, t_bits, 0.2);
        let mut seeds = SeedSequence::new(0x10A + s as u64);
        let mut correct = 0u64;
        let mut msg_bits = 0u64;
        for _ in 0..trials {
            let inst = AugmentedIndexingInstance::random(s as usize, 1 << t_bits, &mut seeds);
            let out = red.run(&inst, &mut seeds);
            msg_bits = out.message_bits;
            if out.correct {
                correct += 1;
            }
        }
        t6.row(&[
            int(s as u64),
            int(t_bits as u64),
            int(red.ur_dimension()),
            int(trials),
            f3(correct as f64 / trials as f64),
            f3(1.0 / (1u64 << t_bits) as f64),
            int(msg_bits),
            f1(augmented_indexing_lower_bound_bits(s as usize, 1 << t_bits, 0.5)),
        ]);
    }

    let mut t7 = Table::new(
        "E10b: Theorem 7 — UR solved through the Theorem 3 duplicates algorithm",
        &["log2(n)", "trials", "answered_rate", "correct_of_answered", "msg_bits"],
    );
    for &log_n in &[6u32, 8, 10] {
        let n = 1u64 << log_n;
        let red = DuplicatesToUr::new(0.2);
        let mut seeds = SeedSequence::new(0x10B + log_n as u64);
        let mut answered = 0u64;
        let mut correct = 0u64;
        let mut msg_bits = 0u64;
        for t in 0..trials {
            let inst = UrInstance::random(n, 1 + (t % 4), &mut seeds);
            let out = red.run(&inst, &mut seeds);
            msg_bits = out.message_bits;
            if let Some(i) = out.answer {
                answered += 1;
                if inst.is_valid_answer(i) {
                    correct += 1;
                }
            }
        }
        t7.row(&[
            int(log_n as u64),
            int(trials),
            f3(answered as f64 / trials as f64),
            f3(if answered > 0 { correct as f64 / answered as f64 } else { 0.0 }),
            int(msg_bits),
        ]);
    }
    vec![t6, t7]
}

/// E11: Theorem 9 — augmented indexing through a heavy hitters algorithm,
/// with an exact oracle (validating the construction) and with the real
/// count-sketch structure (validating the full pipeline).
pub fn e11_hh_reduction(quick: bool) -> Table {
    let mut table = Table::new(
        "E11: Theorem 9 — augmented indexing via heavy hitters (geometric block weights)",
        &["oracle", "s", "t", "p", "phi", "trials", "correct_rate", "msg_bits"],
    );
    let trials: u64 = if quick { 25 } else { 80 };
    for &(p, phi) in &[(1.0, 0.25), (1.5, 0.25)] {
        let s = 8u32;
        let t_bits = 4u32;
        let red = HeavyHittersToAugmentedIndexing::new(s, t_bits, p, phi);

        // exact oracle: the reduction itself must be loss-free
        let mut seeds = SeedSequence::new(0x11A + (p * 10.0) as u64);
        let mut correct = 0u64;
        for _ in 0..trials {
            let inst = AugmentedIndexingInstance::random(s as usize, 1 << t_bits, &mut seeds);
            if red.run_with_exact_oracle(&inst).correct {
                correct += 1;
            }
        }
        table.row(&[
            "exact".to_string(),
            int(s as u64),
            int(t_bits as u64),
            f3(p),
            f3(phi),
            int(trials),
            f3(correct as f64 / trials as f64),
            int(0),
        ]);

        // real count-sketch heavy hitter structure
        let mut seeds = SeedSequence::new(0x11B + (p * 10.0) as u64);
        let mut correct = 0u64;
        let mut msg_bits = 0u64;
        for _ in 0..trials {
            let inst = AugmentedIndexingInstance::random(s as usize, 1 << t_bits, &mut seeds);
            let out = red.run(&inst, &mut seeds);
            msg_bits = out.message_bits;
            if out.correct {
                correct += 1;
            }
        }
        table.row(&[
            "count-sketch".to_string(),
            int(s as u64),
            int(t_bits as u64),
            f3(p),
            f3(phi),
            int(trials),
            f3(correct as f64 / trials as f64),
            int(msg_bits),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_exact_oracle_rows_are_perfect() {
        // cheap structural property: the exact-oracle reduction is loss-free
        let red = HeavyHittersToAugmentedIndexing::new(6, 3, 1.0, 0.25);
        let mut seeds = SeedSequence::new(2);
        for _ in 0..10 {
            let inst = AugmentedIndexingInstance::random(6, 8, &mut seeds);
            assert!(red.run_with_exact_oracle(&inst).correct);
        }
    }
}

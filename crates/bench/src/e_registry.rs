//! Experiment E15: multi-tenant registry throughput under Zipf tenant
//! traffic.
//!
//! The registry's reason to exist is keyed workloads whose tenant
//! distribution is heavy-tailed: a few hot tenants absorb most updates while
//! an enormous tail sees a handful each. E15 drives a
//! [`SketchRegistry`] with Zipf(α)-distributed
//! tenant keys over 10^5 (quick) to 10^6 (full) tenants — far more tenants
//! than resident slots — and records, per scenario:
//!
//! * **updates/sec** and **tenants/sec** (distinct tenants touched per
//!   second) — the routing surface's sustained rate including LRU
//!   bookkeeping, lazy-log upkeep, eviction serialization, and restores;
//! * **eviction rate** — evictions per routed update, the price of bounding
//!   residency (restores and materializations stamped alongside);
//! * **resident memory** — the registry's own resident-bytes estimate at the
//!   end of the run, which the bounded-residency guarantee keeps independent
//!   of the tenant-space size.
//!
//! The records are appended to `BENCH_samplers.json` so the perf trajectory
//! tracks tenant-fleet routing next to the raw sketch update paths.

use std::collections::HashSet;
use std::time::Instant;

use lps_hash::SeedSequence;
use lps_registry::{MemorySpill, RegistryConfig, RegistryStats, ShardedRegistry, SketchRegistry};
use lps_sketch::SparseRecovery;
use lps_stream::{Update, Zipf};

use crate::report::{f1, int, Table};

/// One measured E15 scenario.
#[derive(Debug, Clone)]
pub struct RegistryRecord {
    /// Scenario identifier, e.g. `"registry-memspill"`.
    pub scenario: &'static str,
    /// Size of the tenant key space the Zipf traffic draws from.
    pub tenants: u64,
    /// Distinct tenants actually touched by the traffic.
    pub tenants_touched: u64,
    /// Updates routed.
    pub updates: u64,
    /// Wall-clock nanoseconds for the routing loop.
    pub elapsed_ns: u128,
    /// Routed updates per second.
    pub updates_per_sec: f64,
    /// Distinct tenants touched per second.
    pub tenants_per_sec: f64,
    /// Tenants serialized out of residency.
    pub evictions: u64,
    /// Tenants decoded back into residency.
    pub restores: u64,
    /// Sparse logs that crossed the density threshold.
    pub materializations: u64,
    /// Evictions per routed update.
    pub eviction_rate: f64,
    /// The configured residency cap.
    pub max_resident: usize,
    /// The registry's resident-bytes estimate after the run.
    pub resident_bytes: usize,
}

/// The residency cap every E15 scenario runs under — small relative to the
/// tenant space by design, so the traffic constantly overflows it.
pub const E15_MAX_RESIDENT: usize = 4096;

/// The Zipf exponent of the tenant-key distribution.
pub const E15_ZIPF_ALPHA: f64 = 1.05;

fn registry_config() -> RegistryConfig {
    RegistryConfig::new()
        .max_resident(E15_MAX_RESIDENT)
        .materialize_threshold(32)
        .spill_backlog(256)
}

/// The per-tenant structure E15 fleets are built from: exact 8-sparse
/// recovery (hash-compressed state, so the dense form is small and the
/// sparse→dense threshold actually matters).
fn tenant_proto(seed: u64) -> SparseRecovery {
    let mut seeds = SeedSequence::new(seed);
    SparseRecovery::new(1 << 20, 8, &mut seeds)
}

/// Pre-draw the Zipf tenant keys and per-update coordinates so sampling cost
/// stays out of the timed loop.
fn zipf_traffic(tenants: u64, updates: usize, master: u64) -> Vec<(u64, Update)> {
    let zipf = Zipf::new(tenants, E15_ZIPF_ALPHA);
    let mut seeds = SeedSequence::new(master);
    (0..updates)
        .map(|_| {
            let tenant = zipf.sample(&mut seeds);
            let update = Update::new(seeds.next_below(1 << 20), 1);
            (tenant, update)
        })
        .collect()
}

fn finish_record(
    scenario: &'static str,
    tenants: u64,
    traffic: &[(u64, Update)],
    elapsed_ns: u128,
    stats: &RegistryStats,
    resident_bytes: usize,
) -> RegistryRecord {
    let touched = traffic.iter().map(|&(t, _)| t).collect::<HashSet<_>>().len() as u64;
    let secs = elapsed_ns as f64 / 1e9;
    RegistryRecord {
        scenario,
        tenants,
        tenants_touched: touched,
        updates: traffic.len() as u64,
        elapsed_ns,
        updates_per_sec: traffic.len() as f64 / secs,
        tenants_per_sec: touched as f64 / secs,
        evictions: stats.evictions,
        restores: stats.restores,
        materializations: stats.materializations,
        eviction_rate: stats.evictions as f64 / traffic.len() as f64,
        max_resident: E15_MAX_RESIDENT,
        resident_bytes,
    }
}

fn run_single(scenario: &'static str, tenants: u64, traffic: &[(u64, Update)]) -> RegistryRecord {
    let mut reg = SketchRegistry::new(tenant_proto(0xE15), registry_config(), MemorySpill::new());
    let start = Instant::now();
    for &(tenant, update) in traffic {
        reg.route_blocking(tenant, std::slice::from_ref(&update)).expect("route");
    }
    reg.drain().expect("drain");
    let elapsed_ns = start.elapsed().as_nanos().max(1);
    assert!(reg.resident_count() <= E15_MAX_RESIDENT, "residency cap violated");
    finish_record(
        scenario,
        tenants,
        traffic,
        elapsed_ns,
        reg.stats(),
        reg.resident_bytes_estimate(),
    )
}

fn run_sharded(
    scenario: &'static str,
    tenants: u64,
    traffic: &[(u64, Update)],
    shards: usize,
) -> RegistryRecord {
    let proto = tenant_proto(0xE15);
    // Split the residency cap across the shards so the sharded scenario keeps
    // the same total footprint as the single registry — and keeps evicting.
    let config = registry_config().max_resident(E15_MAX_RESIDENT / shards);
    let mut reg = ShardedRegistry::new(&proto, shards, config, |_| MemorySpill::new());
    let start = Instant::now();
    for &(tenant, update) in traffic {
        reg.route_blocking(tenant, std::slice::from_ref(&update)).expect("route");
    }
    reg.drain().expect("drain");
    let elapsed_ns = start.elapsed().as_nanos().max(1);
    let stats = reg.stats();
    finish_record(scenario, tenants, traffic, elapsed_ns, &stats, reg.resident_bytes_estimate())
}

/// Run the E15 suite. Quick mode routes Zipf traffic over 10^5 tenants (CI
/// scale); full mode adds the 10^6-tenant configuration the tentpole
/// targets. Both stay far above [`E15_MAX_RESIDENT`], so every scenario
/// exercises eviction and restore, not just routing.
pub fn registry_suite(quick: bool) -> Vec<RegistryRecord> {
    let updates: usize = if quick { 60_000 } else { 600_000 };
    let mut out = Vec::new();

    let tenants: u64 = 100_000;
    let traffic = zipf_traffic(tenants, updates, 0x15A);
    out.push(run_single("registry-memspill", tenants, &traffic));
    out.push(run_sharded("registry-sharded4", tenants, &traffic, 4));

    if !quick {
        let tenants: u64 = 1_000_000;
        let traffic = zipf_traffic(tenants, updates, 0x15B);
        out.push(run_single("registry-memspill-1m", tenants, &traffic));
        out.push(run_sharded("registry-sharded4-1m", tenants, &traffic, 4));
    }
    out
}

/// Render the E15 records as an experiment table.
pub fn registry_table(records: &[RegistryRecord]) -> Table {
    let mut table = Table::new(
        &format!(
            "E15: multi-tenant registry under Zipf(α={E15_ZIPF_ALPHA}) tenant traffic \
             (max_resident = {E15_MAX_RESIDENT}; eviction_rate = evictions per routed update)"
        ),
        &[
            "scenario",
            "tenants",
            "touched",
            "updates",
            "updates_per_sec",
            "tenants_per_sec",
            "eviction_rate",
            "restores",
            "resident_KiB",
        ],
    );
    for r in records {
        table.row(&[
            r.scenario.to_string(),
            int(r.tenants),
            int(r.tenants_touched),
            int(r.updates),
            f1(r.updates_per_sec),
            f1(r.tenants_per_sec),
            format!("{:.4}", r.eviction_rate),
            int(r.restores),
            int((r.resident_bytes / 1024) as u64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_exercises_eviction_and_restore() {
        // a miniature run with the suite's own plumbing: traffic scaled down
        // so the test is cheap, but tenants >> max_resident still holds per
        // shard-level residency
        let traffic = zipf_traffic(50_000, 30_000, 0x7E57);
        let record = run_single("registry-memspill", 50_000, &traffic);
        assert_eq!(record.updates, 30_000);
        assert!(record.tenants_touched > 4096, "traffic must overflow residency");
        assert!(record.evictions > 0, "eviction must be exercised");
        assert!(record.restores > 0, "restore must be exercised");
        assert!(record.eviction_rate > 0.0 && record.eviction_rate < 1.0);
        assert!(record.resident_bytes > 0);
    }
}

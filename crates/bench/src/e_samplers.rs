//! Experiments E1–E4: Lp/L0 sampler distribution accuracy, estimate error,
//! and space scaling (Theorems 1 and 2 of the paper).

use lps_core::{AkoSampler, FisL0Sampler, L0Randomness, L0Sampler, LpSampler, PrecisionLpSampler};
use lps_hash::SeedSequence;
use lps_stream::{sparse_vector_stream, EmpiricalDistribution, SpaceUsage, TruthVector};

use crate::report::{f1, f3, int, Table};

/// E1 + E4: output distribution accuracy of the Figure 1 sampler and relative
/// error of its x_i estimates, across p and ε.
pub fn e1_sampler_accuracy(quick: bool) -> Table {
    let mut table = Table::new(
        "E1/E4: precision Lp sampler — distribution accuracy and estimate error",
        &[
            "p",
            "eps",
            "n",
            "trials",
            "success_rate",
            "tv_distance",
            "median_est_relerr",
            "p95_est_relerr",
        ],
    );
    let n: u64 = 256;
    let trials: u64 = if quick { 1_500 } else { 6_000 };
    let configs: &[(f64, f64)] =
        &[(0.5, 0.5), (0.5, 0.25), (1.0, 0.5), (1.0, 0.25), (1.5, 0.5), (1.5, 0.25)];
    for &(p, eps) in configs {
        let mut gen = SeedSequence::new(0xE1 + (p * 100.0) as u64);
        let stream = sparse_vector_stream(n, 40, 20, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let reference = truth.lp_distribution(p).unwrap();
        let mut empirical = EmpiricalDistribution::new(n);
        let mut rel_errors = Vec::new();
        for t in 0..trials {
            let mut s =
                SeedSequence::new(100_000 + t * 7 + (p * 1000.0) as u64 + (eps * 100.0) as u64);
            let mut sampler = PrecisionLpSampler::new(n, p, eps, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                empirical.record(sample.index);
                let x = truth.get(sample.index) as f64;
                if x != 0.0 {
                    rel_errors.push((sample.estimate - x).abs() / x.abs());
                }
            }
        }
        let success_rate = empirical.total() as f64 / trials as f64;
        let tv = empirical.total_variation(&reference);
        let summary = lps_stream::Summary::of(&rel_errors);
        table.row(&[
            f3(p),
            f3(eps),
            int(n),
            int(trials),
            f3(success_rate),
            f3(tv),
            f3(summary.median),
            f3(summary.p95),
        ]);
    }
    table
}

/// E2: space (bits, paper model) of the paper's sampler vs the AKO baseline,
/// as n grows — the log² n vs log³ n comparison of Theorem 1.
pub fn e2_sampler_space(_quick: bool) -> Table {
    let mut table = Table::new(
        "E2: sampler space in bits — paper (log^2 n) vs AKO baseline (log^3 n)",
        &["p", "eps", "log2(n)", "paper_bits", "ako_bits", "ratio"],
    );
    for &(p, eps) in &[(1.0, 0.25), (1.5, 0.25)] {
        for log_n in [10u32, 12, 14, 16, 18, 20] {
            let n = 1u64 << log_n;
            let mut s1 = SeedSequence::new(0xE2);
            let mut s2 = SeedSequence::new(0xE2);
            let ours = PrecisionLpSampler::new(n, p, eps, &mut s1);
            let ako = AkoSampler::new(n, p, eps, &mut s2);
            let ratio = ako.bits_used() as f64 / ours.bits_used() as f64;
            table.row(&[
                f3(p),
                f3(eps),
                int(log_n as u64),
                int(ours.bits_used()),
                int(ako.bits_used()),
                f1(ratio),
            ]);
        }
    }
    table
}

/// E3 + E3b: the zero-relative-error L0 sampler — uniformity, success rate,
/// space vs the FIS-style baseline, and Nisan-PRG vs explicit seeds.
pub fn e3_l0_sampler(quick: bool) -> Vec<Table> {
    vec![e3_l0_accuracy(quick), e3_l0_space()]
}

/// The statistical half of E3: uniformity and success rate.
pub fn e3_l0_accuracy(quick: bool) -> Table {
    let mut accuracy = Table::new(
        "E3: L0 sampler — uniformity over the support and success rate",
        &["randomness", "n", "support", "trials", "success_rate", "tv_from_uniform"],
    );
    let trials: u64 = if quick { 800 } else { 2_500 };
    for &(n, support) in &[(1u64 << 10, 8u64), (1u64 << 10, 200u64), (1u64 << 12, 64u64)] {
        for randomness in [L0Randomness::Seeded, L0Randomness::Nisan] {
            let mut gen = SeedSequence::new(0xE3 + support);
            let stream = sparse_vector_stream(n, support, 10, &mut gen);
            let truth = TruthVector::from_stream(&stream);
            let reference = truth.lp_distribution(0.0).unwrap();
            let mut empirical = EmpiricalDistribution::new(n);
            for t in 0..trials {
                let mut s = SeedSequence::new(500_000 + t * 3 + n + support);
                let mut sampler = L0Sampler::with_randomness(n, 0.2, randomness, &mut s);
                sampler.process_stream(&stream);
                if let Some(sample) = sampler.sample() {
                    empirical.record(sample.index);
                }
            }
            let label = match randomness {
                L0Randomness::Seeded => "seeded",
                L0Randomness::Nisan => "nisan",
            };
            accuracy.row(&[
                label.to_string(),
                int(n),
                int(support),
                int(trials),
                f3(empirical.total() as f64 / trials as f64),
                f3(empirical.total_variation(&reference)),
            ]);
        }
    }
    accuracy
}

/// The space half of E3: Theorem 2 vs the FIS-style baseline as n grows.
pub fn e3_l0_space() -> Table {
    let mut space = Table::new(
        "E3: L0 sampler space vs the FIS-style baseline (bits, paper model)",
        &["log2(n)", "theorem2_bits", "theorem2_rand_bits", "fis_bits", "fis/theorem2"],
    );
    for log_n in [10u32, 14, 18, 22, 26] {
        let n = 1u64 << log_n;
        let mut s1 = SeedSequence::new(1);
        let mut s2 = SeedSequence::new(1);
        let ours = L0Sampler::with_randomness(n, 0.25, L0Randomness::Nisan, &mut s1);
        let fis = FisL0Sampler::new(n, &mut s2);
        space.row(&[
            int(log_n as u64),
            int(ours.bits_used()),
            int(ours.space().randomness_bits),
            int(fis.bits_used()),
            f3(fis.bits_used() as f64 / ours.bits_used() as f64),
        ]);
    }
    space
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_table_has_expected_shape() {
        let t = e2_sampler_space(true);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn e3_space_table_builds() {
        // only the space half (the accuracy half is statistically heavy and is
        // exercised by the experiments binary)
        let t = e3_l0_space();
        assert_eq!(t.len(), 5);
    }
}

//! Experiment E17: field-kernel micro-benchmarks — scalar vs lane-parallel.
//!
//! The structure-level suites (E13/E14) measure whole update paths, where
//! hashing competes with memory traffic and counter updates. E17 isolates
//! the *field kernels* the lane-parallel layer replaced, so the artifact
//! records exactly how much the `lps_hash::simd` rewiring buys at the
//! arithmetic level:
//!
//! * `horner_k{2,4,16}` — k-wise polynomial hashing at the independence
//!   degrees the structures use (pairwise bucket/sign hashes, 4-wise AMS
//!   signs, high-k scaling-factor hashes);
//! * `pow_window` — windowed `r^index` fingerprint powers;
//! * `fingerprint_term` — the full per-update fingerprint contribution
//!   (`signed_field(δ) · r^index`) of sparse recovery / FIS-L0;
//! * `ams_polybank` — the rows×keys walk: all 128 AMS sign polynomials
//!   evaluated per key ([`lps_hash::simd::PolyBank`] vs a scalar loop).
//!
//! Each kernel is measured in `scalar` mode (the per-key path the update
//! loops used before the rewiring) and `lanes` mode (the batch kernels the
//! `process_batch` impls now call). Both modes produce bit-identical
//! outputs — checked here on every run, not assumed — so the ratio is pure
//! throughput. The records ride in `BENCH_samplers.json` next to the E13
//! throughput records (`structure`/`mode` keyed the same way), and two of
//! the ratios are stamped as (ungated) headline keys.

use std::time::Instant;

use lps_hash::field::horner;
use lps_hash::simd::{self, PolyBank};
use lps_hash::{Fp, KWiseHash, PowTable, SeedSequence};
use lps_sketch::{fingerprint_term, fingerprint_terms};

use crate::report::{f1, int, Table};
use crate::throughput::{speedup, ThroughputRecord};

/// Nominal dimension stamped into the kernel records (keys are drawn from
/// `[0, 2^20)`, matching the structure-level suites).
const KERNEL_DIMENSION: u64 = 1 << 20;

/// Measure `run` over `ops` logical kernel evaluations.
fn time_kernel(
    structure: &'static str,
    mode: &'static str,
    ops: u64,
    mut run: impl FnMut(),
) -> ThroughputRecord {
    let start = Instant::now();
    run();
    let elapsed_ns = start.elapsed().as_nanos().max(1);
    ThroughputRecord {
        structure,
        mode,
        dimension: KERNEL_DIMENSION,
        updates: ops,
        elapsed_ns,
        updates_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9),
    }
}

/// Deterministic keys in `[0, 2^20)` — the coordinate shape every structure
/// hashes.
fn kernel_keys(count: usize, master: u64) -> Vec<u64> {
    let mut seeds = SeedSequence::new(master);
    (0..count).map(|_| seeds.next_below(KERNEL_DIMENSION)).collect()
}

fn assert_identical(structure: &str, scalar: &[u64], lanes: &[u64]) {
    assert_eq!(scalar, lanes, "E17 {structure}: lane kernel diverged from scalar");
}

fn horner_pair(
    structure: &'static str,
    k: usize,
    keys: &[u64],
    passes: usize,
    out: &mut Vec<ThroughputRecord>,
) {
    let mut seeds = SeedSequence::new(0xE17 ^ k as u64);
    let hash = KWiseHash::new(k, &mut seeds);
    let coeffs: Vec<Fp> = hash.coefficients().to_vec();
    let ops = (keys.len() * passes) as u64;
    let mut scalar_out = vec![0u64; keys.len()];
    out.push(time_kernel(structure, "scalar", ops, || {
        for _ in 0..passes {
            for (o, &key) in scalar_out.iter_mut().zip(keys.iter()) {
                *o = horner(&coeffs, Fp::from_reduced(key)).value();
            }
            std::hint::black_box(&scalar_out);
        }
    }));
    let mut lanes_out = vec![0u64; keys.len()];
    out.push(time_kernel(structure, "lanes", ops, || {
        for _ in 0..passes {
            hash.hash_keys(keys, &mut lanes_out);
            std::hint::black_box(&lanes_out);
        }
    }));
    assert_identical(structure, &scalar_out, &lanes_out);
}

/// Run the E17 kernel suite. Quick mode shrinks the evaluation counts so CI
/// can afford it; both modes verify scalar/lane output equality inline.
pub fn kernel_suite(quick: bool) -> Vec<ThroughputRecord> {
    let keys = kernel_keys(if quick { 20_000 } else { 100_000 }, 0xE17);
    let passes = if quick { 5 } else { 20 };
    let mut out = Vec::new();

    horner_pair("horner_k2", 2, &keys, passes, &mut out);
    horner_pair("horner_k4", 4, &keys, passes, &mut out);
    horner_pair("horner_k16", 16, &keys, passes, &mut out);

    // windowed fingerprint powers r^index
    {
        let table = PowTable::new(Fp::new(0xF1A6_E521));
        let ops = (keys.len() * passes) as u64;
        let mut scalar_out = vec![0u64; keys.len()];
        out.push(time_kernel("pow_window", "scalar", ops, || {
            for _ in 0..passes {
                for (o, &key) in scalar_out.iter_mut().zip(keys.iter()) {
                    *o = table.pow(key).value();
                }
                std::hint::black_box(&scalar_out);
            }
        }));
        let mut lanes_out = vec![0u64; keys.len()];
        out.push(time_kernel("pow_window", "lanes", ops, || {
            for _ in 0..passes {
                simd::pow_many(&table, &keys, &mut lanes_out);
                std::hint::black_box(&lanes_out);
            }
        }));
        assert_identical("pow_window", &scalar_out, &lanes_out);
    }

    // the full fingerprint contribution signed_field(δ)·r^index
    {
        let table = PowTable::new(Fp::new(0x005A_1E77));
        let entries: Vec<(u64, i64)> = {
            let mut seeds = SeedSequence::new(0xF17);
            keys.iter()
                .map(|&i| (i, (seeds.next_below(19) as i64) - 9))
                .map(|(i, d)| (i, if d == 0 { 1 } else { d }))
                .collect()
        };
        let ops = (entries.len() * passes) as u64;
        let mut scalar_out: Vec<Fp> = Vec::new();
        out.push(time_kernel("fingerprint_term", "scalar", ops, || {
            for _ in 0..passes {
                scalar_out = entries.iter().map(|&(i, d)| fingerprint_term(i, d, &table)).collect();
                std::hint::black_box(&scalar_out);
            }
        }));
        let mut lanes_out: Vec<Fp> = Vec::new();
        out.push(time_kernel("fingerprint_term", "lanes", ops, || {
            for _ in 0..passes {
                lanes_out = fingerprint_terms(&entries, &table);
                std::hint::black_box(&lanes_out);
            }
        }));
        assert_eq!(scalar_out, lanes_out, "E17 fingerprint_term: lane kernel diverged");
    }

    // the AMS rows×keys walk: 128 sign polynomials per key
    {
        let mut seeds = SeedSequence::new(0xA5);
        let polys: Vec<Vec<Fp>> =
            (0..128).map(|_| KWiseHash::new(4, &mut seeds).coefficients().to_vec()).collect();
        let bank = PolyBank::new(polys.iter().map(|p| p.as_slice()));
        // the per-key cost is 128 polynomial evaluations, so fewer keys
        let bank_keys = &keys[..keys.len() / 10];
        let ops = (bank_keys.len() * passes) as u64;
        let mut scalar_out = vec![0u64; polys.len()];
        out.push(time_kernel("ams_polybank", "scalar", ops, || {
            for _ in 0..passes {
                for &key in bank_keys {
                    for (o, poly) in scalar_out.iter_mut().zip(polys.iter()) {
                        *o = horner(poly, Fp::from_reduced(key)).value();
                    }
                    std::hint::black_box(&scalar_out);
                }
            }
        }));
        let mut lanes_out = vec![0u64; polys.len()];
        out.push(time_kernel("ams_polybank", "lanes", ops, || {
            for _ in 0..passes {
                for &key in bank_keys {
                    bank.eval_key(key, &mut lanes_out);
                    std::hint::black_box(&lanes_out);
                }
            }
        }));
        assert_identical("ams_polybank", &scalar_out, &lanes_out);
    }

    out
}

/// Render the E17 records: one row per (kernel, mode) with the lane speedup.
pub fn kernel_table(records: &[ThroughputRecord]) -> Table {
    let backend = if cfg!(feature = "simd") { "avx2-multiversioned" } else { "portable-lanes" };
    let mut table = Table::new(
        &format!(
            "E17: field-kernel throughput, scalar vs lane-parallel \
             (evals/sec; simd backend: {backend})"
        ),
        &["kernel", "mode", "evals", "evals_per_sec", "lanes_vs_scalar"],
    );
    for r in records {
        let ratio = speedup(records, r.structure, "lanes", "scalar").unwrap_or(1.0);
        table.row(&[
            r.structure.to_string(),
            r.mode.to_string(),
            int(r.updates),
            f1(r.updates_per_sec),
            format!("{ratio:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_suite_measures_every_kernel_in_both_modes() {
        let records = kernel_suite(true);
        let kernels = [
            "horner_k2",
            "horner_k4",
            "horner_k16",
            "pow_window",
            "fingerprint_term",
            "ams_polybank",
        ];
        assert_eq!(records.len(), kernels.len() * 2);
        for kernel in kernels {
            for mode in ["scalar", "lanes"] {
                assert!(
                    records.iter().any(|r| r.structure == kernel && r.mode == mode),
                    "missing E17 record {kernel}/{mode}"
                );
            }
            assert!(
                speedup(&records, kernel, "lanes", "scalar").is_some(),
                "no lane ratio for {kernel}"
            );
        }
        let table = kernel_table(&records).render();
        assert!(table.contains("E17"));
    }
}

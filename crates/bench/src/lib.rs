//! # lps-bench
//!
//! The experiment harness of the reproduction: every experiment listed in
//! EXPERIMENTS.md (E1–E11) has a function here that regenerates its table,
//! and the `experiments` binary runs them (`cargo run --release -p lps-bench
//! --bin experiments -- all`). Criterion micro-benchmarks for update
//! throughput (E12) live under `benches/`, and the wall-clock throughput
//! suites behind `BENCH_samplers.json` — single-thread E13, the sharded
//! ingestion engine scaling E14, and the multi-tenant registry suite E15
//! ([`e_registry`]) — live in [`throughput`] and [`e_registry`]
//! (`experiments -- bench --json`), together with the headline-ratio
//! regression gate CI runs via `experiments -- bench --check <baseline>`.
//! The [`checkpoint`] module backs `experiments -- checkpoint`, the
//! cross-process checkpoint → shard files → merge → digest-compare pipeline,
//! and the [`crashtest`] module backs `experiments -- crashtest`, the
//! kill-a-child-mid-spill crash-recovery harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod crashtest;
pub mod e_duplicates;
pub mod e_heavy;
pub mod e_lower;
pub mod e_registry;
pub mod e_samplers;
pub mod kernels;
pub mod report;
pub mod service_loopback;
pub mod throughput;
pub mod workload_cli;

pub use checkpoint::{
    checkpoint_merge, checkpoint_write, render_outcomes, CheckpointOutcome, CHECKPOINT_STRUCTURES,
};
pub use crashtest::{crashtest_child, crashtest_parent, CrashOutcome};
pub use e_duplicates::{e5_duplicates, e6_duplicates_short, e7_duplicates_long};
pub use e_heavy::e8_heavy_hitters;
pub use e_lower::{e10_reductions, e11_hh_reduction, e9_ur_protocol};
pub use e_registry::{
    registry_suite, registry_table, RegistryRecord, E15_MAX_RESIDENT, E15_ZIPF_ALPHA,
};
pub use e_samplers::{e1_sampler_accuracy, e2_sampler_space, e3_l0_sampler};
pub use kernels::{kernel_suite, kernel_table};
pub use report::Table;
pub use service_loopback::{
    feed_main, serve_main, servetest_main, service_suite, service_table, SERVICE_DIM, SERVICE_SEED,
};
pub use throughput::{
    check_headline_regression, chosen_plans, engine_scaling_suite, engine_scaling_table,
    headline_ratios, parse_headline, parse_mode, parse_runner_class, seed_baseline_advice,
    strategy_comparison_suite, strategy_comparison_table, throughput_suite, throughput_table,
    to_json, BenchMeta, ThroughputRecord, GATE_TOLERANCE, SEED_RUNNER_CLASS, STRATEGY_SHARDS,
};
pub use workload_cli::workload_main;

/// Run every experiment and return the rendered tables in order.
pub fn run_all(quick: bool) -> Vec<String> {
    let mut out = Vec::new();
    out.push(e1_sampler_accuracy(quick).render());
    out.push(e2_sampler_space(quick).render());
    for t in e3_l0_sampler(quick) {
        out.push(t.render());
    }
    out.push(e5_duplicates(quick).render());
    out.push(e6_duplicates_short(quick).render());
    out.push(e7_duplicates_long(quick).render());
    out.push(e8_heavy_hitters(quick).render());
    out.push(e9_ur_protocol(quick).render());
    for t in e10_reductions(quick) {
        out.push(t.render());
    }
    out.push(e11_hh_reduction(quick).render());
    out
}

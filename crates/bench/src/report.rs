//! Minimal plain-text reporting for the experiment harness: aligned tables
//! that are pasted verbatim into EXPERIMENTS.md.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format an integer-valued quantity.
pub fn int(v: u64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(&[int(1024), f3(0.12345)]);
        t.row(&[int(8), f3(7.0)]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("0.123"));
        assert!(s.contains("7.000"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[int(1)]);
    }
}

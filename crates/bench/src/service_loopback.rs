//! The two-process service loopback harness (`experiments -- serve`,
//! `-- feed`, `-- servetest`) and the in-process E16 throughput suite.
//!
//! `servetest` is the CI shape: the parent re-spawns this binary as a
//! `serve` child (the `crashtest` self-respawn pattern), reads the bound
//! address off the child's stdout, then drives a real TCP feed against it —
//! streaming update batches, uploading a complete shard-checkpoint set,
//! firing live queries mid-ingestion, provoking a typed `PlanMismatch`
//! rejection that must not kill the connection, and finally comparing every
//! catalog digest (and the fed tenants' digests) against sequential local
//! references. Exact structures merge bit-identically, so the comparison is
//! `==` on `state_digest`, not a tolerance — any divergence exits non-zero.

use std::io::BufRead;
use std::process::{Command, Stdio};

use lps_engine::{EngineBuilder, KeyRange, ShardIngest};
use lps_service::{
    CatalogPrototypes, ErrorCode, RunningServer, ServiceClient, ServiceConfig, ServiceError,
};
use lps_sketch::persist::tags;
use lps_sketch::Mergeable;
use lps_stream::Update;

use crate::throughput::workload;

/// Catalog dimension of the harness service (`log2 n = 16`).
pub const SERVICE_DIM: u64 = 1 << 16;
/// Master seed both sides build [`CatalogPrototypes`] from.
pub const SERVICE_SEED: u64 = 0x5EBF_1CE5;
/// Master seed of the deterministic feed workloads.
const FEED_SEED: u64 = 0xFEED_5EED;
/// Updates per `UpdateBatch` frame.
const BATCH: usize = 1_000;
/// Tenants the feed spreads registry traffic over.
const TENANTS: u64 = 8;

fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| panic!("{flag} needs a value")))
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    value_of(args, flag)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("{flag} needs a number")))
        .unwrap_or(default)
}

/// `experiments -- serve [--dim N] [--seed S] [--shards K] [--publish P]
/// [--token T]`: bind a loopback TCP service, announce the address on
/// stdout, and serve until a client sends `Shutdown`. With `--token` the
/// server requires that authentication token in every `Hello`. Returns the
/// process exit code.
pub fn serve_main(args: &[String]) -> i32 {
    let dim = parsed(args, "--dim", SERVICE_DIM);
    let seed = parsed(args, "--seed", SERVICE_SEED);
    let shards = parsed(args, "--shards", 2usize);
    let publish = parsed(args, "--publish", 25_000u64);
    let mut config = ServiceConfig::new(dim, seed).shards(shards).publish_interval(publish);
    if let Some(token) = value_of(args, "--token") {
        config = config.auth_token(token);
    }
    let server = match RunningServer::bind_tcp(("127.0.0.1", 0), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return 1;
        }
    };
    let addr = server.local_addr().expect("tcp server has an address");
    // the parent parses this exact line to find us
    println!("listening on {addr}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    let accepted = server.join();
    println!("serve: accepted {accepted} updates, shutting down");
    0
}

/// `experiments -- feed --addr A [--updates N]`: drive the full feed
/// against an already-running server. Returns the process exit code.
pub fn feed_main(args: &[String]) -> i32 {
    let Some(addr) = value_of(args, "--addr") else {
        eprintln!("feed requires --addr <host:port>");
        return 2;
    };
    let updates = parsed(args, "--updates", 120_000usize);
    let dim = parsed(args, "--dim", SERVICE_DIM);
    let seed = parsed(args, "--seed", SERVICE_SEED);
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let token = value_of(args, "--token");
    match run_feed(&addr, updates, dim, seed, shutdown, token.as_deref()) {
        Ok(report) => {
            print!("{report}");
            println!("service loopback: all digests match sequential ingestion");
            0
        }
        Err(e) => {
            eprintln!("service loopback FAILED: {e}");
            1
        }
    }
}

/// `experiments -- servetest [--updates N]`: spawn a `serve` child of this
/// same binary, feed it over real TCP, and tear both down. Returns the
/// process exit code.
pub fn servetest_main(args: &[String]) -> i32 {
    let updates = parsed(args, "--updates", 120_000usize);
    let exe = std::env::current_exe().expect("current_exe");
    // The child requires an auth token so the two-process harness also
    // exercises the authenticated handshake end to end.
    let token = "lps-servetest-token";
    let mut child = match Command::new(&exe)
        .args(["serve", "--dim", &SERVICE_DIM.to_string(), "--seed", &SERVICE_SEED.to_string()])
        .args(["--token", token])
        .stdout(Stdio::piped())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("servetest: failed to spawn serve child: {e}");
            return 1;
        }
    };
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = match lines.next() {
        Some(Ok(line)) if line.starts_with("listening on ") => {
            line.trim_start_matches("listening on ").to_string()
        }
        other => {
            eprintln!("servetest: child did not announce an address: {other:?}");
            let _ = child.kill();
            return 1;
        }
    };
    println!("servetest: serve child {} is listening on {addr}", child.id());

    let feed_rc = match run_feed(&addr, updates, SERVICE_DIM, SERVICE_SEED, true, Some(token)) {
        Ok(report) => {
            print!("{report}");
            println!("service loopback: all digests match sequential ingestion");
            0
        }
        Err(e) => {
            eprintln!("service loopback FAILED: {e}");
            1
        }
    };
    // drain the child's remaining stdout so it can exit, then reap it;
    // a read error ends the drain rather than looping on Err forever
    for line in lines.map_while(Result::ok) {
        println!("servetest(child): {line}");
    }
    let status = child.wait().expect("wait for serve child");
    if !status.success() {
        eprintln!("servetest: serve child exited with {status}");
        return 1;
    }
    feed_rc
}

/// The feed proper, shared by `feed` and `servetest`. Returns a printable
/// report on success, the first divergence on failure.
fn run_feed(
    addr: &str,
    updates: usize,
    dim: u64,
    seed: u64,
    shutdown: bool,
    token: Option<&str>,
) -> Result<String, String> {
    let fail = |context: &str, e: ServiceError| format!("{context}: {e}");
    let mut report = String::new();

    // Deterministic workload split: 70% streamed into the shared catalog,
    // 20% checkpoint-uploaded (count-min), 10% spread over registry tenants.
    let streamed_n = updates * 7 / 10;
    let uploaded_n = updates * 2 / 10;
    let tenant_n = updates - streamed_n - uploaded_n;
    let streamed = workload(dim, streamed_n, FEED_SEED);
    let uploaded = workload(dim, uploaded_n, FEED_SEED ^ 0xA5A5);
    let tenant_stream = workload(dim, tenant_n, FEED_SEED ^ 0x5A5A);

    let connect = |context: &str| match token {
        Some(t) => {
            ServiceClient::connect_tcp_with_token(addr, t).map_err(|e| format!("{context}: {e}"))
        }
        None => ServiceClient::connect_tcp(addr).map_err(|e| format!("{context}: {e}")),
    };
    let mut client = connect("connect")?;

    // Stream the catalog load with live queries interleaved: every eighth
    // batch reads the latest published snapshot while ingestion continues.
    let mut live_queries = 0u64;
    for (i, batch) in streamed.chunks(BATCH).enumerate() {
        client.send_updates(0, batch).map_err(|e| fail("update batch", e))?;
        if i % 8 == 7 {
            client.sample(tags::L0_SAMPLER).map_err(|e| fail("live sample", e))?;
            client
                .point_estimate(tags::COUNT_MIN, batch[0].index)
                .map_err(|e| fail("live estimate", e))?;
            live_queries += 2;
        }
    }
    report.push_str(&format!(
        "feed: streamed {} updates in {}-update batches, {} live queries mid-ingestion\n",
        streamed.len(),
        BATCH,
        live_queries
    ));

    // Shard-checkpoint upload: a 4-shard round-robin session over the
    // identically seeded count-min prototype; the set completes on the
    // fourth upload and merges server-side.
    let protos = CatalogPrototypes::standard(dim, seed);
    let mut session = EngineBuilder::new(&protos.count_min).shards(4).session();
    session.ingest_blocking(&uploaded);
    let buffers = session.checkpoint().map_err(|e| format!("local checkpoint: {e}"))?;
    let shard_count = buffers.len();
    for buffer in buffers {
        client.upload_checkpoint(buffer).map_err(|e| fail("checkpoint upload", e))?;
    }
    report.push_str(&format!(
        "feed: uploaded a complete {}-shard checkpoint set ({} updates) for count_min\n",
        shard_count,
        uploaded.len()
    ));

    // A key-range checkpoint must be rejected as a typed PlanMismatch
    // error frame — and the connection must survive it.
    let mut wrong = EngineBuilder::new(&protos.count_min).plan(KeyRange::new(dim, 2)).session();
    wrong.ingest_blocking(&uploaded[..64.min(uploaded.len())]);
    let wrong_buffers = wrong.checkpoint().map_err(|e| format!("key-range checkpoint: {e}"))?;
    match client.upload_checkpoint(wrong_buffers[0].clone()) {
        Err(ServiceError::Remote { code: ErrorCode::PlanMismatch, .. }) => {}
        Ok(_) => return Err("key-range upload was accepted; expected PlanMismatch".into()),
        Err(other) => return Err(format!("key-range upload: expected PlanMismatch, got {other}")),
    }
    client.digest(tags::AMS).map_err(|e| fail("post-rejection query", e))?;
    report.push_str("feed: key-range upload rejected as PlanMismatch, connection survived\n");

    // Registry traffic: round-robin the tenant stream over TENANTS ids.
    let mut per_tenant: Vec<Vec<Update>> = (0..TENANTS).map(|_| Vec::new()).collect();
    for (i, u) in tenant_stream.iter().enumerate() {
        per_tenant[i % TENANTS as usize].push(*u);
    }
    for (t, stream) in per_tenant.iter().enumerate() {
        for batch in stream.chunks(BATCH) {
            client.send_updates(1 + t as u64, batch).map_err(|e| fail("tenant batch", e))?;
        }
    }
    report.push_str(&format!(
        "feed: routed {} updates across {} registry tenants\n",
        tenant_stream.len(),
        TENANTS
    ));

    // Sequential references: each catalog structure ingests the streamed
    // load; count-min additionally absorbs the uploaded side stream.
    let mut reference = CatalogPrototypes::standard(dim, seed);
    reference.sparse_recovery.ingest_batch(&streamed);
    reference.l0_sampler.ingest_batch(&streamed);
    reference.fis_l0.ingest_batch(&streamed);
    reference.count_sketch.ingest_batch(&streamed);
    reference.count_min.ingest_batch(&streamed);
    reference.count_min.ingest_batch(&uploaded);
    reference.count_median.ingest_batch(&streamed);
    reference.ams.ingest_batch(&streamed);

    let expected = [
        ("sparse_recovery", tags::SPARSE_RECOVERY, reference.sparse_recovery.state_digest()),
        ("l0_sampler", tags::L0_SAMPLER, reference.l0_sampler.state_digest()),
        ("fis_l0", tags::FIS_L0_SAMPLER, reference.fis_l0.state_digest()),
        ("count_sketch", tags::COUNT_SKETCH, reference.count_sketch.state_digest()),
        ("count_min", tags::COUNT_MIN, reference.count_min.state_digest()),
        ("count_median", tags::COUNT_MEDIAN, reference.count_median.state_digest()),
        ("ams", tags::AMS, reference.ams.state_digest()),
    ];
    for (name, tag, want) in expected {
        let got = client.digest(tag).map_err(|e| fail("digest query", e))?;
        if got != want {
            return Err(format!(
                "{name}: service digest {got:#018x} != sequential reference {want:#018x}"
            ));
        }
        report.push_str(&format!("feed: {name} digest {got:#018x} matches sequential\n"));
    }

    for (t, stream) in per_tenant.iter().enumerate() {
        let mut tenant_ref = protos.tenant_proto.clone();
        tenant_ref.ingest_batch(stream);
        let got = client.tenant_digest(1 + t as u64).map_err(|e| fail("tenant digest", e))?;
        if got != Some(tenant_ref.state_digest()) {
            return Err(format!(
                "tenant {}: service digest {got:?} != sequential reference",
                1 + t as u64
            ));
        }
    }
    report.push_str(&format!("feed: {TENANTS} tenant digests match sequential\n"));

    if shutdown {
        let accepted = client.shutdown().map_err(|e| fail("shutdown", e))?;
        let fed = (streamed.len() + tenant_stream.len()) as u64;
        if accepted != fed {
            return Err(format!(
                "server accepted {accepted} updates, client fed {fed} (uploads excluded)"
            ));
        }
        report.push_str(&format!("feed: clean shutdown after {accepted} accepted updates\n"));
    }
    Ok(report)
}

/// E16: in-process loopback throughput — the same updates through a real
/// TCP socket + framing + ingest pipeline vs. directly into an engine
/// session, so the JSON artifact tracks what the service layer costs.
pub fn service_suite(quick: bool) -> Vec<crate::ThroughputRecord> {
    use std::time::Instant;

    let n = SERVICE_DIM;
    let count: usize = if quick { 60_000 } else { 300_000 };
    let batch = workload(n, count, 0xE16_BEEF);
    let mut out = Vec::new();

    // through the socket
    let config = ServiceConfig::new(n, SERVICE_SEED).shards(2).publish_interval(u64::MAX);
    let server = RunningServer::bind_tcp(("127.0.0.1", 0), config).expect("bind");
    let addr = server.local_addr().expect("address");
    let mut client = ServiceClient::connect_tcp(addr).expect("connect");
    let start = Instant::now();
    for chunk in batch.chunks(BATCH) {
        client.send_updates(0, chunk).expect("batch accepted");
    }
    let elapsed_ns = start.elapsed().as_nanos().max(1);
    client.shutdown().expect("shutdown");
    server.join();
    out.push(crate::ThroughputRecord {
        structure: "service_loopback",
        mode: "socket",
        dimension: n,
        updates: batch.len() as u64,
        elapsed_ns,
        updates_per_sec: batch.len() as f64 / (elapsed_ns as f64 / 1e9),
    });

    // the same load straight into one engine session (count-min), as the
    // no-protocol baseline
    let proto = CatalogPrototypes::standard(n, SERVICE_SEED).count_min;
    let mut session = EngineBuilder::new(&proto).shards(2).session();
    let start = Instant::now();
    for chunk in batch.chunks(BATCH) {
        session.ingest_blocking(chunk);
    }
    let sealed = session.seal().expect("seal");
    let elapsed_ns = start.elapsed().as_nanos().max(1);
    std::hint::black_box(sealed.state_digest());
    out.push(crate::ThroughputRecord {
        structure: "service_loopback",
        mode: "engine_direct",
        dimension: n,
        updates: batch.len() as u64,
        elapsed_ns,
        updates_per_sec: batch.len() as f64 / (elapsed_ns as f64 / 1e9),
    });
    out
}

/// Render the E16 records.
pub fn service_table(records: &[crate::ThroughputRecord]) -> crate::Table {
    let mut table = crate::Table::new(
        "E16: streaming service loopback (updates/sec; engine_direct = no-protocol baseline)",
        &["structure", "mode", "log2(n)", "updates", "updates_per_sec"],
    );
    for r in records {
        table.row(&[
            r.structure.to_string(),
            r.mode.to_string(),
            crate::report::int((r.dimension as f64).log2() as u64),
            crate::report::int(r.updates),
            crate::report::f1(r.updates_per_sec),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-process E16 path end to end, at a size CI can afford.
    #[test]
    fn service_suite_produces_both_modes() {
        let records = {
            // shrink below even quick mode for the unit test
            let n = 1 << 10;
            let batch = workload(n, 4_000, 0xE16);
            let config = ServiceConfig::new(n, SERVICE_SEED).publish_interval(u64::MAX);
            let server = RunningServer::bind_tcp(("127.0.0.1", 0), config).expect("bind");
            let mut client =
                ServiceClient::connect_tcp(server.local_addr().unwrap()).expect("connect");
            for chunk in batch.chunks(500) {
                client.send_updates(0, chunk).expect("accepted");
            }
            let accepted = client.shutdown().expect("shutdown");
            assert_eq!(accepted, batch.len() as u64);
            server.join()
        };
        assert_eq!(records, 4_000);
    }
}

//! Update-path throughput benchmarks (Experiments E13 and E14) and the
//! machine-readable `BENCH_samplers.json` writer that seeds the workspace's
//! performance trajectory.
//!
//! For every structure with a batched ingestion path this module measures
//! updates/second in up to three modes over the same pre-generated update
//! batch:
//!
//! * `reference` — the pre-optimization update path (fingerprint power
//!   `r^index` recomputed per cell by square-and-multiply), retained on the
//!   structures that had one so each PR's speedup is measured against a
//!   faithful baseline rather than a guess;
//! * `sequential` — one `process_update` / `update` call per stream update,
//!   using the hoisted fingerprint terms and power tables;
//! * `batched` — `process_batch` over [`lps_stream::DEFAULT_BATCH_SIZE`]
//!   chunks (coalescing, cached hash evaluations, row-major cell walks).
//!
//! Experiment E14 ([`engine_scaling_suite`]) adds `shards-1/2/4/8` modes:
//! the same workload pushed through the `lps-engine` sharded ingestion
//! pipeline, so the artifact tracks multi-core scaling next to the
//! single-thread numbers. Shard speedups require physical cores; the JSON is
//! stamped with `host_cpus` (and the git commit) so the trajectory across
//! PRs stays interpretable.
//!
//! `cargo run --release -p lps-bench --bin experiments -- bench --json`
//! renders the tables and writes `BENCH_samplers.json`; CI runs the quick
//! variant so every PR leaves a machine-readable perf datapoint, then
//! re-reads the committed baseline with `--check` and fails on a >30%
//! headline regression ([`check_headline_regression`]).

use std::time::Instant;

use lps_core::{AkoSampler, FisL0Sampler, L0Sampler, LpSampler, PrecisionLpSampler};
use lps_engine::{parallel_ingest, partitioned_ingest, KeyRange, RoundRobin, ShardIngest};
use lps_hash::SeedSequence;
use lps_heavy::CountSketchHeavyHitters;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, PStableSketch,
    SparseRecovery,
};
use lps_stream::{Update, DEFAULT_BATCH_SIZE};

use crate::report::{f1, int, Table};

/// One measured (structure, mode) data point.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Structure identifier, e.g. `"sparse_recovery"`.
    pub structure: &'static str,
    /// `"reference"`, `"sequential"` or `"batched"`.
    pub mode: &'static str,
    /// Dimension `n` of the underlying vector.
    pub dimension: u64,
    /// Number of stream updates processed.
    pub updates: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub elapsed_ns: u128,
    /// Updates per second.
    pub updates_per_sec: f64,
}

fn time_updates(
    structure: &'static str,
    mode: &'static str,
    dimension: u64,
    batch: &[Update],
    mut run: impl FnMut(&[Update]),
) -> ThroughputRecord {
    let start = Instant::now();
    run(batch);
    let elapsed = start.elapsed();
    let elapsed_ns = elapsed.as_nanos().max(1);
    ThroughputRecord {
        structure,
        mode,
        dimension,
        updates: batch.len() as u64,
        elapsed_ns,
        updates_per_sec: batch.len() as f64 / (elapsed_ns as f64 / 1e9),
    }
}

/// A deterministic mixed insert/delete workload over `[0, n)`.
pub fn workload(n: u64, updates: usize, master: u64) -> Vec<Update> {
    let mut seeds = SeedSequence::new(master);
    (0..updates)
        .map(|_| {
            let index = seeds.next_below(n);
            let delta = (seeds.next_below(9) as i64) - 4;
            Update::new(index, if delta == 0 { 1 } else { delta })
        })
        .collect()
}

fn chunked(s: &mut impl LpSampler, batch: &[Update]) {
    for chunk in batch.chunks(DEFAULT_BATCH_SIZE) {
        s.process_batch(chunk);
    }
}

/// Run the full throughput suite. Quick mode shrinks the workload so CI can
/// afford it; full mode measures the headline `n = 2^20`, `10^6`-update
/// configuration the perf trajectory tracks.
pub fn throughput_suite(quick: bool) -> Vec<ThroughputRecord> {
    let n: u64 = 1 << 20;
    let heavy_updates: usize = if quick { 100_000 } else { 1_000_000 };
    let light_updates: usize = if quick { 20_000 } else { 200_000 };
    let batch = workload(n, heavy_updates, 0xBE7C);
    let light = &batch[..light_updates];
    let mut out = Vec::new();

    // --- sparse recovery (Lemma 5), the hottest kernel in the workspace ---
    {
        let mut s = SeedSequence::new(1);
        let proto = SparseRecovery::new(n, 8, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("sparse_recovery", "reference", n, &batch, |b| {
            for u in b {
                a.update_reference(u.index, u.delta);
            }
        }));
        let mut b_ = proto.clone();
        out.push(time_updates("sparse_recovery", "sequential", n, &batch, |b| {
            for u in b {
                b_.update(u.index, u.delta);
            }
        }));
        let mut c = proto;
        out.push(time_updates("sparse_recovery", "batched", n, &batch, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                c.process_batch(chunk);
            }
        }));
    }

    // --- the Theorem 2 L0 sampler ---
    {
        let mut s = SeedSequence::new(2);
        let proto = L0Sampler::new(n, 0.25, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("l0_sampler", "reference", n, &batch, |b| {
            for u in b {
                a.process_update_reference(*u);
            }
        }));
        let mut b_ = proto.clone();
        out.push(time_updates("l0_sampler", "sequential", n, &batch, |b| {
            for u in b {
                b_.process_update(*u);
            }
        }));
        let mut c = proto;
        out.push(time_updates("l0_sampler", "batched", n, &batch, |b| chunked(&mut c, b)));
    }

    // --- FIS-style L0 baseline (shared fingerprint base across all slots) ---
    {
        let mut s = SeedSequence::new(3);
        let proto = FisL0Sampler::new(n, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("fis_l0", "sequential", n, light, |b| {
            for u in b {
                a.process_update(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("fis_l0", "batched", n, light, |b| chunked(&mut b_, b)));
    }

    // --- precision Lp sampler and the AKO baseline ---
    {
        let mut s = SeedSequence::new(4);
        let proto = PrecisionLpSampler::new(n, 1.0, 0.25, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("precision_lp", "sequential", n, light, |b| {
            for u in b {
                a.process_update(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("precision_lp", "batched", n, light, |b| chunked(&mut b_, b)));
    }
    {
        let mut s = SeedSequence::new(5);
        let proto = AkoSampler::new(n, 1.0, 0.25, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("ako_sampler", "sequential", n, light, |b| {
            for u in b {
                a.process_update(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("ako_sampler", "batched", n, light, |b| chunked(&mut b_, b)));
    }

    // --- the plain sketches ---
    {
        let mut s = SeedSequence::new(6);
        let proto = CountSketch::with_default_rows(n, 16, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("count_sketch", "sequential", n, &batch, |b| {
            for u in b {
                a.update_int(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("count_sketch", "batched", n, &batch, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }
    {
        let mut s = SeedSequence::new(7);
        let proto = CountMinSketch::new(n, 1024, 7, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("count_min", "sequential", n, &batch, |b| {
            for u in b {
                a.update(u.index, u.delta);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("count_min", "batched", n, &batch, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }
    {
        let mut s = SeedSequence::new(8);
        let proto = AmsSketch::with_default_shape(n, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("ams_sketch", "sequential", n, light, |b| {
            for u in b {
                a.update_int(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("ams_sketch", "batched", n, light, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }
    {
        let mut s = SeedSequence::new(9);
        let proto = PStableSketch::with_default_rows(n, 1.0, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("pstable_sketch", "sequential", n, light, |b| {
            for u in b {
                a.update_int(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("pstable_sketch", "batched", n, light, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }

    // --- a composite driver: count-sketch heavy hitters ---
    {
        let mut s = SeedSequence::new(10);
        let proto = CountSketchHeavyHitters::new(n, 1.0, 0.125, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("cs_heavy_hitters", "sequential", n, light, |b| {
            for u in b {
                a.update(u.index, u.delta);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("cs_heavy_hitters", "batched", n, light, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }

    out
}

/// The shard counts Experiment E14 sweeps.
pub const ENGINE_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn shard_mode(shards: usize) -> &'static str {
    match shards {
        1 => "shards-1",
        2 => "shards-2",
        4 => "shards-4",
        8 => "shards-8",
        other => panic!("unsupported shard count {other} (extend ENGINE_SHARD_COUNTS)"),
    }
}

/// Experiment E14: multi-core scaling of the `lps-engine` sharded ingestion
/// pipeline for the two structures whose per-update work dominates the
/// engine's distribution overhead — sparse recovery and the Theorem 2 L0
/// sampler. Each configuration pushes the same workload through
/// [`parallel_ingest`] at 1/2/4/8 shards; `shards-1` is the engine's own
/// single-worker baseline, so the ratios isolate thread scaling from engine
/// overhead. Speedup requires physical cores (see the `host_cpus` stamp in
/// the JSON document).
pub fn engine_scaling_suite(quick: bool) -> Vec<ThroughputRecord> {
    let n: u64 = 1 << 20;
    let heavy_updates: usize = if quick { 100_000 } else { 1_000_000 };
    let batch = workload(n, heavy_updates, 0xE14);
    let mut out = Vec::new();

    {
        let mut s = SeedSequence::new(14);
        let proto = SparseRecovery::new(n, 8, &mut s);
        for shards in ENGINE_SHARD_COUNTS {
            out.push(time_updates("sparse_recovery", shard_mode(shards), n, &batch, |b| {
                let merged = parallel_ingest(&proto, b, shards);
                std::hint::black_box(&merged);
            }));
        }
    }
    {
        let mut s = SeedSequence::new(15);
        let proto = L0Sampler::new(n, 0.25, &mut s);
        for shards in ENGINE_SHARD_COUNTS {
            out.push(time_updates("l0_sampler", shard_mode(shards), n, &batch, |b| {
                let merged = parallel_ingest(&proto, b, shards);
                std::hint::black_box(&merged);
            }));
        }
    }
    out
}

/// The fixed shard count the E14 strategy-comparison sweep measures at
/// (matches the headline-scaling shard count).
pub const STRATEGY_SHARDS: usize = 4;

/// Mode name of a strategy-comparison record.
fn strategy_mode(strategy: &str) -> &'static str {
    match strategy {
        "round_robin" => "roundrobin-4",
        "key_range" => "keyrange-4",
        other => panic!("unknown strategy {other}"),
    }
}

fn time_strategy<T: ShardIngest + 'static>(
    structure: &'static str,
    n: u64,
    proto: &T,
    batch: &[Update],
    out: &mut Vec<ThroughputRecord>,
) {
    out.push(time_updates(structure, strategy_mode("round_robin"), n, batch, |b| {
        let merged = partitioned_ingest(proto, b, RoundRobin::new(STRATEGY_SHARDS));
        std::hint::black_box(&merged);
    }));
    out.push(time_updates(structure, strategy_mode("key_range"), n, batch, |b| {
        let merged = partitioned_ingest(proto, b, KeyRange::new(n, STRATEGY_SHARDS));
        std::hint::black_box(&merged);
    }));
}

/// Experiment E14's strategy comparison: every exact-arithmetic engine
/// structure pushed through the builder/session pipeline at
/// [`STRATEGY_SHARDS`] shards under **both** shard plans — [`RoundRobin`]
/// (replicated shards, additive merge) and [`KeyRange`] (partitioned
/// coordinate space, disjoint-union merge). Both produce bit-identical
/// states (pinned by the engine's equivalence tests), so the comparison is
/// purely about throughput: round robin balances load for free, key range
/// shrinks each shard's working set but inherits the workload's key skew.
/// The winner per structure is stamped into `BENCH_samplers.json` as
/// `engine_plans` (see [`chosen_plans`]).
pub fn strategy_comparison_suite(quick: bool) -> Vec<ThroughputRecord> {
    let n: u64 = 1 << 20;
    let heavy_updates: usize = if quick { 100_000 } else { 1_000_000 };
    let light_updates: usize = if quick { 20_000 } else { 200_000 };
    let batch = workload(n, heavy_updates, 0xE14B);
    let light = &batch[..light_updates];
    let mut out = Vec::new();

    let mut s = SeedSequence::new(20);
    let proto = SparseRecovery::new(n, 8, &mut s);
    time_strategy("sparse_recovery", n, &proto, &batch, &mut out);

    let mut s = SeedSequence::new(21);
    let proto = L0Sampler::new(n, 0.25, &mut s);
    time_strategy("l0_sampler", n, &proto, &batch, &mut out);

    let mut s = SeedSequence::new(22);
    let proto = FisL0Sampler::new(n, &mut s);
    time_strategy("fis_l0", n, &proto, light, &mut out);

    let mut s = SeedSequence::new(23);
    let proto = CountSketch::with_default_rows(n, 16, &mut s);
    time_strategy("count_sketch", n, &proto, &batch, &mut out);

    let mut s = SeedSequence::new(24);
    let proto = CountMinSketch::new(n, 1024, 7, &mut s);
    time_strategy("count_min", n, &proto, &batch, &mut out);

    let mut s = SeedSequence::new(25);
    let proto = CountMedianSketch::new(n, 1024, 7, &mut s);
    time_strategy("count_median", n, &proto, light, &mut out);

    let mut s = SeedSequence::new(26);
    let proto = AmsSketch::with_default_shape(n, &mut s);
    time_strategy("ams_sketch", n, &proto, light, &mut out);

    out
}

/// The per-structure plan choice the strategy comparison measured: for each
/// structure with both `roundrobin-4` and `keyrange-4` records, the name of
/// the faster strategy (`"round_robin"` / `"key_range"`). Stamped into
/// `BENCH_samplers.json` as the `engine_plans` object so deployments can
/// pick the measured winner per structure.
pub fn chosen_plans(records: &[ThroughputRecord]) -> Vec<(&'static str, &'static str)> {
    let mut structures: Vec<&'static str> = Vec::new();
    for r in records {
        if (r.mode == "roundrobin-4" || r.mode == "keyrange-4")
            && !structures.contains(&r.structure)
        {
            structures.push(r.structure);
        }
    }
    structures
        .into_iter()
        .filter_map(|structure| {
            let ratio = speedup(records, structure, "keyrange-4", "roundrobin-4")?;
            Some((structure, if ratio > 1.0 { "key_range" } else { "round_robin" }))
        })
        .collect()
}

/// Render the strategy-comparison records: one row per (structure,
/// strategy), with key range's speedup over round robin and the chosen plan.
pub fn strategy_comparison_table(records: &[ThroughputRecord], host_cpus: usize) -> Table {
    let chosen = chosen_plans(records);
    let mut table = Table::new(
        &format!(
            "E14b: shard strategy comparison at {STRATEGY_SHARDS} shards (updates/sec; \
             host_cpus = {host_cpus}; both strategies are bit-identical on these structures)"
        ),
        &["structure", "strategy", "updates", "updates_per_sec", "kr_vs_rr", "chosen_plan"],
    );
    for r in records {
        let kr_vs_rr = speedup(records, r.structure, "keyrange-4", "roundrobin-4").unwrap_or(1.0);
        let plan = chosen
            .iter()
            .find(|(s, _)| *s == r.structure)
            .map(|(_, p)| *p)
            .unwrap_or("round_robin");
        table.row(&[
            r.structure.to_string(),
            r.mode.trim_end_matches("-4").to_string(),
            int(r.updates),
            f1(r.updates_per_sec),
            format!("{kr_vs_rr:.2}"),
            plan.to_string(),
        ]);
    }
    table
}

/// Speedup of `mode_a` over `mode_b` for a structure, if both were measured.
pub fn speedup(
    records: &[ThroughputRecord],
    structure: &str,
    fast: &str,
    slow: &str,
) -> Option<f64> {
    let rate = |mode: &str| {
        records
            .iter()
            .find(|r| r.structure == structure && r.mode == mode)
            .map(|r| r.updates_per_sec)
    };
    Some(rate(fast)? / rate(slow)?)
}

/// Render the E14 engine scaling records as an experiment table: one row per
/// (structure, shard count), with the speedup over the engine's own
/// single-shard configuration.
pub fn engine_scaling_table(records: &[ThroughputRecord], host_cpus: usize) -> Table {
    let mut table = Table::new(
        &format!(
            "E14: sharded ingestion engine scaling (updates/sec; host_cpus = {host_cpus}, \
             speedup is vs shards-1)"
        ),
        &["structure", "shards", "log2(n)", "updates", "updates_per_sec", "speedup_vs_1shard"],
    );
    for r in records {
        let vs_one = speedup(records, r.structure, r.mode, "shards-1").unwrap_or(1.0);
        table.row(&[
            r.structure.to_string(),
            r.mode.trim_start_matches("shards-").to_string(),
            int((r.dimension as f64).log2() as u64),
            int(r.updates),
            f1(r.updates_per_sec),
            format!("{vs_one:.2}"),
        ]);
    }
    table
}

/// Render the records as an experiment table.
pub fn throughput_table(records: &[ThroughputRecord]) -> Table {
    let mut table = Table::new(
        "E13: update-path throughput (updates/sec; reference = pre-optimization path)",
        &["structure", "mode", "log2(n)", "updates", "updates_per_sec", "speedup_vs_seq"],
    );
    for r in records {
        let vs_seq = speedup(records, r.structure, r.mode, "sequential").unwrap_or(1.0);
        table.row(&[
            r.structure.to_string(),
            r.mode.to_string(),
            int((r.dimension as f64).log2() as u64),
            int(r.updates),
            f1(r.updates_per_sec),
            format!("{vs_seq:.2}"),
        ]);
    }
    table
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The headline ratio names and the (structure, fast mode, slow mode)
/// triples they are computed from. The first four are the E13 single-thread
/// speedups over the pre-optimization reference path; the next two are the
/// E14 engine scaling ratios (4 shards vs 1 shard); the last two are the
/// E17 lane-kernel speedups ([`crate::kernels`]) for the two hottest field
/// kernels — polynomial hashing and the windowed fingerprint powers.
pub const HEADLINE_RATIOS: [(&str, &str, &str, &str); 8] = [
    ("sparse_recovery_batched_vs_reference", "sparse_recovery", "batched", "reference"),
    ("l0_sampler_batched_vs_reference", "l0_sampler", "batched", "reference"),
    ("sparse_recovery_sequential_vs_reference", "sparse_recovery", "sequential", "reference"),
    ("l0_sampler_sequential_vs_reference", "l0_sampler", "sequential", "reference"),
    ("sparse_recovery_4shard_vs_1shard", "sparse_recovery", "shards-4", "shards-1"),
    ("l0_sampler_4shard_vs_1shard", "l0_sampler", "shards-4", "shards-1"),
    ("kernel_horner_k4_lanes_vs_scalar", "horner_k4", "lanes", "scalar"),
    ("kernel_pow_window_lanes_vs_scalar", "pow_window", "lanes", "scalar"),
];

/// The headline ratios the CI perf gate enforces. The shard-scaling ratios
/// are stamped into the artifact but *not* gated: they measure how many
/// physical cores the host exposes at least as much as they measure the
/// code, so gating them would make CI verdicts depend on runner hardware.
pub const GATED_HEADLINE_KEYS: [&str; 4] = [
    "sparse_recovery_batched_vs_reference",
    "l0_sampler_batched_vs_reference",
    "sparse_recovery_sequential_vs_reference",
    "l0_sampler_sequential_vs_reference",
];

/// Compute every headline ratio from a record set (`None` when one side was
/// not measured or the ratio is non-finite).
pub fn headline_ratios(records: &[ThroughputRecord]) -> Vec<(&'static str, Option<f64>)> {
    HEADLINE_RATIOS
        .iter()
        .map(|&(key, structure, fast, slow)| {
            let v = speedup(records, structure, fast, slow).filter(|v| v.is_finite());
            (key, v)
        })
        .collect()
}

/// Provenance stamped into `BENCH_samplers.json` so the artifact trajectory
/// across PRs stays interpretable: which commit produced the numbers, how
/// many CPUs the host exposed (shard scaling is meaningless without it), and
/// which shard counts E14 swept.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// `git rev-parse --short=12 HEAD`, or `"unknown"` outside a checkout.
    pub git_commit: String,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cpus: usize,
    /// The shard counts the engine scaling records cover.
    pub shard_counts: Vec<usize>,
    /// The runner class measuring (from `LPS_RUNNER_CLASS`, e.g.
    /// `github-ubuntu-latest`; `"unspecified"` when unset). Per-class
    /// quick-mode baselines live under `ci/perf-baselines/<class>.json`, so
    /// the gate compares like hardware against like hardware and quick mode
    /// against quick mode.
    pub runner_class: String,
}

impl BenchMeta {
    /// Collect the metadata from the current environment.
    pub fn collect() -> Self {
        let git_commit = std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let runner_class =
            std::env::var("LPS_RUNNER_CLASS").unwrap_or_else(|_| "unspecified".to_string());
        BenchMeta {
            git_commit,
            host_cpus,
            shard_counts: ENGINE_SHARD_COUNTS.to_vec(),
            runner_class,
        }
    }
}

/// Serialize the suite to the `BENCH_samplers.json` document (no external
/// JSON dependency is available in the build environment, so the writer is
/// hand-rolled; the format is plain flat JSON). `registry` holds the E15
/// multi-tenant records ([`crate::e_registry`]); pass an empty slice when
/// the registry suite was not part of the run.
pub fn to_json(
    records: &[ThroughputRecord],
    registry: &[crate::e_registry::RegistryRecord],
    quick: bool,
    meta: &BenchMeta,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"update_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"command\": \"cargo run --release -p lps-bench --bin experiments -- bench --json\",\n",
    );
    out.push_str(&format!("  \"git_commit\": \"{}\",\n", json_escape(&meta.git_commit)));
    out.push_str(&format!("  \"host_cpus\": {},\n", meta.host_cpus));
    out.push_str(&format!("  \"runner_class\": \"{}\",\n", json_escape(&meta.runner_class)));
    let shard_list = meta.shard_counts.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ");
    out.push_str(&format!("  \"engine_shard_counts\": [{shard_list}],\n"));
    // the measured per-structure strategy winners (E14b); empty when the
    // strategy comparison was not part of this record set
    out.push_str("  \"engine_plans\": {\n");
    let plans = chosen_plans(records);
    for (i, (structure, plan)) in plans.iter().enumerate() {
        let comma = if i + 1 == plans.len() { "" } else { "," };
        out.push_str(&format!("    \"{structure}\": \"{plan}\"{comma}\n"));
    }
    out.push_str("  },\n");
    // absent (or non-finite) ratios serialize as null, never as a bare NaN
    // token that would make the whole document unparseable
    out.push_str("  \"headline\": {\n");
    let ratios = headline_ratios(records);
    for (i, (key, value)) in ratios.iter().enumerate() {
        let rendered = match value {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        };
        let comma = if i + 1 == ratios.len() { "" } else { "," };
        out.push_str(&format!("    \"{key}\": {rendered}{comma}\n"));
    }
    out.push_str("  },\n");
    // the E15 multi-tenant registry scenarios: tenants/sec, eviction rate,
    // and the resident-memory stamp alongside the raw throughput records
    out.push_str("  \"registry\": [\n");
    for (i, r) in registry.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"tenants\": {}, \"tenants_touched\": {}, \"updates\": {}, \"elapsed_ns\": {}, \"updates_per_sec\": {:.1}, \"tenants_per_sec\": {:.1}, \"evictions\": {}, \"restores\": {}, \"materializations\": {}, \"eviction_rate\": {:.6}, \"max_resident\": {}, \"resident_bytes\": {}}}{}\n",
            json_escape(r.scenario),
            r.tenants,
            r.tenants_touched,
            r.updates,
            r.elapsed_ns,
            r.updates_per_sec,
            r.tenants_per_sec,
            r.evictions,
            r.restores,
            r.materializations,
            r.eviction_rate,
            r.max_resident,
            r.resident_bytes,
            if i + 1 == registry.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"structure\": \"{}\", \"mode\": \"{}\", \"dimension\": {}, \"updates\": {}, \"elapsed_ns\": {}, \"updates_per_sec\": {:.1}}}{}\n",
            json_escape(r.structure),
            json_escape(r.mode),
            r.dimension,
            r.updates,
            r.elapsed_ns,
            r.updates_per_sec,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract the `"headline"` ratios from a `BENCH_samplers.json` document.
///
/// The workspace has no JSON dependency, so this is a purpose-built scanner
/// for the flat document [`to_json`] writes: it locates the `"headline"`
/// object and reads its `"key": number` pairs (`null` entries are skipped).
pub fn parse_headline(json: &str) -> Vec<(String, f64)> {
    let Some(start) = json.find("\"headline\"") else {
        return Vec::new();
    };
    let Some(open) = json[start..].find('{') else {
        return Vec::new();
    };
    let body_start = start + open + 1;
    let Some(close) = json[body_start..].find('}') else {
        return Vec::new();
    };
    let body = &json[body_start..body_start + close];
    let mut out = Vec::new();
    for entry in body.split(',') {
        let mut parts = entry.splitn(2, ':');
        let (Some(raw_key), Some(raw_value)) = (parts.next(), parts.next()) else {
            continue;
        };
        let key = raw_key.trim().trim_matches('"');
        if key.is_empty() {
            continue;
        }
        if let Ok(value) = raw_value.trim().parse::<f64>() {
            out.push((key.to_string(), value));
        }
    }
    out
}

/// Extract a top-level string field (e.g. `"mode"`, `"runner_class"`) from a
/// benchmark JSON document.
fn parse_string_field(json: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":");
    let start = json.find(&needle)?;
    let rest = &json[start + needle.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Extract the top-level `"mode"` stamp (`"quick"` / `"full"`) from a
/// `BENCH_samplers.json` document, so the gate can tell the operator when a
/// quick-mode run is being compared against a full-mode baseline.
pub fn parse_mode(json: &str) -> Option<String> {
    parse_string_field(json, "mode")
}

/// Extract the top-level `"runner_class"` stamp, so the gate can tell the
/// operator when the baseline was measured on different hardware than the
/// current run (older documents lack the stamp; `None` then).
pub fn parse_runner_class(json: &str) -> Option<String> {
    parse_string_field(json, "runner_class")
}

/// The default regression tolerance of the CI perf gate: fail when a gated
/// headline ratio drops more than 30% below the committed baseline.
pub const GATE_TOLERANCE: f64 = 0.30;

/// The runner-class stamp of the seed baseline: the quick-mode numbers
/// necessarily measured inside the 1-CPU dev container before any real CI
/// runner had produced an artifact. Comparisons against it are valid
/// (ratios are dimensionless) but noisier than same-hardware comparisons.
pub const SEED_RUNNER_CLASS: &str = "dev-container-seed";

/// Actionable regeneration instructions when a baseline still carries the
/// seed provenance ([`SEED_RUNNER_CLASS`]): which CI artifact to download
/// and where to commit it. `None` for baselines measured on real runners.
pub fn seed_baseline_advice(baseline_runner_class: &str) -> Option<String> {
    (baseline_runner_class == SEED_RUNNER_CLASS).then(|| {
        format!(
            "perf gate note: this baseline still carries the seed provenance \
             (runner_class '{SEED_RUNNER_CLASS}', measured in the 1-CPU dev container).\n\
             To regenerate it from real runner hardware:\n\
             1. open any CI run of the 'quick bench + perf gate' job (it runs with \
             LPS_RUNNER_CLASS=github-ubuntu-latest),\n\
             2. download its 'BENCH_samplers' artifact (BENCH_samplers.json),\n\
             3. commit that file over ci/perf-baselines/github-ubuntu-latest.json.\n\
             The gate will then compare like hardware against like hardware and this \
             note disappears."
        )
    })
}

/// Compare freshly measured headline ratios against a committed baseline
/// document. Returns `Ok` with one human-readable line per gated key, or
/// `Err` with the offending lines when any gated ratio regressed by more
/// than `tolerance` (a fraction, e.g. 0.30 for 30%).
///
/// Only [`GATED_HEADLINE_KEYS`] participate; keys missing from either side
/// are reported but never fail the gate (a brand-new baseline should not
/// brick CI). Improvements never fail.
pub fn check_headline_regression(
    fresh: &[(&'static str, Option<f64>)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut failures = Vec::new();
    for key in GATED_HEADLINE_KEYS {
        let fresh_value = fresh.iter().find(|(k, _)| *k == key).and_then(|(_, v)| *v);
        let base_value = baseline.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        match (fresh_value, base_value) {
            (Some(f), Some(b)) => {
                let floor = b * (1.0 - tolerance);
                let change = (f / b - 1.0) * 100.0;
                let line = format!(
                    "{key}: fresh {f:.3} vs baseline {b:.3} ({change:+.1}%, floor {floor:.3})"
                );
                if f < floor {
                    failures.push(format!("REGRESSION {line}"));
                } else {
                    report.push(format!("ok {line}"));
                }
            }
            (None, _) => report.push(format!("skip {key}: not measured in this run")),
            (_, None) => report.push(format!("skip {key}: absent from baseline")),
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        failures.extend(report);
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let a = workload(1 << 10, 500, 7);
        let b = workload(1 << 10, 500, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|u| u.index < (1 << 10) && u.delta != 0));
    }

    #[test]
    fn json_writer_produces_balanced_document() {
        let records = vec![
            ThroughputRecord {
                structure: "sparse_recovery",
                mode: "reference",
                dimension: 1 << 10,
                updates: 100,
                elapsed_ns: 2_000_000,
                updates_per_sec: 50_000.0,
            },
            ThroughputRecord {
                structure: "sparse_recovery",
                mode: "batched",
                dimension: 1 << 10,
                updates: 100,
                elapsed_ns: 400_000,
                updates_per_sec: 250_000.0,
            },
        ];
        let meta = BenchMeta {
            git_commit: "abc123def456".to_string(),
            host_cpus: 4,
            shard_counts: vec![1, 2, 4, 8],
            runner_class: "github-ubuntu-latest".to_string(),
        };
        let registry = vec![crate::e_registry::RegistryRecord {
            scenario: "registry-memspill",
            tenants: 100_000,
            tenants_touched: 20_000,
            updates: 60_000,
            elapsed_ns: 1_000_000_000,
            updates_per_sec: 60_000.0,
            tenants_per_sec: 20_000.0,
            evictions: 15_000,
            restores: 9_000,
            materializations: 120,
            eviction_rate: 0.25,
            max_resident: 4096,
            resident_bytes: 1 << 20,
        }];
        let json = to_json(&records, &registry, true, &meta);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"sparse_recovery_batched_vs_reference\": 5.000"));
        // the E15 registry block carries the tenant-fleet stamps
        assert!(json.contains("\"registry\": ["));
        assert!(json.contains("\"scenario\": \"registry-memspill\""));
        assert!(json.contains("\"tenants_per_sec\": 20000.0"));
        assert!(json.contains("\"eviction_rate\": 0.250000"));
        assert!(json.contains("\"max_resident\": 4096"));
        // pairs missing from the records serialize as null, not NaN
        assert!(json.contains("\"sparse_recovery_sequential_vs_reference\": null"));
        assert!(json.contains("\"l0_sampler_batched_vs_reference\": null"));
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"updates_per_sec\": 250000.0"));
        // provenance stamps
        assert!(json.contains("\"git_commit\": \"abc123def456\""));
        assert!(json.contains("\"host_cpus\": 4"));
        assert!(json.contains("\"runner_class\": \"github-ubuntu-latest\""));
        assert_eq!(parse_runner_class(&json).as_deref(), Some("github-ubuntu-latest"));
        assert!(json.contains("\"engine_shard_counts\": [1, 2, 4, 8]"));
        // the writer's own headline block round-trips through the parser
        let parsed = parse_headline(&json);
        assert_eq!(
            parsed,
            vec![("sparse_recovery_batched_vs_reference".to_string(), 5.0)],
            "only the non-null ratio should parse back"
        );
    }

    #[test]
    fn regression_gate_passes_and_fails_correctly() {
        let fresh: Vec<(&'static str, Option<f64>)> = vec![
            ("sparse_recovery_batched_vs_reference", Some(7.5)),
            ("l0_sampler_batched_vs_reference", Some(12.0)),
            ("sparse_recovery_sequential_vs_reference", Some(10.7)),
            ("l0_sampler_sequential_vs_reference", Some(13.1)),
        ];
        let baseline: Vec<(String, f64)> =
            fresh.iter().map(|(k, v)| (k.to_string(), v.unwrap())).collect();
        // identical numbers pass
        assert!(check_headline_regression(&fresh, &baseline, GATE_TOLERANCE).is_ok());
        // a 2x slowdown on one gated ratio fails
        let mut slowed = fresh.clone();
        slowed[0].1 = Some(7.5 / 2.0);
        let err = check_headline_regression(&slowed, &baseline, GATE_TOLERANCE).unwrap_err();
        assert!(err.iter().any(|l| l.starts_with("REGRESSION sparse_recovery_batched")));
        // a 29% drop stays within the 30% tolerance
        let mut borderline = fresh.clone();
        borderline[1].1 = Some(12.0 * 0.71);
        assert!(check_headline_regression(&borderline, &baseline, GATE_TOLERANCE).is_ok());
        // improvements never fail, missing keys are skipped not fatal
        let sparse_baseline = vec![("l0_sampler_batched_vs_reference".to_string(), 1.0)];
        assert!(check_headline_regression(&fresh, &sparse_baseline, GATE_TOLERANCE).is_ok());
    }

    #[test]
    fn chosen_plans_pick_the_faster_strategy_and_stamp_into_json() {
        let rec = |structure: &'static str, mode: &'static str, rate: f64| ThroughputRecord {
            structure,
            mode,
            dimension: 1 << 10,
            updates: 100,
            elapsed_ns: 1,
            updates_per_sec: rate,
        };
        let records = vec![
            rec("sparse_recovery", "roundrobin-4", 100.0),
            rec("sparse_recovery", "keyrange-4", 150.0),
            rec("count_min", "roundrobin-4", 200.0),
            rec("count_min", "keyrange-4", 180.0),
            rec("count_min", "sequential", 500.0), // unrelated mode is ignored
        ];
        assert_eq!(
            chosen_plans(&records),
            vec![("sparse_recovery", "key_range"), ("count_min", "round_robin")]
        );
        let meta = BenchMeta {
            git_commit: "abc".to_string(),
            host_cpus: 1,
            shard_counts: vec![1, 2, 4, 8],
            runner_class: "x".to_string(),
        };
        let json = to_json(&records, &[], true, &meta);
        assert!(json.contains("\"engine_plans\": {"));
        assert!(json.contains("\"sparse_recovery\": \"key_range\""));
        assert!(json.contains("\"count_min\": \"round_robin\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn seed_baseline_provenance_triggers_regeneration_advice() {
        let advice = seed_baseline_advice(SEED_RUNNER_CLASS).expect("seed provenance advises");
        assert!(advice.contains("BENCH_samplers"), "must name the CI artifact");
        assert!(advice.contains("LPS_RUNNER_CLASS=github-ubuntu-latest"), "must name the env");
        assert!(advice.contains("ci/perf-baselines/github-ubuntu-latest.json"));
        assert!(seed_baseline_advice("github-ubuntu-latest").is_none());
        assert!(seed_baseline_advice("unspecified").is_none());
    }

    #[test]
    fn parse_mode_reads_the_stamp() {
        assert_eq!(parse_mode("{\n  \"mode\": \"full\",\n}").as_deref(), Some("full"));
        assert_eq!(parse_mode("{\"mode\": \"quick\"}").as_deref(), Some("quick"));
        assert_eq!(parse_mode("{}"), None);
    }

    #[test]
    fn parse_headline_reads_the_committed_document_shape() {
        let doc = r#"{
  "benchmark": "update_throughput",
  "headline": {
    "sparse_recovery_batched_vs_reference": 7.568,
    "l0_sampler_batched_vs_reference": 12.033,
    "sparse_recovery_4shard_vs_1shard": null
  },
  "records": []
}"#;
        let parsed = parse_headline(doc);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "sparse_recovery_batched_vs_reference");
        assert!((parsed[0].1 - 7.568).abs() < 1e-9);
        assert!((parsed[1].1 - 12.033).abs() < 1e-9);
        assert!(parse_headline("{}").is_empty());
    }

    #[test]
    fn speedup_reads_the_right_pair() {
        let records = vec![
            ThroughputRecord {
                structure: "x",
                mode: "sequential",
                dimension: 4,
                updates: 1,
                elapsed_ns: 1,
                updates_per_sec: 10.0,
            },
            ThroughputRecord {
                structure: "x",
                mode: "batched",
                dimension: 4,
                updates: 1,
                elapsed_ns: 1,
                updates_per_sec: 30.0,
            },
        ];
        assert_eq!(speedup(&records, "x", "batched", "sequential"), Some(3.0));
        assert_eq!(speedup(&records, "x", "batched", "reference"), None);
    }
}

//! Update-path throughput benchmarks (Experiment E13) and the
//! machine-readable `BENCH_samplers.json` writer that seeds the workspace's
//! performance trajectory.
//!
//! For every structure with a batched ingestion path this module measures
//! updates/second in up to three modes over the same pre-generated update
//! batch:
//!
//! * `reference` — the pre-optimization update path (fingerprint power
//!   `r^index` recomputed per cell by square-and-multiply), retained on the
//!   structures that had one so each PR's speedup is measured against a
//!   faithful baseline rather than a guess;
//! * `sequential` — one `process_update` / `update` call per stream update,
//!   using the hoisted fingerprint terms and power tables;
//! * `batched` — `process_batch` over [`lps_stream::DEFAULT_BATCH_SIZE`]
//!   chunks (coalescing, cached hash evaluations, row-major cell walks).
//!
//! `cargo run --release -p lps-bench --bin experiments -- bench --json`
//! renders the table and writes `BENCH_samplers.json`; CI runs the quick
//! variant so every PR leaves a machine-readable perf datapoint.

use std::time::Instant;

use lps_core::{AkoSampler, FisL0Sampler, L0Sampler, LpSampler, PrecisionLpSampler};
use lps_hash::SeedSequence;
use lps_heavy::CountSketchHeavyHitters;
use lps_sketch::{
    AmsSketch, CountMinSketch, CountSketch, LinearSketch, PStableSketch, SparseRecovery,
};
use lps_stream::{Update, DEFAULT_BATCH_SIZE};

use crate::report::{f1, int, Table};

/// One measured (structure, mode) data point.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Structure identifier, e.g. `"sparse_recovery"`.
    pub structure: &'static str,
    /// `"reference"`, `"sequential"` or `"batched"`.
    pub mode: &'static str,
    /// Dimension `n` of the underlying vector.
    pub dimension: u64,
    /// Number of stream updates processed.
    pub updates: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub elapsed_ns: u128,
    /// Updates per second.
    pub updates_per_sec: f64,
}

fn time_updates(
    structure: &'static str,
    mode: &'static str,
    dimension: u64,
    batch: &[Update],
    mut run: impl FnMut(&[Update]),
) -> ThroughputRecord {
    let start = Instant::now();
    run(batch);
    let elapsed = start.elapsed();
    let elapsed_ns = elapsed.as_nanos().max(1);
    ThroughputRecord {
        structure,
        mode,
        dimension,
        updates: batch.len() as u64,
        elapsed_ns,
        updates_per_sec: batch.len() as f64 / (elapsed_ns as f64 / 1e9),
    }
}

/// A deterministic mixed insert/delete workload over `[0, n)`.
pub fn workload(n: u64, updates: usize, master: u64) -> Vec<Update> {
    let mut seeds = SeedSequence::new(master);
    (0..updates)
        .map(|_| {
            let index = seeds.next_below(n);
            let delta = (seeds.next_below(9) as i64) - 4;
            Update::new(index, if delta == 0 { 1 } else { delta })
        })
        .collect()
}

fn chunked(s: &mut impl LpSampler, batch: &[Update]) {
    for chunk in batch.chunks(DEFAULT_BATCH_SIZE) {
        s.process_batch(chunk);
    }
}

/// Run the full throughput suite. Quick mode shrinks the workload so CI can
/// afford it; full mode measures the headline `n = 2^20`, `10^6`-update
/// configuration the perf trajectory tracks.
pub fn throughput_suite(quick: bool) -> Vec<ThroughputRecord> {
    let n: u64 = 1 << 20;
    let heavy_updates: usize = if quick { 100_000 } else { 1_000_000 };
    let light_updates: usize = if quick { 20_000 } else { 200_000 };
    let batch = workload(n, heavy_updates, 0xBE7C);
    let light = &batch[..light_updates];
    let mut out = Vec::new();

    // --- sparse recovery (Lemma 5), the hottest kernel in the workspace ---
    {
        let mut s = SeedSequence::new(1);
        let proto = SparseRecovery::new(n, 8, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("sparse_recovery", "reference", n, &batch, |b| {
            for u in b {
                a.update_reference(u.index, u.delta);
            }
        }));
        let mut b_ = proto.clone();
        out.push(time_updates("sparse_recovery", "sequential", n, &batch, |b| {
            for u in b {
                b_.update(u.index, u.delta);
            }
        }));
        let mut c = proto;
        out.push(time_updates("sparse_recovery", "batched", n, &batch, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                c.process_batch(chunk);
            }
        }));
    }

    // --- the Theorem 2 L0 sampler ---
    {
        let mut s = SeedSequence::new(2);
        let proto = L0Sampler::new(n, 0.25, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("l0_sampler", "reference", n, &batch, |b| {
            for u in b {
                a.process_update_reference(*u);
            }
        }));
        let mut b_ = proto.clone();
        out.push(time_updates("l0_sampler", "sequential", n, &batch, |b| {
            for u in b {
                b_.process_update(*u);
            }
        }));
        let mut c = proto;
        out.push(time_updates("l0_sampler", "batched", n, &batch, |b| chunked(&mut c, b)));
    }

    // --- FIS-style L0 baseline (shared fingerprint base across all slots) ---
    {
        let mut s = SeedSequence::new(3);
        let proto = FisL0Sampler::new(n, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("fis_l0", "sequential", n, light, |b| {
            for u in b {
                a.process_update(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("fis_l0", "batched", n, light, |b| chunked(&mut b_, b)));
    }

    // --- precision Lp sampler and the AKO baseline ---
    {
        let mut s = SeedSequence::new(4);
        let proto = PrecisionLpSampler::new(n, 1.0, 0.25, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("precision_lp", "sequential", n, light, |b| {
            for u in b {
                a.process_update(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("precision_lp", "batched", n, light, |b| chunked(&mut b_, b)));
    }
    {
        let mut s = SeedSequence::new(5);
        let proto = AkoSampler::new(n, 1.0, 0.25, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("ako_sampler", "sequential", n, light, |b| {
            for u in b {
                a.process_update(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("ako_sampler", "batched", n, light, |b| chunked(&mut b_, b)));
    }

    // --- the plain sketches ---
    {
        let mut s = SeedSequence::new(6);
        let proto = CountSketch::with_default_rows(n, 16, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("count_sketch", "sequential", n, &batch, |b| {
            for u in b {
                a.update_int(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("count_sketch", "batched", n, &batch, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }
    {
        let mut s = SeedSequence::new(7);
        let proto = CountMinSketch::new(n, 1024, 7, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("count_min", "sequential", n, &batch, |b| {
            for u in b {
                a.update(u.index, u.delta);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("count_min", "batched", n, &batch, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }
    {
        let mut s = SeedSequence::new(8);
        let proto = AmsSketch::with_default_shape(n, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("ams_sketch", "sequential", n, light, |b| {
            for u in b {
                a.update_int(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("ams_sketch", "batched", n, light, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }
    {
        let mut s = SeedSequence::new(9);
        let proto = PStableSketch::with_default_rows(n, 1.0, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("pstable_sketch", "sequential", n, light, |b| {
            for u in b {
                a.update_int(*u);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("pstable_sketch", "batched", n, light, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }

    // --- a composite driver: count-sketch heavy hitters ---
    {
        let mut s = SeedSequence::new(10);
        let proto = CountSketchHeavyHitters::new(n, 1.0, 0.125, &mut s);
        let mut a = proto.clone();
        out.push(time_updates("cs_heavy_hitters", "sequential", n, light, |b| {
            for u in b {
                a.update(u.index, u.delta);
            }
        }));
        let mut b_ = proto;
        out.push(time_updates("cs_heavy_hitters", "batched", n, light, |b| {
            for chunk in b.chunks(DEFAULT_BATCH_SIZE) {
                b_.process_batch(chunk);
            }
        }));
    }

    out
}

/// Speedup of `mode_a` over `mode_b` for a structure, if both were measured.
pub fn speedup(
    records: &[ThroughputRecord],
    structure: &str,
    fast: &str,
    slow: &str,
) -> Option<f64> {
    let rate = |mode: &str| {
        records
            .iter()
            .find(|r| r.structure == structure && r.mode == mode)
            .map(|r| r.updates_per_sec)
    };
    Some(rate(fast)? / rate(slow)?)
}

/// Render the records as an experiment table.
pub fn throughput_table(records: &[ThroughputRecord]) -> Table {
    let mut table = Table::new(
        "E13: update-path throughput (updates/sec; reference = pre-optimization path)",
        &["structure", "mode", "log2(n)", "updates", "updates_per_sec", "speedup_vs_seq"],
    );
    for r in records {
        let vs_seq = speedup(records, r.structure, r.mode, "sequential").unwrap_or(1.0);
        table.row(&[
            r.structure.to_string(),
            r.mode.to_string(),
            int((r.dimension as f64).log2() as u64),
            int(r.updates),
            f1(r.updates_per_sec),
            format!("{vs_seq:.2}"),
        ]);
    }
    table
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize the suite to the `BENCH_samplers.json` document (no external
/// JSON dependency is available in the build environment, so the writer is
/// hand-rolled; the format is plain flat JSON).
pub fn to_json(records: &[ThroughputRecord], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"update_throughput\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(
        "  \"command\": \"cargo run --release -p lps-bench --bin experiments -- bench --json\",\n",
    );
    // absent (or non-finite) ratios serialize as null, never as a bare NaN
    // token that would make the whole document unparseable
    let ratio = |fast: &str, slow: &str, name: &str| -> String {
        match speedup(records, name, fast, slow) {
            Some(v) if v.is_finite() => format!("{v:.3}"),
            _ => "null".to_string(),
        }
    };
    out.push_str("  \"headline\": {\n");
    out.push_str(&format!(
        "    \"sparse_recovery_batched_vs_reference\": {},\n",
        ratio("batched", "reference", "sparse_recovery")
    ));
    out.push_str(&format!(
        "    \"l0_sampler_batched_vs_reference\": {},\n",
        ratio("batched", "reference", "l0_sampler")
    ));
    out.push_str(&format!(
        "    \"sparse_recovery_sequential_vs_reference\": {},\n",
        ratio("sequential", "reference", "sparse_recovery")
    ));
    out.push_str(&format!(
        "    \"l0_sampler_sequential_vs_reference\": {}\n",
        ratio("sequential", "reference", "l0_sampler")
    ));
    out.push_str("  },\n");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"structure\": \"{}\", \"mode\": \"{}\", \"dimension\": {}, \"updates\": {}, \"elapsed_ns\": {}, \"updates_per_sec\": {:.1}}}{}\n",
            json_escape(r.structure),
            json_escape(r.mode),
            r.dimension,
            r.updates,
            r.elapsed_ns,
            r.updates_per_sec,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let a = workload(1 << 10, 500, 7);
        let b = workload(1 << 10, 500, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|u| u.index < (1 << 10) && u.delta != 0));
    }

    #[test]
    fn json_writer_produces_balanced_document() {
        let records = vec![
            ThroughputRecord {
                structure: "sparse_recovery",
                mode: "reference",
                dimension: 1 << 10,
                updates: 100,
                elapsed_ns: 2_000_000,
                updates_per_sec: 50_000.0,
            },
            ThroughputRecord {
                structure: "sparse_recovery",
                mode: "batched",
                dimension: 1 << 10,
                updates: 100,
                elapsed_ns: 400_000,
                updates_per_sec: 250_000.0,
            },
        ];
        let json = to_json(&records, true);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"sparse_recovery_batched_vs_reference\": 5.000"));
        // pairs missing from the records serialize as null, not NaN
        assert!(json.contains("\"sparse_recovery_sequential_vs_reference\": null"));
        assert!(json.contains("\"l0_sampler_batched_vs_reference\": null"));
        assert!(!json.contains("NaN"));
        assert!(json.contains("\"updates_per_sec\": 250000.0"));
    }

    #[test]
    fn speedup_reads_the_right_pair() {
        let records = vec![
            ThroughputRecord {
                structure: "x",
                mode: "sequential",
                dimension: 4,
                updates: 1,
                elapsed_ns: 1,
                updates_per_sec: 10.0,
            },
            ThroughputRecord {
                structure: "x",
                mode: "batched",
                dimension: 4,
                updates: 1,
                elapsed_ns: 1,
                updates_per_sec: 30.0,
            },
        ];
        assert_eq!(speedup(&records, "x", "batched", "sequential"), Some(3.0));
        assert_eq!(speedup(&records, "x", "batched", "reference"), None);
    }
}

//! The `experiments -- workload` subcommand: run a declarative workload
//! spec (see `lps-workload`) against **both** load targets — the
//! in-process engine core and the socket service over loopback TCP —
//! and stamp the outcomes into the `BENCH_samplers.json` artifact.
//!
//! Usage:
//!   experiments -- workload <spec.toml> [<spec.toml>...] [--json] [--check]
//!
//! Each spec ramps until saturation (a step missing its offered rate) or
//! its `max_rps` cap. `--json` merges a `"workloads"` array into the
//! existing `BENCH_samplers.json` (creating a minimal document when none
//! exists) so the perf trajectory and the workload trajectory live in
//! one artifact. `--check` re-reads the artifact afterwards and fails if
//! the array is missing or malformed — but deliberately tolerates
//! `"saturated": false`, since a fast host may sustain every step up to
//! `max_rps` without ever saturating.

use std::path::Path;

use lps_service::{RunningServer, ServiceConfig};
use lps_workload::{run_workload, EngineTarget, SocketTarget, WorkloadOutcome, WorkloadSpec};

use crate::report::{f1, int, Table};

/// The artifact both the bench suite and the workload harness stamp.
const ARTIFACT: &str = "BENCH_samplers.json";

/// Auth token the loopback service run uses, so every workload run also
/// exercises the authenticated handshake path end-to-end.
const WORKLOAD_TOKEN: &str = "lps-workload-harness";

fn service_config(spec: &WorkloadSpec) -> ServiceConfig {
    ServiceConfig::new(spec.dimension, spec.seed)
}

/// Run one spec against the in-process engine target.
fn run_engine(spec: &WorkloadSpec) -> Result<WorkloadOutcome, String> {
    let mut target = EngineTarget::new(&service_config(spec));
    run_workload(spec, &mut target).map_err(|e| format!("engine target: {e}"))
}

/// Run one spec against the socket service over loopback TCP (with the
/// harness auth token on both sides).
fn run_service(spec: &WorkloadSpec) -> Result<WorkloadOutcome, String> {
    let server =
        RunningServer::bind_tcp("127.0.0.1:0", service_config(spec).auth_token(WORKLOAD_TOKEN))
            .map_err(|e| format!("bind loopback server: {e}"))?;
    let addr = server.local_addr().ok_or("loopback server has no TCP address")?;
    let mut target = SocketTarget::connect(addr, Some(WORKLOAD_TOKEN))
        .map_err(|e| format!("connect to loopback server: {e}"))?;
    let outcome = run_workload(spec, &mut target).map_err(|e| format!("service target: {e}"));
    // Shut the server down whether or not the run succeeded, so a failed
    // run does not leak the acceptor/ingest threads.
    let _ = target.shutdown();
    server.join();
    outcome
}

/// Render one outcome as a human-readable per-step table.
fn outcome_table(outcome: &WorkloadOutcome) -> Table {
    let title = format!(
        "workload {} vs {} — sustainable {} rps{}",
        outcome.spec_name,
        outcome.target,
        f1(outcome.sustainable_max_rps),
        if outcome.saturated { " (saturated)" } else { " (max_rps reached, not saturated)" },
    );
    let mut t = Table::new(
        &title,
        &[
            "target_rps",
            "offered",
            "achieved_rps",
            "met",
            "p50_us",
            "p99_us",
            "p999_us",
            "max_us",
            "read_errs",
        ],
    );
    for s in &outcome.steps {
        t.row(&[
            int(s.target_rps as u64),
            int(s.offered),
            f1(s.achieved_rps),
            if s.met { "yes".into() } else { "NO".into() },
            f1(s.p50_us),
            f1(s.p99_us),
            f1(s.p999_us),
            f1(s.max_us),
            int(s.read_errors),
        ]);
    }
    t
}

/// Serialize one outcome as a `"workloads"` array element.
fn outcome_json(outcome: &WorkloadOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "    {{\"spec\": \"{}\", \"target\": \"{}\", \"saturated\": {}, \
         \"sustainable_max_rps\": {:.1}, \"total_requests\": {}, \"total_updates\": {}, \
         \"total_read_errors\": {}, \"steps\": [\n",
        outcome.spec_name,
        outcome.target,
        outcome.saturated,
        outcome.sustainable_max_rps,
        outcome.total_requests,
        outcome.total_updates,
        outcome.total_read_errors,
    ));
    for (i, s) in outcome.steps.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"target_rps\": {}, \"offered\": {}, \"achieved_rps\": {:.1}, \
             \"met\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \
             \"max_us\": {:.1}, \"read_errors\": {}}}{}\n",
            s.target_rps,
            s.offered,
            s.achieved_rps,
            s.met,
            s.p50_us,
            s.p99_us,
            s.p999_us,
            s.max_us,
            s.read_errors,
            if i + 1 == outcome.steps.len() { "" } else { "," }
        ));
    }
    out.push_str("    ]}");
    out
}

/// Render the full `"workloads"` key (without surrounding braces/commas).
fn workloads_json(outcomes: &[WorkloadOutcome]) -> String {
    let mut out = String::from("\"workloads\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        out.push_str(&outcome_json(o));
        out.push_str(if i + 1 == outcomes.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]");
    out
}

/// Find the byte span of `"workloads": [...]` in a document, matching the
/// closing bracket by depth so nested step arrays don't end the scan
/// early. Returns `None` when the key is absent.
fn find_workloads_span(doc: &str) -> Option<(usize, usize)> {
    let key_start = doc.find("\"workloads\"")?;
    let open = key_start + doc[key_start..].find('[')?;
    let mut depth = 0usize;
    let mut in_string = false;
    for (i, c) in doc[open..].char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => {
                depth -= 1;
                if depth == 0 {
                    return Some((key_start, open + i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Merge the `"workloads"` array into an artifact document: replace an
/// existing array in place, or insert the key before the document's final
/// closing brace. A missing/empty document gets a minimal wrapper.
fn merge_into_artifact(existing: Option<&str>, outcomes: &[WorkloadOutcome]) -> String {
    let rendered = workloads_json(outcomes);
    let Some(doc) = existing else {
        return format!("{{\n  {rendered}\n}}\n");
    };
    if let Some((start, end)) = find_workloads_span(doc) {
        let mut merged = String::with_capacity(doc.len() + rendered.len());
        merged.push_str(&doc[..start]);
        merged.push_str(&rendered);
        merged.push_str(&doc[end..]);
        return merged;
    }
    // Insert before the final top-level `}`.
    match doc.rfind('}') {
        Some(close) => {
            let head = doc[..close].trim_end();
            let needs_comma = !head.trim_end().ends_with('{');
            format!("{head}{}\n  {rendered}\n}}\n", if needs_comma { "," } else { "" })
        }
        None => format!("{{\n  {rendered}\n}}\n"),
    }
}

/// Validate the artifact's `"workloads"` array: every expected spec must
/// appear for both targets, and every entry must carry a numeric
/// `sustainable_max_rps` plus per-step percentiles. Returns the failure
/// messages (empty = pass).
pub fn check_artifact(doc: &str, expected_specs: &[String]) -> Vec<String> {
    let mut failures = Vec::new();
    let Some((start, end)) = find_workloads_span(doc) else {
        return vec!["artifact has no \"workloads\" array".to_string()];
    };
    let body = &doc[start..end];
    for spec in expected_specs {
        for target in ["engine", "service"] {
            let needle = format!("{{\"spec\": \"{spec}\", \"target\": \"{target}\"");
            let Some(entry_at) = body.find(&needle) else {
                failures.push(format!("no workloads entry for spec '{spec}' target '{target}'"));
                continue;
            };
            let entry = &body[entry_at..];
            for field in ["\"sustainable_max_rps\": ", "\"saturated\": "] {
                if !entry.contains(field) {
                    failures.push(format!("entry '{spec}'/'{target}' lacks {field}"));
                }
            }
            for field in ["\"p50_us\": ", "\"p99_us\": ", "\"p999_us\": ", "\"target_rps\": "] {
                if !entry.contains(field) {
                    failures.push(format!("entry '{spec}'/'{target}' has no step with {field}"));
                }
            }
        }
    }
    failures
}

/// Run the `workload` subcommand; returns the process exit code.
pub fn workload_main(args: &[String]) -> i32 {
    let json = args.iter().any(|a| a == "--json");
    let check = args.iter().any(|a| a == "--check");
    let spec_paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if spec_paths.is_empty() {
        eprintln!("workload requires at least one <spec.toml> path");
        return 1;
    }

    let mut specs = Vec::new();
    for path in &spec_paths {
        match WorkloadSpec::load(Path::new(path.as_str())) {
            Ok(spec) => specs.push(spec),
            Err(e) => {
                eprintln!("workload spec {path}: {e}");
                return 1;
            }
        }
    }

    let mut outcomes = Vec::new();
    for spec in &specs {
        println!(
            "workload {}: generator {}, dim {}, read_ratio {:.2}, ramp {}..{} rps (+{}/step, {} ms steps)",
            spec.name,
            spec.generator.kind(),
            spec.dimension,
            spec.read_ratio,
            spec.ramp.initial_rps,
            spec.ramp.max_rps,
            spec.ramp.increment_rps,
            spec.ramp.step_duration_ms,
        );
        for run in [run_engine(spec), run_service(spec)] {
            match run {
                Ok(outcome) => {
                    println!("{}", outcome_table(&outcome).render());
                    outcomes.push(outcome);
                }
                Err(e) => {
                    eprintln!("workload {} failed: {e}", spec.name);
                    return 1;
                }
            }
        }
    }

    if json {
        let existing = std::fs::read_to_string(ARTIFACT).ok();
        let merged = merge_into_artifact(existing.as_deref(), &outcomes);
        if let Err(e) = std::fs::write(ARTIFACT, merged) {
            eprintln!("write {ARTIFACT}: {e}");
            return 1;
        }
        println!("stamped {} workload outcome(s) into {ARTIFACT}", outcomes.len());
    }

    if check {
        let doc = match std::fs::read_to_string(ARTIFACT) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("workload --check: cannot read {ARTIFACT}: {e}");
                return 1;
            }
        };
        let expected: Vec<String> = specs.iter().map(|s| s.name.clone()).collect();
        let failures = check_artifact(&doc, &expected);
        if failures.is_empty() {
            println!("workload check: PASS ({} spec(s) x 2 targets present)", expected.len());
        } else {
            for f in &failures {
                eprintln!("workload check: {f}");
            }
            return 1;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_workload::StepReport;

    fn fake_outcome(spec: &str, target: &'static str) -> WorkloadOutcome {
        WorkloadOutcome {
            spec_name: spec.to_string(),
            target,
            saturated: target == "service",
            sustainable_max_rps: 1234.5,
            total_requests: 60,
            total_updates: 320,
            total_read_errors: 1,
            steps: vec![StepReport {
                target_rps: 100,
                offered: 30,
                achieved_rps: 99.7,
                met: true,
                p50_us: 10.0,
                p99_us: 55.5,
                p999_us: 80.1,
                max_us: 93.0,
                read_errors: 1,
            }],
        }
    }

    #[test]
    fn stamping_into_a_fresh_artifact_creates_a_wrapper_document() {
        let outcomes = [fake_outcome("a", "engine"), fake_outcome("a", "service")];
        let doc = merge_into_artifact(None, &outcomes);
        assert!(doc.starts_with("{\n"));
        assert!(doc.trim_end().ends_with('}'));
        assert!(check_artifact(&doc, &["a".to_string()]).is_empty(), "{doc}");
    }

    #[test]
    fn stamping_into_a_bench_document_preserves_the_other_keys() {
        let bench = "{\n  \"benchmark\": \"update_throughput\",\n  \"records\": [\n    \
                     {\"structure\": \"ams\"}\n  ]\n}\n";
        let outcomes = [fake_outcome("a", "engine"), fake_outcome("a", "service")];
        let doc = merge_into_artifact(Some(bench), &outcomes);
        assert!(doc.contains("\"benchmark\": \"update_throughput\""));
        assert!(doc.contains("\"structure\": \"ams\""));
        assert!(check_artifact(&doc, &["a".to_string()]).is_empty(), "{doc}");
    }

    #[test]
    fn restamping_replaces_the_existing_workloads_array() {
        let outcomes_a = [fake_outcome("a", "engine"), fake_outcome("a", "service")];
        let doc = merge_into_artifact(None, &outcomes_a);
        let outcomes_b = [fake_outcome("b", "engine"), fake_outcome("b", "service")];
        let doc2 = merge_into_artifact(Some(&doc), &outcomes_b);
        assert_eq!(doc2.matches("\"workloads\"").count(), 1);
        assert!(check_artifact(&doc2, &["b".to_string()]).is_empty());
        assert_eq!(
            check_artifact(&doc2, &["a".to_string()]).len(),
            2,
            "stale spec entries must be gone for both targets"
        );
    }

    #[test]
    fn check_rejects_missing_or_partial_records() {
        assert!(!check_artifact("{}\n", &["a".to_string()]).is_empty());
        // engine-only stamping leaves the service entry missing
        let doc = merge_into_artifact(None, &[fake_outcome("a", "engine")]);
        let failures = check_artifact(&doc, &["a".to_string()]);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("'service'"));
    }

    #[test]
    fn check_tolerates_unreached_saturation() {
        // A fast host may never saturate: saturated=false with every step
        // met must still pass the check.
        let mut outcome = fake_outcome("a", "engine");
        outcome.saturated = false;
        let outcomes = [outcome, fake_outcome("a", "service")];
        let doc = merge_into_artifact(None, &outcomes);
        assert!(check_artifact(&doc, &["a".to_string()]).is_empty());
    }
}

//! The augmented indexing communication problem (Section 4).
//!
//! Alice holds a string `x ∈ [k]^m`; Bob holds an index `i ∈ [m]` together
//! with the prefix `x_1, …, x_{i−1}`. Alice sends one message and Bob must
//! output `x_i`. Miltersen, Nisan, Safra and Wigderson (Lemma 6 of the paper)
//! show that any protocol with success probability `1 − δ > 3/(2k)` requires
//! a message of `Ω((1 − δ) m log k)` bits — this is the hard problem every
//! lower bound in the paper reduces from.
//!
//! We cannot "run" an information-theoretic lower bound, but we *can* run the
//! reductions: this module provides problem instances and scoring, and the
//! [`crate::reductions`] module turns streaming algorithms into augmented
//! indexing protocols exactly as in Theorems 6, 7 and 9. Experiments measure
//! the success rate of those protocols together with the actual message sizes
//! (the memory footprint of the streaming structure handed from Alice to
//! Bob), whose growth is what the lower bounds say cannot be avoided.

use lps_hash::SeedSequence;

/// One instance of augmented indexing: Alice's string, Bob's index, and the
/// prefix Bob is given for free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugmentedIndexingInstance {
    /// Alphabet size k (symbols are `0..k`).
    pub alphabet: u64,
    /// Alice's string `x ∈ [k]^m`.
    pub string: Vec<u64>,
    /// Bob's index `i ∈ [0, m)` (0-based).
    pub index: usize,
}

impl AugmentedIndexingInstance {
    /// Draw a uniformly random instance with string length `m` over `[k]`.
    pub fn random(m: usize, alphabet: u64, seeds: &mut SeedSequence) -> Self {
        assert!(m >= 1 && alphabet >= 2);
        let string = (0..m).map(|_| seeds.next_below(alphabet)).collect();
        let index = seeds.next_below(m as u64) as usize;
        AugmentedIndexingInstance { alphabet, string, index }
    }

    /// String length m.
    pub fn len(&self) -> usize {
        self.string.len()
    }

    /// True if the string is empty (never for valid instances).
    pub fn is_empty(&self) -> bool {
        self.string.is_empty()
    }

    /// The symbol Bob must output, `x_i`.
    pub fn target(&self) -> u64 {
        self.string[self.index]
    }

    /// The prefix `x_1 … x_{i−1}` Bob knows.
    pub fn prefix(&self) -> &[u64] {
        &self.string[..self.index]
    }

    /// Score a protocol answer.
    pub fn is_correct(&self, answer: u64) -> bool {
        answer == self.target()
    }
}

/// The Miltersen–Nisan–Safra–Wigderson bound (Lemma 6): a lower bound, in
/// bits, on the one-way message length of any protocol solving augmented
/// indexing on `[k]^m` with failure probability δ. The constant is not
/// specified by the lemma; we report the information-theoretic core
/// `(1 − δ)·m·log₂ k` which the experiments plot next to measured message
/// sizes.
pub fn augmented_indexing_lower_bound_bits(m: usize, alphabet: u64, delta: f64) -> f64 {
    assert!(alphabet >= 2);
    (1.0 - delta).max(0.0) * m as f64 * (alphabet as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instances_are_well_formed() {
        let mut seeds = SeedSequence::new(1);
        for _ in 0..50 {
            let inst = AugmentedIndexingInstance::random(16, 8, &mut seeds);
            assert_eq!(inst.len(), 16);
            assert!(inst.index < 16);
            assert!(inst.string.iter().all(|&s| s < 8));
            assert!(inst.target() < 8);
            assert_eq!(inst.prefix().len(), inst.index);
            assert!(inst.is_correct(inst.target()));
            assert!(!inst.is_correct(inst.target() + 8));
        }
    }

    #[test]
    fn lower_bound_formula() {
        let b = augmented_indexing_lower_bound_bits(10, 16, 0.25);
        assert!((b - 0.75 * 10.0 * 4.0).abs() < 1e-9);
        assert_eq!(augmented_indexing_lower_bound_bits(10, 16, 1.0), 0.0);
        // the bound grows with both m and log k
        assert!(
            augmented_indexing_lower_bound_bits(20, 16, 0.25)
                > augmented_indexing_lower_bound_bits(10, 16, 0.25)
        );
        assert!(
            augmented_indexing_lower_bound_bits(10, 256, 0.25)
                > augmented_indexing_lower_bound_bits(10, 16, 0.25)
        );
    }
}

//! # lps-commgames
//!
//! Communication games and the lower-bound reduction machinery of Section 4
//! of Jowhari–Sağlam–Tardos (PODS 2011).
//!
//! * [`augmented_indexing`] — the hard problem everything reduces from
//!   (Lemma 6 reference bound included).
//! * [`universal_relation`] — UR^n, the one-round randomized protocol of
//!   Proposition 5 built on the Theorem 2 L0 sampler, the deterministic
//!   baseline, and Lemma 7's symmetrisation wrapper.
//! * [`reductions`] — executable versions of the reductions behind
//!   Theorems 6 (UR), 7 (duplicates) and 9 (heavy hitters), with message-size
//!   accounting so the experiments can plot measured message growth against
//!   the Ω(log² n) / Ω(φ^{-p} log² n) statements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augmented_indexing;
pub mod reductions;
pub mod universal_relation;

pub use augmented_indexing::{augmented_indexing_lower_bound_bits, AugmentedIndexingInstance};
pub use reductions::{
    DuplicatesToUr, HeavyHittersToAugmentedIndexing, ReductionOutcome, UrToAugmentedIndexing,
};
pub use universal_relation::{
    run_symmetrised, ur_deterministic_protocol, UrInstance, UrOutcome, UrSketchProtocol,
};

//! Executable versions of the paper's lower-bound reductions (Theorems 6, 7
//! and 9).
//!
//! Each reduction turns a protocol/streaming algorithm for the "easy-looking"
//! problem into a protocol for augmented indexing. The paper uses them to
//! conclude Ω(log² n) (respectively Ω(φ^{-p} log² n)) space lower bounds; we
//! use them to *validate the reduction machinery end to end*: running the
//! reduction on top of the actual streaming algorithms of this workspace must
//! solve augmented indexing with the advantage the proofs claim, and the
//! measured message (memory-state) sizes show the growth that the lower
//! bounds say is unavoidable.
//!
//! * [`UrToAugmentedIndexing`] — Theorem 6: an UR^n protocol yields an
//!   augmented-indexing protocol over strings in `[2^t]^s` with
//!   `n = (2^s − 1)·2^t`.
//! * [`DuplicatesToUr`] — Theorem 7: a duplicates algorithm yields a UR^{n}
//!   protocol (and hence, composed with Theorem 6, an augmented-indexing
//!   protocol).
//! * [`HeavyHittersToAugmentedIndexing`] — Theorem 9: a heavy hitters
//!   algorithm in the strict turnstile model yields an augmented-indexing
//!   protocol via geometrically growing block weights.

use lps_duplicates::{DuplicateFinder, DuplicateResult};
use lps_hash::SeedSequence;
use lps_heavy::CountSketchHeavyHitters;
use lps_stream::{sample_distinct, SpaceUsage};

use crate::augmented_indexing::AugmentedIndexingInstance;
use crate::universal_relation::{UrInstance, UrOutcome, UrSketchProtocol};

/// Outcome of running a reduction-based protocol on one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionOutcome {
    /// Bob's answer, or `None` if the underlying algorithm failed.
    pub answer: Option<u64>,
    /// Whether the answer equals the target symbol.
    pub correct: bool,
    /// Message (memory-state) bits Alice sent to Bob.
    pub message_bits: u64,
}

/// Theorem 6: reduce augmented indexing over `[2^t]^s` to UR^n with
/// `n = (2^s − 1)·2^t`, then solve UR with the one-round sketch protocol.
#[derive(Debug, Clone)]
pub struct UrToAugmentedIndexing {
    /// Block bit-width t (alphabet 2^t).
    pub t: u32,
    /// Number of blocks s (string length).
    pub s: u32,
    /// Failure probability of the inner UR protocol.
    pub delta: f64,
}

impl UrToAugmentedIndexing {
    /// Create a reduction for strings of length `s` over alphabet `2^t`.
    pub fn new(s: u32, t: u32, delta: f64) -> Self {
        assert!(s >= 1 && t >= 1);
        assert!(s < 20, "dimension (2^s - 1)·2^t explodes for large s");
        UrToAugmentedIndexing { t, s, delta }
    }

    /// Dimension of the universal-relation instance the reduction builds.
    pub fn ur_dimension(&self) -> u64 {
        ((1u64 << self.s) - 1) * (1u64 << self.t)
    }

    /// Build Alice's vector `u`: the concatenation, for `j = 1..s`, of
    /// `2^{s−j}` copies of the unit vector `e_{z_j}` in dimension `2^t`.
    /// Returns the positions set to 1.
    pub fn alice_positions(&self, string: &[u64]) -> Vec<u64> {
        assert_eq!(string.len(), self.s as usize);
        let block = 1u64 << self.t;
        let mut positions = Vec::new();
        let mut offset = 0u64;
        for (j, &symbol) in string.iter().enumerate() {
            assert!(symbol < block);
            let copies = 1u64 << (self.s as u64 - 1 - j as u64);
            for c in 0..copies {
                positions.push(offset + c * block + symbol);
            }
            offset += copies * block;
        }
        positions
    }

    /// Build Bob's vector `v`: the same blocks for `j < i`, zeros afterwards.
    pub fn bob_positions(&self, prefix: &[u64]) -> Vec<u64> {
        assert!(prefix.len() <= self.s as usize);
        let block = 1u64 << self.t;
        let mut positions = Vec::new();
        let mut offset = 0u64;
        for (j, &symbol) in prefix.iter().enumerate() {
            let copies = 1u64 << (self.s as u64 - 1 - j as u64);
            for c in 0..copies {
                positions.push(offset + c * block + symbol);
            }
            offset += copies * block;
        }
        positions
    }

    /// Map a differing index of `u − v` back to `(block j, symbol)`.
    pub fn decode_index(&self, index: u64) -> (usize, u64) {
        let block = 1u64 << self.t;
        let mut offset = 0u64;
        for j in 0..self.s as u64 {
            let copies = 1u64 << (self.s as u64 - 1 - j);
            let span = copies * block;
            if index < offset + span {
                return (j as usize, (index - offset) % block);
            }
            offset += span;
        }
        panic!("index {index} outside the constructed dimension");
    }

    /// Run the full protocol on an augmented-indexing instance.
    pub fn run(
        &self,
        instance: &AugmentedIndexingInstance,
        seeds: &mut SeedSequence,
    ) -> ReductionOutcome {
        assert_eq!(instance.len(), self.s as usize);
        assert_eq!(instance.alphabet, 1u64 << self.t);
        let n = self.ur_dimension();
        let alice = self.alice_positions(&instance.string);
        let bob = self.bob_positions(instance.prefix());
        let mut x = vec![false; n as usize];
        for p in &alice {
            x[*p as usize] = true;
        }
        let mut y = vec![false; n as usize];
        for p in &bob {
            y[*p as usize] = true;
        }
        // x != y is guaranteed: block i of u is non-zero while block i of v is zero.
        let ur = UrInstance::new(x, y);
        let protocol = UrSketchProtocol::new(self.delta);
        let UrOutcome { answer, message_bits } = protocol.run(&ur, seeds);
        match answer {
            Some(idx) => {
                let (j, symbol) = self.decode_index(idx);
                // Bob learns z_j for some j >= i; the answer is useful when j = i.
                let correct = j == instance.index && instance.is_correct(symbol);
                ReductionOutcome { answer: Some(symbol), correct, message_bits }
            }
            None => ReductionOutcome { answer: None, correct: false, message_bits },
        }
    }
}

/// Theorem 7: reduce UR^n to finding duplicates in a stream of length n + 1
/// over `[2n]`, then solve duplicates with the Theorem 3 finder.
#[derive(Debug, Clone)]
pub struct DuplicatesToUr {
    /// Failure probability of the inner duplicates algorithm.
    pub delta: f64,
}

impl DuplicatesToUr {
    /// Create the reduction.
    pub fn new(delta: f64) -> Self {
        DuplicatesToUr { delta }
    }

    /// Alice's set `S = {2i − 1 + x_i}` (1-based in the paper; 0-based here:
    /// position i contributes `2i + x_i`).
    pub fn alice_set(x: &[bool]) -> Vec<u64> {
        x.iter().enumerate().map(|(i, &b)| 2 * i as u64 + b as u64).collect()
    }

    /// Bob's set `T = {2i − y_i}` (0-based: position i contributes `2i + 1 − y_i`).
    pub fn bob_set(y: &[bool]) -> Vec<u64> {
        y.iter().enumerate().map(|(i, &b)| 2 * i as u64 + 1 - b as u64).collect()
    }

    /// Run the protocol on a UR instance. Returns the reported differing
    /// index (if any) and the message size.
    ///
    /// The duplicates algorithm is run over the alphabet `P` (|P| = n): both
    /// players know `P` from shared randomness, so they relabel its elements
    /// to `[0, n)` before feeding them. Alice feeds `S ∩ P`, Bob feeds enough
    /// elements of `T ∩ P` to reach n + 1 letters in total; by pigeonhole a
    /// duplicate then exists, and any duplicate lies in `S ∩ T`, i.e. it
    /// encodes a position where x and y differ.
    pub fn run(&self, instance: &UrInstance, seeds: &mut SeedSequence) -> UrOutcome {
        let n = instance.len() as u64;
        let domain = 2 * n;
        let s_set = Self::alice_set(&instance.x);
        let t_set = Self::bob_set(&instance.y);
        // Shared randomness: a random subset P of [2n] of size n.
        let mut p_sorted = sample_distinct(domain, n, seeds);
        p_sorted.sort_unstable();
        let rank_of = |v: u64| p_sorted.binary_search(&v).ok().map(|r| r as u64);
        let s_in_p: Vec<u64> = s_set.iter().copied().filter_map(&rank_of).collect();
        let t_in_p: Vec<u64> = t_set.iter().copied().filter_map(&rank_of).collect();

        // Alice runs the duplicates algorithm (alphabet P, relabelled to [0, n))
        // on her elements and sends the memory state plus |S ∩ P|.
        let mut shared = seeds.split();
        let mut finder = DuplicateFinder::new(n, self.delta, &mut shared);
        for &v in &s_in_p {
            finder.process_letter(v);
        }
        let message_bits = finder.bits_used() + 64;

        // Bob aborts unless |S ∩ P| + |T ∩ P| ≥ n + 1 (happens with constant
        // probability by the counting argument in the proof).
        let needed = (n + 1).saturating_sub(s_in_p.len() as u64) as usize;
        if t_in_p.len() < needed {
            return UrOutcome { answer: None, message_bits };
        }
        for &v in t_in_p.iter().take(needed) {
            finder.process_letter(v);
        }
        let answer = match finder.report() {
            DuplicateResult::Duplicate(rank) => {
                // map the relabelled duplicate back to an element of S ∩ T,
                // which encodes the differing position ⌊a/2⌋.
                Some(p_sorted[rank as usize] / 2)
            }
            _ => None,
        };
        UrOutcome { answer, message_bits }
    }
}

/// Theorem 9: reduce augmented indexing over `[2^t]^s` to Lp heavy hitters
/// with parameter φ, using geometrically growing block weights
/// `b = (1 − (2φ)^p)^{−1/p}`.
#[derive(Debug, Clone)]
pub struct HeavyHittersToAugmentedIndexing {
    /// Block bit-width t (alphabet 2^t).
    pub t: u32,
    /// Number of blocks s.
    pub s: u32,
    /// Norm exponent p.
    pub p: f64,
    /// Heaviness threshold φ.
    pub phi: f64,
}

impl HeavyHittersToAugmentedIndexing {
    /// Create the reduction. Requires `(2φ)^p < 1` so the geometric weight is finite.
    pub fn new(s: u32, t: u32, p: f64, phi: f64) -> Self {
        assert!(s >= 1 && t >= 1);
        assert!(p > 0.0 && p <= 2.0);
        assert!(phi > 0.0 && 2.0 * phi < 1.0, "need (2φ)^p < 1");
        HeavyHittersToAugmentedIndexing { t, s, p, phi }
    }

    /// The geometric base `b = (1 − (2φ)^p)^{−1/p}`.
    pub fn base(&self) -> f64 {
        (1.0 - (2.0 * self.phi).powf(self.p)).powf(-1.0 / self.p)
    }

    /// Dimension of the heavy-hitters vector, `s·2^t`.
    pub fn dimension(&self) -> u64 {
        self.s as u64 * (1u64 << self.t)
    }

    /// The weight `⌈b^{s−j}⌉` given to block `j` (0-based; the last block has
    /// weight 1, earlier blocks grow geometrically).
    pub fn block_weight(&self, j: usize) -> i64 {
        let exp = (self.s as i32 - 1 - j as i32).max(0);
        self.base().powi(exp).ceil() as i64
    }

    /// Alice's non-zero entries `(index, weight)`.
    pub fn alice_entries(&self, string: &[u64]) -> Vec<(u64, i64)> {
        assert_eq!(string.len(), self.s as usize);
        let block = 1u64 << self.t;
        string
            .iter()
            .enumerate()
            .map(|(j, &symbol)| {
                assert!(symbol < block);
                (j as u64 * block + symbol, self.block_weight(j))
            })
            .collect()
    }

    /// Run the protocol: Alice feeds her increments into the heavy hitter
    /// sketch, Bob removes the blocks he knows (j < i) and reads the smallest
    /// reported index, which must be block i's symbol if the heavy hitter
    /// algorithm is correct.
    pub fn run(
        &self,
        instance: &AugmentedIndexingInstance,
        seeds: &mut SeedSequence,
    ) -> ReductionOutcome {
        assert_eq!(instance.len(), self.s as usize);
        assert_eq!(instance.alphabet, 1u64 << self.t);
        let n = self.dimension();
        let block = 1u64 << self.t;
        let mut hh = CountSketchHeavyHitters::new(n, self.p, self.phi, seeds);
        // Alice's updates.
        for (idx, w) in self.alice_entries(&instance.string) {
            hh.update(idx, w);
        }
        let message_bits = hh.bits_used();
        // Bob's updates: remove every block he already knows.
        for (j, &symbol) in instance.prefix().iter().enumerate() {
            let idx = j as u64 * block + symbol;
            hh.update(idx, -self.block_weight(j));
        }
        // Bob reads the heavy hitter set and decodes the smallest index.
        let reported = hh.report();
        let answer = reported.iter().copied().min().and_then(|idx| {
            let j = (idx / block) as usize;
            if j == instance.index {
                Some(idx % block)
            } else {
                None
            }
        });
        let correct = answer.map(|a| instance.is_correct(a)).unwrap_or(false);
        ReductionOutcome { answer, correct, message_bits }
    }

    /// Run the protocol against an *exact* heavy hitter oracle instead of the
    /// sketch. This isolates the reduction's own correctness (it should then
    /// succeed always), which is how the experiments validate Theorem 9's
    /// construction independently of sketch error.
    pub fn run_with_exact_oracle(&self, instance: &AugmentedIndexingInstance) -> ReductionOutcome {
        assert_eq!(instance.len(), self.s as usize);
        let block = 1u64 << self.t;
        let n = self.dimension();
        let mut values = vec![0i64; n as usize];
        for (idx, w) in self.alice_entries(&instance.string) {
            values[idx as usize] += w;
        }
        for (j, &symbol) in instance.prefix().iter().enumerate() {
            values[(j as u64 * block + symbol) as usize] -= self.block_weight(j);
        }
        let truth = lps_stream::TruthVector::from_values(values);
        let reported = lps_heavy::exact_heavy_hitters(&truth, self.p, self.phi);
        let answer = reported.iter().copied().min().and_then(|idx| {
            let j = (idx / block) as usize;
            if j == instance.index {
                Some(idx % block)
            } else {
                None
            }
        });
        let correct = answer.map(|a| instance.is_correct(a)).unwrap_or(false);
        ReductionOutcome { answer, correct, message_bits: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn theorem6_vector_construction_shapes() {
        let red = UrToAugmentedIndexing::new(4, 3, 0.25);
        assert_eq!(red.ur_dimension(), 15 * 8);
        let string = vec![1u64, 7, 0, 5];
        let alice = red.alice_positions(&string);
        // total copies = 8 + 4 + 2 + 1 = 15 positions set
        assert_eq!(alice.len(), 15);
        // every position decodes back to its block and symbol
        for &pos in &alice {
            let (j, symbol) = red.decode_index(pos);
            assert_eq!(symbol, string[j]);
        }
        // Bob with prefix of length 2 sets 8 + 4 positions
        assert_eq!(red.bob_positions(&string[..2]).len(), 12);
    }

    #[test]
    fn theorem6_end_to_end_advantage() {
        // The reduction run over the real L0-sampling UR protocol must answer
        // augmented indexing correctly more often than guessing (1/2^t) and
        // in fact better than 1/2 (the proof gives error (1+δ)/2 for a
        // uniform differing index; our sampler's distribution is uniform).
        let red = UrToAugmentedIndexing::new(5, 3, 0.2);
        let mut s = seeds(1);
        let trials = 30;
        let mut correct = 0;
        for _ in 0..trials {
            let inst = AugmentedIndexingInstance::random(5, 8, &mut s);
            let out = red.run(&inst, &mut s);
            if out.correct {
                correct += 1;
            }
            assert!(out.message_bits > 0);
        }
        assert!(correct * 3 >= trials, "correct {correct}/{trials} — advantage too small");
    }

    #[test]
    fn theorem7_set_construction_encodes_differences() {
        let x = vec![true, false, true, true];
        let y = vec![true, true, true, false];
        let s = DuplicatesToUr::alice_set(&x);
        let t = DuplicatesToUr::bob_set(&y);
        assert_eq!(s.len(), 4);
        assert_eq!(t.len(), 4);
        let s_set: std::collections::HashSet<u64> = s.into_iter().collect();
        let common: Vec<u64> = t.into_iter().filter(|v| s_set.contains(v)).collect();
        // positions 1 and 3 differ; their shared elements decode back to them
        let mut decoded: Vec<u64> = common.iter().map(|v| v / 2).collect();
        decoded.sort_unstable();
        assert_eq!(decoded, vec![1, 3]);
    }

    #[test]
    fn theorem7_protocol_reports_only_true_differences() {
        let red = DuplicatesToUr::new(0.25);
        let mut s = seeds(2);
        let trials = 25;
        let mut answered = 0;
        for t in 0..trials {
            let inst = UrInstance::random(128, 1 + (t % 5), &mut s);
            let out = red.run(&inst, &mut s);
            if let Some(i) = out.answer {
                assert!(inst.is_valid_answer(i), "reported index {i} does not differ");
                answered += 1;
            }
        }
        // the proof only promises constant success probability (> 1/32 here);
        // empirically it is far higher
        assert!(answered >= 5, "answered only {answered}/{trials}");
    }

    #[test]
    fn theorem9_base_and_weights() {
        let red = HeavyHittersToAugmentedIndexing::new(6, 4, 1.0, 0.25);
        let b = red.base();
        assert!((b - 2.0).abs() < 1e-12, "for p=1, φ=1/4: b = 1/(1-1/2) = 2");
        assert_eq!(red.block_weight(5), 1);
        assert_eq!(red.block_weight(4), 2);
        assert_eq!(red.block_weight(0), 32);
        assert_eq!(red.dimension(), 6 * 16);
    }

    #[test]
    fn theorem9_exact_oracle_always_correct() {
        // With an exact heavy hitter oracle the construction itself must
        // always reveal x_i: the first surviving block's weight exceeds φ
        // times the norm of the remaining geometric tail.
        let red = HeavyHittersToAugmentedIndexing::new(8, 4, 1.0, 0.25);
        let mut s = seeds(3);
        for _ in 0..50 {
            let inst = AugmentedIndexingInstance::random(8, 16, &mut s);
            let out = red.run_with_exact_oracle(&inst);
            assert!(out.correct, "exact-oracle reduction failed on {inst:?}");
        }
    }

    #[test]
    fn theorem9_with_real_sketch_succeeds_mostly() {
        let red = HeavyHittersToAugmentedIndexing::new(6, 3, 1.0, 0.2);
        let mut s = seeds(4);
        let trials = 20;
        let mut correct = 0;
        for _ in 0..trials {
            let inst = AugmentedIndexingInstance::random(6, 8, &mut s);
            let out = red.run(&inst, &mut s);
            if out.correct {
                correct += 1;
            }
            assert!(out.message_bits > 0);
        }
        assert!(correct * 2 >= trials, "correct {correct}/{trials}");
    }
}

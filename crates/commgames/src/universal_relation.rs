//! The universal relation communication problem UR^n (Section 4.1).
//!
//! Alice holds `x ∈ {0,1}^n`, Bob holds `y ∈ {0,1}^n`, with the promise
//! `x ≠ y`; after the messages are exchanged the last receiver must name an
//! index where the strings differ.
//!
//! Proposition 5 of the paper gives a one-round randomized protocol with
//! `O(log² n log(1/δ))` bits: Alice runs the L0 sampler of Theorem 2 on her
//! string (as +1 updates), sends its memory state, and Bob continues the same
//! sampler with −1 updates for his string; the sampler then L0-samples
//! `x − y`, i.e. returns a (uniformly random) differing index. Theorem 6
//! shows this is optimal up to the `log(1/δ)` factor.
//!
//! For comparison we also provide the trivial deterministic protocol (Alice
//! sends all of `x`, n bits — essentially optimal deterministically by
//! Tardos–Zwick), and the Lemma 7 symmetrisation wrapper that makes any
//! protocol output each differing index with equal probability.

use lps_core::{L0Sampler, LpSampler};
use lps_hash::SeedSequence;
use lps_stream::{random_permutation, SpaceUsage, Update};

/// An instance of the universal relation: two distinct bit strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrInstance {
    /// Alice's string.
    pub x: Vec<bool>,
    /// Bob's string.
    pub y: Vec<bool>,
}

impl UrInstance {
    /// Create an instance, checking the promise `x ≠ y`.
    pub fn new(x: Vec<bool>, y: Vec<bool>) -> Self {
        assert_eq!(x.len(), y.len(), "strings must have equal length");
        assert!(x != y, "the universal relation requires x != y");
        UrInstance { x, y }
    }

    /// A random instance over `n` bits with exactly `differences ≥ 1`
    /// uniformly placed differing positions.
    pub fn random(n: u64, differences: u64, seeds: &mut SeedSequence) -> Self {
        assert!(differences >= 1 && differences <= n);
        let x: Vec<bool> = (0..n).map(|_| seeds.next_u64() & 1 == 1).collect();
        let mut y = x.clone();
        let positions = lps_stream::sample_distinct(n, differences, seeds);
        for p in positions {
            y[p as usize] = !y[p as usize];
        }
        UrInstance { x, y }
    }

    /// Dimension n.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the strings are empty (never for valid instances).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The set of indices where x and y differ.
    pub fn differing_indices(&self) -> Vec<u64> {
        self.x
            .iter()
            .zip(self.y.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Check a protocol answer.
    pub fn is_valid_answer(&self, index: u64) -> bool {
        let i = index as usize;
        i < self.x.len() && self.x[i] != self.y[i]
    }
}

/// The outcome of running a UR protocol: the answer (if any) and the number
/// of message bits exchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UrOutcome {
    /// The index the protocol output, or `None` if it failed.
    pub answer: Option<u64>,
    /// Total bits communicated (for the one-round sketch protocol this is the
    /// streaming memory state Alice hands to Bob, in the paper's bit model).
    pub message_bits: u64,
}

/// The one-round randomized protocol of Proposition 5, built on the Theorem 2
/// L0 sampler.
#[derive(Debug, Clone)]
pub struct UrSketchProtocol {
    delta: f64,
}

impl UrSketchProtocol {
    /// Create a protocol with failure probability ≤ δ.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        UrSketchProtocol { delta }
    }

    /// Run the protocol on an instance with shared randomness from `seeds`.
    pub fn run(&self, instance: &UrInstance, seeds: &mut SeedSequence) -> UrOutcome {
        let n = instance.len() as u64;
        // Shared randomness: both parties construct the same sampler seeds.
        let mut shared = seeds.split();
        // Alice's side: feed +x.
        let mut sampler = L0Sampler::new(n, self.delta, &mut shared);
        for (i, &bit) in instance.x.iter().enumerate() {
            if bit {
                sampler.process_update(Update::new(i as u64, 1));
            }
        }
        // The message is the sampler's memory state (bit-model accounted).
        let message_bits = sampler.bits_used();
        // Bob's side: continue the same linear sketches with −y.
        for (i, &bit) in instance.y.iter().enumerate() {
            if bit {
                sampler.process_update(Update::new(i as u64, -1));
            }
        }
        let answer = sampler.sample().map(|s| s.index);
        UrOutcome { answer, message_bits }
    }
}

/// The trivial deterministic one-round protocol: Alice sends her whole
/// string (n bits). Tardos–Zwick show n ± O(log n) bits is what deterministic
/// protocols need, so this is the right deterministic yardstick.
pub fn ur_deterministic_protocol(instance: &UrInstance) -> UrOutcome {
    let answer =
        instance.x.iter().zip(instance.y.iter()).position(|(a, b)| a != b).map(|i| i as u64);
    UrOutcome { answer, message_bits: instance.len() as u64 }
}

/// Lemma 7 symmetrisation: run a protocol on a uniformly permuted and
/// XOR-masked instance so that every differing index is reported with the
/// same probability. The transformation uses only shared randomness and does
/// not change the message length.
pub fn run_symmetrised<F>(instance: &UrInstance, seeds: &mut SeedSequence, protocol: F) -> UrOutcome
where
    F: Fn(&UrInstance, &mut SeedSequence) -> UrOutcome,
{
    let n = instance.len() as u64;
    let perm = random_permutation(n, seeds);
    let mask: Vec<bool> = (0..n).map(|_| seeds.next_u64() & 1 == 1).collect();
    // inverse permutation to map the answer back
    let mut inv = vec![0u64; n as usize];
    for (dst, &src) in perm.iter().enumerate() {
        inv[src as usize] = dst as u64;
    }
    // permuted-and-masked inputs: x'[j] = x[perm[j]] ^ mask[j]
    let xp: Vec<bool> = (0..n as usize).map(|j| instance.x[perm[j] as usize] ^ mask[j]).collect();
    let yp: Vec<bool> = (0..n as usize).map(|j| instance.y[perm[j] as usize] ^ mask[j]).collect();
    let permuted = UrInstance { x: xp, y: yp };
    let outcome = protocol(&permuted, seeds);
    UrOutcome {
        answer: outcome.answer.map(|j| perm[j as usize]),
        message_bits: outcome.message_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::EmpiricalDistribution;

    #[test]
    fn instance_construction_and_checks() {
        let inst = UrInstance::new(vec![true, false, true], vec![true, true, true]);
        assert_eq!(inst.differing_indices(), vec![1]);
        assert!(inst.is_valid_answer(1));
        assert!(!inst.is_valid_answer(0));
        assert!(!inst.is_valid_answer(5));
    }

    #[test]
    #[should_panic]
    fn equal_strings_rejected() {
        let _ = UrInstance::new(vec![true], vec![true]);
    }

    #[test]
    fn random_instances_have_requested_differences() {
        let mut seeds = SeedSequence::new(1);
        for d in [1u64, 3, 17] {
            let inst = UrInstance::random(128, d, &mut seeds);
            assert_eq!(inst.differing_indices().len() as u64, d);
        }
    }

    #[test]
    fn deterministic_protocol_always_correct() {
        let mut seeds = SeedSequence::new(2);
        for _ in 0..20 {
            let inst = UrInstance::random(64, 5, &mut seeds);
            let out = ur_deterministic_protocol(&inst);
            assert_eq!(out.message_bits, 64);
            assert!(inst.is_valid_answer(out.answer.unwrap()));
        }
    }

    #[test]
    fn sketch_protocol_is_correct_with_good_probability() {
        let mut seeds = SeedSequence::new(3);
        let protocol = UrSketchProtocol::new(0.2);
        let trials = 40;
        let mut correct = 0;
        let mut wrong = 0;
        for t in 0..trials {
            let inst = UrInstance::random(256, 1 + (t % 7), &mut seeds);
            let out = protocol.run(&inst, &mut seeds);
            match out.answer {
                Some(i) if inst.is_valid_answer(i) => correct += 1,
                Some(_) => wrong += 1,
                None => {}
            }
            assert!(out.message_bits > 0);
        }
        assert_eq!(wrong, 0, "the protocol must never output a non-differing index");
        assert!(correct >= 30, "only {correct}/{trials} correct");
    }

    #[test]
    fn sketch_protocol_message_grows_slowly_with_n() {
        let mut seeds = SeedSequence::new(4);
        let protocol = UrSketchProtocol::new(0.25);
        let small_n = 1u64 << 8;
        let large_n = 1u64 << 12;
        let small = protocol.run(&UrInstance::random(small_n, 3, &mut seeds), &mut seeds);
        let large = protocol.run(&UrInstance::random(large_n, 3, &mut seeds), &mut seeds);
        let ratio = large.message_bits as f64 / small.message_bits as f64;
        // n grew by 16x; a log^2 n message grows by roughly (12/8)^2 = 2.25x
        assert!(ratio < 4.0, "message growth {ratio:.2} is too fast for a polylog protocol");
        // Relative to the deterministic n-bit protocol the sketch message must
        // shrink as n grows (polylog vs linear); the absolute crossover happens
        // at larger n than a unit test can afford (EXPERIMENTS.md, E9).
        let small_overhead = small.message_bits as f64 / small_n as f64;
        let large_overhead = large.message_bits as f64 / large_n as f64;
        assert!(
            large_overhead < 0.5 * small_overhead,
            "message/n should fall: {small_overhead:.1} -> {large_overhead:.1}"
        );
    }

    #[test]
    fn symmetrised_protocol_outputs_each_difference_roughly_uniformly() {
        // Use the deterministic protocol (which always reports the *first*
        // difference) and check that Lemma 7's wrapper flattens that bias.
        let mut seeds = SeedSequence::new(5);
        let inst = UrInstance::random(64, 4, &mut seeds);
        let diffs = inst.differing_indices();
        let mut empirical = EmpiricalDistribution::new(64);
        let trials = 4000;
        for _ in 0..trials {
            let out = run_symmetrised(&inst, &mut seeds, |i, _| ur_deterministic_protocol(i));
            let a = out.answer.unwrap();
            assert!(inst.is_valid_answer(a));
            empirical.record(a);
        }
        let expected = 1.0 / diffs.len() as f64;
        for &d in &diffs {
            let freq = empirical.probability(d);
            assert!(
                (freq - expected).abs() < 0.05,
                "difference {d} reported with frequency {freq}, expected {expected}"
            );
        }
    }
}

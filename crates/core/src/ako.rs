//! The Andoni–Krauthgamer–Onak precision-sampling baseline.
//!
//! AKO ("Streaming algorithms via precision sampling", 2010) introduced the
//! scheme the paper refines: scale `x` by pairwise-independent `1/t_i`
//! factors and find the maximum of the scaled vector with a count-sketch.
//! Their analysis needs the count-sketch to localise a coordinate that is an
//! `Ω(1/log n)` fraction of `‖z‖₁`, which forces the sketch width to grow by
//! an extra `O(log n)` factor: total space `O(ε^{−p} log³ n)` bits versus the
//! paper's `O(ε^{−p} log² n)`.
//!
//! We reproduce that baseline faithfully *in its space usage and structure*:
//! pairwise-independent scaling factors, a count-sketch whose width carries
//! the extra `O(log n)` factor, and a recovery rule that only checks the
//! magnitude threshold (no tail-error guard — that guard is exactly the
//! paper's innovation). Experiment E2 compares the measured bits of the two
//! samplers as n grows, which is where the `log³` vs `log²` gap shows.

use lps_hash::{KWiseHash, SeedSequence};
use lps_sketch::persist::tags;
use lps_sketch::{
    rows_for_dimension, CountSketch, DecodeError, LinearSketch, Mergeable, PStableSketch, Persist,
    StateDigest, WireReader, WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update};

use crate::traits::{LpSampler, Sample};

/// Constant factor on the AKO count-sketch parameter.
const AKO_M_CONSTANT: f64 = 12.0;

/// The AKO-style precision sampler baseline (p ∈ [1, 2)).
#[derive(Debug, Clone)]
pub struct AkoSampler {
    p: f64,
    epsilon: f64,
    dimension: u64,
    scaling: KWiseHash,
    count_sketch: CountSketch,
    norm_sketch: PStableSketch,
}

impl AkoSampler {
    /// Create an AKO baseline sampler.
    pub fn new(dimension: u64, p: f64, epsilon: f64, seeds: &mut SeedSequence) -> Self {
        assert!((1.0..2.0).contains(&p), "the AKO baseline covers p in [1, 2), got {p}");
        assert!(epsilon > 0.0 && epsilon < 1.0);
        // Pairwise-independent scaling factors (the paper strengthens this to
        // k-wise; AKO's analysis only uses pairwise).
        let scaling = KWiseHash::new(2, seeds);
        // The extra log n width factor relative to the paper's sampler.
        let log_n = (dimension.max(4) as f64).log2().ceil() as usize;
        let m = ((AKO_M_CONSTANT * epsilon.powf(-p)).ceil() as usize).max(2) * log_n.max(1);
        let rows = rows_for_dimension(dimension);
        let count_sketch = CountSketch::new(dimension, m, rows, seeds);
        let norm_sketch = PStableSketch::with_default_rows(dimension, p, seeds);
        AkoSampler { p, epsilon, dimension, scaling, count_sketch, norm_sketch }
    }

    /// The width parameter of the internal count-sketch (exposed so the space
    /// experiment can report it).
    pub fn sketch_m(&self) -> usize {
        self.count_sketch.m()
    }

    fn scaling_factor(&self, index: u64) -> f64 {
        self.scaling.unit_interval(index)
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. Both inner sketches hold dense `f64` counters, so sharding
    /// this sampler is approximate (estimator-level drift); the engine
    /// requires an explicit approximate-tolerance plan to drive it.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        lps_sketch::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// coincides with [`Mergeable::merge_from`] on both inner sketches.
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl LpSampler for AkoSampler {
    fn process_update(&mut self, update: Update) {
        let i = update.index;
        debug_assert!(i < self.dimension);
        let delta = update.delta as f64;
        let scaled = delta * self.scaling_factor(i).powf(-1.0 / self.p);
        self.count_sketch.update(i, scaled);
        self.norm_sketch.update(i, delta);
    }

    /// Batched fast path: cache the scale multiplier per distinct index and
    /// apply updates in stream order (same discipline as the paper's
    /// precision sampler — see `PrecisionLpSampler::process_batch`).
    fn process_batch(&mut self, updates: &[Update]) {
        let mut multipliers: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for u in updates {
            debug_assert!(u.index < self.dimension);
            let mult = *multipliers
                .entry(u.index)
                .or_insert_with(|| self.scaling_factor(u.index).powf(-1.0 / self.p));
            let delta = u.delta as f64;
            self.count_sketch.update(u.index, delta * mult);
            self.norm_sketch.update(u.index, delta);
        }
    }

    fn sample(&self) -> Option<Sample> {
        let r = self.norm_sketch.upper_estimate();
        if r.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let (index, zstar) = self.count_sketch.argmax_estimate();
        // AKO accepts when the maximum scaled coordinate crosses the
        // magnitude threshold; there is no tail-error guard.
        if zstar.abs() < self.epsilon.powf(-1.0 / self.p) * r {
            return None;
        }
        let t = self.scaling_factor(index);
        Some(Sample { index, estimate: zstar * t.powf(1.0 / self.p) })
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }

    fn name(&self) -> &'static str {
        "ako-baseline"
    }
}

impl Mergeable for AkoSampler {
    /// Merge an identically-seeded baseline by composing its inner sketch
    /// merges (real-valued counters: linear up to floating-point rounding).
    ///
    /// Sharded ingestion drifts from sequential by at most `~2kε` relative
    /// per counter (`k` = shard count, `ε = 2⁻⁵³`, modulo cancellation;
    /// Kahan compensation keeps each shard's sums exact to `O(ε)`) — see
    /// `PrecisionLpSampler::merge_from` for the bound's
    /// derivation and `tests/float_drift.rs` for the measurement.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.p, other.p, "exponent mismatch");
        assert_eq!(self.epsilon, other.epsilon, "epsilon mismatch");
        self.count_sketch.merge_from(&other.count_sketch);
        self.norm_sketch.merge_from(&other.norm_sketch);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.count_sketch.state_digest()).write_u64(self.norm_sketch.state_digest());
        d.finish()
    }
}

impl Persist for AkoSampler {
    const TAG: u16 = tags::AKO_SAMPLER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_f64(self.p);
        w.write_f64(self.epsilon);
        self.scaling.encode_seeds(w);
        self.count_sketch.encode_seeds(w);
        self.norm_sketch.encode_seeds(w);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        self.count_sketch.encode_counters(w);
        self.norm_sketch.encode_counters(w);
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let p = seeds.read_finite_f64("AKO sampler p must be finite")?;
        let epsilon = seeds.read_finite_f64("AKO sampler epsilon must be finite")?;
        if dimension == 0 || !(1.0..2.0).contains(&p) || !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(DecodeError::Corrupt {
                context: "AKO sampler needs p in [1, 2) and epsilon in (0, 1)",
            });
        }
        let scaling = KWiseHash::decode_parts(seeds, counters)?;
        let count_sketch = CountSketch::decode_parts(seeds, counters)?;
        let norm_sketch = PStableSketch::decode_parts(seeds, counters)?;
        Ok(AkoSampler { p, epsilon, dimension, scaling, count_sketch, norm_sketch })
    }
}

impl SpaceUsage for AkoSampler {
    fn space(&self) -> SpaceBreakdown {
        let scaling_bits = SpaceBreakdown::new(0, 0, self.scaling.random_bits());
        self.count_sketch.space().combine(&self.norm_sketch.space()).combine(&scaling_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::PrecisionLpSampler;
    use lps_stream::{sparse_vector_stream, TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    #[should_panic]
    fn p_below_one_rejected() {
        let mut s = seeds(1);
        let _ = AkoSampler::new(64, 0.5, 0.5, &mut s);
    }

    #[test]
    fn zero_vector_fails() {
        let mut s = seeds(2);
        let sampler = AkoSampler::new(128, 1.0, 0.5, &mut s);
        assert!(sampler.sample().is_none());
    }

    #[test]
    fn samples_come_from_support() {
        let n = 512u64;
        let mut gen = seeds(3);
        let stream = sparse_vector_stream(n, 12, 30, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();
        let mut successes = 0;
        for seed in 0..60u64 {
            let mut s = seeds(100 + seed);
            let mut sampler = AkoSampler::new(n, 1.0, 0.5, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                successes += 1;
                assert!(support.contains(&sample.index));
            }
        }
        assert!(successes > 0);
    }

    #[test]
    fn uses_more_space_than_the_papers_sampler() {
        // The whole point of the paper: AKO carries an extra O(log n) factor.
        let n = 1 << 14;
        let mut s1 = seeds(4);
        let mut s2 = seeds(4);
        let ako = AkoSampler::new(n, 1.0, 0.25, &mut s1);
        let ours = PrecisionLpSampler::new(n, 1.0, 0.25, &mut s2);
        assert!(
            ako.bits_used() > 3 * ours.bits_used(),
            "AKO ({}) should be much larger than the paper's sampler ({})",
            ako.bits_used(),
            ours.bits_used()
        );
    }

    #[test]
    fn space_gap_grows_with_dimension() {
        let mut ratio_small = 0.0;
        let mut ratio_large = 0.0;
        for (n, out) in [(1u64 << 10, &mut ratio_small), (1u64 << 18, &mut ratio_large)] {
            let mut s1 = seeds(5);
            let mut s2 = seeds(5);
            let ako = AkoSampler::new(n, 1.5, 0.5, &mut s1);
            let ours = PrecisionLpSampler::new(n, 1.5, 0.5, &mut s2);
            *out = ako.bits_used() as f64 / ours.bits_used() as f64;
        }
        assert!(
            ratio_large > ratio_small,
            "the log-factor gap should widen with n (small {ratio_small:.2}, large {ratio_large:.2})"
        );
    }

    #[test]
    fn heavy_coordinate_dominates_output() {
        let n = 128u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        stream.push(Update::new(7, 90));
        stream.push(Update::new(80, 3));
        let mut heavy = 0;
        let mut other = 0;
        for seed in 0..200u64 {
            let mut s = seeds(700 + seed);
            let mut sampler = AkoSampler::new(n, 1.0, 0.4, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                if sample.index == 7 {
                    heavy += 1;
                } else {
                    other += 1;
                }
            }
        }
        assert!(heavy > 3 * other.max(1), "heavy {heavy} vs other {other}");
    }
}

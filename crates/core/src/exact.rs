//! An exact (full-memory) Lp sampler used as ground truth in experiments.
//!
//! This sampler stores the entire frequency vector, computes the exact Lp
//! distribution of Definition 1 and samples from it. It is *not* a streaming
//! algorithm (Θ(n log n) bits); its only purpose is to provide the reference
//! distribution and reference estimates the sketched samplers are compared
//! against in EXPERIMENTS.md.

use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{DecodeError, Mergeable, Persist, StateDigest, WireReader, WireWriter};
use lps_stream::{SpaceBreakdown, SpaceUsage, TruthVector, Update};

use crate::traits::{LpSampler, Sample};

/// A full-memory exact Lp sampler (ground truth only).
#[derive(Debug, Clone)]
pub struct ExactSampler {
    p: f64,
    vector: TruthVector,
    rng_seed: u64,
    draws: std::cell::Cell<u64>,
}

impl ExactSampler {
    /// Create an exact sampler for the given exponent (`p ≥ 0`).
    pub fn new(dimension: u64, p: f64, seeds: &mut SeedSequence) -> Self {
        assert!(p >= 0.0);
        ExactSampler {
            p,
            vector: TruthVector::zeros(dimension),
            rng_seed: seeds.next_u64(),
            draws: std::cell::Cell::new(0),
        }
    }

    /// Access the exact aggregated vector.
    pub fn vector(&self) -> &TruthVector {
        &self.vector
    }

    /// Draw an independent sample (unlike sketched samplers, the exact
    /// sampler can produce as many independent samples as desired).
    pub fn draw(&self) -> Option<Sample> {
        let dist = self.vector.lp_distribution(self.p)?;
        let draw_index = self.draws.get();
        self.draws.set(draw_index + 1);
        let mut rng =
            SeedSequence::new(self.rng_seed ^ draw_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mut acc = 0.0;
        for (i, &pmass) in dist.iter().enumerate() {
            acc += pmass;
            if u < acc {
                return Some(Sample {
                    index: i as u64,
                    estimate: self.vector.get(i as u64) as f64,
                });
            }
        }
        // numerical slack: return the last non-zero coordinate
        dist.iter()
            .rposition(|&v| v > 0.0)
            .map(|i| Sample { index: i as u64, estimate: self.vector.get(i as u64) as f64 })
    }
}

impl Mergeable for ExactSampler {
    /// The identity map is trivially linear: merging adds the exact vectors
    /// coordinate by coordinate.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.vector.dimension(), other.vector.dimension(), "dimension mismatch");
        for i in 0..other.vector.dimension() {
            let v = other.vector.get(i);
            if v != 0 {
                self.vector.apply(Update::new(i, v));
            }
        }
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in self.vector.values() {
            d.write_i64(v);
        }
        d.finish()
    }
}

impl Persist for ExactSampler {
    const TAG: u16 = tags::EXACT_SAMPLER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.vector.dimension());
        w.write_f64(self.p);
        w.write_u64(self.rng_seed);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for &v in self.vector.values() {
            w.write_i64(v);
        }
        // the draw counter is query state, but it determines the next sample,
        // so a checkpointed sampler resumes its draw stream where it left off
        w.write_u64(self.draws.get());
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let p = seeds.read_finite_f64("exact sampler p must be finite")?;
        if dimension == 0 || p < 0.0 {
            return Err(DecodeError::Corrupt { context: "exact sampler needs p >= 0" });
        }
        let rng_seed = seeds.read_u64()?;
        let count = usize::try_from(dimension)
            .map_err(|_| DecodeError::Corrupt { context: "exact sampler dimension too large" })?;
        let values = counters.read_i64s(count)?;
        let draws = counters.read_u64()?;
        Ok(ExactSampler {
            p,
            vector: TruthVector::from_values(values),
            rng_seed,
            draws: std::cell::Cell::new(draws),
        })
    }
}

impl LpSampler for ExactSampler {
    fn process_update(&mut self, update: Update) {
        self.vector.apply(update);
    }

    fn sample(&self) -> Option<Sample> {
        self.draw()
    }

    fn p(&self) -> f64 {
        self.p
    }

    fn dimension(&self) -> u64 {
        self.vector.dimension()
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

impl SpaceUsage for ExactSampler {
    fn space(&self) -> SpaceBreakdown {
        let n = self.vector.dimension();
        SpaceBreakdown::new(
            n,
            lps_stream::counter_bits_for(n, self.vector.max_abs().unsigned_abs().max(2)),
            64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{EmpiricalDistribution, TurnstileModel, UpdateStream};

    #[test]
    fn exact_sampler_matches_lp_distribution() {
        let n = 16u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        stream.push(Update::new(0, 1));
        stream.push(Update::new(1, -3));
        stream.push(Update::new(5, 6));
        let mut seeds = SeedSequence::new(1);
        let mut sampler = ExactSampler::new(n, 1.0, &mut seeds);
        sampler.process_stream(&stream);
        let reference = sampler.vector().lp_distribution(1.0).unwrap();
        let mut empirical = EmpiricalDistribution::new(n);
        for _ in 0..20_000 {
            empirical.record(sampler.draw().unwrap().index);
        }
        assert!(empirical.total_variation(&reference) < 0.02);
    }

    #[test]
    fn zero_vector_fails() {
        let mut seeds = SeedSequence::new(2);
        let sampler = ExactSampler::new(8, 1.0, &mut seeds);
        assert!(sampler.sample().is_none());
    }

    #[test]
    fn l0_mode_uniform_over_support() {
        let n = 8u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        stream.push(Update::new(0, 100));
        stream.push(Update::new(3, 1));
        let mut seeds = SeedSequence::new(3);
        let mut sampler = ExactSampler::new(n, 0.0, &mut seeds);
        sampler.process_stream(&stream);
        let mut counts = [0u64; 2];
        for _ in 0..4000 {
            match sampler.draw().unwrap().index {
                0 => counts[0] += 1,
                3 => counts[1] += 1,
                other => panic!("sampled {other}, not in support"),
            }
        }
        let frac = counts[0] as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "L0 sampling should ignore magnitudes, got {frac}");
    }

    #[test]
    fn estimates_are_exact() {
        let mut seeds = SeedSequence::new(4);
        let mut sampler = ExactSampler::new(8, 1.0, &mut seeds);
        sampler.process_update(Update::new(2, -9));
        let s = sampler.sample().unwrap();
        assert_eq!(s.index, 2);
        assert_eq!(s.estimate, -9.0);
    }
}

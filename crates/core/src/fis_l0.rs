//! A Frahling–Indyk–Sohler-style O(log³ n)-bit L0 sampler baseline.
//!
//! The paper improves the L0-sampling space bound from the O(log³ n) bits of
//! Frahling, Indyk and Sohler (SCG'05) to O(log² n) bits (Theorem 2). This
//! module implements the classic log³-style construction so Experiment E3 can
//! compare the two: `⌊log n⌋ + 1` geometric subsampling levels, each level
//! holding `O(log n)` independent 1-sparse detection cells (each cell is
//! O(log n) bits), giving O(log² n) counters ≈ O(log³ n) bits.
//!
//! Recovery scans the levels for any cell that currently holds exactly one
//! coordinate and returns it. With a support of size `2^k`, the level whose
//! sampling rate is `≈ 2^{-k}` isolates a single support element in any fixed
//! cell with constant probability, so some cell on that level succeeds with
//! high probability; conditioned on success the recovered element is (close
//! to) uniform over the support by symmetry.

use lps_hash::{Fp, PowTable, SeedSequence, TabulationHash};
use lps_sketch::persist::tags;
use lps_sketch::{
    fingerprint_term, fingerprint_terms, CellState, DecodeError, Mergeable, OneSparseCell, Persist,
    StateDigest, WireReader, WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update};

use crate::traits::{LpSampler, Sample};

/// One (level, repetition) slot: an inclusion hash plus a 1-sparse cell.
#[derive(Debug, Clone)]
struct Slot {
    /// Coordinates are included when `hash(i) < 2^64 / 2^level` (probability 2^{-level}).
    inclusion: TabulationHash,
    cell: OneSparseCell,
}

/// A log³-style L0 sampler baseline.
#[derive(Debug, Clone)]
pub struct FisL0Sampler {
    dimension: u64,
    levels: usize,
    repetitions: usize,
    slots: Vec<Slot>,
    /// Precomputed powers of the shared fingerprint base (derived, not
    /// charged as stored randomness): every slot's cell folds in the same
    /// `signed(Δ)·r^i` term, so it is computed once per update. The base
    /// itself is recoverable via `pow.base()`.
    pow: PowTable,
}

impl FisL0Sampler {
    /// Create a baseline sampler with `O(log n)` repetitions per level.
    pub fn new(dimension: u64, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0);
        let levels = (dimension.max(2) as f64).log2().floor() as usize + 1;
        let repetitions = (((dimension.max(2) as f64).log2().ceil() as usize) + 4).max(8);
        let mut slots = Vec::with_capacity(levels * repetitions);
        for _ in 0..levels * repetitions {
            slots.push(Slot { inclusion: TabulationHash::new(seeds), cell: OneSparseCell::new() });
        }
        let fingerprint_base = Fp::new(seeds.next_u64() % (lps_hash::MERSENNE_P - 2) + 1);
        let pow = PowTable::new(fingerprint_base);
        FisL0Sampler { dimension, levels, repetitions, slots, pow }
    }

    /// Number of subsampling levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Repetitions per level.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    fn slot_included(&self, level: usize, rep: usize, index: u64) -> bool {
        if level == 0 {
            return true;
        }
        if level >= 64 {
            return false;
        }
        let slot = &self.slots[level * self.repetitions + rep];
        slot.inclusion.hash(index) < (u64::MAX >> level)
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone (slot shape depends on `n` only through the level/repetition
    /// counts; exact recombination needs the same inclusion hashes and
    /// fingerprint powers at global coordinates).
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        lps_sketch::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge: absorb a sibling shard whose ingested key range
    /// was disjoint from ours. Bit-identical to [`Mergeable::merge_from`]
    /// (cell merges are field/integer addition and an all-zero cell merge is
    /// a bitwise no-op), skipping slots the sibling never touched.
    pub fn merge_disjoint(&mut self, other: &Self) {
        assert_eq!(self.slots.len(), other.slots.len(), "slot-count mismatch");
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            if !b.cell.is_zero() {
                a.cell.merge_from(&b.cell);
            }
        }
    }
}

impl LpSampler for FisL0Sampler {
    fn process_update(&mut self, update: Update) {
        debug_assert!(update.index < self.dimension);
        if update.delta == 0 {
            return;
        }
        // one fingerprint-term computation shared by all included slots
        let term = fingerprint_term(update.index, update.delta, &self.pow);
        for level in 0..self.levels {
            for rep in 0..self.repetitions {
                if self.slot_included(level, rep, update.index) {
                    self.slots[level * self.repetitions + rep].cell.apply(
                        update.index,
                        update.delta,
                        term,
                    );
                }
            }
        }
    }

    /// Batched fast path: coalesce the batch, compute each entry's
    /// fingerprint term once (lane-parallel, via
    /// [`lps_sketch::fingerprint_terms`]), then walk the slot table
    /// level-major so each pass touches one level's contiguous cells.
    fn process_batch(&mut self, updates: &[Update]) {
        let coalesced = lps_stream::coalesce_updates(updates);
        if coalesced.is_empty() {
            return;
        }
        let terms: Vec<Fp> = fingerprint_terms(&coalesced, &self.pow);
        for level in 0..self.levels {
            for rep in 0..self.repetitions {
                for (&(index, delta), &term) in coalesced.iter().zip(terms.iter()) {
                    debug_assert!(index < self.dimension);
                    if self.slot_included(level, rep, index) {
                        self.slots[level * self.repetitions + rep].cell.apply(index, delta, term);
                    }
                }
            }
        }
    }

    fn sample(&self) -> Option<Sample> {
        // scan levels from the sparsest (highest) downwards so dense supports
        // are caught by heavily-subsampled levels first
        for level in (0..self.levels).rev() {
            for rep in 0..self.repetitions {
                let cell = &self.slots[level * self.repetitions + rep].cell;
                if let CellState::OneSparse(index, value) =
                    cell.state_with(self.dimension, &self.pow)
                {
                    return Some(Sample { index, estimate: value as f64 });
                }
            }
        }
        None
    }

    fn p(&self) -> f64 {
        0.0
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }

    fn name(&self) -> &'static str {
        "fis-l0-baseline"
    }
}

impl Mergeable for FisL0Sampler {
    /// Merge an identically-seeded baseline slot by slot (field/integer
    /// arithmetic, so the merge is exact).
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.slots.len(), other.slots.len(), "slot-count mismatch");
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            a.cell.merge_from(&b.cell);
        }
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for slot in &self.slots {
            d.write_u64(slot.cell.state_digest());
        }
        d.finish()
    }
}

impl Persist for FisL0Sampler {
    const TAG: u16 = tags::FIS_L0_SAMPLER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_len(self.levels);
        w.write_len(self.repetitions);
        w.write_fp(self.pow.base());
        for slot in &self.slots {
            slot.inclusion.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for slot in &self.slots {
            slot.cell.encode_counters(w);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        if dimension == 0 {
            return Err(DecodeError::Corrupt { context: "FIS L0 dimension must be > 0" });
        }
        let levels = seeds.read_count(1)?;
        let repetitions = seeds.read_count(1)?;
        if levels == 0 || repetitions == 0 {
            return Err(DecodeError::Corrupt { context: "FIS L0 shape must be non-zero" });
        }
        let fingerprint_base = seeds.read_fp()?;
        let slot_count = levels
            .checked_mul(repetitions)
            .ok_or(DecodeError::Corrupt { context: "FIS L0 slot count overflows" })?;
        // Each slot's tabulation tables are 8 × 256 words in the seed section.
        seeds.claim(slot_count, 8 * 256 * 8)?;
        counters.claim(slot_count, 8 + 16 + 8)?;
        let slots = (0..slot_count)
            .map(|_| {
                let inclusion = TabulationHash::decode_parts(seeds, counters)?;
                let cell = OneSparseCell::decode_parts(seeds, counters)?;
                Ok(Slot { inclusion, cell })
            })
            .collect::<Result<Vec<_>, DecodeError>>()?;
        Ok(FisL0Sampler {
            dimension,
            levels,
            repetitions,
            slots,
            pow: PowTable::new(fingerprint_base),
        })
    }
}

impl SpaceUsage for FisL0Sampler {
    fn space(&self) -> SpaceBreakdown {
        // three counters per cell; inclusion hashes are charged at the
        // idealised O(log n) bits each (the in-memory tabulation tables are an
        // implementation convenience standing in for a seeded hash function,
        // exactly as the FIS paper assumes).
        let counters = (self.levels * self.repetitions * 3) as u64;
        let counter_bits = lps_stream::counter_bits_for(self.dimension, self.dimension).max(61);
        let hash_bits = (self.levels * self.repetitions) as u64
            * 2
            * (self.dimension.max(2) as f64).log2().ceil() as u64;
        SpaceBreakdown::new(counters, counter_bits, hash_bits + 61)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l0::L0Sampler;
    use lps_stream::{sparse_vector_stream, TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn zero_vector_fails() {
        let mut s = seeds(1);
        let sampler = FisL0Sampler::new(256, &mut s);
        assert!(sampler.sample().is_none());
    }

    #[test]
    fn single_survivor_after_cancellation() {
        let n = 512u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        for i in 0..200u64 {
            stream.push_insert(i);
            stream.push_delete(i);
        }
        stream.push(Update::new(300, 4));
        let mut s = seeds(2);
        let mut sampler = FisL0Sampler::new(n, &mut s);
        sampler.process_stream(&stream);
        let sample = sampler.sample().expect("1-sparse vector must be found");
        assert_eq!(sample.index, 300);
        assert_eq!(sample.estimate, 4.0);
    }

    #[test]
    fn succeeds_on_moderate_supports() {
        let n = 2048u64;
        let mut gen = seeds(3);
        let stream = sparse_vector_stream(n, 300, 9, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();
        let mut successes = 0;
        for seed in 0..30u64 {
            let mut s = seeds(100 + seed);
            let mut sampler = FisL0Sampler::new(n, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                successes += 1;
                assert!(support.contains(&sample.index));
                assert_eq!(sample.estimate, truth.get(sample.index) as f64);
            }
        }
        assert!(successes >= 25, "baseline success rate too low: {successes}/30");
    }

    #[test]
    fn space_grows_one_log_factor_faster_than_theorem_2_sampler() {
        // The headline comparison of Experiment E3 is asymptotic: the FIS
        // baseline uses O(log³ n) bits versus Theorem 2's O(log² n). At
        // practical n the constants of the sparse-recovery structure make the
        // absolute numbers close (EXPERIMENTS.md reports both), so the test
        // checks the *growth rates*: going from n = 2^10 to n = 2^24 the FIS
        // footprint must grow by a strictly larger factor than Theorem 2's.
        let grow =
            |make: &dyn Fn(u64) -> u64| -> f64 { make(1 << 24) as f64 / make(1 << 10) as f64 };
        let fis_growth = grow(&|n| {
            let mut s = seeds(4);
            FisL0Sampler::new(n, &mut s).space().counters
        });
        let ours_growth = grow(&|n| {
            let mut s = seeds(4);
            L0Sampler::new(n, 0.25, &mut s).space().counters
        });
        assert!(
            fis_growth > 1.4 * ours_growth,
            "FIS counter growth {fis_growth:.2} should exceed Theorem 2 growth {ours_growth:.2}"
        );
    }
}

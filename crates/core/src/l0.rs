//! The zero-relative-error L0 sampler of Theorem 2.
//!
//! Precision sampling breaks down as `p → 0` (the scaling factors
//! `t_i^{−1/p}` blow up), so the paper gives a different algorithm for p = 0:
//!
//! 1. For `k = 0, 1, …, ⌊log n⌋` pick a random subset `I_k ⊆ [n]`, where
//!    `I_k` contains each coordinate with probability `2^k/n` and the top
//!    level is all of `[n]` (the paper picks subsets of size exactly `2^k`;
//!    per-coordinate inclusion with the same expectation is the
//!    streaming-friendly variant and preserves the Chernoff argument — see
//!    DESIGN.md, substitutions). The subsets are *nested*: a single
//!    Θ(s)-wise independent hash maps each coordinate to a slot in `[n]`,
//!    and `I_k = {i : slot(i) < 2^k}`. Theorem 2's analysis only needs
//!    within-level concentration of `|I_k ∩ J|` — which k-wise independence
//!    of the one shared hash provides at every level — not independence
//!    across levels, and nesting makes the update path evaluate one
//!    membership hash per update instead of one per level (the single
//!    hottest cost in the seed implementation).
//! 2. Run the exact s-sparse recovery of Lemma 5 with `s = ⌈4·log(1/δ)⌉` on
//!    the restriction of `x` to each `I_k`.
//! 3. Return a uniformly random non-zero coordinate of the first recovery
//!    that produces a non-zero s-sparse vector; fail if all levels return
//!    zero or DENSE.
//!
//! For `|J| ≤ s` (J the support) level 0 recovers the whole vector and the
//! sampler cannot fail; for larger supports some level has
//! `E|I_k ∩ J| ∈ [s/3, 2s/3]` and succeeds with probability ≥ 1 − δ.
//! Conditioned on success each support element is returned with equal
//! probability: the sampler has **zero** relative error.
//!
//! The random bits describing the subsets can come either from the seed
//! store ([`L0Randomness::Seeded`]) or from the Nisan-style PRG
//! ([`L0Randomness::Nisan`]), which is the derandomization step that brings
//! the stored randomness down to O(log² n) bits (Theorem 2's accounting).

use lps_hash::{KWiseHash, NisanPrg, NisanStream, SeedSequence};
use lps_sketch::persist::tags;
use lps_sketch::{
    DecodeError, Mergeable, Persist, RecoveryOutput, SparseRecovery, StateDigest, WireReader,
    WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update};

use crate::traits::{LpSampler, Sample};

/// Where the L0 sampler's subset-defining randomness comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L0Randomness {
    /// Hash seeds are stored explicitly (the "random oracle" version).
    Seeded,
    /// Hash seeds are expanded from a Nisan-style PRG seed of O(log² n) bits;
    /// only the PRG seed is charged as stored randomness.
    Nisan,
}

/// Independence used by the per-level membership hashes. The Chernoff-style
/// concentration in Theorem 2 needs more than pairwise independence; Θ(s)-wise
/// is ample and still cheap to evaluate.
fn membership_independence(s: usize) -> usize {
    (2 * s + 2).clamp(4, 32)
}

#[derive(Debug, Clone)]
struct Level {
    /// Inclusion threshold: coordinate i belongs to the level if its shared
    /// membership slot satisfies `slot(i) < threshold` (threshold = 2^k,
    /// capped at n).
    threshold: u64,
    recovery: SparseRecovery,
}

/// The zero-relative-error L0 sampler (Theorem 2).
#[derive(Debug, Clone)]
pub struct L0Sampler {
    dimension: u64,
    delta: f64,
    s: usize,
    /// One shared Θ(s)-wise membership hash defining the nested subsets
    /// `I_k = {i : slot(i) < 2^k}` — evaluated once per update for all levels.
    membership: KWiseHash,
    levels: Vec<Level>,
    choice_seed: u64,
    randomness: L0Randomness,
    /// PRG seed bits when running in Nisan mode (what the space model charges).
    nisan_seed_bits: u64,
}

impl L0Sampler {
    /// Create a sampler with failure probability at most `delta` (plus the
    /// usual low-probability terms).
    pub fn new(dimension: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        Self::with_randomness(dimension, delta, L0Randomness::Seeded, seeds)
    }

    /// Create a sampler choosing where its subset randomness comes from.
    pub fn with_randomness(
        dimension: u64,
        delta: f64,
        randomness: L0Randomness,
        seeds: &mut SeedSequence,
    ) -> Self {
        assert!(dimension > 0);
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let s = (4.0 * (1.0 / delta).log2()).ceil().max(1.0) as usize;
        let max_level = (dimension as f64).log2().floor() as u32;
        let independence = membership_independence(s);

        // In Nisan mode the membership-hash coefficients and the final random
        // choice are drawn from the PRG output; the PRG itself is seeded from
        // the seed sequence, and only its seed length is charged.
        let (mut nisan_stream, nisan_seed_bits) = match randomness {
            L0Randomness::Seeded => (None, 0),
            L0Randomness::Nisan => {
                // Enough output words for the shared membership polynomial's
                // coefficients plus the final choice.
                let words_needed = independence + 2;
                let depth = (words_needed.next_power_of_two().trailing_zeros() as usize).max(4);
                let prg = NisanPrg::new(depth, seeds);
                let bits = prg.seed_bits();
                (Some(NisanStream::new(prg)), bits)
            }
        };

        let mut draw = |seeds: &mut SeedSequence| -> u64 {
            match nisan_stream.as_mut() {
                Some(st) => st.next_u64(),
                None => seeds.next_u64(),
            }
        };

        // One shared membership hash for the nested subsets I_0 ⊆ I_1 ⊆ …
        let coeffs: Vec<lps_hash::Fp> =
            (0..independence).map(|_| lps_hash::Fp::new(draw(seeds))).collect();
        let membership = KWiseHash::from_coefficients(coeffs);

        let mut levels = Vec::with_capacity(max_level as usize + 1);
        for k in 0..=max_level {
            let threshold = (1u64 << k).min(dimension);
            // The recovery structures' own hash seeds are not the randomness
            // the PRG needs to supply (they are part of Lemma 5's O(k log n)
            // bits); keep them seed-driven in both modes.
            let recovery = SparseRecovery::new(dimension, s, seeds);
            levels.push(Level { threshold, recovery });
        }
        let choice_seed = draw(seeds);
        L0Sampler {
            dimension,
            delta,
            s,
            membership,
            levels,
            choice_seed,
            randomness,
            nisan_seed_bits,
        }
    }

    /// The per-level sparsity `s = ⌈4 log(1/δ)⌉`.
    pub fn sparsity(&self) -> usize {
        self.s
    }

    /// Number of subsampling levels (⌊log n⌋ + 1).
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The configured failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The randomness mode in use.
    pub fn randomness(&self) -> L0Randomness {
        self.randomness
    }

    /// The shared membership slot of a coordinate: the hash mapped uniformly
    /// onto `[0, n)`. Level `k` contains the coordinate iff the slot is below
    /// the level's threshold, so one evaluation decides every level.
    #[inline]
    fn membership_slot(&self, index: u64) -> u64 {
        let h = self.membership.hash(index);
        ((h as u128 * self.dimension as u128) >> 61) as u64
    }

    /// Whether coordinate `index` belongs to level `k`'s subset `I_k`.
    /// The top level (`2^k ≥ n`) is always the full coordinate set.
    pub fn in_level(&self, k: usize, index: u64) -> bool {
        let level = &self.levels[k];
        level.threshold >= self.dimension || self.membership_slot(index) < level.threshold
    }

    /// The pre-optimization update path, retained solely so the throughput
    /// benchmarks can report the speedup against a cost-faithful baseline:
    /// the seed implementation evaluated one membership polynomial per level
    /// (re-evaluated here) and recomputed the fingerprint power `r^index` by
    /// square-and-multiply in every touched cell. Production callers use
    /// `process_update` / `process_batch`.
    pub fn process_update_reference(&mut self, update: Update) {
        debug_assert!(update.index < self.dimension);
        if update.delta == 0 {
            return;
        }
        for k in 0..self.levels.len() {
            // one full hash evaluation per level, as the seed's independent
            // per-level membership hashes cost
            let included = self.levels[k].threshold >= self.dimension
                || self.membership_slot(update.index) < self.levels[k].threshold;
            if included {
                self.levels[k].recovery.update_reference(update.index, update.delta);
            }
        }
    }

    /// Run the peeling decoder level by level and return the first level
    /// that recovers a non-zero sparse vector, together with its entries.
    ///
    /// This is the single decode pass shared by [`L0Sampler::sample`] and
    /// [`L0Sampler::successful_level`]: each level is decoded at most once
    /// per query, and callers wanting both the sample and the diagnostic
    /// level call this once instead of paying two full decodes.
    pub fn recover_first_nonzero(&self) -> Option<(usize, Vec<(u64, i64)>)> {
        for (k, level) in self.levels.iter().enumerate() {
            match level.recovery.recover() {
                RecoveryOutput::Recovered(entries) if !entries.is_empty() => {
                    return Some((k, entries))
                }
                _ => continue,
            }
        }
        None
    }

    /// The level index whose recovery succeeded, for diagnostics.
    pub fn successful_level(&self) -> Option<usize> {
        self.recover_first_nonzero().map(|(k, _)| k)
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. Level count and per-level recovery shapes depend on `n` and
    /// the failure budget, not on which coordinates a shard will see, and
    /// exact recombination requires evaluating the same membership hashes
    /// and fingerprints at global coordinates — so restriction constrains
    /// the shard's stream, while the per-level cells it touches shrink with
    /// the range.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        lps_sketch::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge: absorb a sibling shard whose ingested key range
    /// was disjoint from ours. Bit-identical to [`Mergeable::merge_from`]
    /// (merging an all-zero cell is a bitwise no-op), but each level's cells
    /// go through [`SparseRecovery::merge_disjoint`] so buckets the sibling
    /// never populated are skipped — under key-range partitioning the deeper
    /// (sparser) levels skip almost everything.
    pub fn merge_disjoint(&mut self, other: &Self) {
        assert_eq!(self.levels.len(), other.levels.len(), "level-count mismatch");
        for (a, b) in self.levels.iter_mut().zip(other.levels.iter()) {
            a.recovery.merge_disjoint(&b.recovery);
        }
    }
}

impl Mergeable for L0Sampler {
    /// Merge an identically-seeded sampler level by level. All per-level
    /// state is field/integer arithmetic, so the merged state is bit-identical
    /// to ingesting the concatenated streams sequentially.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.levels.len(), other.levels.len(), "level-count mismatch");
        for (a, b) in self.levels.iter_mut().zip(other.levels.iter()) {
            assert_eq!(a.threshold, b.threshold, "level threshold mismatch");
            a.recovery.merge_from(&b.recovery);
        }
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for level in &self.levels {
            d.write_u64(level.threshold).write_u64(level.recovery.state_digest());
        }
        d.finish()
    }
}

impl Persist for L0Sampler {
    const TAG: u16 = tags::L0_SAMPLER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_f64(self.delta);
        w.write_len(self.s);
        w.write_u8(match self.randomness {
            L0Randomness::Seeded => 0,
            L0Randomness::Nisan => 1,
        });
        w.write_u64(self.nisan_seed_bits);
        w.write_u64(self.choice_seed);
        self.membership.encode_seeds(w);
        w.write_len(self.levels.len());
        for level in &self.levels {
            w.write_u64(level.threshold);
            level.recovery.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for level in &self.levels {
            level.recovery.encode_counters(w);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let delta = seeds.read_finite_f64("L0 sampler delta must be finite")?;
        if dimension == 0 || !(delta > 0.0 && delta < 1.0) {
            return Err(DecodeError::Corrupt { context: "L0 sampler needs delta in (0, 1)" });
        }
        let s = seeds.read_count(0)?;
        let randomness = match seeds.read_u8()? {
            0 => L0Randomness::Seeded,
            1 => L0Randomness::Nisan,
            _ => return Err(DecodeError::Corrupt { context: "unknown L0 randomness mode" }),
        };
        let nisan_seed_bits = seeds.read_u64()?;
        let choice_seed = seeds.read_u64()?;
        let membership = KWiseHash::decode_parts(seeds, counters)?;
        let level_count = seeds.read_count(1)?;
        if level_count == 0 {
            return Err(DecodeError::Corrupt { context: "L0 sampler needs at least one level" });
        }
        let levels = (0..level_count)
            .map(|_| {
                let threshold = seeds.read_u64()?;
                let recovery = SparseRecovery::decode_parts(seeds, counters)?;
                Ok(Level { threshold, recovery })
            })
            .collect::<Result<Vec<_>, DecodeError>>()?;
        Ok(L0Sampler {
            dimension,
            delta,
            s,
            membership,
            levels,
            choice_seed,
            randomness,
            nisan_seed_bits,
        })
    }
}

impl LpSampler for L0Sampler {
    fn process_update(&mut self, update: Update) {
        debug_assert!(update.index < self.dimension);
        if update.delta == 0 {
            return;
        }
        // one membership evaluation decides every nested level
        let slot = self.membership_slot(update.index);
        for k in 0..self.levels.len() {
            let level = &mut self.levels[k];
            if level.threshold >= self.dimension || slot < level.threshold {
                level.recovery.update(update.index, update.delta);
            }
        }
    }

    /// Batched fast path: coalesce the batch once, evaluate the shared
    /// membership hash once per distinct index, and feed every level's
    /// recovery structure its surviving entries through the row-major
    /// coalesced path (fingerprint term computed once per entry per level
    /// instead of once per cell). Because the levels are nested, the
    /// entries surviving at level `k` are a prefix-filtered subset reusable
    /// across levels.
    fn process_batch(&mut self, updates: &[Update]) {
        let coalesced = lps_stream::coalesce_updates(updates);
        if coalesced.is_empty() {
            return;
        }
        // lane-parallel membership evaluation: batch-hash every distinct
        // index, then apply the same multiply-shift slot mapping as
        // `membership_slot` — identical values, LANES keys at a time
        let keys: Vec<u64> = coalesced
            .iter()
            .map(|&(index, _)| {
                debug_assert!(index < self.dimension);
                index
            })
            .collect();
        let mut hashes = vec![0u64; keys.len()];
        self.membership.hash_keys(&keys, &mut hashes);
        let slots: Vec<u64> =
            hashes.iter().map(|&h| ((h as u128 * self.dimension as u128) >> 61) as u64).collect();
        let mut surviving: Vec<(u64, i64)> = Vec::with_capacity(coalesced.len());
        for k in 0..self.levels.len() {
            let threshold = self.levels[k].threshold;
            if threshold >= self.dimension {
                self.levels[k].recovery.apply_coalesced(&coalesced);
                continue;
            }
            surviving.clear();
            surviving.extend(
                coalesced
                    .iter()
                    .zip(slots.iter())
                    .filter(|&(_, &slot)| slot < threshold)
                    .map(|(&entry, _)| entry),
            );
            self.levels[k].recovery.apply_coalesced(&surviving);
        }
    }

    fn sample(&self) -> Option<Sample> {
        let (_, entries) = self.recover_first_nonzero()?;
        // uniform random choice among the recovered support, derived
        // deterministically from the stored choice seed
        let mut chooser = SeedSequence::new(self.choice_seed);
        let pick = chooser.next_below(entries.len() as u64) as usize;
        let (index, value) = entries[pick];
        Some(Sample { index, estimate: value as f64 })
    }

    fn p(&self) -> f64 {
        0.0
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }

    fn name(&self) -> &'static str {
        match self.randomness {
            L0Randomness::Seeded => "l0-seeded",
            L0Randomness::Nisan => "l0-nisan",
        }
    }
}

impl SpaceUsage for L0Sampler {
    fn space(&self) -> SpaceBreakdown {
        let mut total = SpaceBreakdown::default();
        for level in &self.levels {
            total = total.combine(&level.recovery.space());
        }
        let membership_bits: u64 = match self.randomness {
            // the shared membership polynomial's coefficients + choice seed
            L0Randomness::Seeded => self.membership.random_bits() + 64,
            // only the PRG seed is stored
            L0Randomness::Nisan => self.nisan_seed_bits,
        };
        total.combine(&SpaceBreakdown::new(0, 0, membership_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{
        sparse_vector_stream, EmpiricalDistribution, TruthVector, TurnstileModel, UpdateStream,
    };

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn parameters() {
        let mut s = seeds(1);
        let sampler = L0Sampler::new(1 << 10, 0.25, &mut s);
        assert_eq!(sampler.sparsity(), 8); // ceil(4 * log2(4))
        assert_eq!(sampler.levels(), 11);
        assert_eq!(sampler.p(), 0.0);
        assert_eq!(sampler.delta(), 0.25);
    }

    #[test]
    fn zero_vector_fails() {
        let mut s = seeds(2);
        let sampler = L0Sampler::new(256, 0.5, &mut s);
        assert!(sampler.sample().is_none());
    }

    #[test]
    fn sparse_support_never_fails_and_returns_support_elements() {
        // |J| <= s means level 0 recovers exactly; failure is impossible.
        let n = 1024u64;
        let mut gen = seeds(3);
        let stream = sparse_vector_stream(n, 5, 9, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();
        for seed in 0..40u64 {
            let mut s = seeds(100 + seed);
            let mut sampler = L0Sampler::new(n, 0.25, &mut s);
            sampler.process_stream(&stream);
            let sample = sampler.sample().expect("sparse vectors cannot fail");
            assert!(support.contains(&sample.index));
            // zero relative error: the estimate is the exact value
            assert_eq!(sample.estimate, truth.get(sample.index) as f64);
        }
    }

    #[test]
    fn large_support_succeeds_with_good_probability() {
        let n = 4096u64;
        let mut gen = seeds(4);
        let stream = sparse_vector_stream(n, 700, 20, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();
        let trials = 60u64;
        let mut successes = 0;
        for seed in 0..trials {
            let mut s = seeds(300 + seed);
            let mut sampler = L0Sampler::new(n, 0.2, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                successes += 1;
                assert!(support.contains(&sample.index), "sampled outside the support");
                assert_eq!(sample.estimate, truth.get(sample.index) as f64);
            }
        }
        assert!(
            successes as f64 >= 0.7 * trials as f64,
            "success rate too low: {successes}/{trials}"
        );
    }

    #[test]
    fn deletions_are_respected() {
        // insert a block then delete it; only the survivor may be sampled
        let n = 512u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        for i in 0..100u64 {
            stream.push_insert(i);
        }
        for i in 0..100u64 {
            stream.push_delete(i);
        }
        stream.push(Update::new(400, 7));
        for seed in 0..20u64 {
            let mut s = seeds(700 + seed);
            let mut sampler = L0Sampler::new(n, 0.25, &mut s);
            sampler.process_stream(&stream);
            let sample = sampler.sample().expect("1-sparse vector cannot fail");
            assert_eq!(sample.index, 400);
            assert_eq!(sample.estimate, 7.0);
        }
    }

    #[test]
    fn output_is_roughly_uniform_over_support() {
        // moderate support, many independent samplers: empirical distribution
        // should be close to uniform (zero relative error claim).
        let n = 256u64;
        let mut gen = seeds(5);
        let stream = sparse_vector_stream(n, 16, 5, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let reference = truth.lp_distribution(0.0).unwrap();
        let mut empirical = EmpiricalDistribution::new(n);
        let trials = 1200u64;
        for seed in 0..trials {
            let mut s = seeds(10_000 + seed);
            let mut sampler = L0Sampler::new(n, 0.2, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                empirical.record(sample.index);
            }
        }
        assert!(empirical.total() as f64 > 0.8 * trials as f64);
        let tv = empirical.total_variation(&reference);
        assert!(tv < 0.12, "total variation from uniform too large: {tv}");
    }

    #[test]
    fn nisan_mode_matches_seeded_behaviour() {
        let n = 512u64;
        let mut gen = seeds(6);
        let stream = sparse_vector_stream(n, 40, 10, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();
        let mut successes = 0;
        for seed in 0..40u64 {
            let mut s = seeds(20_000 + seed);
            let mut sampler = L0Sampler::with_randomness(n, 0.25, L0Randomness::Nisan, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                successes += 1;
                assert!(support.contains(&sample.index));
                assert_eq!(sample.estimate, truth.get(sample.index) as f64);
            }
        }
        assert!(successes >= 30, "Nisan-mode success rate too low: {successes}/40");
    }

    #[test]
    fn nisan_mode_stores_fewer_randomness_bits() {
        let mut s1 = seeds(7);
        let mut s2 = seeds(7);
        let seeded = L0Sampler::with_randomness(1 << 14, 0.1, L0Randomness::Seeded, &mut s1);
        let nisan = L0Sampler::with_randomness(1 << 14, 0.1, L0Randomness::Nisan, &mut s2);
        assert!(
            nisan.space().randomness_bits < seeded.space().randomness_bits,
            "the PRG seed should be smaller than the explicit membership seeds"
        );
        assert_eq!(seeded.space().counters, nisan.space().counters);
    }

    #[test]
    fn level_membership_probabilities_grow_geometrically() {
        let n = 1 << 12;
        let mut s = seeds(8);
        let sampler = L0Sampler::new(n, 0.25, &mut s);
        // level 0 contains a ~1/n fraction... no: level 0 has threshold 1,
        // level log n has threshold n (everything).
        let top = sampler.levels() - 1;
        let mut full = 0u64;
        for i in 0..n {
            if sampler.in_level(top, i) {
                full += 1;
            }
        }
        assert_eq!(full, n, "top level must contain every coordinate");
        // a middle level contains roughly 2^k coordinates
        let k = 6usize;
        let mut count = 0u64;
        for i in 0..n {
            if sampler.in_level(k, i) {
                count += 1;
            }
        }
        let expected = 1u64 << k;
        assert!(
            count > expected / 4 && count < expected * 4,
            "level {k} holds {count} coordinates, expected about {expected}"
        );
    }
}

//! # lps-core
//!
//! The samplers of *"Tight Bounds for Lp Samplers, Finding Duplicates in
//! Streams, and Related Problems"* (Jowhari, Sağlam, Tardos; PODS 2011),
//! plus the baselines they are compared against.
//!
//! * [`precision`] — the paper's Figure 1 precision-sampling Lp sampler for
//!   `p ∈ (0, 2)`: `O(ε^{−p} log² n)` bits (Theorem 1).
//! * [`l0`] — the zero-relative-error L0 sampler in `O(log² n)` bits
//!   (Theorem 2), with optional Nisan-PRG derandomization.
//! * [`repeat`] — independent-repetition wrapper boosting success to `1 − δ`.
//! * [`reservoir`] — classic insertion-only reservoir sampling (intro) and
//!   position reservoirs used by the length-(n+s) duplicates algorithm.
//! * [`ako`] — the Andoni–Krauthgamer–Onak `O(ε^{−p} log³ n)` baseline.
//! * [`fis_l0`] — a Frahling–Indyk–Sohler-style `O(log³ n)` L0 baseline.
//! * [`exact`] — a full-memory exact sampler used as experimental ground truth.
//!
//! ## Quick example
//!
//! ```
//! use lps_core::{LpSampler, PrecisionLpSampler, RepeatedSampler, repetitions_for};
//! use lps_hash::SeedSequence;
//! use lps_stream::{TurnstileModel, Update, UpdateStream};
//!
//! // a turnstile stream over 256 coordinates with insertions and deletions
//! let mut stream = UpdateStream::new(256, TurnstileModel::General);
//! stream.push(Update::new(7, 5));
//! stream.push(Update::new(20, -3));
//! stream.push(Update::new(7, 2));
//!
//! // an L1 sampler with relative error 0.3 and failure probability ~0.1
//! let mut seeds = SeedSequence::new(42);
//! let copies = repetitions_for(1.0, 0.3, 0.1);
//! let mut sampler = RepeatedSampler::new(copies, &mut seeds, |s| {
//!     PrecisionLpSampler::new(256, 1.0, 0.3, s)
//! });
//! sampler.process_stream(&stream);
//! if let Some(sample) = sampler.sample() {
//!     assert!(sample.index == 7 || sample.index == 20);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ako;
pub mod exact;
pub mod fis_l0;
pub mod l0;
pub mod precision;
pub mod repeat;
pub mod reservoir;
pub mod traits;

pub use ako::AkoSampler;
pub use exact::ExactSampler;
// Mergeability is defined next to the sketches but is equally a sampler
// capability (every sampler here is a bundle of linear sketches), so the
// trait is re-exported for downstream crates like `lps-engine`.
pub use fis_l0::FisL0Sampler;
pub use l0::{L0Randomness, L0Sampler};
pub use lps_sketch::{DecodeError, Mergeable, Persist, StateDigest};
pub use precision::{PrecisionLpSampler, PrecisionParams, RecoveryState};
pub use repeat::{repetitions_for, RepeatedSampler};
pub use reservoir::{PositionReservoir, ReservoirSampler};
pub use traits::{LpSampler, Sample};

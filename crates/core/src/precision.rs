//! The paper's precision-sampling Lp sampler (Figure 1, Section 2) for
//! `p ∈ (0, 2)`.
//!
//! The algorithm, verbatim from Figure 1:
//!
//! * **Initialization.** For `p ≠ 1` set `k = 10⌈1/|p−1|⌉` and
//!   `m = O(ε^{−max(0,p−1)})`; for `p = 1` set `k = m = O(log(1/ε))`. Set
//!   `β = ε^{1−1/p}` and `l = O(log n)`. Draw k-wise independent uniform
//!   scaling factors `t_i ∈ [0, 1]`.
//! * **Processing.** Maintain a count-sketch (parameter `m`, `l` rows) of the
//!   scaled vector `z_i = x_i / t_i^{1/p}`, a linear sketch for a
//!   2-approximation of `‖x‖_p`, and a linear L2 sketch of `z`.
//! * **Recovery.** Decode `z*` from the count-sketch and its best m-sparse
//!   approximation `ẑ`; compute `r ∈ [‖x‖_p, 2‖x‖_p]` and
//!   `s ∈ [‖z−ẑ‖₂, 2‖z−ẑ‖₂]` (the latter via `L'(z) − L'(ẑ)`); find the
//!   coordinate `i` maximising `|z*_i|`. **FAIL** if `s > β√m·r` or
//!   `|z*_i| < ε^{−1/p}·r`; otherwise output `i` and the estimate
//!   `z*_i · t_i^{1/p}` of `x_i`.
//!
//! Lemma 4 shows that conditioned on any fixed `r ≥ ‖x‖_p` the output index
//! is `i` with probability `(ε + O(ε²))|x_i|^p/r^p + O(n^{−c})` and that the
//! estimate has relative error at most ε w.h.p.; Theorem 1 wraps
//! `O(log(1/δ)/ε)` independent repetitions around it to push the failure
//! probability below δ (see [`crate::repeat`]).

use lps_hash::{KWiseHash, SeedSequence};
use lps_sketch::persist::tags;
use lps_sketch::{
    AmsSketch, CountSketch, DecodeError, LinearSketch, Mergeable, PStableSketch, Persist,
    StateDigest, WireReader, WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update};

use crate::traits::{LpSampler, Sample};

/// Constant factor applied to the `m = O(ε^{−max(0,p−1)})` parameter for
/// `p ≠ 1` ("with a large enough constant factor", Figure 1 step 1).
const M_CONSTANT: f64 = 12.0;
/// Constant factor applied to `k = m = O(log(1/ε))` for `p = 1`.
const M_CONSTANT_P1: f64 = 6.0;

/// The parameters of Figure 1, derived from `(p, ε)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionParams {
    /// Norm exponent, `p ∈ (0, 2)`.
    pub p: f64,
    /// Target relative error / success scale ε.
    pub epsilon: f64,
    /// Independence of the scaling factors.
    pub k: usize,
    /// Count-sketch parameter m.
    pub m: usize,
    /// The guard threshold exponent β = ε^{1−1/p}.
    pub beta: f64,
}

impl PrecisionParams {
    /// Derive the Figure 1 parameters for a given `(p, ε)`.
    pub fn derive(p: f64, epsilon: f64) -> Self {
        assert!(p > 0.0 && p < 2.0, "the precision sampler requires p ∈ (0, 2), got {p}");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0, 1), got {epsilon}");
        let (k, m) = if (p - 1.0).abs() < 1e-9 {
            let v = (M_CONSTANT_P1 * (1.0 / epsilon).ln()).ceil().max(2.0) as usize;
            (v, v)
        } else {
            let k = 10 * (1.0 / (p - 1.0).abs()).ceil() as usize;
            let m = (M_CONSTANT * epsilon.powf(-(0.0f64).max(p - 1.0))).ceil().max(2.0) as usize;
            (k, m)
        };
        let beta = epsilon.powf(1.0 - 1.0 / p);
        PrecisionParams { p, epsilon, k, m, beta }
    }

    /// The magnitude threshold `ε^{−1/p}` that `|z*_i|/r` must reach.
    pub fn magnitude_threshold(&self) -> f64 {
        self.epsilon.powf(-1.0 / self.p)
    }
}

/// The precision Lp sampler of Figure 1 (single instance; constant success
/// probability Θ(ε) — wrap in [`crate::repeat::RepeatedSampler`] for 1 − δ).
#[derive(Debug, Clone)]
pub struct PrecisionLpSampler {
    params: PrecisionParams,
    dimension: u64,
    /// k-wise independent source of the scaling factors `t_i`.
    scaling: KWiseHash,
    /// Count-sketch of the scaled vector z.
    count_sketch: CountSketch,
    /// Lp-norm sketch of x (Lemma 2's 2-approximation r).
    norm_sketch: PStableSketch,
    /// L2 sketch of z, used for `s ≈ ‖z − ẑ‖₂` via linearity.
    l2_sketch: AmsSketch,
}

impl PrecisionLpSampler {
    /// Create a sampler for vectors over `[0, dimension)` with the given
    /// exponent `p ∈ (0,2)` and relative-error/success scale ε.
    pub fn new(dimension: u64, p: f64, epsilon: f64, seeds: &mut SeedSequence) -> Self {
        let params = PrecisionParams::derive(p, epsilon);
        let scaling = KWiseHash::new(params.k, seeds);
        let count_sketch = CountSketch::with_default_rows(dimension, params.m, seeds);
        let norm_sketch = PStableSketch::with_default_rows(dimension, p, seeds);
        let l2_sketch = AmsSketch::with_default_shape(dimension, seeds);
        PrecisionLpSampler { params, dimension, scaling, count_sketch, norm_sketch, l2_sketch }
    }

    /// The derived Figure 1 parameters.
    pub fn params(&self) -> PrecisionParams {
        self.params
    }

    /// The scaling factor `t_i ∈ (0, 1]` of a coordinate.
    pub fn scaling_factor(&self, index: u64) -> f64 {
        self.scaling.unit_interval(index)
    }

    /// The multiplier `t_i^{−1/p}` applied to coordinate `i`.
    fn scale_multiplier(&self, index: u64) -> f64 {
        self.scaling_factor(index).powf(-1.0 / self.params.p)
    }

    /// Internal recovery-stage computation, exposed for white-box tests and
    /// the experiment harness: returns `(argmax index, z* at argmax, r, s)`.
    pub fn recovery_state(&self) -> RecoveryState {
        let zstar = self.count_sketch.decode_all();
        let mut best_i = 0u64;
        let mut best_abs = -1.0f64;
        for (i, &v) in zstar.iter().enumerate() {
            if v.abs() > best_abs {
                best_abs = v.abs();
                best_i = i as u64;
            }
        }
        // best m-sparse approximation ẑ of z*
        let mut order: Vec<usize> = (0..zstar.len()).collect();
        order.sort_by(|&a, &b| zstar[b].abs().partial_cmp(&zstar[a].abs()).unwrap());
        let zhat: Vec<(u64, f64)> = order
            .iter()
            .take(self.params.m)
            .filter(|&&i| zstar[i] != 0.0)
            .map(|&i| (i as u64, zstar[i]))
            .collect();
        let r = self.norm_sketch.upper_estimate();
        // s ≈ ‖z − ẑ‖₂ from L'(z) − L'(ẑ)
        let mut diff = self.l2_sketch.clone();
        diff.subtract(&self.l2_sketch.sketch_of_sparse(&zhat));
        let s = diff.l2_upper_estimate();
        RecoveryState { best_index: best_i, best_zstar: zstar[best_i as usize], r, s }
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. All three inner sketches hold dense `f64` counters, so a
    /// key-range recombination reassociates floating-point sums — sharding
    /// this sampler is approximate (estimator-level drift, see the
    /// `merge_from` bound) and the engine requires an explicit
    /// approximate-tolerance plan to drive it.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        lps_sketch::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// coincides with [`Mergeable::merge_from`] on all three inner sketches.
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

/// The intermediate quantities of the recovery stage (step 1–4 of Figure 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryState {
    /// Index maximising `|z*_i|`.
    pub best_index: u64,
    /// The count-sketch estimate `z*` at that index.
    pub best_zstar: f64,
    /// The norm estimate `r ∈ [‖x‖_p, 2‖x‖_p]` (w.h.p.).
    pub r: f64,
    /// The tail estimate `s ∈ [‖z−ẑ‖₂, 2‖z−ẑ‖₂]` (w.h.p.).
    pub s: f64,
}

impl LpSampler for PrecisionLpSampler {
    fn process_update(&mut self, update: Update) {
        let i = update.index;
        debug_assert!(i < self.dimension);
        let delta = update.delta as f64;
        let scaled = delta * self.scale_multiplier(i);
        self.count_sketch.update(i, scaled);
        self.l2_sketch.update(i, scaled);
        self.norm_sketch.update(i, delta);
    }

    /// Batched fast path: the scale multiplier `t_i^{−1/p}` (one k-wise
    /// hash evaluation plus a `powf`) is a pure function of the index, so it
    /// is computed once per distinct index in the batch and reused; updates
    /// are applied in stream order so every internal sketch accumulates in
    /// exactly the sequential order (bit-identical state).
    fn process_batch(&mut self, updates: &[Update]) {
        let mut multipliers: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for u in updates {
            debug_assert!(u.index < self.dimension);
            let mult =
                *multipliers.entry(u.index).or_insert_with(|| self.scale_multiplier(u.index));
            let delta = u.delta as f64;
            let scaled = delta * mult;
            self.count_sketch.update(u.index, scaled);
            self.l2_sketch.update(u.index, scaled);
            self.norm_sketch.update(u.index, delta);
        }
    }

    fn sample(&self) -> Option<Sample> {
        let state = self.recovery_state();
        if state.r.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            // zero (or un-estimable) vector: a perfect sampler may only fail here
            return None;
        }
        // Step 5: FAIL if s > β·√m·r or |z*_i| < ε^{−1/p}·r.
        let tail_guard = self.params.beta * (self.params.m as f64).sqrt() * state.r;
        if state.s > tail_guard {
            return None;
        }
        if state.best_zstar.abs() < self.params.magnitude_threshold() * state.r {
            return None;
        }
        // Step 6: output i and z*_i · t_i^{1/p} as the estimate of x_i.
        let t = self.scaling_factor(state.best_index);
        let estimate = state.best_zstar * t.powf(1.0 / self.params.p);
        Some(Sample { index: state.best_index, estimate })
    }

    fn p(&self) -> f64 {
        self.params.p
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }

    fn name(&self) -> &'static str {
        "precision-lp"
    }
}

impl Mergeable for PrecisionLpSampler {
    /// Merge an identically-seeded sampler by composing the merges of its
    /// three internal linear sketches. Counter contents are real-valued
    /// (scaled by `t_i^{−1/p}`), so merging is linear up to floating-point
    /// rounding: commutative bitwise, associative approximately.
    ///
    /// **Sharded-ingestion error bound.** Relative to sequential ingestion,
    /// a k-shard merge only *reassociates* each counter's sum, so for a
    /// counter accumulating `m` update terms the drift obeys the standard
    /// summation bound `|sharded − sequential| ≤ 2(m−1)·ε·Σ|terms| + O(ε²)`
    /// with `ε = 2⁻⁵³` — a relative error ≲ `2mε` times the cancellation
    /// ratio `Σ|terms| / |Σ terms|`. Kahan compensation in the underlying
    /// sketches (`lps_sketch::compensated`) keeps each shard's per-counter
    /// sum exact to `O(ε)` independent of `m`, so only the k-way merge
    /// reassociates and the effective bound tightens to `~2kε` — ~10⁻¹² at
    /// the shard counts here, many orders below the sampler's Θ(ε_sampler)
    /// estimator noise, so sharding cannot flip non-marginal accept/FAIL
    /// decisions (pinned quantitatively by `tests/float_drift.rs`).
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.params, other.params, "parameter mismatch");
        self.count_sketch.merge_from(&other.count_sketch);
        self.norm_sketch.merge_from(&other.norm_sketch);
        self.l2_sketch.merge_from(&other.l2_sketch);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.count_sketch.state_digest())
            .write_u64(self.norm_sketch.state_digest())
            .write_u64(self.l2_sketch.state_digest());
        d.finish()
    }
}

impl Persist for PrecisionLpSampler {
    const TAG: u16 = tags::PRECISION_SAMPLER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        // (p, ε) determine every derived parameter in `params`; the rest of
        // the seed material is the scaling hash plus the three sub-sketches.
        w.write_f64(self.params.p);
        w.write_f64(self.params.epsilon);
        self.scaling.encode_seeds(w);
        self.count_sketch.encode_seeds(w);
        self.norm_sketch.encode_seeds(w);
        self.l2_sketch.encode_seeds(w);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        self.count_sketch.encode_counters(w);
        self.norm_sketch.encode_counters(w);
        self.l2_sketch.encode_counters(w);
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let p = seeds.read_finite_f64("precision sampler p must be finite")?;
        let epsilon = seeds.read_finite_f64("precision sampler epsilon must be finite")?;
        if dimension == 0 || !(p > 0.0 && p < 2.0) || !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(DecodeError::Corrupt {
                context: "precision sampler needs p in (0, 2) and epsilon in (0, 1)",
            });
        }
        let params = PrecisionParams::derive(p, epsilon);
        let scaling = KWiseHash::decode_parts(seeds, counters)?;
        let count_sketch = CountSketch::decode_parts(seeds, counters)?;
        let norm_sketch = PStableSketch::decode_parts(seeds, counters)?;
        let l2_sketch = AmsSketch::decode_parts(seeds, counters)?;
        Ok(PrecisionLpSampler { params, dimension, scaling, count_sketch, norm_sketch, l2_sketch })
    }
}

impl SpaceUsage for PrecisionLpSampler {
    fn space(&self) -> SpaceBreakdown {
        let scaling_bits = SpaceBreakdown::new(0, 0, self.scaling.random_bits());
        self.count_sketch
            .space()
            .combine(&self.norm_sketch.space())
            .combine(&self.l2_sketch.space())
            .combine(&scaling_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{sparse_vector_stream, TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn parameter_derivation_matches_figure_1() {
        // p ≠ 1: k = 10⌈1/|p−1|⌉
        let p15 = PrecisionParams::derive(1.5, 0.25);
        assert_eq!(p15.k, 20);
        assert!(p15.m >= (12.0 * 0.25f64.powf(-0.5)) as usize);
        // p < 1: m = O(ε^0) = O(1)
        let p05 = PrecisionParams::derive(0.5, 0.1);
        assert_eq!(p05.k, 20);
        assert!(p05.m <= 13);
        // p = 1: k = m = O(log 1/ε)
        let p1 = PrecisionParams::derive(1.0, 0.1);
        assert_eq!(p1.k, p1.m);
        assert!(p1.k >= 2);
        // β = ε^{1−1/p}
        assert!((p15.beta - 0.25f64.powf(1.0 - 1.0 / 1.5)).abs() < 1e-12);
        assert!((p1.beta - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn p_equal_two_rejected() {
        PrecisionParams::derive(2.0, 0.5);
    }

    #[test]
    #[should_panic]
    fn p_zero_rejected() {
        PrecisionParams::derive(0.0, 0.5);
    }

    #[test]
    fn scaling_factors_are_deterministic_and_in_range() {
        let mut s = seeds(1);
        let sampler = PrecisionLpSampler::new(1024, 1.0, 0.5, &mut s);
        for i in 0..200u64 {
            let t = sampler.scaling_factor(i);
            assert!(t > 0.0 && t <= 1.0);
            assert_eq!(t, sampler.scaling_factor(i));
        }
    }

    #[test]
    fn zero_vector_always_fails() {
        let mut s = seeds(2);
        let sampler = PrecisionLpSampler::new(256, 1.0, 0.5, &mut s);
        assert!(sampler.sample().is_none());
    }

    #[test]
    fn single_coordinate_vector_is_sampled_when_not_failing() {
        // With a single non-zero coordinate, any non-FAIL output must return
        // that coordinate with a near-exact estimate.
        let n = 256u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        stream.push(Update::new(77, 42));
        let mut successes = 0;
        for seed in 0..120u64 {
            let mut s = seeds(1000 + seed);
            let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.5, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                successes += 1;
                assert_eq!(sample.index, 77, "only non-zero coordinate must be returned");
                assert!(
                    (sample.estimate - 42.0).abs() / 42.0 < 0.6,
                    "estimate {} too far from 42",
                    sample.estimate
                );
            }
        }
        assert!(successes > 0, "sampler should succeed at least occasionally");
    }

    #[test]
    fn samples_come_from_support_and_estimates_track_truth() {
        let n = 512u64;
        let mut gen_seeds = seeds(77);
        let stream = sparse_vector_stream(n, 20, 50, &mut gen_seeds);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();
        let mut successes = 0u32;
        for seed in 0..150u64 {
            let mut s = seeds(5000 + seed);
            let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.5, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                successes += 1;
                assert!(
                    support.contains(&sample.index),
                    "sampled index {} is not in the support",
                    sample.index
                );
                let x = truth.get(sample.index) as f64;
                assert!(
                    (sample.estimate - x).abs() / x.abs() < 0.75,
                    "estimate {} too far from x_i = {x}",
                    sample.estimate
                );
            }
        }
        assert!(successes >= 5, "expected a reasonable number of successes, got {successes}");
    }

    #[test]
    fn heavier_coordinates_are_sampled_more_often() {
        // one dominant coordinate should be returned far more often than a
        // light one under L1 sampling
        let n = 128u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        stream.push(Update::new(10, 80));
        stream.push(Update::new(20, 2));
        stream.push(Update::new(30, -2));
        let mut heavy = 0u32;
        let mut light = 0u32;
        for seed in 0..400u64 {
            let mut s = seeds(9000 + seed);
            let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.4, &mut s);
            sampler.process_stream(&stream);
            if let Some(sample) = sampler.sample() {
                if sample.index == 10 {
                    heavy += 1;
                } else {
                    light += 1;
                }
            }
        }
        assert!(heavy > 5, "heavy coordinate rarely sampled ({heavy})");
        assert!(heavy > 4 * light, "heavy {heavy} should dominate light {light}");
    }

    #[test]
    fn space_scales_with_epsilon_for_p_above_one() {
        let mut s = seeds(3);
        let coarse = PrecisionLpSampler::new(1 << 12, 1.5, 0.5, &mut s);
        let fine = PrecisionLpSampler::new(1 << 12, 1.5, 0.05, &mut s);
        assert!(fine.bits_used() > coarse.bits_used());
        // m should grow roughly like ε^{-1/2} for p = 1.5
        assert!(fine.params().m > coarse.params().m);
    }

    #[test]
    fn recovery_state_is_consistent_with_sampling_decision() {
        let n = 256u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        for i in 0..n {
            stream.push(Update::new(i, (i % 3) as i64 + 1));
        }
        let mut s = seeds(4);
        let mut sampler = PrecisionLpSampler::new(n, 1.2, 0.3, &mut s);
        sampler.process_stream(&stream);
        let st = sampler.recovery_state();
        assert!(st.r > 0.0);
        assert!(st.s >= 0.0);
        let params = sampler.params();
        let expected_fail = st.s > params.beta * (params.m as f64).sqrt() * st.r
            || st.best_zstar.abs() < params.magnitude_threshold() * st.r;
        assert_eq!(sampler.sample().is_none(), expected_fail);
    }
}

//! Independent repetition: boosting a constant-success sampler to success
//! probability `1 − δ` (Theorem 1 / Theorem 2 outer loop).
//!
//! The Figure 1 sampler succeeds with probability Θ(ε) per instance, so
//! Theorem 1 runs `v = O(log(1/δ)/ε)` independent copies *in parallel over
//! the same pass* and returns the first non-failing output. Because every
//! copy is a linear sketch this costs a factor `v` in space and keeps the
//! single-pass property. [`RepeatedSampler`] implements exactly that wrapper,
//! generically over any [`LpSampler`].

use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{DecodeError, Mergeable, Persist, StateDigest, WireReader, WireWriter};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update};

use crate::traits::{LpSampler, Sample};

/// `v = ⌈c · 2^p · ln(1/δ)/ε⌉` repetitions, the Theorem 1 prescription with a
/// small safety constant. The per-instance success probability of the
/// Figure 1 sampler is at least `ε/2^p` (proof of Theorem 1), so this many
/// independent copies fail simultaneously with probability at most δ.
pub fn repetitions_for(p: f64, epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0);
    assert!(delta > 0.0 && delta < 1.0);
    let c = 1.5;
    ((c * 2f64.powf(p) * (1.0 / delta).ln() / epsilon).ceil() as usize).max(1)
}

/// A sampler made of `v` independent copies of an inner sampler; the sample
/// is the first non-failing inner sample.
#[derive(Debug, Clone)]
pub struct RepeatedSampler<S> {
    copies: Vec<S>,
}

impl<S: LpSampler> RepeatedSampler<S> {
    /// Build `copies` independent samplers with the provided constructor.
    /// Each copy receives a split-off, independent seed sequence.
    pub fn new<F>(copies: usize, seeds: &mut SeedSequence, mut make: F) -> Self
    where
        F: FnMut(&mut SeedSequence) -> S,
    {
        assert!(copies >= 1);
        let instances = (0..copies)
            .map(|_| {
                let mut child = seeds.split();
                make(&mut child)
            })
            .collect();
        RepeatedSampler { copies: instances }
    }

    /// Number of parallel copies.
    pub fn copies(&self) -> usize {
        self.copies.len()
    }

    /// Access the inner copies (used by experiments to inspect per-copy state).
    pub fn inner(&self) -> &[S] {
        &self.copies
    }

    /// Fraction of copies that currently produce a sample (diagnostic).
    pub fn success_fraction(&self) -> f64 {
        let ok = self.copies.iter().filter(|c| c.sample().is_some()).count();
        ok as f64 / self.copies.len() as f64
    }
}

impl<S: LpSampler> LpSampler for RepeatedSampler<S> {
    fn process_update(&mut self, update: Update) {
        for c in self.copies.iter_mut() {
            c.process_update(update);
        }
    }

    /// Forward the batch to every copy so each inner sampler's own batched
    /// fast path (coalescing, cached multipliers) kicks in.
    fn process_batch(&mut self, updates: &[Update]) {
        for c in self.copies.iter_mut() {
            c.process_batch(updates);
        }
    }

    fn sample(&self) -> Option<Sample> {
        self.copies.iter().find_map(|c| c.sample())
    }

    fn p(&self) -> f64 {
        self.copies[0].p()
    }

    fn dimension(&self) -> u64 {
        self.copies[0].dimension()
    }

    fn name(&self) -> &'static str {
        "repeated"
    }
}

impl<S: Mergeable> Mergeable for RepeatedSampler<S> {
    /// Merge copy by copy — every inner sampler absorbs its identically-seeded
    /// counterpart.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.copies.len(), other.copies.len(), "copy-count mismatch");
        for (a, b) in self.copies.iter_mut().zip(other.copies.iter()) {
            a.merge_from(b);
        }
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for c in &self.copies {
            d.write_u64(c.state_digest());
        }
        d.finish()
    }
}

impl<S: Persist> Persist for RepeatedSampler<S> {
    /// The wrapper's tag composes the repetition marker with the inner
    /// sampler's tag, so `RepeatedSampler<PrecisionLpSampler>` and
    /// `RepeatedSampler<L0Sampler>` encode distinguishably. The const
    /// assertion rejects inner tags that already carry the repetition bit
    /// (i.e. nesting `RepeatedSampler<RepeatedSampler<_>>`) at compile
    /// time: OR-ing the bit twice would collide with the single wrapper's
    /// tag and break the "tags are never reused" wire-format guarantee.
    const TAG: u16 = {
        assert!(
            S::TAG & tags::REPEATED_BASE == 0,
            "RepeatedSampler cannot wrap a structure whose tag already carries REPEATED_BASE"
        );
        tags::REPEATED_BASE | S::TAG
    };

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_len(self.copies.len());
        for c in &self.copies {
            c.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for c in &self.copies {
            c.encode_counters(w);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let count = seeds.read_count(1)?;
        if count == 0 {
            return Err(DecodeError::Corrupt { context: "repeated sampler needs >= 1 copy" });
        }
        let copies =
            (0..count).map(|_| S::decode_parts(seeds, counters)).collect::<Result<Vec<_>, _>>()?;
        Ok(RepeatedSampler { copies })
    }
}

impl<S: LpSampler> SpaceUsage for RepeatedSampler<S> {
    fn space(&self) -> SpaceBreakdown {
        self.copies
            .iter()
            .map(|c| c.space())
            .fold(SpaceBreakdown::default(), |acc, s| acc.combine(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::PrecisionLpSampler;
    use lps_stream::{sparse_vector_stream, TruthVector};

    #[test]
    fn repetition_count_grows_with_precision_and_confidence() {
        let base = repetitions_for(1.0, 0.5, 0.5);
        assert!(repetitions_for(1.0, 0.1, 0.5) > base);
        assert!(repetitions_for(1.0, 0.5, 0.01) > base);
        assert!(repetitions_for(1.0, 0.5, 0.5) >= 1);
    }

    #[test]
    fn repeated_sampler_rarely_fails() {
        let n = 256u64;
        let mut gen = SeedSequence::new(1);
        let stream = sparse_vector_stream(n, 10, 20, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let support = truth.support();

        let epsilon = 0.4;
        let delta = 0.1;
        let v = repetitions_for(1.0, epsilon, delta);
        let trials = 25u64;
        let mut failures = 0;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(1000 + seed);
            let mut sampler = RepeatedSampler::new(v, &mut seeds, |s| {
                PrecisionLpSampler::new(n, 1.0, epsilon, s)
            });
            sampler.process_stream(&stream);
            match sampler.sample() {
                Some(sample) => assert!(support.contains(&sample.index)),
                None => failures += 1,
            }
        }
        assert!(
            (failures as f64 / trials as f64) <= 2.5 * delta + 0.1,
            "failure rate {failures}/{trials} exceeds the δ = {delta} target by too much"
        );
    }

    #[test]
    fn space_scales_linearly_with_copies() {
        let mut seeds = SeedSequence::new(2);
        let one =
            RepeatedSampler::new(1, &mut seeds, |s| PrecisionLpSampler::new(512, 1.0, 0.5, s));
        let mut seeds = SeedSequence::new(2);
        let four =
            RepeatedSampler::new(4, &mut seeds, |s| PrecisionLpSampler::new(512, 1.0, 0.5, s));
        assert_eq!(four.copies(), 4);
        let ratio = four.bits_used() as f64 / one.bits_used() as f64;
        assert!((ratio - 4.0).abs() < 0.2, "space ratio {ratio} should be ~4");
    }

    #[test]
    fn first_success_wins() {
        // With many copies the wrapper must return some copy's result and the
        // p/dimension accessors must delegate.
        let mut seeds = SeedSequence::new(3);
        let mut sampler =
            RepeatedSampler::new(3, &mut seeds, |s| PrecisionLpSampler::new(64, 1.0, 0.5, s));
        assert_eq!(sampler.p(), 1.0);
        assert_eq!(sampler.dimension(), 64);
        sampler.process_update(Update::new(5, 10));
        if let Some(s) = sampler.sample() {
            assert_eq!(s.index, 5);
        }
        assert!(sampler.success_fraction() >= 0.0);
    }
}

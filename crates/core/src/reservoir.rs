//! Classic reservoir sampling — the insertion-only L1 sampler from the
//! paper's introduction (attributed to Waterman, via Knuth).
//!
//! Given a stream of positive updates `(i, u)`, the sampler keeps the running
//! total `s` of all update weights and replaces its current sample with `i`
//! with probability `u/s`. This is a *perfect* L1 sampler for insertion-only
//! streams using O(1) words — the paper opens with it to contrast how much
//! harder the problem becomes once negative updates are allowed. We include
//! it both as that baseline and as the sub-sampler used by the length-(n+s)
//! duplicates algorithm (Section 3, final paragraph).

use lps_hash::SeedSequence;
use lps_stream::{SpaceBreakdown, SpaceUsage, Update};

use crate::traits::{LpSampler, Sample};

/// A weighted reservoir sampler holding a single sample (perfect L1 sampler
/// for insertion-only streams).
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    dimension: u64,
    total_weight: u64,
    current: Option<(u64, i64)>,
    rng: SeedSequence,
}

impl ReservoirSampler {
    /// Create an empty reservoir sampler.
    pub fn new(dimension: u64, seeds: &mut SeedSequence) -> Self {
        ReservoirSampler { dimension, total_weight: 0, current: None, rng: seeds.split() }
    }

    /// Total weight of the updates seen so far.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }
}

/// A reservoir of `k` uniformly random *positions* of an insertion stream
/// (Algorithm R), used by the length-(n+s) duplicates algorithm which samples
/// stream positions and checks whether the letter at a sampled position
/// appears again later.
#[derive(Debug, Clone)]
pub struct PositionReservoir {
    capacity: usize,
    seen: u64,
    items: Vec<u64>,
    rng: SeedSequence,
}

impl PositionReservoir {
    /// Create a reservoir keeping `capacity` uniform positions.
    pub fn new(capacity: usize, seeds: &mut SeedSequence) -> Self {
        assert!(capacity >= 1);
        PositionReservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
            rng: seeds.split(),
        }
    }

    /// Offer the next stream item (its letter/value); the reservoir decides
    /// whether to keep it.
    pub fn offer(&mut self, value: u64) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(value);
        } else {
            let j = self.rng.next_below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = value;
            }
        }
    }

    /// The currently held sample of values.
    pub fn items(&self) -> &[u64] {
        &self.items
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl LpSampler for ReservoirSampler {
    fn process_update(&mut self, update: Update) {
        assert!(
            update.delta > 0,
            "reservoir sampling only supports positive updates; got {}",
            update.delta
        );
        debug_assert!(update.index < self.dimension);
        let u = update.delta as u64;
        self.total_weight += u;
        // replace the current sample with probability u / total_weight
        let roll = self.rng.next_below(self.total_weight);
        if roll < u || self.current.is_none() {
            self.current = Some((update.index, update.delta));
        }
    }

    fn sample(&self) -> Option<Sample> {
        self.current.map(|(index, _)| Sample { index, estimate: f64::NAN })
    }

    fn p(&self) -> f64 {
        1.0
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }

    fn name(&self) -> &'static str {
        "reservoir-l1"
    }
}

impl SpaceUsage for ReservoirSampler {
    fn space(&self) -> SpaceBreakdown {
        // one index counter + one weight counter + the RNG state
        let counter_bits = lps_stream::counter_bits_for(self.dimension, self.total_weight.max(2));
        SpaceBreakdown::new(2, counter_bits, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{EmpiricalDistribution, TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn empty_stream_has_no_sample() {
        let mut s = seeds(1);
        let sampler = ReservoirSampler::new(16, &mut s);
        assert!(sampler.sample().is_none());
        assert_eq!(sampler.total_weight(), 0);
    }

    #[test]
    #[should_panic]
    fn negative_update_rejected() {
        let mut s = seeds(2);
        let mut sampler = ReservoirSampler::new(16, &mut s);
        sampler.process_update(Update::new(3, -1));
    }

    #[test]
    fn distribution_matches_l1_weights() {
        // weights 1, 2, 5 on three coordinates
        let n = 8u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::InsertionOnly);
        stream.push(Update::new(0, 1));
        stream.push(Update::new(1, 2));
        stream.push(Update::new(2, 5));
        let truth = TruthVector::from_stream(&stream);
        let reference = truth.lp_distribution(1.0).unwrap();
        let mut empirical = EmpiricalDistribution::new(n);
        for seed in 0..8000u64 {
            let mut s = seeds(100 + seed);
            let mut sampler = ReservoirSampler::new(n, &mut s);
            sampler.process_stream(&stream);
            empirical.record(sampler.sample().unwrap().index);
        }
        let tv = empirical.total_variation(&reference);
        assert!(tv < 0.03, "reservoir sampler deviates from L1 distribution: tv = {tv}");
    }

    #[test]
    fn order_invariance_of_weights() {
        // splitting a weight into unit updates must not change the distribution
        let n = 4u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::InsertionOnly);
        for _ in 0..3 {
            stream.push(Update::new(2, 1));
        }
        stream.push(Update::new(1, 1));
        let mut c2 = 0u32;
        let trials = 6000u64;
        for seed in 0..trials {
            let mut s = seeds(900 + seed);
            let mut sampler = ReservoirSampler::new(n, &mut s);
            sampler.process_stream(&stream);
            if sampler.sample().unwrap().index == 2 {
                c2 += 1;
            }
        }
        let frac = c2 as f64 / trials as f64;
        assert!(
            (frac - 0.75).abs() < 0.03,
            "coordinate 2 sampled with frequency {frac}, want 0.75"
        );
    }

    #[test]
    fn position_reservoir_uniform_over_positions() {
        let capacity = 10usize;
        let mut counts = vec![0u64; 100];
        let trials = 3000u64;
        for seed in 0..trials {
            let mut s = seeds(50 + seed);
            let mut res = PositionReservoir::new(capacity, &mut s);
            for v in 0..100u64 {
                res.offer(v);
            }
            assert_eq!(res.items().len(), capacity);
            assert_eq!(res.seen(), 100);
            for &v in res.items() {
                counts[v as usize] += 1;
            }
        }
        // every position should be kept roughly trials * capacity / 100 times
        let expected = trials as f64 * capacity as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.35 * expected,
                "position {i} kept {c} times, expected about {expected}"
            );
        }
    }

    #[test]
    fn position_reservoir_smaller_stream_keeps_everything() {
        let mut s = seeds(3);
        let mut res = PositionReservoir::new(16, &mut s);
        for v in 0..5u64 {
            res.offer(v);
        }
        assert_eq!(res.items(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn space_is_constant_words() {
        let mut s = seeds(4);
        let sampler = ReservoirSampler::new(1 << 20, &mut s);
        assert!(sampler.bits_used() < 256);
    }
}

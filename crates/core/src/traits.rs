//! The sampler abstraction shared by all Lp / L0 samplers in this crate.
//!
//! Definition 1 of the paper: an Lp sampler processes a turnstile stream
//! defining `x ∈ R^n` and outputs an index distributed (approximately)
//! according to `|x_i|^p/‖x‖_p^p` (uniform over the support for p = 0); an
//! approximate sampler may also *fail*, and conditioning on not failing the
//! output distribution must be within relative error ε of the Lp
//! distribution. The trait mirrors exactly that: [`LpSampler::sample`]
//! returns `None` for FAIL and `Some(Sample)` otherwise, and samplers also
//! return an estimate of the sampled coordinate's value (the paper's
//! algorithm produces one, Lemma 4 second part).

use lps_stream::{SpaceUsage, Update, UpdateStream};

/// A successful sample: the chosen index plus an estimate of `x_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The sampled coordinate.
    pub index: u64,
    /// The sampler's estimate of `x_index` (exact for the L0 sampler, within
    /// relative error ε w.h.p. for the precision sampler).
    pub estimate: f64,
}

/// A one-pass Lp sampler over turnstile streams.
pub trait LpSampler: SpaceUsage {
    /// Process one turnstile update.
    fn process_update(&mut self, update: Update);

    /// Process a batch of turnstile updates.
    ///
    /// The default loops over [`LpSampler::process_update`]; samplers with a
    /// cheaper amortised path (coalescing repeated indices, hoisting
    /// per-index hash evaluations and fingerprint powers across their
    /// internal sketches) override it. Every override must be
    /// **interchangeable** with the sequential loop: identical sketch state
    /// and identical [`LpSampler::sample`] output — pinned by the
    /// batch-equivalence property tests.
    fn process_batch(&mut self, updates: &[Update]) {
        for u in updates {
            self.process_update(*u);
        }
    }

    /// Process a whole stream (convenience), feeding it through
    /// [`LpSampler::process_batch`] in chunks.
    fn process_stream(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Attempt to produce a sample after the stream has been processed.
    /// `None` means the sampler FAILs for this instance of its randomness.
    ///
    /// Sampling is deterministic given the sampler's stored randomness, so
    /// repeated calls return the same answer; independent samples require
    /// independent sampler instances (or the [`crate::repeat`] wrapper).
    fn sample(&self) -> Option<Sample>;

    /// The exponent p this sampler targets (0 for L0 samplers).
    fn p(&self) -> f64;

    /// Dimension `n` of the underlying vector.
    fn dimension(&self) -> u64;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_struct_basics() {
        let s = Sample { index: 3, estimate: -2.5 };
        let t = s;
        assert_eq!(t.index, 3);
        assert_eq!(t.estimate, -2.5);
    }
}

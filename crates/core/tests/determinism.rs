//! Regression tests pinning seed-driven determinism: every sampler in this
//! crate derives all of its randomness from a [`SeedSequence`], so two runs
//! built from the same master seed over the same stream must agree bit for
//! bit in what they output. This is what makes the paper's experiments (and
//! any distributed deployment that re-derives sampler state from a shared
//! seed) reproducible.

use lps_core::{repetitions_for, L0Sampler, LpSampler, PrecisionLpSampler, RepeatedSampler};
use lps_hash::SeedSequence;
use lps_stream::{zipf_stream, SpaceUsage, Update, UpdateStream};

/// A moderately adversarial stream: Zipfian inserts plus some deletions.
fn test_stream(n: u64) -> UpdateStream {
    let mut seeds = SeedSequence::new(991);
    let mut stream = zipf_stream(n, 4_000, 1.1, &mut seeds);
    for i in 0..32 {
        stream.push(Update::new((i * 17) % n, -1));
    }
    stream
}

#[test]
fn precision_sampler_is_deterministic_for_a_fixed_seed() {
    let n = 512;
    let stream = test_stream(n);
    for master in [1u64, 7, 42, 2024] {
        let run = |master: u64| {
            let mut seeds = SeedSequence::new(master);
            let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.3, &mut seeds);
            sampler.process_stream(&stream);
            (sampler.sample(), sampler.bits_used())
        };
        let (a, bits_a) = run(master);
        let (b, bits_b) = run(master);
        assert_eq!(
            a.map(|s| (s.index, s.estimate.to_bits())),
            b.map(|s| (s.index, s.estimate.to_bits())),
            "precision sampler output diverged across two runs with master seed {master}"
        );
        assert_eq!(bits_a, bits_b, "space accounting diverged for master seed {master}");
    }
}

#[test]
fn l0_sampler_is_deterministic_for_a_fixed_seed() {
    let n = 512;
    let stream = test_stream(n);
    for master in [3u64, 11, 99] {
        let run = |master: u64| {
            let mut seeds = SeedSequence::new(master);
            let mut sampler = L0Sampler::new(n, 0.1, &mut seeds);
            sampler.process_stream(&stream);
            sampler.sample()
        };
        let a = run(master);
        let b = run(master);
        assert_eq!(
            a.map(|s| (s.index, s.estimate.to_bits())),
            b.map(|s| (s.index, s.estimate.to_bits())),
            "L0 sampler output diverged across two runs with master seed {master}"
        );
    }
}

#[test]
fn repeated_sampler_is_deterministic_for_a_fixed_seed() {
    let n = 256;
    let stream = test_stream(n);
    let copies = repetitions_for(1.0, 0.3, 0.2);
    let run = || {
        let mut seeds = SeedSequence::new(555);
        let mut sampler =
            RepeatedSampler::new(copies, &mut seeds, |s| PrecisionLpSampler::new(n, 1.0, 0.3, s));
        sampler.process_stream(&stream);
        sampler.sample()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.map(|s| (s.index, s.estimate.to_bits())),
        b.map(|s| (s.index, s.estimate.to_bits())),
        "repeated sampler output diverged across two runs with the same master seed"
    );
}

#[test]
fn distinct_seeds_eventually_disagree() {
    // Sanity check that determinism is not vacuous (e.g. a sampler ignoring
    // its randomness entirely): across several seeds the sampled coordinate
    // must vary on a stream with a wide support.
    let n = 512;
    let stream = test_stream(n);
    let mut indices = std::collections::BTreeSet::new();
    for master in 0..24u64 {
        let mut seeds = SeedSequence::new(master);
        let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.3, &mut seeds);
        sampler.process_stream(&stream);
        if let Some(s) = sampler.sample() {
            indices.insert(s.index);
        }
    }
    assert!(
        indices.len() > 1,
        "24 differently-seeded samplers all produced the same (or no) output: {indices:?}"
    );
}

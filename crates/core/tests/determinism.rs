//! Regression tests pinning seed-driven determinism: every sampler in this
//! crate derives all of its randomness from a [`SeedSequence`], so two runs
//! built from the same master seed over the same stream must agree bit for
//! bit in what they output. This is what makes the paper's experiments (and
//! any distributed deployment that re-derives sampler state from a shared
//! seed) reproducible.

use lps_core::{
    repetitions_for, AkoSampler, FisL0Sampler, L0Sampler, LpSampler, PrecisionLpSampler,
    RepeatedSampler,
};
use lps_hash::SeedSequence;
use lps_stream::{zipf_stream, SpaceUsage, Update, UpdateStream};
use proptest::prelude::*;

/// A moderately adversarial stream: Zipfian inserts plus some deletions.
fn test_stream(n: u64) -> UpdateStream {
    let mut seeds = SeedSequence::new(991);
    let mut stream = zipf_stream(n, 4_000, 1.1, &mut seeds);
    for i in 0..32 {
        stream.push(Update::new((i * 17) % n, -1));
    }
    stream
}

#[test]
fn precision_sampler_is_deterministic_for_a_fixed_seed() {
    let n = 512;
    let stream = test_stream(n);
    for master in [1u64, 7, 42, 2024] {
        let run = |master: u64| {
            let mut seeds = SeedSequence::new(master);
            let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.3, &mut seeds);
            sampler.process_stream(&stream);
            (sampler.sample(), sampler.bits_used())
        };
        let (a, bits_a) = run(master);
        let (b, bits_b) = run(master);
        assert_eq!(
            a.map(|s| (s.index, s.estimate.to_bits())),
            b.map(|s| (s.index, s.estimate.to_bits())),
            "precision sampler output diverged across two runs with master seed {master}"
        );
        assert_eq!(bits_a, bits_b, "space accounting diverged for master seed {master}");
    }
}

#[test]
fn l0_sampler_is_deterministic_for_a_fixed_seed() {
    let n = 512;
    let stream = test_stream(n);
    for master in [3u64, 11, 99] {
        let run = |master: u64| {
            let mut seeds = SeedSequence::new(master);
            let mut sampler = L0Sampler::new(n, 0.1, &mut seeds);
            sampler.process_stream(&stream);
            sampler.sample()
        };
        let a = run(master);
        let b = run(master);
        assert_eq!(
            a.map(|s| (s.index, s.estimate.to_bits())),
            b.map(|s| (s.index, s.estimate.to_bits())),
            "L0 sampler output diverged across two runs with master seed {master}"
        );
    }
}

#[test]
fn repeated_sampler_is_deterministic_for_a_fixed_seed() {
    let n = 256;
    let stream = test_stream(n);
    let copies = repetitions_for(1.0, 0.3, 0.2);
    let run = || {
        let mut seeds = SeedSequence::new(555);
        let mut sampler =
            RepeatedSampler::new(copies, &mut seeds, |s| PrecisionLpSampler::new(n, 1.0, 0.3, s));
        sampler.process_stream(&stream);
        sampler.sample()
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.map(|s| (s.index, s.estimate.to_bits())),
        b.map(|s| (s.index, s.estimate.to_bits())),
        "repeated sampler output diverged across two runs with the same master seed"
    );
}

/// A comparable fingerprint of a sampler's output: `(index, estimate bits)`.
type SampleKey = Option<(u64, u64)>;

/// Drive one copy of a sampler sequentially and one through `process_batch`
/// (split across a chunk boundary), returning both samples for comparison.
/// The batched ingestion path must be *interchangeable* with the sequential
/// one: identical internal state, hence identical samples bit for bit.
fn batch_vs_sequential<S: LpSampler + Clone>(
    proto: &S,
    updates: &[Update],
) -> (SampleKey, SampleKey) {
    let mut sequential = proto.clone();
    for u in updates {
        sequential.process_update(*u);
    }
    let mut batched = proto.clone();
    let half = updates.len() / 2;
    batched.process_batch(&updates[..half]);
    batched.process_batch(&updates[half..]);
    let key = |s: &S| s.sample().map(|x| (x.index, x.estimate.to_bits()));
    (key(&sequential), key(&batched))
}

fn updates_strategy(n: u64, max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..n, -20i64..20), 0..max_len)
}

fn to_updates(pairs: &[(u64, i64)]) -> Vec<Update> {
    pairs.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn l0_sampler_batch_is_interchangeable_with_sequential(a in updates_strategy(256, 80), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = L0Sampler::new(256, 0.25, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential, batched);
    }

    #[test]
    fn fis_l0_batch_is_interchangeable_with_sequential(a in updates_strategy(256, 80), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = FisL0Sampler::new(256, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential, batched);
    }

    #[test]
    fn precision_sampler_batch_is_interchangeable_with_sequential(a in updates_strategy(256, 60), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PrecisionLpSampler::new(256, 1.0, 0.4, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential, batched);
    }

    #[test]
    fn ako_sampler_batch_is_interchangeable_with_sequential(a in updates_strategy(256, 60), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AkoSampler::new(256, 1.0, 0.4, &mut seeds);
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential, batched);
    }

    #[test]
    fn repeated_sampler_batch_is_interchangeable_with_sequential(a in updates_strategy(128, 40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = RepeatedSampler::new(3, &mut seeds, |s| PrecisionLpSampler::new(128, 1.0, 0.5, s));
        let (sequential, batched) = batch_vs_sequential(&proto, &to_updates(&a));
        prop_assert_eq!(sequential, batched);
    }
}

#[test]
fn l0_batch_matches_sequential_on_a_zipf_stream() {
    // an end-to-end check on a realistic duplicate-heavy stream, where the
    // coalescing path actually merges entries
    let n = 512;
    let stream = test_stream(n);
    let mut seeds = SeedSequence::new(4242);
    let proto = L0Sampler::new(n, 0.1, &mut seeds);
    let mut sequential = proto.clone();
    for u in &stream {
        sequential.process_update(*u);
    }
    let mut batched = proto;
    batched.process_stream(&stream); // chunked through process_batch
    assert_eq!(
        sequential.sample().map(|s| (s.index, s.estimate.to_bits())),
        batched.sample().map(|s| (s.index, s.estimate.to_bits())),
    );
    assert_eq!(sequential.successful_level(), batched.successful_level());
    assert_eq!(sequential.recover_first_nonzero(), batched.recover_first_nonzero());
}

#[test]
fn distinct_seeds_eventually_disagree() {
    // Sanity check that determinism is not vacuous (e.g. a sampler ignoring
    // its randomness entirely): across several seeds the sampled coordinate
    // must vary on a stream with a wide support.
    let n = 512;
    let stream = test_stream(n);
    let mut indices = std::collections::BTreeSet::new();
    for master in 0..24u64 {
        let mut seeds = SeedSequence::new(master);
        let mut sampler = PrecisionLpSampler::new(n, 1.0, 0.3, &mut seeds);
        sampler.process_stream(&stream);
        if let Some(s) = sampler.sample() {
            indices.insert(s.index);
        }
    }
    assert!(
        indices.len() > 1,
        "24 differently-seeded samplers all produced the same (or no) output: {indices:?}"
    );
}

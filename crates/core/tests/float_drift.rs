//! Quantifies the floating-point merge drift of the float-counter samplers
//! (the ROADMAP "engine support for the float structures" item).
//!
//! Sharded ingestion reassociates each counter's sum: sequential ingestion
//! computes `fl(((t_1 + t_2) + t_3) + …)` while a k-shard merge computes
//! `fl(Σ shard_1) + … + fl(Σ shard_k)` in tree order. The standard
//! summation error bound gives, for a counter accumulating `m` terms,
//!
//! ```text
//! |sharded − sequential| ≤ 2(m − 1)·ε·Σ|t_j| + O(ε²),   ε = 2⁻⁵³
//! ```
//!
//! so the *relative* drift of a counter is at most `~2mε / cancellation`,
//! where `cancellation = Σ|t_j| / |Σ t_j|`. Since the float accumulators
//! switched to Kahan compensated summation (`lps_sketch::compensated`), each
//! shard's per-counter sum is exact to `O(ε)` independent of `m`, leaving
//! only the k-way merge reassociation — so the observable drift shrinks from
//! the `~2mε ≲ 10⁻⁹` of naive summation to `~2kε ≲ 10⁻¹²` for the shard
//! counts here. The tests below pin the tightened bound on every observable
//! estimator quantity.

use lps_core::{AkoSampler, LpSampler, Mergeable, PrecisionLpSampler};
use lps_hash::SeedSequence;
use lps_stream::Update;

/// Measured drift stays well inside the a-priori `~2kε` bound that Kahan
/// compensation leaves (merge reassociation only; see module docs).
const DRIFT_TOLERANCE: f64 = 1e-12;

fn workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
    let mut s = SeedSequence::new(seed);
    let mut out: Vec<Update> = (0..len)
        .map(|_| {
            let delta = (s.next_below(9) as i64) - 4;
            Update::new(s.next_below(n), if delta == 0 { 1 } else { delta })
        })
        .collect();
    // a dominant coordinate keeps the samplers' guard thresholds far from
    // the drift scale, so success/failure cannot flip at the boundary
    out.push(Update::new(7, 50_000));
    out
}

/// Ingest sequentially on one clone and sharded (round-robin batches over
/// `shards` clones, tree merge) on others; return both.
fn sequential_and_sharded<S: LpSampler + Mergeable + Clone>(
    proto: &S,
    updates: &[Update],
    shards: usize,
) -> (S, S) {
    let mut sequential = proto.clone();
    sequential.process_batch(updates);

    let mut shard_states: Vec<S> = (0..shards).map(|_| proto.clone()).collect();
    for (i, chunk) in updates.chunks(256).enumerate() {
        shard_states[i % shards].process_batch(chunk);
    }
    while shard_states.len() > 1 {
        let mut next = Vec::with_capacity(shard_states.len().div_ceil(2));
        let mut it = shard_states.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_from(&b);
            }
            next.push(a);
        }
        shard_states = next;
    }
    (sequential, shard_states.pop().unwrap())
}

fn relative_drift(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

#[test]
fn precision_sampler_drift_is_bounded() {
    let n = 1 << 10;
    let updates = workload(n, 6000, 21);
    let mut seeds = SeedSequence::new(22);
    let proto = PrecisionLpSampler::new(n, 1.0, 0.4, &mut seeds);
    let (sequential, sharded) = sequential_and_sharded(&proto, &updates, 4);

    let seq_state = sequential.recovery_state();
    let shard_state = sharded.recovery_state();
    assert_eq!(seq_state.best_index, shard_state.best_index, "argmax flipped under drift");
    for (name, a, b) in [
        ("best_zstar", seq_state.best_zstar, shard_state.best_zstar),
        ("r", seq_state.r, shard_state.r),
        ("s", seq_state.s, shard_state.s),
    ] {
        let drift = relative_drift(a, b);
        assert!(drift <= DRIFT_TOLERANCE, "{name} drift {drift:.3e} exceeds bound");
    }
    // drift must not flip the accept/FAIL decision on a non-marginal stream
    assert_eq!(sequential.sample().is_some(), sharded.sample().is_some());
    if let (Some(a), Some(b)) = (sequential.sample(), sharded.sample()) {
        assert_eq!(a.index, b.index);
        assert!(relative_drift(a.estimate, b.estimate) <= DRIFT_TOLERANCE);
    }
}

#[test]
fn ako_sampler_drift_is_bounded() {
    let n = 1 << 10;
    let updates = workload(n, 6000, 23);
    let mut seeds = SeedSequence::new(24);
    let proto = AkoSampler::new(n, 1.0, 0.4, &mut seeds);
    let (sequential, sharded) = sequential_and_sharded(&proto, &updates, 4);

    assert_eq!(sequential.sample().is_some(), sharded.sample().is_some());
    if let (Some(a), Some(b)) = (sequential.sample(), sharded.sample()) {
        assert_eq!(a.index, b.index, "AKO argmax flipped under drift");
        let drift = relative_drift(a.estimate, b.estimate);
        assert!(drift <= DRIFT_TOLERANCE, "AKO estimate drift {drift:.3e} exceeds bound");
    }
}

#[test]
fn drift_grows_with_shard_count_but_stays_tiny() {
    // sanity on the error model: more shards = more reassociation, but even
    // 8 shards stay many orders below the estimator noise floor
    let n = 1 << 10;
    let updates = workload(n, 6000, 25);
    let mut seeds = SeedSequence::new(26);
    let proto = PrecisionLpSampler::new(n, 1.0, 0.4, &mut seeds);
    for shards in [2, 4, 8] {
        let (sequential, sharded) = sequential_and_sharded(&proto, &updates, shards);
        let drift = relative_drift(sequential.recovery_state().r, sharded.recovery_state().r);
        assert!(drift <= DRIFT_TOLERANCE, "{shards}-shard drift {drift:.3e} exceeds bound");
    }
}

//! Merge-law property tests for the `Mergeable` samplers: bit-exact
//! commutativity/associativity for the field/integer-arithmetic L0 samplers
//! and the exact baseline, bitwise commutativity plus estimator-level
//! associativity for the floating-point precision/AKO samplers and the
//! repetition wrapper built on them.

use lps_core::{
    AkoSampler, ExactSampler, FisL0Sampler, L0Sampler, LpSampler, Mergeable, PrecisionLpSampler,
    RepeatedSampler,
};
use lps_hash::SeedSequence;
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 256;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -20i64..20), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

fn three_samplers<S: LpSampler + Clone>(
    proto: &S,
    a: &[(u64, i64)],
    b: &[(u64, i64)],
    c: &[(u64, i64)],
) -> (S, S, S) {
    let mut sa = proto.clone();
    let mut sb = proto.clone();
    let mut sc = proto.clone();
    sa.process_batch(&to_updates(a));
    sb.process_batch(&to_updates(b));
    sc.process_batch(&to_updates(c));
    (sa, sb, sc)
}

fn assert_exact_merge_laws<S: Mergeable + Clone>(sa: &S, sb: &S, sc: &S) {
    let mut ab = sa.clone();
    ab.merge_from(sb);
    let mut ba = sb.clone();
    ba.merge_from(sa);
    assert_eq!(ab.state_digest(), ba.state_digest(), "merge must commute");
    let mut ab_c = ab;
    ab_c.merge_from(sc);
    let mut bc = sb.clone();
    bc.merge_from(sc);
    let mut a_bc = sa.clone();
    a_bc.merge_from(&bc);
    assert_eq!(ab_c.state_digest(), a_bc.state_digest(), "merge must associate");
}

/// Bitwise commutativity (float addition commutes exactly) plus
/// sample-output agreement under reassociation for float-counter samplers.
fn assert_float_merge_laws<S: Mergeable + LpSampler + Clone>(sa: &S, sb: &S, sc: &S) {
    let mut ab = sa.clone();
    ab.merge_from(sb);
    let mut ba = sb.clone();
    ba.merge_from(sa);
    assert_eq!(ab.state_digest(), ba.state_digest(), "merge must commute bitwise");
    let mut ab_c = ab;
    ab_c.merge_from(sc);
    let mut bc = sb.clone();
    bc.merge_from(sc);
    let mut a_bc = sa.clone();
    a_bc.merge_from(&bc);
    // Reassociated floating-point sums differ in rounding only; the decoded
    // sample must agree on the chosen index and near-exactly on the estimate.
    match (ab_c.sample(), a_bc.sample()) {
        (Some(x), Some(y)) => {
            assert_eq!(x.index, y.index, "reassociation changed the sampled index");
            let scale = 1.0 + x.estimate.abs().max(y.estimate.abs());
            assert!(
                (x.estimate - y.estimate).abs() <= 1e-6 * scale,
                "reassociation drifted the estimate: {} vs {}",
                x.estimate,
                y.estimate
            );
        }
        (x, y) => assert_eq!(x.is_some(), y.is_some(), "reassociation flipped FAIL"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn l0_sampler_merge_laws(a in updates_strategy(30), b in updates_strategy(30), c in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = L0Sampler::new(DIM, 0.25, &mut seeds);
        let (sa, sb, sc) = three_samplers(&proto, &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn fis_l0_merge_laws(a in updates_strategy(30), b in updates_strategy(30), c in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = FisL0Sampler::new(DIM, &mut seeds);
        let (sa, sb, sc) = three_samplers(&proto, &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn exact_sampler_merge_laws(a in updates_strategy(30), b in updates_strategy(30), c in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = ExactSampler::new(DIM, 1.0, &mut seeds);
        let (sa, sb, sc) = three_samplers(&proto, &a, &b, &c);
        assert_exact_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn precision_sampler_merge_laws(a in updates_strategy(20), b in updates_strategy(20), c in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PrecisionLpSampler::new(DIM, 1.0, 0.4, &mut seeds);
        let (sa, sb, sc) = three_samplers(&proto, &a, &b, &c);
        assert_float_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn ako_sampler_merge_laws(a in updates_strategy(20), b in updates_strategy(20), c in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AkoSampler::new(DIM, 1.0, 0.4, &mut seeds);
        let (sa, sb, sc) = three_samplers(&proto, &a, &b, &c);
        assert_float_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn repeated_sampler_merge_laws(a in updates_strategy(20), b in updates_strategy(20), c in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = RepeatedSampler::new(3, &mut seeds, |s| PrecisionLpSampler::new(DIM, 1.0, 0.4, s));
        let (sa, sb, sc) = three_samplers(&proto, &a, &b, &c);
        assert_float_merge_laws(&sa, &sb, &sc);
    }

    #[test]
    fn l0_merge_is_the_sketch_of_the_concatenation(a in updates_strategy(20), b in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = L0Sampler::new(DIM, 0.25, &mut seeds);
        let mut sa = proto.clone();
        sa.process_batch(&to_updates(&a));
        let mut sb = proto.clone();
        sb.process_batch(&to_updates(&b));
        sa.merge_from(&sb);
        let mut concat = proto.clone();
        concat.process_batch(&to_updates(&a));
        concat.process_batch(&to_updates(&b));
        prop_assert_eq!(sa.state_digest(), concat.state_digest());
        prop_assert_eq!(sa.sample(), concat.sample());
    }
}

//! Round-trip and rejection properties of the wire format for every sampler
//! in `lps-core`: digests survive encode → decode after partial ingestion and
//! after merges, and malformed buffers produce typed errors, never panics.

use lps_core::{
    AkoSampler, ExactSampler, FisL0Sampler, L0Randomness, L0Sampler, LpSampler, Mergeable, Persist,
    PrecisionLpSampler, RepeatedSampler,
};
use lps_hash::SeedSequence;
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 128;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -20i64..20), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

fn assert_roundtrips<S: Persist + Mergeable + LpSampler + Clone>(
    proto: &S,
    a: &[(u64, i64)],
    b: &[(u64, i64)],
) {
    let mut sa = proto.clone();
    let mut sb = proto.clone();
    sa.process_batch(&to_updates(a));
    sb.process_batch(&to_updates(b));
    for s in [&sa, &sb] {
        let decoded = S::decode_state(&s.encode_to_vec()).expect("round-trip decode");
        assert_eq!(decoded.state_digest(), s.state_digest(), "partial-ingest digest drifted");
    }
    let mut merged = sa.clone();
    merged.merge_from(&sb);
    let mut via_codec = S::decode_state(&sa.encode_to_vec()).unwrap();
    via_codec.merge_from(&S::decode_state(&sb.encode_to_vec()).unwrap());
    assert_eq!(merged.state_digest(), via_codec.state_digest(), "decoded merge diverged");
    let decoded = S::decode_state(&merged.encode_to_vec()).unwrap();
    assert_eq!(decoded.state_digest(), merged.state_digest(), "merged digest drifted");
}

fn assert_rejects_malformed<S: Persist>(state: &S) {
    let good = state.encode_to_vec();
    assert!(S::decode_state(&good).is_ok());
    for cut in 0..good.len().min(64) {
        assert!(S::decode_state(&good[..cut]).is_err(), "short prefix {cut} accepted");
    }
    // a prefix cut inside each section must also fail
    for frac in [3usize, 2] {
        let cut = good.len() - good.len() / frac;
        assert!(S::decode_state(&good[..cut]).is_err(), "truncated buffer accepted");
    }
    let step = (good.len() / 48).max(1);
    for pos in (0..good.len()).step_by(step) {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        let _ = S::decode_state(&bad); // must not panic
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn l0_sampler_roundtrip(a in updates_strategy(30), b in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = L0Sampler::new(DIM, 0.25, &mut seeds);
        assert_roundtrips(&proto, &a, &b);
    }

    #[test]
    fn l0_sampler_nisan_roundtrip(a in updates_strategy(20), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let mut sampler = L0Sampler::with_randomness(DIM, 0.25, L0Randomness::Nisan, &mut seeds);
        sampler.process_batch(&to_updates(&a));
        let decoded = L0Sampler::decode_state(&sampler.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), sampler.state_digest());
        prop_assert_eq!(decoded.randomness(), sampler.randomness());
        prop_assert_eq!(decoded.sample(), sampler.sample());
    }

    #[test]
    fn fis_l0_roundtrip(a in updates_strategy(25), b in updates_strategy(25), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = FisL0Sampler::new(64, &mut seeds);
        let a: Vec<(u64, i64)> = a.iter().map(|&(i, d)| (i % 64, d)).collect();
        let b: Vec<(u64, i64)> = b.iter().map(|&(i, d)| (i % 64, d)).collect();
        assert_roundtrips(&proto, &a, &b);
    }

    #[test]
    fn precision_sampler_roundtrip(a in updates_strategy(25), b in updates_strategy(25), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = PrecisionLpSampler::new(DIM, 1.0, 0.5, &mut seeds);
        assert_roundtrips(&proto, &a, &b);
    }

    #[test]
    fn ako_sampler_roundtrip(a in updates_strategy(25), b in updates_strategy(25), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AkoSampler::new(DIM, 1.0, 0.5, &mut seeds);
        assert_roundtrips(&proto, &a, &b);
    }

    #[test]
    fn repeated_sampler_roundtrip(a in updates_strategy(25), b in updates_strategy(25), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = RepeatedSampler::new(3, &mut seeds, |s| PrecisionLpSampler::new(DIM, 1.0, 0.5, s));
        assert_roundtrips(&proto, &a, &b);
    }

    #[test]
    fn exact_sampler_roundtrip(a in updates_strategy(25), b in updates_strategy(25), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = ExactSampler::new(DIM, 1.0, &mut seeds);
        assert_roundtrips(&proto, &a, &b);
    }
}

#[test]
fn decoded_l0_sampler_behaves_identically() {
    // behaviour, not just bytes: further ingestion and sampling agree
    let mut seeds = SeedSequence::new(5);
    let mut sampler = L0Sampler::new(1 << 10, 0.25, &mut seeds);
    for i in 0..200u64 {
        sampler.process_update(Update::new(i * 5 % (1 << 10), 1 + (i % 3) as i64));
    }
    let mut decoded = L0Sampler::decode_state(&sampler.encode_to_vec()).unwrap();
    assert_eq!(decoded.sample(), sampler.sample());
    for i in 0..50u64 {
        let u = Update::new(i * 11 % (1 << 10), -1);
        decoded.process_update(u);
        sampler.process_update(u);
    }
    assert_eq!(decoded.state_digest(), sampler.state_digest());
    assert_eq!(decoded.sample(), sampler.sample());
}

#[test]
fn exact_sampler_resumes_draw_stream() {
    let mut seeds = SeedSequence::new(6);
    let mut sampler = ExactSampler::new(32, 0.0, &mut seeds);
    sampler.process_update(Update::new(3, 2));
    sampler.process_update(Update::new(20, 1));
    let before: Vec<_> = (0..3).map(|_| sampler.draw().unwrap().index).collect();
    // a checkpoint taken now must continue the draw sequence, not restart it
    let restored = ExactSampler::decode_state(&sampler.encode_to_vec()).unwrap();
    for _ in 0..5 {
        assert_eq!(restored.draw().unwrap().index, sampler.draw().unwrap().index);
    }
    drop(before);
}

#[test]
fn malformed_buffers_rejected_for_every_sampler() {
    let mut seeds = SeedSequence::new(9);
    let ups = to_updates(&[(3, 5), (100, -2), (3, 4), (90, 7)]);

    let mut l0 = L0Sampler::new(DIM, 0.25, &mut seeds);
    l0.process_batch(&ups);
    assert_rejects_malformed(&l0);

    let mut fis = FisL0Sampler::new(64, &mut seeds);
    fis.process_batch(&to_updates(&[(3, 5), (60, -2)]));
    assert_rejects_malformed(&fis);

    let mut precision = PrecisionLpSampler::new(DIM, 1.0, 0.5, &mut seeds);
    precision.process_batch(&ups);
    assert_rejects_malformed(&precision);

    let mut ako = AkoSampler::new(DIM, 1.0, 0.5, &mut seeds);
    ako.process_batch(&ups);
    assert_rejects_malformed(&ako);

    let mut exact = ExactSampler::new(DIM, 1.0, &mut seeds);
    exact.process_batch(&ups);
    assert_rejects_malformed(&exact);
}

#[test]
fn repeated_tag_composes_with_inner_tag() {
    // the wrapper's tag must differ per inner sampler, so buffers cannot be
    // decoded as the wrong specialisation
    let mut s1 = SeedSequence::new(10);
    let rep = RepeatedSampler::new(2, &mut s1, |s| PrecisionLpSampler::new(DIM, 1.0, 0.5, s));
    let bytes = rep.encode_to_vec();
    assert!(RepeatedSampler::<PrecisionLpSampler>::decode_state(&bytes).is_ok());
    match RepeatedSampler::<L0Sampler>::decode_state(&bytes) {
        Err(lps_core::DecodeError::WrongStructure { .. }) => {}
        other => panic!("expected WrongStructure, got {other:?}"),
    }
}

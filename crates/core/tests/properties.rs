//! Property-based tests for the samplers: outputs always come from the
//! support, estimates are faithful, failure behaviour is sane.

use lps_core::{L0Sampler, LpSampler, PrecisionLpSampler, ReservoirSampler};
use lps_hash::SeedSequence;
use lps_stream::{TruthVector, TurnstileModel, Update, UpdateStream};
use proptest::prelude::*;

const DIM: u64 = 128;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -15i64..15), 0..max_len)
}

fn stream_of(updates: &[(u64, i64)]) -> UpdateStream {
    UpdateStream::from_updates(
        DIM,
        TurnstileModel::General,
        updates.iter().filter(|(_, d)| *d != 0).map(|&(i, d)| Update::new(i, d)).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn l0_sampler_output_is_in_support_with_exact_value(a in updates_strategy(60), seed in any::<u64>()) {
        let stream = stream_of(&a);
        let truth = TruthVector::from_stream(&stream);
        let mut seeds = SeedSequence::new(seed);
        let mut sampler = L0Sampler::new(DIM, 0.25, &mut seeds);
        sampler.process_stream(&stream);
        match sampler.sample() {
            Some(sample) => {
                prop_assert!(truth.get(sample.index) != 0, "sampled a zero coordinate");
                prop_assert_eq!(sample.estimate, truth.get(sample.index) as f64);
            }
            None => {
                // failure is only allowed when the support exceeds the per-level
                // sparsity (for sparse supports level 0 recovers everything)
                prop_assert!(truth.l0() as usize > sampler.sparsity() || truth.l0() == 0,
                    "failed on a {}-sparse vector with sparsity budget {}", truth.l0(), sampler.sparsity());
            }
        }
    }

    #[test]
    fn precision_sampler_output_is_in_support_for_p1(a in updates_strategy(40), seed in any::<u64>()) {
        let stream = stream_of(&a);
        let truth = TruthVector::from_stream(&stream);
        let mut seeds = SeedSequence::new(seed);
        let mut sampler = PrecisionLpSampler::new(DIM, 1.0, 0.4, &mut seeds);
        sampler.process_stream(&stream);
        if let Some(sample) = sampler.sample() {
            prop_assert!(truth.get(sample.index) != 0,
                "precision sampler returned coordinate {} which is zero", sample.index);
            // the estimate has the right sign except with low probability; we
            // only check it is finite and non-zero here
            prop_assert!(sample.estimate.is_finite() && sample.estimate != 0.0);
        }
        // zero vectors must always fail
        if truth.l0() == 0 {
            prop_assert!(sampler.sample().is_none());
        }
    }

    #[test]
    fn precision_sampler_space_is_seed_independent(p in prop::sample::select(vec![0.5, 1.0, 1.5]), s1 in any::<u64>(), s2 in any::<u64>()) {
        let mut a = SeedSequence::new(s1);
        let mut b = SeedSequence::new(s2);
        let x = PrecisionLpSampler::new(1 << 10, p, 0.25, &mut a);
        let y = PrecisionLpSampler::new(1 << 10, p, 0.25, &mut b);
        prop_assert_eq!(lps_stream::SpaceUsage::bits_used(&x), lps_stream::SpaceUsage::bits_used(&y));
    }

    #[test]
    fn reservoir_sampler_returns_an_inserted_index(inserts in prop::collection::vec(0..DIM, 1..50), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let mut sampler = ReservoirSampler::new(DIM, &mut seeds);
        for &i in &inserts {
            sampler.process_update(Update::new(i, 1));
        }
        let sample = sampler.sample().unwrap();
        prop_assert!(inserts.contains(&sample.index));
        prop_assert_eq!(sampler.total_weight(), inserts.len() as u64);
    }
}

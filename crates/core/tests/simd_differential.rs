//! Differential tests for the lane-parallel batched update path.
//!
//! The batch kernels in `lps_hash::simd` promise bit-identical results to
//! the scalar walk — canonical Mersenne-61 residues are unique, and every
//! counter mutation replays in the original order. These tests pin that
//! promise at the structure level for all seven exact-arithmetic structures
//! (sparse recovery, count-sketch, count-min, count-median, AMS, L0, FIS-L0):
//!
//! 1. batched ingestion — including batch sizes that do **not** divide the
//!    lane width — produces the same `state_digest` as one-update-at-a-time
//!    sequential ingestion;
//! 2. the digests equal *pinned constants*, so a build with
//!    `--features simd` (AVX2 kernels) and a default build (portable lanes)
//!    are proven bit-identical to each other and to the historical scalar
//!    path. CI runs this file under both feature configurations.

use lps_core::{FisL0Sampler, L0Sampler, LpSampler};
use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, Mergeable,
    SparseRecovery,
};
use lps_stream::Update;

const DIMENSION: u64 = 1 << 12;

/// A deterministic turnstile workload with duplicate indices, deletions,
/// full cancellations, and boundary coordinates.
fn workload(len: usize, seed: u64) -> Vec<Update> {
    let mut s = SeedSequence::new(seed);
    let mut updates = Vec::with_capacity(len);
    for k in 0..len {
        let index = match k % 7 {
            0 => 0,
            1 => DIMENSION - 1,
            _ => s.next_below(DIMENSION),
        };
        let delta = (s.next_below(21) as i64) - 10;
        updates.push(Update::new(index, delta));
        if k % 5 == 0 {
            // immediate cancellation pair, so coalescing sees zero sums
            updates.push(Update::new(index, -delta));
        }
    }
    updates
}

/// Digest after sequential one-at-a-time ingestion, and after batched
/// ingestion in chunks of `chunk` (deliberately including sizes that do not
/// divide `lps_hash::simd::LANES`).
fn digests<S: Clone>(
    proto: &S,
    updates: &[Update],
    chunk: usize,
    sequential_step: impl Fn(&mut S, Update),
    batch_step: impl Fn(&mut S, &[Update]),
    digest: impl Fn(&S) -> u64,
) -> (u64, u64) {
    let mut sequential = proto.clone();
    for &u in updates {
        sequential_step(&mut sequential, u);
    }
    let mut batched = proto.clone();
    for c in updates.chunks(chunk) {
        batch_step(&mut batched, c);
    }
    (digest(&sequential), digest(&batched))
}

/// Run one structure across every chunk size and return its sequential
/// digest (asserting the batched digests all match it).
fn check<S: Clone>(
    name: &str,
    proto: &S,
    updates: &[Update],
    sequential_step: impl Fn(&mut S, Update) + Copy,
    batch_step: impl Fn(&mut S, &[Update]) + Copy,
    digest: impl Fn(&S) -> u64 + Copy,
) -> u64 {
    let mut pinned = None;
    // 13 and 5 leave remainder tails; 1 degenerates to per-update batches;
    // 8 and 64 hit the whole-lane path
    for chunk in [1usize, 5, 8, 13, 64] {
        let (seq, bat) = digests(proto, updates, chunk, sequential_step, batch_step, digest);
        assert_eq!(seq, bat, "{name}: batched digest diverged at chunk size {chunk}");
        if let Some(prev) = pinned {
            assert_eq!(prev, seq, "{name}: sequential digest not deterministic");
        }
        pinned = Some(seq);
    }
    pinned.unwrap()
}

/// The digest every build of this workload must produce, regardless of
/// feature flags or backend. Computed from the (long-established) scalar
/// path; a divergence here means a kernel produced a different bit pattern.
const PINNED_DIGESTS: [(&str, u64); 7] = [
    ("sparse_recovery", 0xbc91bdb44dc823f3),
    ("count_sketch", 0x8773974357c3f6fe),
    ("count_min", 0x0b234ba855ee18b4),
    ("count_median", 0x6bb917508a7ab7f3),
    ("ams", 0x842f9d6cb7026926),
    ("l0", 0xc123d8d67d8d5d3f),
    ("fis_l0", 0x05c3775b5d8ce777),
];

fn computed_digests() -> Vec<(&'static str, u64)> {
    let updates = workload(400, 0x51AD);
    let mut seeds = SeedSequence::new(0xD1FF);
    let mut out = Vec::new();

    let sparse = SparseRecovery::new(DIMENSION, 8, &mut seeds);
    out.push((
        "sparse_recovery",
        check(
            "sparse_recovery",
            &sparse,
            &updates,
            |s, u| s.update(u.index, u.delta),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    let cs = CountSketch::new(DIMENSION, 32, 5, &mut seeds);
    out.push((
        "count_sketch",
        check(
            "count_sketch",
            &cs,
            &updates,
            |s, u| s.update_int(u),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    let cm = CountMinSketch::new(DIMENSION, 64, 4, &mut seeds);
    out.push((
        "count_min",
        check(
            "count_min",
            &cm,
            &updates,
            |s, u| s.update(u.index, u.delta),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    let cmed = CountMedianSketch::new(DIMENSION, 64, 5, &mut seeds);
    out.push((
        "count_median",
        check(
            "count_median",
            &cmed,
            &updates,
            |s, u| s.update_int(u),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    let ams = AmsSketch::new(DIMENSION, 8, 16, &mut seeds);
    out.push((
        "ams",
        check(
            "ams",
            &ams,
            &updates,
            |s, u| s.update_int(u),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    let l0 = L0Sampler::new(DIMENSION, 0.1, &mut seeds);
    out.push((
        "l0",
        check(
            "l0",
            &l0,
            &updates,
            |s, u| s.process_update(u),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    let fis = FisL0Sampler::new(DIMENSION, &mut seeds);
    out.push((
        "fis_l0",
        check(
            "fis_l0",
            &fis,
            &updates,
            |s, u| s.process_update(u),
            |s, c| s.process_batch(c),
            |s| s.state_digest(),
        ),
    ));

    out
}

/// Part 1: batched == sequential for every structure and every chunk size
/// (the per-chunk assertions live inside `check`); part 2: the digests match
/// the pinned constants, which a `--features simd` build must reproduce.
#[test]
fn batched_ingestion_digests_are_bit_identical_and_pinned() {
    let computed = computed_digests();
    let formatted: Vec<String> =
        computed.iter().map(|(n, d)| format!("(\"{n}\", {d:#018x})")).collect();
    assert_eq!(
        computed.as_slice(),
        PINNED_DIGESTS.as_slice(),
        "state digests diverged from the pinned scalar-path constants; \
         computed: [{}]",
        formatted.join(", ")
    );
}

//! Baselines for the duplicates experiments.
//!
//! * [`PriorWorkDuplicateFinder`] — a duplicate finder occupying the space
//!   regime of the prior state of the art (Gopalan–Radhakrishnan, SODA'09:
//!   O(log³ n) bits). GR's actual algorithm is a tailored sampling scheme; we
//!   substitute the same ±1-vector reduction driven by the AKO-style
//!   Lp sampler, which has exactly the prior-work O(log³ n) space bound. The
//!   substitution is documented in DESIGN.md: experiment E5 compares *space
//!   against success rate*, and this baseline reproduces the prior-work space
//!   while being at least as accurate as GR.
//! * [`NaiveDuplicateFinder`] — an exact hash-set duplicate finder (Θ(n log n)
//!   bits) providing ground truth for correctness checks.

use lps_core::{AkoSampler, LpSampler};
use lps_hash::SeedSequence;
use lps_stream::{SpaceBreakdown, SpaceUsage, Update, UpdateStream};

use crate::positive::copies_for;
use crate::result::DuplicateResult;

/// A duplicates finder with the prior-work O(log³ n) space footprint.
#[derive(Debug, Clone)]
pub struct PriorWorkDuplicateFinder {
    dimension: u64,
    copies: Vec<AkoSampler>,
}

impl PriorWorkDuplicateFinder {
    /// Create a finder over `[0, n)` with failure probability ≤ δ.
    pub fn new(n: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        let v = copies_for(delta);
        let mut copies: Vec<AkoSampler> = (0..v)
            .map(|_| {
                let mut child = seeds.split();
                AkoSampler::new(n, 1.0, 0.5, &mut child)
            })
            .collect();
        for i in 0..n {
            for c in copies.iter_mut() {
                c.process_update(Update::new(i, -1));
            }
        }
        PriorWorkDuplicateFinder { dimension: n, copies }
    }

    /// Alphabet size n.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// Process one letter of the stream.
    pub fn process_letter(&mut self, letter: u64) {
        assert!(letter < self.dimension);
        for c in self.copies.iter_mut() {
            c.process_update(Update::new(letter, 1));
        }
    }

    /// Process a whole letter stream (unit insertions).
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        for u in stream {
            assert_eq!(u.delta, 1);
            self.process_letter(u.index);
        }
    }

    /// Report a duplicate or FAIL.
    pub fn report(&self) -> DuplicateResult {
        for c in &self.copies {
            if let Some(sample) = c.sample() {
                if sample.estimate > 0.0 {
                    return DuplicateResult::Duplicate(sample.index);
                }
            }
        }
        DuplicateResult::Fail
    }
}

impl SpaceUsage for PriorWorkDuplicateFinder {
    fn space(&self) -> SpaceBreakdown {
        self.copies
            .iter()
            .map(|c| c.space())
            .fold(SpaceBreakdown::default(), |acc, s| acc.combine(&s))
    }
}

/// An exact duplicate finder storing every letter seen (ground truth).
#[derive(Debug, Clone, Default)]
pub struct NaiveDuplicateFinder {
    seen: std::collections::HashSet<u64>,
    first_duplicate: Option<u64>,
    all_duplicates: std::collections::BTreeSet<u64>,
}

impl NaiveDuplicateFinder {
    /// Create an empty finder.
    pub fn new() -> Self {
        NaiveDuplicateFinder::default()
    }

    /// Process one letter.
    pub fn process_letter(&mut self, letter: u64) {
        if !self.seen.insert(letter) {
            self.first_duplicate.get_or_insert(letter);
            self.all_duplicates.insert(letter);
        }
    }

    /// Process a whole letter stream (unit insertions).
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        for u in stream {
            assert_eq!(u.delta, 1);
            self.process_letter(u.index);
        }
    }

    /// The first duplicate encountered, if any.
    pub fn report(&self) -> DuplicateResult {
        match self.first_duplicate {
            Some(d) => DuplicateResult::Duplicate(d),
            None => DuplicateResult::NoDuplicate,
        }
    }

    /// Every letter seen at least twice.
    pub fn all_duplicates(&self) -> Vec<u64> {
        self.all_duplicates.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem3::DuplicateFinder;
    use lps_stream::duplicate_stream_n_plus_1;

    #[test]
    fn naive_finder_is_exact() {
        let mut naive = NaiveDuplicateFinder::new();
        for letter in [5u64, 9, 5, 3, 9] {
            naive.process_letter(letter);
        }
        assert_eq!(naive.report(), DuplicateResult::Duplicate(5));
        assert_eq!(naive.all_duplicates(), vec![5, 9]);

        let mut clean = NaiveDuplicateFinder::new();
        for letter in [1u64, 2, 3] {
            clean.process_letter(letter);
        }
        assert_eq!(clean.report(), DuplicateResult::NoDuplicate);
    }

    #[test]
    fn prior_work_finder_finds_true_duplicates() {
        let n = 256u64;
        let mut gen = SeedSequence::new(1);
        let (stream, dups) = duplicate_stream_n_plus_1(n, 20, &mut gen);
        let mut found = 0;
        let mut wrong = 0;
        let trials = 10u64;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(40 + seed);
            let mut finder = PriorWorkDuplicateFinder::new(n, 0.25, &mut seeds);
            finder.process_stream(&stream);
            if let DuplicateResult::Duplicate(d) = finder.report() {
                if dups.contains(&d) {
                    found += 1;
                } else {
                    wrong += 1;
                }
            }
        }
        assert_eq!(wrong, 0);
        assert!(found >= 5, "prior-work baseline found only {found}/{trials}");
    }

    #[test]
    fn prior_work_baseline_uses_more_space_than_theorem_3() {
        let n = 1 << 14;
        let mut s1 = SeedSequence::new(2);
        let mut s2 = SeedSequence::new(2);
        let prior = PriorWorkDuplicateFinder::new(n, 0.25, &mut s1);
        let ours = DuplicateFinder::new(n, 0.25, &mut s2);
        assert!(
            prior.bits_used() > 2 * ours.bits_used(),
            "prior work ({}) should exceed Theorem 3 ({}) by the extra log factor",
            prior.bits_used(),
            ours.bits_used()
        );
    }
}

//! # lps-duplicates
//!
//! Finding duplicates in data streams (Section 3 of Jowhari–Sağlam–Tardos,
//! PODS 2011) via the L1 samplers of `lps-core`:
//!
//! * [`theorem3`] — streams of length n + 1 over `[n]`: O(log² n log(1/δ)) bits.
//! * [`theorem4`] — streams of length n − s: O(s log n + log² n log(1/δ))
//!   bits, with an exact NO-DUPLICATE certificate in the sparse regime.
//! * [`oversample`] — streams of length n + s: O(min{log² n, (n/s) log n}) bits.
//! * [`positive`] — the generalised "find an index with x_i > 0" engine the
//!   theorems share.
//! * [`baseline`] — a prior-work-space (O(log³ n)) finder and an exact naive
//!   finder used as ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod oversample;
pub mod positive;
pub mod result;
pub mod theorem3;
pub mod theorem4;

pub use baseline::{NaiveDuplicateFinder, PriorWorkDuplicateFinder};
pub use oversample::{LongStreamDuplicateFinder, OversampleStrategy};
pub use positive::{copies_for, PositiveCoordinateFinder, INNER_EPSILON};
pub use result::DuplicateResult;
pub use theorem3::DuplicateFinder;
pub use theorem4::ShortStreamDuplicateFinder;

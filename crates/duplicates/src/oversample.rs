//! Duplicates in streams of length n + s over `[n]` (final paragraph of
//! Section 3): O(min{log² n, (n/s)·log n}) bits.
//!
//! With `s` extra letters the stream contains at least `s` positions whose
//! letter appears again later (at most n positions can be the *last*
//! occurrence of their letter). So a uniformly random position repeats later
//! with probability ≥ s/(n+s), and `4⌈n/s⌉` uniform positions contain a
//! repeating one with constant probability. The algorithm therefore:
//!
//! * if `n/s < log n`: samples `4⌈n/s⌉` positions up front, remembers the
//!   letters read at those positions and reports any of them that is seen
//!   again afterwards — O((n/s) log n) bits;
//! * otherwise: falls back to the Theorem 3 finder — O(log² n) bits.

use lps_hash::SeedSequence;
use lps_stream::{sample_distinct, SpaceBreakdown, SpaceUsage, UpdateStream};

use crate::result::DuplicateResult;
use crate::theorem3::DuplicateFinder;

/// Which strategy the length-(n+s) finder selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OversampleStrategy {
    /// Sample 4⌈n/s⌉ stream positions and watch for re-occurrences.
    PositionSampling,
    /// Use the Theorem 3 L1-sampling finder.
    L1Sampling,
}

#[derive(Debug, Clone)]
enum Inner {
    Positions {
        /// Sorted sampled positions (0-based within the stream).
        positions: Vec<u64>,
        /// Letters observed at already-passed sampled positions.
        watched: Vec<u64>,
        /// A watched letter that was seen again.
        hit: Option<u64>,
        cursor: u64,
    },
    Sampler(Box<DuplicateFinder>),
}

/// Duplicate finder for streams of length n + s over `[n]`.
#[derive(Debug, Clone)]
pub struct LongStreamDuplicateFinder {
    dimension: u64,
    s: u64,
    strategy: OversampleStrategy,
    inner: Inner,
}

impl LongStreamDuplicateFinder {
    /// Create a finder for a stream of length `n + s` (`s ≥ 1`) over `[0, n)`
    /// with failure probability roughly constant (boostable by repetition).
    pub fn new(n: u64, s: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        assert!(s >= 1, "the oversampled variant needs s >= 1");
        let log_n = (n.max(2) as f64).log2();
        let ratio = n / s.max(1);
        if (ratio as f64) < log_n {
            let length = n + s;
            let want = (4 * (n + s - 1).div_euclid(s).max(1)).min(length);
            let mut positions = sample_distinct(length, want, seeds);
            positions.sort_unstable();
            LongStreamDuplicateFinder {
                dimension: n,
                s,
                strategy: OversampleStrategy::PositionSampling,
                inner: Inner::Positions { positions, watched: Vec::new(), hit: None, cursor: 0 },
            }
        } else {
            LongStreamDuplicateFinder {
                dimension: n,
                s,
                strategy: OversampleStrategy::L1Sampling,
                inner: Inner::Sampler(Box::new(DuplicateFinder::new(n, delta, seeds))),
            }
        }
    }

    /// The strategy chosen for these parameters.
    pub fn strategy(&self) -> OversampleStrategy {
        self.strategy
    }

    /// The oversampling parameter s (stream length is n + s).
    pub fn oversample(&self) -> u64 {
        self.s
    }

    /// Process one letter of the stream.
    pub fn process_letter(&mut self, letter: u64) {
        assert!(letter < self.dimension);
        match &mut self.inner {
            Inner::Positions { positions, watched, hit, cursor } => {
                if hit.is_none() && watched.contains(&letter) {
                    *hit = Some(letter);
                }
                if positions.binary_search(cursor).is_ok() && !watched.contains(&letter) {
                    watched.push(letter);
                }
                *cursor += 1;
            }
            Inner::Sampler(finder) => finder.process_letter(letter),
        }
    }

    /// Process a whole letter stream (unit insertions).
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        assert_eq!(stream.dimension(), self.dimension);
        for u in stream {
            assert_eq!(u.delta, 1, "the duplicates problem consumes unit insertions only");
            self.process_letter(u.index);
        }
    }

    /// Report a duplicate or FAIL. Position sampling only reports letters it
    /// has actually seen twice, so its positives are always correct.
    pub fn report(&self) -> DuplicateResult {
        match &self.inner {
            Inner::Positions { hit, .. } => match hit {
                Some(letter) => DuplicateResult::Duplicate(*letter),
                None => DuplicateResult::Fail,
            },
            Inner::Sampler(finder) => finder.report(),
        }
    }
}

impl SpaceUsage for LongStreamDuplicateFinder {
    fn space(&self) -> SpaceBreakdown {
        match &self.inner {
            Inner::Positions { positions, .. } => {
                // positions + watched letters + cursor, each O(log n) bits
                let counters = (2 * positions.len() + 1) as u64;
                let bits = lps_stream::counter_bits_for(self.dimension + self.s, 2);
                SpaceBreakdown::new(counters, bits, 0)
            }
            Inner::Sampler(finder) => finder.space(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::duplicate_stream_n_plus_s;

    #[test]
    fn position_sampling_chosen_for_large_s() {
        let mut seeds = SeedSequence::new(1);
        let finder = LongStreamDuplicateFinder::new(1 << 12, 1 << 10, 0.25, &mut seeds);
        assert_eq!(finder.strategy(), OversampleStrategy::PositionSampling);
    }

    #[test]
    fn l1_sampling_chosen_for_small_s() {
        let mut seeds = SeedSequence::new(2);
        let finder = LongStreamDuplicateFinder::new(1 << 12, 4, 0.25, &mut seeds);
        assert_eq!(finder.strategy(), OversampleStrategy::L1Sampling);
    }

    #[test]
    fn position_sampling_finds_true_duplicates() {
        let n = 1024u64;
        let s = 512u64;
        let mut gen = SeedSequence::new(3);
        let (stream, dups) = duplicate_stream_n_plus_s(n, s, &mut gen);
        let trials = 40u64;
        let mut found = 0;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(100 + seed);
            let mut finder = LongStreamDuplicateFinder::new(n, s, 0.25, &mut seeds);
            assert_eq!(finder.strategy(), OversampleStrategy::PositionSampling);
            finder.process_stream(&stream);
            match finder.report() {
                DuplicateResult::Duplicate(d) => {
                    assert!(dups.contains(&d), "{d} is not a duplicate");
                    found += 1;
                }
                DuplicateResult::Fail => {}
                DuplicateResult::NoDuplicate => panic!("never certifies"),
            }
        }
        assert!(found as f64 >= 0.5 * trials as f64, "found {found}/{trials}");
    }

    #[test]
    fn l1_fallback_finds_true_duplicates() {
        let n = 256u64;
        let s = 2u64;
        let mut gen = SeedSequence::new(4);
        let (stream, dups) = duplicate_stream_n_plus_s(n, s, &mut gen);
        let mut found = 0;
        let trials = 15u64;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(300 + seed);
            let mut finder = LongStreamDuplicateFinder::new(n, s, 0.25, &mut seeds);
            assert_eq!(finder.strategy(), OversampleStrategy::L1Sampling);
            finder.process_stream(&stream);
            if let DuplicateResult::Duplicate(d) = finder.report() {
                assert!(dups.contains(&d));
                found += 1;
            }
        }
        assert!(found >= 6, "found {found}/{trials}");
    }

    #[test]
    fn position_sampling_space_is_small() {
        let mut seeds = SeedSequence::new(5);
        let finder = LongStreamDuplicateFinder::new(1 << 16, 1 << 14, 0.25, &mut seeds);
        // 4 * n/s = 16 sampled positions -> a handful of counters
        assert!(finder.space().counters < 100);
    }
}

//! Finding a positive coordinate of a turnstile vector via L1 sampling.
//!
//! This is the engine behind both duplicate-finding theorems. The paper
//! remarks (end of Section 3) that Theorems 3 and 4 generalise to: given an
//! update stream for `x ∈ Z^n`, find an index with `x_i > 0`. The reduction
//! from duplicates sets `x_i = (#occurrences of i) − 1`, so duplicates are
//! exactly the positive coordinates.
//!
//! The finder runs `v = O(log(1/δ))` independent copies of the paper's
//! 1/2-relative-error L1 sampler in parallel over the same pass; a copy
//! "votes" for an index when it returns a sample whose estimate is positive.
//! When `Σ x_i ≥ 1` a perfect L1 sample is positive with probability > 1/2,
//! so each copy produces a vote with constant probability and the first vote
//! is a true positive coordinate except with low probability (the estimate
//! would need the wrong sign).

use lps_core::{LpSampler, Mergeable, PrecisionLpSampler, StateDigest};
use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{DecodeError, Persist, WireReader, WireWriter};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update, UpdateStream};

/// Relative error / success scale of each internal L1 sampler copy
/// (Theorem 3 sets both the relative error and the failure rate to 1/2).
pub const INNER_EPSILON: f64 = 0.5;

/// Number of independent L1-sampler copies needed so that the probability
/// that *no* copy produces a positive vote is at most δ, given that each copy
/// votes with probability at least ~1/8 (Theorem 3's accounting: success
/// probability ≥ ε/2 = 1/4, positive conditioned on success > 1/2).
pub fn copies_for(delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0);
    // per-copy vote probability lower bound
    let q: f64 = 1.0 / 8.0;
    ((delta.ln() / (1.0 - q).ln()).ceil() as usize).max(1)
}

/// A one-pass finder of an index with `x_i > 0`.
#[derive(Debug, Clone)]
pub struct PositiveCoordinateFinder {
    dimension: u64,
    delta: f64,
    copies: Vec<PrecisionLpSampler>,
}

impl PositiveCoordinateFinder {
    /// Create a finder with failure probability at most `delta` (given that a
    /// positive coordinate exists and carries the L1 mass the theorems give it).
    pub fn new(dimension: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        let v = copies_for(delta);
        let copies = (0..v)
            .map(|_| {
                let mut child = seeds.split();
                PrecisionLpSampler::new(dimension, 1.0, INNER_EPSILON, &mut child)
            })
            .collect();
        PositiveCoordinateFinder { dimension, delta, copies }
    }

    /// Number of parallel sampler copies.
    pub fn copies(&self) -> usize {
        self.copies.len()
    }

    /// The configured failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Dimension of the underlying vector.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// Process a single update.
    pub fn process_update(&mut self, update: Update) {
        for c in self.copies.iter_mut() {
            c.process_update(update);
        }
    }

    /// Process a batch of updates, letting every sampler copy use its
    /// batched fast path (cached scale multipliers per distinct index).
    pub fn process_batch(&mut self, updates: &[Update]) {
        for c in self.copies.iter_mut() {
            c.process_batch(updates);
        }
    }

    /// Process a whole stream through the batched path.
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Report an index with a positive estimate, if any copy produced one.
    pub fn find_positive(&self) -> Option<u64> {
        for copy in &self.copies {
            if let Some(sample) = copy.sample() {
                if sample.estimate > 0.0 {
                    return Some(sample.index);
                }
            }
        }
        None
    }

    /// Diagnostic: number of copies that produced any (positive or negative) sample.
    pub fn successful_copies(&self) -> usize {
        self.copies.iter().filter(|c| c.sample().is_some()).count()
    }
}

impl Mergeable for PositiveCoordinateFinder {
    /// Merge an identically-seeded finder copy by copy. The finder starts
    /// from zero state, so plain additive composition carries the usual
    /// linear-sketch semantics (concatenated streams).
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.copies.len(), other.copies.len(), "copy-count mismatch");
        for (a, b) in self.copies.iter_mut().zip(other.copies.iter()) {
            a.merge_from(b);
        }
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for c in &self.copies {
            d.write_u64(c.state_digest());
        }
        d.finish()
    }
}

impl Persist for PositiveCoordinateFinder {
    const TAG: u16 = tags::POSITIVE_FINDER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_f64(self.delta);
        w.write_len(self.copies.len());
        for c in &self.copies {
            c.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for c in &self.copies {
            c.encode_counters(w);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let delta = seeds.read_finite_f64("positive finder delta must be finite")?;
        if dimension == 0 || !(delta > 0.0 && delta < 1.0) {
            return Err(DecodeError::Corrupt { context: "positive finder needs delta in (0, 1)" });
        }
        let count = seeds.read_count(1)?;
        if count == 0 {
            return Err(DecodeError::Corrupt { context: "positive finder needs >= 1 copy" });
        }
        let copies = (0..count)
            .map(|_| PrecisionLpSampler::decode_parts(seeds, counters))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PositiveCoordinateFinder { dimension, delta, copies })
    }
}

impl SpaceUsage for PositiveCoordinateFinder {
    fn space(&self) -> SpaceBreakdown {
        self.copies
            .iter()
            .map(|c| c.space())
            .fold(SpaceBreakdown::default(), |acc, s| acc.combine(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{TurnstileModel, UpdateStream};

    #[test]
    fn copies_for_shrinks_with_larger_delta() {
        assert!(copies_for(0.01) > copies_for(0.3));
        assert!(copies_for(0.9) >= 1);
    }

    #[test]
    fn finds_the_unique_positive_coordinate() {
        // x has one +1 coordinate and many -1 coordinates: exactly the
        // Theorem 3 situation after the duplicates reduction.
        let n = 128u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        for i in 0..60u64 {
            stream.push(Update::new(i, -1));
        }
        stream.push(Update::new(100, 61)); // sum = +1
        let mut found = 0;
        let mut wrong = 0;
        let trials = 30u64;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(500 + seed);
            let mut finder = PositiveCoordinateFinder::new(n, 0.2, &mut seeds);
            finder.process_stream(&stream);
            match finder.find_positive() {
                Some(100) => found += 1,
                Some(_) => wrong += 1,
                None => {}
            }
        }
        assert_eq!(wrong, 0, "a negative coordinate was reported as positive");
        assert!(found as f64 >= 0.6 * trials as f64, "found only {found}/{trials}");
    }

    #[test]
    fn zero_vector_reports_nothing() {
        let mut seeds = SeedSequence::new(1);
        let finder = PositiveCoordinateFinder::new(64, 0.25, &mut seeds);
        assert!(finder.find_positive().is_none());
        assert_eq!(finder.successful_copies(), 0);
    }

    #[test]
    fn space_scales_with_copies() {
        let mut s1 = SeedSequence::new(2);
        let mut s2 = SeedSequence::new(2);
        let loose = PositiveCoordinateFinder::new(1024, 0.5, &mut s1);
        let tight = PositiveCoordinateFinder::new(1024, 0.01, &mut s2);
        assert!(tight.copies() > loose.copies());
        assert!(tight.bits_used() > loose.bits_used());
    }
}

//! Result type shared by all duplicate-finding algorithms.

/// The outcome of a duplicate-finding algorithm (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicateResult {
    /// A letter claimed to appear at least twice in the stream. The paper's
    /// algorithms return a true duplicate except with low probability.
    Duplicate(u64),
    /// The algorithm certifies the stream has no duplicate (only produced by
    /// the Theorem 4 algorithm, and only when it is certain).
    NoDuplicate,
    /// The algorithm failed to decide (allowed with probability ≤ δ).
    Fail,
}

impl DuplicateResult {
    /// The reported duplicate, if any.
    pub fn duplicate(&self) -> Option<u64> {
        match self {
            DuplicateResult::Duplicate(i) => Some(*i),
            _ => None,
        }
    }

    /// True if the algorithm produced a definite answer (duplicate or certificate).
    pub fn is_decided(&self) -> bool {
        !matches!(self, DuplicateResult::Fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(DuplicateResult::Duplicate(4).duplicate(), Some(4));
        assert_eq!(DuplicateResult::Fail.duplicate(), None);
        assert_eq!(DuplicateResult::NoDuplicate.duplicate(), None);
        assert!(DuplicateResult::Duplicate(1).is_decided());
        assert!(DuplicateResult::NoDuplicate.is_decided());
        assert!(!DuplicateResult::Fail.is_decided());
    }
}

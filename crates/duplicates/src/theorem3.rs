//! Theorem 3: finding a duplicate in a stream of length n + 1 over `[n]` in
//! O(log² n · log(1/δ)) bits.
//!
//! The reduction: let `x ∈ Z^n` start at zero, subtract 1 from every
//! coordinate (the updates `(i, −1)` for all i), then add 1 for every letter
//! of the stream. At the end `x_i ≥ 1` exactly for the letters appearing at
//! least twice, `x_i = 0` for letters appearing once and `x_i = −1` for
//! absent letters, and `Σ x_i = 1`. A perfect L1 sample of `x` is therefore a
//! duplicate with probability > 1/2; the paper's 1/2-relative-error L1
//! sampler preserves enough of that margin, and O(log 1/δ) parallel copies
//! push the failure probability below δ while keeping the error probability
//! (reporting a non-duplicate) low.

use lps_core::{Mergeable, StateDigest};
use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{DecodeError, Persist, WireReader, WireWriter};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update, UpdateStream};

use crate::positive::PositiveCoordinateFinder;
use crate::result::DuplicateResult;

/// The Theorem 3 duplicate finder for streams of length n + 1 over `[n]`.
#[derive(Debug, Clone)]
pub struct DuplicateFinder {
    dimension: u64,
    finder: PositiveCoordinateFinder,
    letters_seen: u64,
}

impl DuplicateFinder {
    /// Create a finder over the alphabet `[0, n)` with failure probability ≤ δ.
    ///
    /// Construction immediately feeds the initial `(i, −1)` updates for every
    /// `i ∈ [n]` into the linear sketches, exactly as in the proof.
    pub fn new(n: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        let mut out = Self::new_shard(n, delta, seeds);
        for i in 0..n {
            out.finder.process_update(Update::new(i, -1));
        }
        out
    }

    /// An identically-seeded finder *without* the initial `(i, −1)` pass —
    /// a "shard" for parallel ingestion. `new` and `new_shard` consume the
    /// seed sequence identically, so a shard built from the same seed holds
    /// the same random functions as the primary finder and [`Mergeable`]
    /// composition is exact linear-sketch addition. The initialization mass
    /// must live in exactly one operand of a merge chain: merge letter-only
    /// shards into one finder built with [`DuplicateFinder::new`].
    pub fn new_shard(n: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        let finder = PositiveCoordinateFinder::new(n, delta, seeds);
        DuplicateFinder { dimension: n, finder, letters_seen: 0 }
    }

    /// Alphabet size n.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// Number of stream letters processed so far.
    pub fn letters_seen(&self) -> u64 {
        self.letters_seen
    }

    /// Process one letter of the stream (an element of `[0, n)`).
    pub fn process_letter(&mut self, letter: u64) {
        assert!(
            letter < self.dimension,
            "letter {letter} outside alphabet [0, {})",
            self.dimension
        );
        self.letters_seen += 1;
        self.finder.process_update(Update::new(letter, 1));
    }

    /// Process a batch of letters at once, forwarding one coalescible batch
    /// of `(letter, +1)` updates to the internal sampler copies.
    pub fn process_letters(&mut self, letters: &[u64]) {
        let updates: Vec<Update> = letters
            .iter()
            .map(|&letter| {
                assert!(
                    letter < self.dimension,
                    "letter {letter} outside alphabet [0, {})",
                    self.dimension
                );
                Update::insert(letter)
            })
            .collect();
        self.letters_seen += letters.len() as u64;
        self.finder.process_batch(&updates);
    }

    /// Process a whole letter stream given as unit insertions.
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        assert_eq!(stream.dimension(), self.dimension);
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            for u in chunk {
                assert_eq!(u.delta, 1, "the duplicates problem consumes unit insertions only");
                assert!(u.index < self.dimension);
            }
            self.letters_seen += chunk.len() as u64;
            self.finder.process_batch(chunk);
        }
    }

    /// Report a duplicate or FAIL.
    pub fn report(&self) -> DuplicateResult {
        match self.finder.find_positive() {
            Some(i) => DuplicateResult::Duplicate(i),
            None => DuplicateResult::Fail,
        }
    }
}

impl Mergeable for DuplicateFinder {
    /// Compose the inner sampler merges and sum the letter counts.
    ///
    /// Because `DuplicateFinder::new` pre-loads the `(i, −1)` initialization
    /// vector, additive merging is stream-faithful only when exactly one
    /// operand in a merge chain carries that mass — build the others with
    /// [`DuplicateFinder::new_shard`].
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        self.finder.merge_from(&other.finder);
        self.letters_seen += other.letters_seen;
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.finder.state_digest()).write_u64(self.letters_seen);
        d.finish()
    }
}

impl Persist for DuplicateFinder {
    const TAG: u16 = tags::DUPLICATE_FINDER;

    /// Whether this operand carries the construction-time `(i, −1)`
    /// initialization mass is **counter** state, not seed state: a primary
    /// finder and its letter-only shards share seed sections, exactly like
    /// any other merge-compatible pair.
    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        self.finder.encode_seeds(w);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.letters_seen);
        self.finder.encode_counters(w);
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        if dimension == 0 {
            return Err(DecodeError::Corrupt { context: "duplicate finder dimension must be > 0" });
        }
        let letters_seen = counters.read_u64()?;
        let finder = PositiveCoordinateFinder::decode_parts(seeds, counters)?;
        if finder.dimension() != dimension {
            return Err(DecodeError::Corrupt { context: "duplicate finder dimension mismatch" });
        }
        Ok(DuplicateFinder { dimension, finder, letters_seen })
    }
}

impl SpaceUsage for DuplicateFinder {
    fn space(&self) -> SpaceBreakdown {
        // one extra counter for the letter count
        self.finder.space().combine(&SpaceBreakdown::new(1, 64, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::duplicate_stream_n_plus_1;

    #[test]
    fn finds_a_true_duplicate_in_n_plus_1_streams() {
        let n = 256u64;
        let mut gen = SeedSequence::new(1);
        let (stream, dups) = duplicate_stream_n_plus_1(n, 2, &mut gen);
        let trials = 25u64;
        let mut found = 0;
        let mut wrong = 0;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(100 + seed);
            let mut finder = DuplicateFinder::new(n, 0.2, &mut seeds);
            finder.process_stream(&stream);
            match finder.report() {
                DuplicateResult::Duplicate(d) => {
                    if dups.contains(&d) {
                        found += 1;
                    } else {
                        wrong += 1;
                    }
                }
                DuplicateResult::Fail => {}
                DuplicateResult::NoDuplicate => panic!("Theorem 3 never certifies NoDuplicate"),
            }
        }
        assert_eq!(wrong, 0, "reported a letter that is not a duplicate");
        assert!(found as f64 >= 0.6 * trials as f64, "found only {found}/{trials}");
    }

    #[test]
    fn many_duplicates_are_easier() {
        let n = 256u64;
        let mut gen = SeedSequence::new(2);
        let (stream, dups) = duplicate_stream_n_plus_1(n, 60, &mut gen);
        let mut seeds = SeedSequence::new(3);
        let mut finder = DuplicateFinder::new(n, 0.1, &mut seeds);
        finder.process_stream(&stream);
        match finder.report() {
            DuplicateResult::Duplicate(d) => assert!(dups.contains(&d)),
            other => panic!("expected a duplicate, got {other:?}"),
        }
    }

    #[test]
    fn letter_counting_and_bounds() {
        let mut seeds = SeedSequence::new(4);
        let mut finder = DuplicateFinder::new(16, 0.5, &mut seeds);
        finder.process_letter(3);
        finder.process_letter(3);
        assert_eq!(finder.letters_seen(), 2);
        assert_eq!(finder.dimension(), 16);
    }

    #[test]
    #[should_panic]
    fn out_of_alphabet_letter_rejected() {
        let mut seeds = SeedSequence::new(5);
        let mut finder = DuplicateFinder::new(16, 0.5, &mut seeds);
        finder.process_letter(16);
    }

    #[test]
    fn space_grows_polylogarithmically_with_n() {
        let mut s1 = SeedSequence::new(6);
        let mut s2 = SeedSequence::new(6);
        let small = DuplicateFinder::new(1 << 8, 0.25, &mut s1);
        let large = DuplicateFinder::new(1 << 16, 0.25, &mut s2);
        let ratio = large.bits_used() as f64 / small.bits_used() as f64;
        // doubling log n should roughly quadruple log^2 n space, certainly not
        // scale linearly with n (which grew 256x)
        assert!(ratio < 16.0, "space ratio {ratio} suggests super-polylog growth");
    }
}

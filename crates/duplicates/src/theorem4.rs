//! Theorem 4: finding duplicates in streams of length n − s over `[n]` in
//! O(s log n + log² n · log(1/δ)) bits.
//!
//! With a shorter stream a duplicate need not exist. The vector
//! `x_i = (#occurrences of i) − 1` now sums to `−s`. The algorithm runs, in
//! parallel over one pass:
//!
//! * the exact sparse-recovery structure of Lemma 5 with capacity `5s`, and
//! * the 1/2-relative-error L1 sampler copies of Theorem 3.
//!
//! If the recovery returns a vector (not DENSE) the algorithm answers exactly
//! — reporting a positive coordinate if one exists and `NO-DUPLICATE`
//! otherwise (the no-duplicate case is always 5s-sparse, since then
//! `‖x‖₁⁺ = 0` and `‖x‖₁⁻ = s`). Otherwise `‖x‖₁⁺ + ‖x‖₁⁻ > 5s`, so the
//! positive mass is at least a 2/5 fraction of `‖x‖₁` and a positive L1
//! sample is produced with constant probability per copy.

use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{
    DecodeError, Mergeable, Persist, RecoveryOutput, SparseRecovery, StateDigest, WireReader,
    WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update, UpdateStream};

use crate::positive::PositiveCoordinateFinder;
use crate::result::DuplicateResult;

/// The Theorem 4 duplicate finder for streams of length n − s over `[n]`.
#[derive(Debug, Clone)]
pub struct ShortStreamDuplicateFinder {
    dimension: u64,
    s: u64,
    recovery: SparseRecovery,
    finder: PositiveCoordinateFinder,
    letters_seen: u64,
}

impl ShortStreamDuplicateFinder {
    /// Create a finder for streams of length `n − s` with failure probability ≤ δ.
    pub fn new(n: u64, s: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        let mut out = Self::new_shard(n, s, delta, seeds);
        for i in 0..n {
            out.recovery.update(i, -1);
            out.finder.process_update(Update::new(i, -1));
        }
        out
    }

    /// An identically-seeded finder *without* the initial `(i, −1)` pass — a
    /// "shard" for parallel ingestion (see [`DuplicateFinder::new_shard`]
    /// in `theorem3` for the merge discipline; the same rule applies here).
    ///
    /// [`DuplicateFinder::new_shard`]: crate::DuplicateFinder::new_shard
    pub fn new_shard(n: u64, s: u64, delta: f64, seeds: &mut SeedSequence) -> Self {
        assert!(s < n, "the stream length n − s must be positive");
        let capacity = (5 * s).max(1) as usize;
        let recovery = SparseRecovery::new(n, capacity, seeds);
        let finder = PositiveCoordinateFinder::new(n, delta, seeds);
        ShortStreamDuplicateFinder { dimension: n, s, recovery, finder, letters_seen: 0 }
    }

    /// Alphabet size n.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// The shortfall parameter s (stream length is n − s).
    pub fn shortfall(&self) -> u64 {
        self.s
    }

    /// Process one letter of the stream.
    pub fn process_letter(&mut self, letter: u64) {
        assert!(letter < self.dimension);
        self.letters_seen += 1;
        self.recovery.update(letter, 1);
        self.finder.process_update(Update::new(letter, 1));
    }

    /// Process a batch of letters at once: the sparse-recovery structure
    /// takes the whole batch through its coalesced row-major path and the
    /// sampler copies take it through theirs.
    pub fn process_letters(&mut self, letters: &[u64]) {
        let updates: Vec<Update> = letters
            .iter()
            .map(|&letter| {
                assert!(letter < self.dimension);
                Update::insert(letter)
            })
            .collect();
        self.letters_seen += letters.len() as u64;
        self.recovery.process_batch(&updates);
        self.finder.process_batch(&updates);
    }

    /// Process a whole letter stream (unit insertions).
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        assert_eq!(stream.dimension(), self.dimension);
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            for u in chunk {
                assert_eq!(u.delta, 1, "the duplicates problem consumes unit insertions only");
                assert!(u.index < self.dimension);
            }
            self.letters_seen += chunk.len() as u64;
            self.recovery.process_batch(chunk);
            self.finder.process_batch(chunk);
        }
    }

    /// Report a duplicate, certify that none exists, or FAIL.
    pub fn report(&self) -> DuplicateResult {
        match self.recovery.recover() {
            RecoveryOutput::Recovered(entries) => {
                // We learned x exactly: answer with certainty.
                match entries.iter().find(|&&(_, v)| v > 0) {
                    Some(&(i, _)) => DuplicateResult::Duplicate(i),
                    None => DuplicateResult::NoDuplicate,
                }
            }
            RecoveryOutput::Dense => match self.finder.find_positive() {
                Some(i) => DuplicateResult::Duplicate(i),
                None => DuplicateResult::Fail,
            },
        }
    }
}

impl Mergeable for ShortStreamDuplicateFinder {
    /// Compose the sparse-recovery and sampler merges and sum the letter
    /// counts. As with `DuplicateFinder`, exactly one operand of a merge
    /// chain may carry the construction-time initialization mass; build the
    /// rest with [`ShortStreamDuplicateFinder::new_shard`].
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.s, other.s, "shortfall mismatch");
        self.recovery.merge_from(&other.recovery);
        self.finder.merge_from(&other.finder);
        self.letters_seen += other.letters_seen;
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.recovery.state_digest())
            .write_u64(self.finder.state_digest())
            .write_u64(self.letters_seen);
        d.finish()
    }
}

impl Persist for ShortStreamDuplicateFinder {
    const TAG: u16 = tags::SHORT_STREAM_FINDER;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_u64(self.s);
        self.recovery.encode_seeds(w);
        self.finder.encode_seeds(w);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.letters_seen);
        self.recovery.encode_counters(w);
        self.finder.encode_counters(w);
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let s = seeds.read_u64()?;
        if dimension == 0 || s >= dimension {
            return Err(DecodeError::Corrupt { context: "short-stream finder needs 0 <= s < n" });
        }
        let letters_seen = counters.read_u64()?;
        let recovery = SparseRecovery::decode_parts(seeds, counters)?;
        let finder = PositiveCoordinateFinder::decode_parts(seeds, counters)?;
        Ok(ShortStreamDuplicateFinder { dimension, s, recovery, finder, letters_seen })
    }
}

impl SpaceUsage for ShortStreamDuplicateFinder {
    fn space(&self) -> SpaceBreakdown {
        self.recovery.space().combine(&self.finder.space()).combine(&SpaceBreakdown::new(1, 64, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::duplicate_stream_n_minus_s;

    #[test]
    fn certifies_no_duplicate_exactly() {
        // With no duplicates the vector is s-sparse (s missing letters have
        // value −1, everything else is 0), so sparse recovery answers exactly.
        let n = 512u64;
        let s = 8u64;
        let mut gen = SeedSequence::new(1);
        let (stream, dups) = duplicate_stream_n_minus_s(n, s, 0, &mut gen);
        assert!(dups.is_empty());
        let mut seeds = SeedSequence::new(2);
        let mut finder = ShortStreamDuplicateFinder::new(n, s, 0.2, &mut seeds);
        finder.process_stream(&stream);
        assert_eq!(finder.report(), DuplicateResult::NoDuplicate);
    }

    #[test]
    fn finds_duplicates_in_sparse_regime_exactly() {
        // A couple of duplicates keep x within the 5s sparsity budget, so the
        // answer comes from exact recovery and is always correct.
        let n = 512u64;
        let s = 16u64;
        let mut gen = SeedSequence::new(3);
        let (stream, dups) = duplicate_stream_n_minus_s(n, s, 3, &mut gen);
        let mut seeds = SeedSequence::new(4);
        let mut finder = ShortStreamDuplicateFinder::new(n, s, 0.2, &mut seeds);
        finder.process_stream(&stream);
        match finder.report() {
            DuplicateResult::Duplicate(d) => assert!(dups.contains(&d)),
            other => panic!("expected a duplicate, got {other:?}"),
        }
    }

    #[test]
    fn dense_regime_falls_back_to_sampling() {
        // Many duplicates (far more than 5s non-zero coordinates): recovery
        // reports DENSE and the L1 sampler takes over.
        let n = 512u64;
        let s = 2u64;
        let mut gen = SeedSequence::new(5);
        let (stream, dups) = duplicate_stream_n_minus_s(n, s, 120, &mut gen);
        let trials = 15u64;
        let mut found = 0;
        let mut wrong = 0;
        for seed in 0..trials {
            let mut seeds = SeedSequence::new(600 + seed);
            let mut finder = ShortStreamDuplicateFinder::new(n, s, 0.2, &mut seeds);
            finder.process_stream(&stream);
            match finder.report() {
                DuplicateResult::Duplicate(d) => {
                    if dups.contains(&d) {
                        found += 1;
                    } else {
                        wrong += 1;
                    }
                }
                DuplicateResult::NoDuplicate => panic!("duplicates exist"),
                DuplicateResult::Fail => {}
            }
        }
        assert_eq!(wrong, 0);
        assert!(found as f64 >= 0.6 * trials as f64, "found {found}/{trials}");
    }

    #[test]
    fn space_grows_with_s() {
        let mut s1 = SeedSequence::new(6);
        let mut s2 = SeedSequence::new(6);
        let small = ShortStreamDuplicateFinder::new(1 << 12, 4, 0.25, &mut s1);
        let large = ShortStreamDuplicateFinder::new(1 << 12, 256, 0.25, &mut s2);
        assert!(large.bits_used() > small.bits_used());
        assert_eq!(large.shortfall(), 256);
    }

    #[test]
    #[should_panic]
    fn s_must_be_smaller_than_n() {
        let mut seeds = SeedSequence::new(7);
        let _ = ShortStreamDuplicateFinder::new(8, 8, 0.25, &mut seeds);
    }
}

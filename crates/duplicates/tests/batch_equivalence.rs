//! Batched-vs-sequential interchangeability for the duplicate-finding
//! drivers: feeding letters through `process_letters` / the chunked
//! `process_stream` must leave the finders in a state that reports exactly
//! what the letter-at-a-time path reports.

use lps_duplicates::{DuplicateFinder, PositiveCoordinateFinder, ShortStreamDuplicateFinder};
use lps_hash::SeedSequence;
use lps_stream::{duplicate_stream_n_minus_s, duplicate_stream_n_plus_1, Update};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn theorem3_batched_letters_match_sequential(seed in any::<u64>(), dup_count in 1u64..20) {
        let n = 128u64;
        let mut gen = SeedSequence::new(seed);
        let (stream, _) = duplicate_stream_n_plus_1(n, dup_count, &mut gen);
        let letters: Vec<u64> = stream.iter().map(|u| u.index).collect();

        let mut s1 = SeedSequence::new(seed ^ 0xD0);
        let mut sequential = DuplicateFinder::new(n, 0.3, &mut s1);
        for &l in &letters {
            sequential.process_letter(l);
        }
        let mut s2 = SeedSequence::new(seed ^ 0xD0);
        let mut batched = DuplicateFinder::new(n, 0.3, &mut s2);
        let half = letters.len() / 2;
        batched.process_letters(&letters[..half]);
        batched.process_letters(&letters[half..]);

        prop_assert_eq!(sequential.report(), batched.report());
        prop_assert_eq!(sequential.letters_seen(), batched.letters_seen());
    }

    #[test]
    fn theorem4_batched_letters_match_sequential(seed in any::<u64>(), dup_count in 0u64..10) {
        let n = 128u64;
        let s = 8u64;
        let mut gen = SeedSequence::new(seed);
        let (stream, _) = duplicate_stream_n_minus_s(n, s, dup_count, &mut gen);
        let letters: Vec<u64> = stream.iter().map(|u| u.index).collect();

        let mut s1 = SeedSequence::new(seed ^ 0xD4);
        let mut sequential = ShortStreamDuplicateFinder::new(n, s, 0.3, &mut s1);
        for &l in &letters {
            sequential.process_letter(l);
        }
        let mut s2 = SeedSequence::new(seed ^ 0xD4);
        let mut batched = ShortStreamDuplicateFinder::new(n, s, 0.3, &mut s2);
        let half = letters.len() / 2;
        batched.process_letters(&letters[..half]);
        batched.process_letters(&letters[half..]);

        prop_assert_eq!(sequential.report(), batched.report());
    }

    #[test]
    fn positive_finder_batch_matches_sequential(
        updates in prop::collection::vec((0u64..64, -10i64..10), 0..60),
        seed in any::<u64>(),
    ) {
        let ups: Vec<Update> = updates.iter().map(|&(i, d)| Update::new(i, d)).collect();
        let mut s1 = SeedSequence::new(seed);
        let mut sequential = PositiveCoordinateFinder::new(64, 0.4, &mut s1);
        for u in &ups {
            sequential.process_update(*u);
        }
        let mut s2 = SeedSequence::new(seed);
        let mut batched = PositiveCoordinateFinder::new(64, 0.4, &mut s2);
        let half = ups.len() / 2;
        batched.process_batch(&ups[..half]);
        batched.process_batch(&ups[half..]);
        prop_assert_eq!(sequential.find_positive(), batched.find_positive());
    }
}

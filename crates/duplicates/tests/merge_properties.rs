//! Merge-law tests for the duplicate finders. The finders pre-load an
//! initial `(i, −1)` vector at construction, so the shard discipline is:
//! one primary built with `new` carries the initialization mass, the other
//! operands are letter-only shards built with `new_shard` (identical seed
//! consumption → identical random functions). Merging then reproduces the
//! single-finder semantics, which the behavioural assertions pin.

use lps_core::Mergeable;
use lps_duplicates::{DuplicateFinder, DuplicateResult, ShortStreamDuplicateFinder};
use lps_hash::SeedSequence;
use lps_stream::{duplicate_stream_n_minus_s, duplicate_stream_n_plus_1};
use proptest::prelude::*;

/// Partition a letter stream round-robin over `shards` letter-only shards
/// plus one initialized primary, merge, and return the primary.
fn sharded_theorem3(
    n: u64,
    delta: f64,
    seed: u64,
    letters: &[u64],
    shards: usize,
) -> DuplicateFinder {
    let mut primary = DuplicateFinder::new(n, delta, &mut SeedSequence::new(seed));
    let mut shard_finders: Vec<DuplicateFinder> = (0..shards)
        .map(|_| DuplicateFinder::new_shard(n, delta, &mut SeedSequence::new(seed)))
        .collect();
    for (i, chunk) in letters.chunks(64).enumerate() {
        shard_finders[i % shards].process_letters(chunk);
    }
    for shard in &shard_finders {
        primary.merge_from(shard);
    }
    primary
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn positive_finder_merge_commutes_bitwise(seed in any::<u64>(), shards in 2usize..5) {
        // the zero-init engine behind both theorems: merging is plain
        // additive composition and commutes bitwise
        let n = 128u64;
        let mut gen = SeedSequence::new(seed ^ 0x7E3);
        let (stream, _dups) = duplicate_stream_n_plus_1(n, 4, &mut gen);
        let letters: Vec<u64> = stream.updates().iter().map(|u| u.index).collect();
        let make = || DuplicateFinder::new_shard(n, 0.25, &mut SeedSequence::new(seed));
        let mut a = make();
        let mut b = make();
        let half = letters.len() / shards.max(2);
        a.process_letters(&letters[..half]);
        b.process_letters(&letters[half..]);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab.state_digest(), ba.state_digest());
    }

    #[test]
    fn sharded_theorem3_finder_still_finds_duplicates(seed in 0u64..2000, shards in 2usize..5) {
        let n = 128u64;
        let mut gen = SeedSequence::new(seed);
        let (stream, dups) = duplicate_stream_n_plus_1(n, 24, &mut gen);
        let letters: Vec<u64> = stream.updates().iter().map(|u| u.index).collect();
        let merged = sharded_theorem3(n, 0.1, seed ^ 0xABCD, &letters, shards);
        prop_assert_eq!(merged.letters_seen(), letters.len() as u64);
        // a merged finder must never report a non-duplicate; failing is
        // allowed (it is a randomized algorithm), reporting wrong is not
        if let DuplicateResult::Duplicate(d) = merged.report() {
            prop_assert!(dups.contains(&d), "merged finder reported non-duplicate {}", d);
        }
    }

    #[test]
    fn sharded_theorem4_finder_answers_exactly_in_sparse_regime(seed in 0u64..2000, shards in 2usize..5) {
        // with few duplicates the answer comes from the sparse-recovery
        // structure, whose arithmetic is exact — sharding must not change it
        let n = 256u64;
        let s = 8u64;
        let mut gen = SeedSequence::new(seed);
        let (stream, dups) = duplicate_stream_n_minus_s(n, s, 2, &mut gen);
        let letters: Vec<u64> = stream.updates().iter().map(|u| u.index).collect();
        let mut primary = ShortStreamDuplicateFinder::new(n, s, 0.2, &mut SeedSequence::new(seed ^ 0x44));
        let mut shard_finders: Vec<ShortStreamDuplicateFinder> = (0..shards)
            .map(|_| ShortStreamDuplicateFinder::new_shard(n, s, 0.2, &mut SeedSequence::new(seed ^ 0x44)))
            .collect();
        for (i, chunk) in letters.chunks(32).enumerate() {
            shard_finders[i % shards].process_letters(chunk);
        }
        for shard in &shard_finders {
            primary.merge_from(shard);
        }
        let mut sequential = ShortStreamDuplicateFinder::new(n, s, 0.2, &mut SeedSequence::new(seed ^ 0x44));
        sequential.process_stream(&stream);
        // the sparse-recovery half of the state is exact arithmetic, so the
        // exact-regime verdicts must agree
        match (primary.report(), sequential.report()) {
            (DuplicateResult::Duplicate(d), _) => prop_assert!(dups.contains(&d)),
            (DuplicateResult::NoDuplicate, other) => prop_assert_eq!(other, DuplicateResult::NoDuplicate),
            (DuplicateResult::Fail, _) => {}
        }
    }
}

//! Wire-format round-trip properties for the duplicate finders, including
//! the shard discipline: a primary finder (carrying the `(i, −1)`
//! initialization mass) and its letter-only shards serialize to identical
//! seed sections and merge across the codec exactly as in-process.

use lps_duplicates::{DuplicateFinder, PositiveCoordinateFinder, ShortStreamDuplicateFinder};
use lps_hash::SeedSequence;
use lps_sketch::{seed_section, Mergeable, Persist};
use lps_stream::Update;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn duplicate_finder_roundtrip(letters in prop::collection::vec(0u64..64, 0..40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let mut finder = DuplicateFinder::new(64, 0.5, &mut seeds);
        finder.process_letters(&letters);
        let decoded = DuplicateFinder::decode_state(&finder.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), finder.state_digest());
        prop_assert_eq!(decoded.letters_seen(), finder.letters_seen());
        prop_assert_eq!(decoded.report(), finder.report());
    }

    #[test]
    fn short_stream_finder_roundtrip(letters in prop::collection::vec(0u64..64, 0..40), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let mut finder = ShortStreamDuplicateFinder::new(64, 4, 0.5, &mut seeds);
        finder.process_letters(&letters);
        let decoded = ShortStreamDuplicateFinder::decode_state(&finder.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), finder.state_digest());
        prop_assert_eq!(decoded.report(), finder.report());
    }

    #[test]
    fn positive_finder_roundtrip(ups in prop::collection::vec((0u64..64, -5i64..6), 0..30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let mut finder = PositiveCoordinateFinder::new(64, 0.5, &mut seeds);
        for (i, d) in ups {
            finder.process_update(Update::new(i, d));
        }
        let decoded = PositiveCoordinateFinder::decode_state(&finder.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), finder.state_digest());
        prop_assert_eq!(decoded.find_positive(), finder.find_positive());
    }
}

#[test]
fn primary_and_shard_share_seed_sections_and_merge_through_codec() {
    let n = 128u64;
    // primary (with init mass) and shard must consume seeds identically
    let mut s1 = SeedSequence::new(11);
    let mut primary = DuplicateFinder::new(n, 0.25, &mut s1);
    let mut s2 = SeedSequence::new(11);
    let mut shard = DuplicateFinder::new_shard(n, 0.25, &mut s2);

    let enc_primary = primary.encode_to_vec();
    let enc_shard = shard.encode_to_vec();
    assert_eq!(
        seed_section(&enc_primary).unwrap(),
        seed_section(&enc_shard).unwrap(),
        "initialization mass leaked into the seed section"
    );

    // split a letter stream across the two and merge through the codec; the
    // result must be bit-identical to merging the same operands in-process.
    // (The finders are built on the *float-valued* precision sampler, so a
    // sharded merge matches sequential ingestion only at the estimator
    // level, not digest-for-digest — the exact-arithmetic guarantee belongs
    // to the engine structures. Codec faithfulness, however, is exact.)
    let letters: Vec<u64> = (0..n).chain([7, 90]).collect();
    let (left, right) = letters.split_at(letters.len() / 2);
    primary.process_letters(left);
    shard.process_letters(right);
    let mut via_codec =
        DuplicateFinder::decode_state(&primary.encode_to_vec()).expect("decode primary");
    via_codec.merge_from(&DuplicateFinder::decode_state(&shard.encode_to_vec()).expect("decode"));

    let mut in_process = primary.clone();
    in_process.merge_from(&shard);
    assert_eq!(via_codec.state_digest(), in_process.state_digest());
    assert_eq!(via_codec.report(), in_process.report());
    assert_eq!(via_codec.letters_seen(), letters.len() as u64);
}

#[test]
fn malformed_buffers_rejected() {
    let mut seeds = SeedSequence::new(4);
    let finder = DuplicateFinder::new(32, 0.5, &mut seeds);
    let good = finder.encode_to_vec();
    for cut in [0usize, 5, 9, 17, good.len() / 3, good.len() - 1] {
        assert!(DuplicateFinder::decode_state(&good[..cut]).is_err());
    }
    match ShortStreamDuplicateFinder::decode_state(&good) {
        Err(lps_sketch::DecodeError::WrongStructure { .. }) => {}
        other => panic!("expected WrongStructure, got {other:?}"),
    }
    let step = (good.len() / 48).max(1);
    for pos in (0..good.len()).step_by(step) {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        let _ = DuplicateFinder::decode_state(&bad); // must not panic
    }
}

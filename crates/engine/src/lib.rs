//! # lps-engine
//!
//! A multi-threaded sharded ingestion engine built on sketch mergeability,
//! with pluggable shard partitioning and a sans-io ingest surface.
//!
//! Every structure in this workspace maintains `L(x)` for a linear map `L`,
//! so `sketch(A ++ B) == merge(sketch(A), sketch(B))` whenever both sides
//! use the same seeds. The engine exploits exactly that identity for
//! multi-core scaling, and decomposes it into two orthogonal choices:
//!
//! * **How the stream is partitioned** — a [`ShardPlan`] strategy.
//!   [`RoundRobin`] deals dispatch batches to identically-seeded replicas
//!   in rotation and recombines by addition; [`KeyRange`] gives each shard
//!   a contiguous slice of the coordinate space (via
//!   [`ShardIngest::restrict_domain`]), routes updates by coordinate, and
//!   recombines by disjoint union ([`ShardIngest::merge_disjoint`]). For
//!   the exact-arithmetic structures **both** strategies reproduce the
//!   sequential state bit for bit.
//! * **How updates reach the workers** — a sans-io [`IngestSession`] built
//!   by [`EngineBuilder`]: non-blocking [`IngestSession::offer`] /
//!   [`IngestSession::drain`] polls plus a terminal
//!   [`IngestSession::seal`], so the dispatcher never blocks on a full
//!   worker channel and the engine can sit behind a socket loop with no
//!   runtime dependencies. Blocking convenience wrappers exist for callers
//!   without an event loop.
//!
//! ```
//! use lps_engine::{EngineBuilder, KeyRange, RoundRobin};
//! use lps_hash::SeedSequence;
//! use lps_sketch::{Mergeable, SparseRecovery};
//! use lps_stream::Update;
//!
//! let mut seeds = SeedSequence::new(7);
//! let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
//! let updates: Vec<Update> = (0..1000).map(|i| Update::new(i % 100, 1)).collect();
//!
//! let mut sequential = proto.clone();
//! sequential.process_batch(&updates);
//!
//! // replicated shards, additive merge …
//! let mut rr = EngineBuilder::new(&proto).shards(4).session();
//! rr.ingest_blocking(&updates);
//! assert_eq!(rr.seal().unwrap().state_digest(), sequential.state_digest());
//!
//! // … or partitioned coordinate space, disjoint-union merge: same bits
//! let mut kr = EngineBuilder::new(&proto).plan(KeyRange::new(1 << 12, 4)).session();
//! kr.ingest_blocking(&updates);
//! assert_eq!(kr.seal().unwrap().state_digest(), sequential.state_digest());
//! ```
//!
//! ## Exact and approximate sharding
//!
//! The structures whose counters use integer or field arithmetic (sparse
//! recovery, both L0 samplers, count-sketch, count-min, count-median, AMS)
//! merge **exactly**: any partition of the stream recombines to the
//! sequential state bit for bit, under either plan, pinned by the
//! equivalence tests via [`Mergeable::state_digest`].
//!
//! Floating-point structures (the p-stable sketch, the precision/AKO
//! samplers and both heavy-hitter drivers) are linear only up to rounding:
//! their shard merges reassociate `f64` sums, drifting by at most the
//! `~2kε` per-counter bound (`k` = shard count; Kahan compensation inside
//! each shard leaves only the k-way merge reassociation) documented on
//! their `merge_from` impls. They
//! are shardable too, but only behind an explicit opt-in: the plan must
//! carry [`Tolerance::Approximate`] ([`RoundRobin::approximate`] /
//! [`KeyRange::approximate`]), otherwise the session refuses to build.
//!
//! ## Checkpoint / restore and cross-process merging
//!
//! [`IngestSession::checkpoint`] serializes each shard behind a plan
//! envelope (strategy, tolerance, shard index/count, owned key range) ahead
//! of the versioned `Persist` payload; [`EngineBuilder::resume`] re-animates
//! a session after validating the envelope against the resuming plan — a
//! key-range checkpoint offered to a round-robin resume is rejected with
//! [`DecodeError::PlanMismatch`] before any counter is decoded.
//! [`merge_checkpointed`] recombines shard buffers produced by *different OS
//! processes* under the strategy stamped in their envelopes, and
//! [`merge_encoded`] remains the bare-`Persist` primitive for buffers
//! serialized outside the engine.
//!
//! ## When parallel beats batched
//!
//! Sharding pays when the per-update sketch work dominates the per-update
//! distribution overhead (one staging copy + channel handoff per update,
//! amortised over `batch_size`-sized batches). Sparse recovery and the L0
//! sampler touch `O(rows)` / `O(rows · levels)` cells per update, so they
//! scale; a bare count-min row update is so cheap that single-threaded
//! batching stays competitive until batches get large. Round robin balances
//! load for free but replicates every shard's working set; key-range shards
//! touch only the cells their own range hashes to (smaller effective cache
//! footprint) but inherit the stream's key skew. Experiment E14 measures
//! both per structure and stamps the winner into `BENCH_samplers.json`.
//! Throughput scales with *physical* cores either way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod session;

pub use plan::{
    read_envelope, KeyRange, PlanEnvelope, PlanStrategy, RoundRobin, ShardPlan, Tolerance,
    ENVELOPE_HEADER_LEN, ENVELOPE_MAGIC, ENVELOPE_VERSION,
};
pub use session::{EngineBuilder, IngestSession};

/// Errors an engine session can surface at its terminal operations.
///
/// A worker panic (a bug in a structure's `ingest_batch`, or a poisoned
/// update) is contained to its shard: the session keeps running, and
/// [`IngestSession::seal`] / [`IngestSession::checkpoint`] report the
/// panicked shard here instead of propagating the panic — so a caller can
/// fall back to [`IngestSession::checkpoint_surviving`] and persist every
/// shard that is still healthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The worker thread driving `shard` panicked; its partial state is
    /// lost, every other shard's state is intact.
    WorkerPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::WorkerPanicked { shard } => {
                write!(f, "engine worker for shard {shard} panicked")
            }
        }
    }
}

impl std::error::Error for EngineError {}

use lps_core::{AkoSampler, FisL0Sampler, L0Sampler, LpSampler, PrecisionLpSampler};
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_sketch::{
    read_header, seed_section, AmsSketch, CountMedianSketch, CountMinSketch, CountSketch,
    DecodeError, LinearSketch, Mergeable, PStableSketch, Persist, SparseRecovery,
};
use lps_stream::Update;

use plan::tree_merge_with;

/// A structure the sharded engine can drive: cloneable (identically-seeded
/// clones), mergeable, batch-ingestible, and partitionable by key range.
///
/// [`ShardIngest::TOLERANCE`] declares the structure's merge-fidelity class.
/// `Exact` implementors guarantee that batch ingestion plus
/// [`Mergeable::merge_from`] (equivalently [`ShardIngest::merge_disjoint`]
/// under disjoint supports) is **bit-exact**: for any partition of an
/// integer update stream across identically-seeded clones, merging the shard
/// states reproduces, bit for bit, the state of one clone ingesting the
/// whole stream sequentially. `Approximate` implementors (dense `f64`
/// counters) merge up to floating-point reassociation and may only be
/// driven by a plan carrying [`Tolerance::Approximate`].
pub trait ShardIngest: Mergeable + Clone + Send {
    /// The structure's merge-fidelity class ([`Tolerance::Exact`] unless
    /// declared otherwise).
    const TOLERANCE: Tolerance = Tolerance::Exact;

    /// Ingest a batch of updates through the structure's fast path.
    fn ingest_batch(&mut self, updates: &[Update]);

    /// Build the shard structure owning the key range `range` for key-range
    /// partitioned ingestion. Implementations validate the range against
    /// their dimension and return an identically-seeded zero-state clone —
    /// the hash-compressed state shape is domain-independent, and exact
    /// recombination requires evaluating the same random functions at
    /// global coordinates; the restriction constrains which updates the
    /// shard sees (and with it the shard's working set).
    fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        let _ = range;
        self.clone()
    }

    /// Absorb a sibling shard whose ingested key range was disjoint from
    /// ours. For linear structures the disjoint union coincides with
    /// addition, so the default delegates to [`Mergeable::merge_from`];
    /// implementors override it to skip state the sibling never touched
    /// (bit-identical either way).
    fn merge_disjoint(&mut self, other: &Self) {
        self.merge_from(other);
    }
}

macro_rules! shard_ingest {
    ($ty:ty, $tolerance:expr, $ingest:expr) => {
        impl ShardIngest for $ty {
            const TOLERANCE: Tolerance = $tolerance;

            fn ingest_batch(&mut self, updates: &[Update]) {
                let ingest: fn(&mut $ty, &[Update]) = $ingest;
                ingest(self, updates);
            }

            fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
                <$ty>::restrict_domain(self, range)
            }

            fn merge_disjoint(&mut self, other: &Self) {
                <$ty>::merge_disjoint(self, other);
            }
        }
    };
}

// The exact-arithmetic structures: integer/field counters, bit-exact merges.
shard_ingest!(SparseRecovery, Tolerance::Exact, |s, u| s.process_batch(u));
shard_ingest!(CountSketch, Tolerance::Exact, |s, u| LinearSketch::process_batch(s, u));
shard_ingest!(CountMinSketch, Tolerance::Exact, |s, u| s.process_batch(u));
shard_ingest!(CountMedianSketch, Tolerance::Exact, |s, u| LinearSketch::process_batch(s, u));
shard_ingest!(AmsSketch, Tolerance::Exact, |s, u| LinearSketch::process_batch(s, u));
shard_ingest!(L0Sampler, Tolerance::Exact, |s, u| LpSampler::process_batch(s, u));
shard_ingest!(FisL0Sampler, Tolerance::Exact, |s, u| LpSampler::process_batch(s, u));

// The float structures: dense f64 counters, estimator-level merge fidelity
// (see the ~2kε drift bound on their merge_from docs). Shardable only
// behind an explicitly approximate plan.
shard_ingest!(PStableSketch, Tolerance::Approximate, |s, u| LinearSketch::process_batch(s, u));
shard_ingest!(PrecisionLpSampler, Tolerance::Approximate, |s, u| LpSampler::process_batch(s, u));
shard_ingest!(AkoSampler, Tolerance::Approximate, |s, u| LpSampler::process_batch(s, u));
shard_ingest!(CountSketchHeavyHitters, Tolerance::Approximate, |s, u| s.process_batch(u));
shard_ingest!(CountMinHeavyHitters, Tolerance::Approximate, |s, u| s.process_batch(u));

/// Decode a set of bare `Persist` shard buffers, first validating that they
/// are merge-compatible: every buffer must parse under the current wire
/// format, carry `T`'s structure tag, and hold a seed section byte-identical
/// to the first buffer's (same shape, same random functions). The seed
/// comparison happens *before* any counter decoding, so incompatible shards
/// are rejected cheaply and typed ([`DecodeError::SeedMismatch`]).
pub(crate) fn decode_compatible_shards<T: Persist, B: AsRef<[u8]>>(
    encoded: &[B],
) -> Result<Vec<T>, DecodeError> {
    if encoded.is_empty() {
        return Err(DecodeError::Corrupt { context: "need at least one encoded shard" });
    }
    // Validate the reference shard's own tag before adopting its seed
    // section as the compatibility yardstick — otherwise a wrong file at
    // index 0 would be misreported as a seed mismatch on shard 1.
    let reference = encoded[0].as_ref();
    let reference_header = read_header(reference)?;
    if reference_header.tag != T::TAG {
        return Err(DecodeError::WrongStructure { expected: T::TAG, found: reference_header.tag });
    }
    let reference_seeds = seed_section(reference)?;
    for (shard, bytes) in encoded.iter().enumerate().skip(1) {
        let bytes = bytes.as_ref();
        let header = read_header(bytes)?;
        if header.tag != T::TAG {
            return Err(DecodeError::WrongStructure { expected: T::TAG, found: header.tag });
        }
        if &bytes[header.seed_range] != reference_seeds {
            return Err(DecodeError::SeedMismatch { shard });
        }
    }
    encoded.iter().map(|bytes| T::decode_state(bytes.as_ref())).collect()
}

/// Merge bare `Persist` shard buffers (no plan envelope — e.g. states
/// serialized directly with [`Persist::encode_to_vec`]) into the structure
/// sketching the concatenation of every shard's stream, using the additive
/// deterministic tree merge.
///
/// Validates version/tag/seed compatibility across all buffers (see
/// [`DecodeError::SeedMismatch`]). For engine checkpoints — which carry a
/// plan envelope — use [`merge_checkpointed`] instead.
pub fn merge_encoded<T: Persist + Mergeable>(encoded: &[Vec<u8>]) -> Result<T, DecodeError> {
    Ok(tree_merge_with(decode_compatible_shards::<T, _>(encoded)?, Mergeable::merge_from))
}

/// Merge plan-aware checkpoint buffers produced in this or **any other OS
/// process** ([`IngestSession::checkpoint`]) into the structure sketching
/// the concatenation of every shard's stream: the cross-process counterpart
/// of [`IngestSession::seal`].
///
/// The strategy stamped in the envelopes decides the combine operation —
/// additive tree merge for round-robin checkpoints, disjoint union for
/// key-range checkpoints — after validating that all buffers agree on
/// strategy and shard count, arrive in shard order, and (for key ranges)
/// tile the space with their stamped bounds. Seed compatibility is
/// byte-compared across payloads before any counter decodes. For the
/// exact-arithmetic structures the result is bit-identical — digest for
/// digest — to sequential single-process ingestion of the whole stream.
pub fn merge_checkpointed<T: ShardIngest + Persist>(encoded: &[Vec<u8>]) -> Result<T, DecodeError> {
    if encoded.is_empty() {
        return Err(DecodeError::Corrupt { context: "need at least one encoded shard" });
    }
    let (reference, _) = read_envelope(&encoded[0])?;
    let mut payloads = Vec::with_capacity(encoded.len());
    let mut previous_end = None;
    for (i, bytes) in encoded.iter().enumerate() {
        let (envelope, payload) = read_envelope(bytes)?;
        plan::check_envelope(&envelope, reference.strategy, reference.tolerance, i, encoded.len())?;
        if let Some(range) = &envelope.range {
            // key-range shards must tile the space contiguously
            if previous_end.is_some_and(|end| end != range.start) {
                return Err(DecodeError::Corrupt {
                    context: "key-range shards do not tile the coordinate space",
                });
            }
            previous_end = Some(range.end);
        }
        payloads.push(payload);
    }
    let states = decode_compatible_shards::<T, _>(&payloads)?;
    Ok(match reference.strategy {
        PlanStrategy::RoundRobin => tree_merge_with(states, Mergeable::merge_from),
        PlanStrategy::KeyRange => tree_merge_with(states, T::merge_disjoint),
    })
}

/// One-shot convenience: shard `updates` across `shards` identically-seeded
/// clones of `prototype` under a round-robin plan and return the
/// tree-merged result.
///
/// For exact [`ShardIngest`] structures the result is bit-identical to
/// `prototype.clone()` ingesting `updates` sequentially.
///
/// # Panics
///
/// If a worker panics mid-ingest — the one-shot has no degraded mode; use
/// an [`IngestSession`] and [`IngestSession::checkpoint_surviving`] when
/// containment matters.
pub fn parallel_ingest<T: ShardIngest + 'static>(
    prototype: &T,
    updates: &[Update],
    shards: usize,
) -> T {
    let mut session = EngineBuilder::new(prototype).shards(shards).session();
    session.ingest_blocking(updates);
    session.seal().unwrap_or_else(|e| panic!("{e}"))
}

/// One-shot convenience: shard `updates` under an explicit plan and return
/// the merged result. The plan decides partitioning *and* recombination.
///
/// # Panics
///
/// If a worker panics mid-ingest (see [`parallel_ingest`]).
pub fn partitioned_ingest<T: ShardIngest + 'static, P: ShardPlan>(
    prototype: &T,
    updates: &[Update],
    plan: P,
) -> T {
    let mut session = EngineBuilder::new(prototype).plan(plan).session();
    session.ingest_blocking(updates);
    session.seal().unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_hash::SeedSequence;

    fn workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
        let mut s = SeedSequence::new(seed);
        (0..len)
            .map(|_| {
                let delta = (s.next_below(9) as i64) - 4;
                Update::new(s.next_below(n), if delta == 0 { 1 } else { delta })
            })
            .collect()
    }

    #[test]
    fn sparse_recovery_sharded_matches_sequential_bitwise() {
        let mut seeds = SeedSequence::new(1);
        let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
        let updates = workload(1 << 12, 5000, 2);
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        for shards in [1, 2, 3, 4, 8] {
            let merged = parallel_ingest(&proto, &updates, shards);
            assert_eq!(
                merged.state_digest(),
                sequential.state_digest(),
                "digest mismatch at {shards} shards"
            );
            assert_eq!(merged.recover(), sequential.recover());
            let partitioned = partitioned_ingest(&proto, &updates, KeyRange::new(1 << 12, shards));
            assert_eq!(
                partitioned.state_digest(),
                sequential.state_digest(),
                "key-range digest mismatch at {shards} shards"
            );
        }
    }

    #[test]
    fn l0_sampler_sharded_matches_sequential_bitwise() {
        let mut seeds = SeedSequence::new(3);
        let proto = L0Sampler::new(1 << 10, 0.25, &mut seeds);
        let updates = workload(1 << 10, 4000, 4);
        let mut sequential = proto.clone();
        LpSampler::process_batch(&mut sequential, &updates);
        let merged = parallel_ingest(&proto, &updates, 4);
        assert_eq!(merged.state_digest(), sequential.state_digest());
        assert_eq!(merged.sample(), sequential.sample());
    }

    #[test]
    fn incremental_ingestion_across_many_calls() {
        let mut seeds = SeedSequence::new(5);
        let proto = CountMinSketch::new(1 << 10, 64, 5, &mut seeds);
        let updates = workload(1 << 10, 3000, 6);
        let mut session = EngineBuilder::new(&proto).shards(3).batch_size(128).session();
        // feed in ragged pieces to exercise batch boundaries
        for piece in updates.chunks(701) {
            session.ingest_blocking(piece);
        }
        let merged = session.seal().unwrap();
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        assert_eq!(merged.state_digest(), sequential.state_digest());
    }

    #[test]
    fn empty_stream_yields_prototype_state() {
        let mut seeds = SeedSequence::new(7);
        let proto = AmsSketch::with_default_shape(256, &mut seeds);
        let merged = parallel_ingest(&proto, &[], 4);
        assert_eq!(merged.state_digest(), proto.state_digest());
        let partitioned = partitioned_ingest(&proto, &[], KeyRange::new(256, 4));
        assert_eq!(partitioned.state_digest(), proto.state_digest());
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let mut seeds = SeedSequence::new(8);
        let proto = CountSketch::with_default_rows(64, 4, &mut seeds);
        let _ = EngineBuilder::new(&proto).shards(0).session();
    }
}

//! # lps-engine
//!
//! A multi-threaded sharded ingestion engine built on sketch mergeability.
//!
//! Every structure in this workspace maintains `L(x)` for a linear map `L`,
//! so `sketch(A ++ B) == merge(sketch(A), sketch(B))` whenever both sides
//! use the same seeds. The engine exploits exactly that identity for
//! multi-core scaling:
//!
//! 1. **Shard** — `N` worker threads each own an identically-seeded clone of
//!    the target structure (a fresh, zero-state prototype).
//! 2. **Ingest** — incoming update batches are dealt round-robin to the
//!    workers over channels; each worker feeds its clone through the batched
//!    `process_batch` fast path (coalescing, hoisted fingerprint terms,
//!    row-major table walks).
//! 3. **Merge** — when the stream ends the shard states are combined by a
//!    deterministic binary tree merge, producing the sketch of the full
//!    stream.
//!
//! For the structures the engine supports (the [`ShardIngest`] implementors:
//! sparse recovery, both L0 samplers, count-sketch, count-min, count-median
//! and AMS) every counter is integer or field arithmetic — exact, commutative
//! and associative — so the merged state is **bit-identical** to ingesting
//! the whole stream sequentially on one thread, for *any* partition of the
//! stream across shards. The equivalence tests pin this with
//! [`Mergeable::state_digest`] comparisons.
//!
//! Floating-point structures whose counters hold non-integer reals (the
//! p-stable sketch, the precision/AKO samplers and the drivers built on
//! them) are deliberately *not* given [`ShardIngest`] implementations: their
//! merges reassociate floating-point sums, which is linear only up to
//! rounding. They still implement [`Mergeable`], so callers who accept
//! approximate linearity can shard them manually.
//!
//! ## Checkpoint / restore and cross-process merging
//!
//! Because every structure also implements `lps_sketch::Persist`, sharding
//! is not confined to one process: [`ShardedEngine::checkpoint_shards`]
//! serializes each worker's state into the versioned wire format,
//! [`ShardedEngine::resume_from`] re-animates an engine from those buffers,
//! and [`merge_encoded`] combines shard files produced by *different OS
//! processes* (or machines) into the sketch of the full stream — validating
//! version and seed compatibility byte-for-byte before touching a counter.
//! For the exact-arithmetic structures the cross-process merge reproduces
//! the sequential `state_digest` bit for bit; the
//! `experiments -- checkpoint` subcommand and the CI cross-process job
//! exercise exactly that pipeline.
//!
//! ## When parallel beats batched
//!
//! Sharding pays when the per-update sketch work dominates the per-update
//! distribution overhead (one `Vec` clone + channel send per batch,
//! amortised over [`DEFAULT_BATCH_SIZE`]-sized batches). Sparse recovery and
//! the L0 sampler touch `O(rows)` / `O(rows · levels)` cells per update, so
//! they scale; a bare count-min row update is so cheap that single-threaded
//! batching stays competitive until batches get large. Throughput scales
//! with *physical* cores: on a single-core host the engine degrades to
//! sequential speed minus a small coordination overhead.
//!
//! ```
//! use lps_engine::ShardedEngine;
//! use lps_hash::SeedSequence;
//! use lps_sketch::{Mergeable, SparseRecovery};
//! use lps_stream::Update;
//!
//! let mut seeds = SeedSequence::new(7);
//! let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
//! let updates: Vec<Update> = (0..1000).map(|i| Update::new(i % 100, 1)).collect();
//!
//! // four identically-seeded shards, tree-merged at the end
//! let mut engine = ShardedEngine::new(&proto, 4);
//! engine.ingest(&updates);
//! let merged = engine.finish();
//!
//! // bit-identical to sequential ingestion
//! let mut sequential = proto.clone();
//! sequential.process_batch(&updates);
//! assert_eq!(merged.state_digest(), sequential.state_digest());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::mpsc::SyncSender;
use std::thread::JoinHandle;

use lps_core::{FisL0Sampler, L0Sampler, LpSampler};
use lps_sketch::{
    read_header, seed_section, AmsSketch, CountMedianSketch, CountMinSketch, CountSketch,
    DecodeError, LinearSketch, Mergeable, Persist, SparseRecovery,
};
use lps_stream::{Update, UpdateStream, DEFAULT_BATCH_SIZE};

/// A structure the sharded engine can drive: cloneable (identically-seeded
/// clones), mergeable, and ingestible in batches.
///
/// Implementors must guarantee that batch ingestion plus
/// [`Mergeable::merge_from`] is **exact**: for any partition of an integer
/// update stream across identically-seeded clones, merging the shard states
/// reproduces, bit for bit, the state of one clone ingesting the whole
/// stream sequentially. This restricts implementations to structures whose
/// counters use integer or field arithmetic (or `f64` counters that only
/// ever hold exactly-representable integers); see the crate docs.
pub trait ShardIngest: Mergeable + Clone + Send {
    /// Ingest a batch of updates through the structure's fast path.
    fn ingest_batch(&mut self, updates: &[Update]);
}

impl ShardIngest for SparseRecovery {
    fn ingest_batch(&mut self, updates: &[Update]) {
        self.process_batch(updates);
    }
}

impl ShardIngest for CountSketch {
    fn ingest_batch(&mut self, updates: &[Update]) {
        LinearSketch::process_batch(self, updates);
    }
}

impl ShardIngest for CountMinSketch {
    fn ingest_batch(&mut self, updates: &[Update]) {
        self.process_batch(updates);
    }
}

impl ShardIngest for CountMedianSketch {
    fn ingest_batch(&mut self, updates: &[Update]) {
        LinearSketch::process_batch(self, updates);
    }
}

impl ShardIngest for AmsSketch {
    fn ingest_batch(&mut self, updates: &[Update]) {
        LinearSketch::process_batch(self, updates);
    }
}

impl ShardIngest for L0Sampler {
    fn ingest_batch(&mut self, updates: &[Update]) {
        LpSampler::process_batch(self, updates);
    }
}

impl ShardIngest for FisL0Sampler {
    fn ingest_batch(&mut self, updates: &[Update]) {
        LpSampler::process_batch(self, updates);
    }
}

/// How many update batches may sit unprocessed in each worker's channel
/// before `ingest` applies backpressure by blocking. Bounds peak memory at
/// roughly `shards × BACKLOG × batch_size` updates.
const WORKER_BACKLOG: usize = 8;

struct Worker<T> {
    sender: SyncSender<Vec<Update>>,
    handle: JoinHandle<T>,
}

/// A running sharded ingestion pipeline for one target structure.
///
/// Construction spawns the worker threads; [`ShardedEngine::ingest`] (or
/// [`ShardedEngine::ingest_stream`]) distributes update batches round-robin;
/// [`ShardedEngine::finish`] closes the channels, joins the workers and
/// tree-merges the shard states into the final structure.
pub struct ShardedEngine<T: ShardIngest + 'static> {
    workers: Vec<Worker<T>>,
    batch_size: usize,
    next: usize,
}

impl<T: ShardIngest + 'static> ShardedEngine<T> {
    /// Spawn `shards` worker threads, each owning a clone of `prototype`,
    /// dealing work in [`DEFAULT_BATCH_SIZE`]-update batches.
    pub fn new(prototype: &T, shards: usize) -> Self {
        Self::with_batch_size(prototype, shards, DEFAULT_BATCH_SIZE)
    }

    /// Spawn the engine with an explicit dispatch batch size.
    pub fn with_batch_size(prototype: &T, shards: usize, batch_size: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let states = (0..shards).map(|_| prototype.clone()).collect();
        Self::spawn(states, batch_size)
    }

    /// Spawn one worker thread per entry of `states`, each resuming from the
    /// given shard state. This is the common core of fresh construction
    /// ([`ShardedEngine::with_batch_size`], zero-state clones) and restore
    /// ([`ShardedEngine::resume_from`], decoded checkpoints).
    fn spawn(states: Vec<T>, batch_size: usize) -> Self {
        assert!(!states.is_empty(), "need at least one shard");
        assert!(batch_size >= 1, "batch size must be positive");
        let workers = states
            .into_iter()
            .map(|mut shard| {
                let (sender, receiver) =
                    std::sync::mpsc::sync_channel::<Vec<Update>>(WORKER_BACKLOG);
                let handle = std::thread::spawn(move || {
                    while let Ok(batch) = receiver.recv() {
                        shard.ingest_batch(&batch);
                    }
                    shard
                });
                Worker { sender, handle }
            })
            .collect();
        ShardedEngine { workers, batch_size, next: 0 }
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Distribute a slice of updates across the workers in round-robin
    /// batches. Blocks only when a worker's backlog is full (backpressure).
    pub fn ingest(&mut self, updates: &[Update]) {
        for chunk in updates.chunks(self.batch_size) {
            self.ingest_batch(chunk);
        }
    }

    /// Send one batch to the next worker in round-robin order.
    pub fn ingest_batch(&mut self, batch: &[Update]) {
        if batch.is_empty() {
            return;
        }
        let worker = &self.workers[self.next];
        self.next = (self.next + 1) % self.workers.len();
        worker.sender.send(batch.to_vec()).expect("engine worker exited before the stream ended");
    }

    /// Distribute a whole update stream across the workers.
    pub fn ingest_stream(&mut self, stream: &UpdateStream) {
        self.ingest(stream.updates());
    }

    /// Close the channels, join the workers and tree-merge the shard states
    /// into the final structure (the sketch of everything ingested).
    ///
    /// The merge is a deterministic binary tree over shard order
    /// (`(s0+s1) + (s2+s3)`, …): `log₂ shards` rounds instead of a serial
    /// left fold. For the exact-arithmetic [`ShardIngest`] structures any
    /// merge order yields the same bits; the fixed tree keeps the result
    /// reproducible for any future implementor whose merge only commutes
    /// approximately.
    pub fn finish(self) -> T {
        tree_merge(self.join_shards())
    }

    /// Close the channels and join the workers, returning the raw per-shard
    /// states in shard order **without** merging them.
    fn join_shards(self) -> Vec<T> {
        self.workers
            .into_iter()
            .map(|w| {
                drop(w.sender);
                w.handle.join().expect("engine worker panicked")
            })
            .collect()
    }
}

impl<T: ShardIngest + Persist + 'static> ShardedEngine<T> {
    /// Stop ingestion and serialize every shard's state, in shard order,
    /// **without** merging: one encoded buffer per worker, ready to be
    /// written to shard files, shipped to other machines, and recombined
    /// later by [`merge_encoded`] (or re-animated by
    /// [`ShardedEngine::resume_from`]).
    ///
    /// Checkpointing consumes the engine — linear-sketch state is a plain
    /// value, so "pause" is just "serialize and drop"; resuming re-creates
    /// workers from the buffers.
    pub fn checkpoint_shards(self) -> Vec<Vec<u8>> {
        self.join_shards().iter().map(Persist::encode_to_vec).collect()
    }

    /// Re-create a running engine from checkpointed shard states (one worker
    /// per buffer, in order), validating that every buffer decodes and that
    /// all shards were built from the same seeds before any thread spawns.
    pub fn resume_from(encoded: &[Vec<u8>], batch_size: usize) -> Result<Self, DecodeError> {
        let states = decode_compatible_shards::<T>(encoded)?;
        Ok(Self::spawn(states, batch_size))
    }
}

/// Deterministic binary tree merge over shard order — shared by
/// [`ShardedEngine::finish`] and [`merge_encoded`] so in-process and
/// cross-process merges produce identical bytes even for structures whose
/// merge only commutes approximately.
fn tree_merge<T: Mergeable>(mut states: Vec<T>) -> T {
    while states.len() > 1 {
        let mut next_round = Vec::with_capacity(states.len().div_ceil(2));
        let mut it = states.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge_from(&b);
            }
            next_round.push(a);
        }
        states = next_round;
    }
    states.pop().expect("at least one shard")
}

/// Decode a set of shard buffers, first validating that they are
/// merge-compatible: every buffer must parse under the current wire format,
/// carry `T`'s structure tag, and hold a seed section byte-identical to the
/// first buffer's (same shape, same random functions). The seed comparison
/// happens *before* any counter decoding, so incompatible shards are
/// rejected cheaply and typed ([`DecodeError::SeedMismatch`]).
fn decode_compatible_shards<T: Persist>(encoded: &[Vec<u8>]) -> Result<Vec<T>, DecodeError> {
    if encoded.is_empty() {
        return Err(DecodeError::Corrupt { context: "need at least one encoded shard" });
    }
    // Validate the reference shard's own tag before adopting its seed
    // section as the compatibility yardstick — otherwise a wrong file at
    // index 0 would be misreported as a seed mismatch on shard 1.
    let reference_header = read_header(&encoded[0])?;
    if reference_header.tag != T::TAG {
        return Err(DecodeError::WrongStructure { expected: T::TAG, found: reference_header.tag });
    }
    let reference_seeds = seed_section(&encoded[0])?;
    for (shard, bytes) in encoded.iter().enumerate().skip(1) {
        let header = read_header(bytes)?;
        if header.tag != T::TAG {
            return Err(DecodeError::WrongStructure { expected: T::TAG, found: header.tag });
        }
        if &bytes[header.seed_range] != reference_seeds {
            return Err(DecodeError::SeedMismatch { shard });
        }
    }
    encoded.iter().map(|bytes| T::decode_state(bytes)).collect()
}

/// Merge checkpointed shard states produced in this or **any other OS
/// process** into the structure sketching the concatenation of every shard's
/// stream: the cross-process counterpart of [`ShardedEngine::finish`].
///
/// Validates version/tag/seed compatibility across all buffers (see
/// [`DecodeError::SeedMismatch`]) and then applies the same deterministic
/// binary tree merge as the in-process engine. For the exact-arithmetic
/// [`ShardIngest`] structures the result is bit-identical — digest for
/// digest — to sequential single-process ingestion of the whole stream.
pub fn merge_encoded<T: Persist + Mergeable>(encoded: &[Vec<u8>]) -> Result<T, DecodeError> {
    Ok(tree_merge(decode_compatible_shards::<T>(encoded)?))
}

/// One-shot convenience: shard `updates` across `shards` identically-seeded
/// clones of `prototype` and return the tree-merged result.
///
/// For [`ShardIngest`] structures the result is bit-identical to
/// `prototype.clone()` ingesting `updates` sequentially.
pub fn parallel_ingest<T: ShardIngest + 'static>(
    prototype: &T,
    updates: &[Update],
    shards: usize,
) -> T {
    let mut engine = ShardedEngine::new(prototype, shards);
    engine.ingest(updates);
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_hash::SeedSequence;

    fn workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
        let mut s = SeedSequence::new(seed);
        (0..len)
            .map(|_| {
                let delta = (s.next_below(9) as i64) - 4;
                Update::new(s.next_below(n), if delta == 0 { 1 } else { delta })
            })
            .collect()
    }

    #[test]
    fn sparse_recovery_sharded_matches_sequential_bitwise() {
        let mut seeds = SeedSequence::new(1);
        let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
        let updates = workload(1 << 12, 5000, 2);
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        for shards in [1, 2, 3, 4, 8] {
            let merged = parallel_ingest(&proto, &updates, shards);
            assert_eq!(
                merged.state_digest(),
                sequential.state_digest(),
                "digest mismatch at {shards} shards"
            );
            assert_eq!(merged.recover(), sequential.recover());
        }
    }

    #[test]
    fn l0_sampler_sharded_matches_sequential_bitwise() {
        let mut seeds = SeedSequence::new(3);
        let proto = L0Sampler::new(1 << 10, 0.25, &mut seeds);
        let updates = workload(1 << 10, 4000, 4);
        let mut sequential = proto.clone();
        LpSampler::process_batch(&mut sequential, &updates);
        let merged = parallel_ingest(&proto, &updates, 4);
        assert_eq!(merged.state_digest(), sequential.state_digest());
        assert_eq!(merged.sample(), sequential.sample());
    }

    #[test]
    fn incremental_ingestion_across_many_calls() {
        let mut seeds = SeedSequence::new(5);
        let proto = CountMinSketch::new(1 << 10, 64, 5, &mut seeds);
        let updates = workload(1 << 10, 3000, 6);
        let mut engine = ShardedEngine::with_batch_size(&proto, 3, 128);
        // feed in ragged pieces to exercise batch boundaries
        for piece in updates.chunks(701) {
            engine.ingest(piece);
        }
        let merged = engine.finish();
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        assert_eq!(merged.state_digest(), sequential.state_digest());
    }

    #[test]
    fn empty_stream_yields_prototype_state() {
        let mut seeds = SeedSequence::new(7);
        let proto = AmsSketch::with_default_shape(256, &mut seeds);
        let merged = parallel_ingest(&proto, &[], 4);
        assert_eq!(merged.state_digest(), proto.state_digest());
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let mut seeds = SeedSequence::new(8);
        let proto = CountSketch::with_default_rows(64, 4, &mut seeds);
        let _ = ShardedEngine::new(&proto, 0);
    }
}

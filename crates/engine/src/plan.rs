//! Shard-partitioning strategies and the plan-aware checkpoint envelope.
//!
//! The engine's linearity identity `sketch(A ++ B) = merge(sketch(A),
//! sketch(B))` holds for *any* partition of the update stream across
//! identically-seeded shards, which leaves the partitioning policy a free
//! choice. This module makes that choice a first-class [`ShardPlan`]
//! strategy with two implementations:
//!
//! * [`RoundRobin`] — deal dispatch batches to the workers in rotation.
//!   Every shard sees a uniform slice of the whole stream, so load balances
//!   for free, but every shard's working set spans the full coordinate
//!   space. Shard states recombine by addition ([`Mergeable::merge_from`]).
//! * [`KeyRange`] — partition the coordinate space `[0, n)` into contiguous
//!   ranges, one [`ShardIngest::restrict_domain`] structure per range, and
//!   route each update to the shard owning its coordinate. A shard's
//!   working set is confined to the cells its own range hashes to (smaller
//!   effective footprint per shard, at the cost of key-skew sensitivity).
//!   Shard supports are disjoint, so states recombine by disjoint union
//!   ([`ShardIngest::merge_disjoint`]) — bit-identical to addition for the
//!   exact-arithmetic structures, but able to skip state the sibling never
//!   touched.
//!
//! Either strategy carries a [`Tolerance`] marker. `Tolerance::Exact` (the
//! default) restricts the plan to structures whose shard merges are
//! bit-exact; `Tolerance::Approximate` is the explicit opt-in required to
//! drive the floating-point structures (p-stable, precision/AKO samplers,
//! both heavy-hitter drivers), whose merges reassociate `f64` sums and are
//! therefore linear only up to the documented `~2kε` drift bound (Kahan
//! compensation keeps each shard's sums exact to `O(ε)`; only the k-way
//! merge reassociates).
//!
//! Checkpoints are stamped with the plan that produced them: every shard
//! buffer starts with a fixed-size envelope (magic, version, strategy tag,
//! tolerance, shard index/count, owned key range) ahead of the `Persist`
//! payload, so a key-range checkpoint can never be silently resumed — or
//! merged — as round-robin (`DecodeError::PlanMismatch`).

use std::ops::Range;

use lps_sketch::{DecodeError, Mergeable};
use lps_stream::Update;

use crate::ShardIngest;

/// How faithfully a plan's shard merge must reproduce sequential ingestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tolerance {
    /// Shard states must recombine bit-identically to sequential ingestion
    /// (integer/field counter arithmetic). The default; the engine refuses
    /// to drive floating-point structures under an exact plan.
    Exact,
    /// Shard merges may reassociate floating-point sums: results are correct
    /// at the estimator level (within the documented `~2kε` per-counter
    /// drift) but not bit-identical. Required to shard the float structures.
    ///
    /// Kahan compensation does **not** lift the float structures to
    /// [`Exact`](Tolerance::Exact), and cannot: compensation makes each
    /// shard's *own* accumulation order nearly exact, but sequential
    /// ingestion folds every update into one counter in stream order while a
    /// k-way merge adds k already-rounded partial sums in a different
    /// association. IEEE-754 addition is not associative, the bits rounded
    /// away inside each partial sum are gone before the merge runs, and each
    /// shard's compensation term was computed against its own sequence of
    /// partial sums — summing the compensations elementwise preserves the
    /// merge's commutativity, not sequential bit-identity. So the float
    /// structures stay `Approximate` by construction; see
    /// `lps_sketch::compensated` for the shard-local half of the story.
    Approximate,
}

impl Tolerance {
    /// Human-readable marker name (used by [`DecodeError::PlanMismatch`]).
    pub fn name(self) -> &'static str {
        match self {
            Tolerance::Exact => "exact tolerance",
            Tolerance::Approximate => "approximate tolerance",
        }
    }
}

/// Which [`ShardPlan`] strategy produced a checkpoint; stamped into every
/// shard envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// [`RoundRobin`]: replicated shards, dispatch batches dealt in rotation.
    RoundRobin,
    /// [`KeyRange`]: contiguous coordinate ranges, one shard per range.
    KeyRange,
}

impl PlanStrategy {
    /// The wire tag stamped into checkpoint envelopes.
    pub fn tag(self) -> u8 {
        match self {
            PlanStrategy::RoundRobin => 0,
            PlanStrategy::KeyRange => 1,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(PlanStrategy::RoundRobin),
            1 => Some(PlanStrategy::KeyRange),
            _ => None,
        }
    }

    /// Human-readable strategy name (used by [`DecodeError::PlanMismatch`]
    /// and the bench artifact).
    pub fn name(self) -> &'static str {
        match self {
            PlanStrategy::RoundRobin => "round_robin",
            PlanStrategy::KeyRange => "key_range",
        }
    }
}

/// A shard-partitioning strategy: how per-shard states are built from the
/// prototype, which shard each update is routed to, and how the shard states
/// recombine into the sketch of the full stream.
///
/// Plans are cheap plain values (no threads, no channels); the sans-io
/// [`IngestSession`](crate::IngestSession) consults one for every routing
/// and merge decision, and stamps it into checkpoints.
pub trait ShardPlan: Clone + Send + 'static {
    /// The strategy this plan implements (stamped into checkpoints).
    const STRATEGY: PlanStrategy;

    /// Number of shards the plan partitions into.
    fn shards(&self) -> usize;

    /// The merge-fidelity class the caller opted into.
    fn tolerance(&self) -> Tolerance;

    /// Build the per-shard states (shard order) from a zero-state prototype.
    fn build_states<T: ShardIngest>(&self, prototype: &T) -> Vec<T>;

    /// The shard the next update must be staged on. Stateful plans (round
    /// robin) answer relative to their dispatch cursor; the session advances
    /// the cursor through [`ShardPlan::batch_sealed`].
    fn route(&mut self, update: &Update) -> usize;

    /// Notification that the session sealed a dispatch batch for `shard`.
    fn batch_sealed(&mut self, shard: usize);

    /// Recombine the shard states (shard order) into the final structure.
    fn merge_states<T: ShardIngest>(&self, states: Vec<T>) -> T;

    /// The key range shard `shard` owns, for plans that partition the
    /// coordinate space (`None` for replicated plans).
    fn shard_range(&self, shard: usize) -> Option<Range<u64>>;
}

/// Today's default strategy: identically-seeded full replicas, dispatch
/// batches dealt to the workers in rotation, additive tree merge.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    shards: usize,
    tolerance: Tolerance,
    cursor: usize,
}

impl RoundRobin {
    /// An exact-tolerance round-robin plan over `shards` workers.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        RoundRobin { shards, tolerance: Tolerance::Exact, cursor: 0 }
    }

    /// A round-robin plan that opts into approximate (floating-point) shard
    /// merges, unlocking the float structures.
    pub fn approximate(shards: usize) -> Self {
        RoundRobin::new(shards).with_tolerance(Tolerance::Approximate)
    }

    /// Override the tolerance marker.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }
}

impl ShardPlan for RoundRobin {
    const STRATEGY: PlanStrategy = PlanStrategy::RoundRobin;

    fn shards(&self) -> usize {
        self.shards
    }

    fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    fn build_states<T: ShardIngest>(&self, prototype: &T) -> Vec<T> {
        (0..self.shards).map(|_| prototype.clone()).collect()
    }

    fn route(&mut self, _update: &Update) -> usize {
        self.cursor
    }

    fn batch_sealed(&mut self, shard: usize) {
        if shard == self.cursor {
            self.cursor = (self.cursor + 1) % self.shards;
        }
    }

    fn merge_states<T: ShardIngest>(&self, states: Vec<T>) -> T {
        tree_merge_with(states, Mergeable::merge_from)
    }

    fn shard_range(&self, _shard: usize) -> Option<Range<u64>> {
        None
    }
}

/// Key-range partitioning: the coordinate space `[0, n)` is split into
/// contiguous ranges, one [`ShardIngest::restrict_domain`] structure per
/// range, updates are routed by coordinate, and the shard states recombine
/// by disjoint union ([`ShardIngest::merge_disjoint`]).
#[derive(Debug, Clone)]
pub struct KeyRange {
    /// `shards + 1` strictly increasing range boundaries; shard `i` owns
    /// `bounds[i]..bounds[i + 1]`.
    bounds: Vec<u64>,
    tolerance: Tolerance,
}

impl KeyRange {
    /// An exact-tolerance plan splitting `[0, dimension)` into `shards`
    /// near-equal contiguous ranges.
    pub fn new(dimension: u64, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            dimension >= shards as u64,
            "cannot split dimension {dimension} into {shards} non-empty ranges"
        );
        let (base, extra) = (dimension / shards as u64, dimension % shards as u64);
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut edge = 0u64;
        bounds.push(edge);
        for i in 0..shards as u64 {
            edge += base + u64::from(i < extra);
            bounds.push(edge);
        }
        KeyRange { bounds, tolerance: Tolerance::Exact }
    }

    /// A key-range plan that opts into approximate (floating-point) shard
    /// merges, unlocking the float structures.
    pub fn approximate(dimension: u64, shards: usize) -> Self {
        KeyRange::new(dimension, shards).with_tolerance(Tolerance::Approximate)
    }

    /// A plan with explicit range boundaries: shard `i` owns
    /// `bounds[i]..bounds[i + 1]`. Boundaries must be strictly increasing
    /// with at least two entries; use this to match a known key skew.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(bounds.len() >= 2, "need at least one range (two boundaries)");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "boundaries must strictly increase");
        KeyRange { bounds, tolerance: Tolerance::Exact }
    }

    /// Override the tolerance marker.
    pub fn with_tolerance(mut self, tolerance: Tolerance) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The contiguous range shard `shard` owns.
    pub fn range(&self, shard: usize) -> Range<u64> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// The shard owning coordinate `index`.
    ///
    /// Coordinates outside the partitioned space are a caller error: debug
    /// builds assert, release builds **silently clamp** to the nearest shard
    /// (whose structure will then absorb an out-of-range update its stamped
    /// checkpoint range does not describe). Callers that cannot trust their
    /// input must range-check it before `offer`.
    pub fn owner(&self, index: u64) -> usize {
        debug_assert!(
            self.bounds[0] <= index && index < *self.bounds.last().expect("non-empty bounds"),
            "update index {index} outside the partitioned space"
        );
        (self.bounds.partition_point(|&b| b <= index).max(1) - 1).min(self.bounds.len() - 2)
    }
}

impl ShardPlan for KeyRange {
    const STRATEGY: PlanStrategy = PlanStrategy::KeyRange;

    fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    fn tolerance(&self) -> Tolerance {
        self.tolerance
    }

    fn build_states<T: ShardIngest>(&self, prototype: &T) -> Vec<T> {
        (0..self.shards()).map(|i| prototype.restrict_domain(self.range(i))).collect()
    }

    fn route(&mut self, update: &Update) -> usize {
        self.owner(update.index)
    }

    fn batch_sealed(&mut self, _shard: usize) {}

    fn merge_states<T: ShardIngest>(&self, states: Vec<T>) -> T {
        tree_merge_with(states, T::merge_disjoint)
    }

    fn shard_range(&self, shard: usize) -> Option<Range<u64>> {
        Some(self.range(shard))
    }
}

/// Deterministic binary tree merge over shard order (`(s0+s1) + (s2+s3)`,
/// …): `log₂ shards` combine rounds instead of a serial left fold, and a
/// fixed association so approximate (float) merges stay reproducible run to
/// run. Shared by every in-process and cross-process merge path.
pub(crate) fn tree_merge_with<T>(mut states: Vec<T>, mut combine: impl FnMut(&mut T, &T)) -> T {
    assert!(!states.is_empty(), "at least one shard");
    while states.len() > 1 {
        let mut next_round = Vec::with_capacity(states.len().div_ceil(2));
        let mut it = states.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                combine(&mut a, &b);
            }
            next_round.push(a);
        }
        states = next_round;
    }
    states.pop().expect("at least one shard")
}

/// Magic prefix of a plan-aware checkpoint envelope (distinct from the
/// `LPSK` magic of a bare `Persist` buffer, so the two are never confused).
pub const ENVELOPE_MAGIC: [u8; 4] = *b"LPSE";

/// Version of the envelope layout.
pub const ENVELOPE_VERSION: u16 = 1;

/// Byte length of the fixed-size envelope header that precedes the
/// `Persist` payload: magic (4) + version (2) + strategy (1) + tolerance
/// (1) + shard index (2) + shard count (2) + range lo (8) + range hi (8).
pub const ENVELOPE_HEADER_LEN: usize = 28;

/// The decoded plan envelope of one checkpoint shard buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEnvelope {
    /// Strategy that produced the checkpoint.
    pub strategy: PlanStrategy,
    /// Tolerance marker the producing plan carried.
    pub tolerance: Tolerance,
    /// This buffer's shard index.
    pub shard: u16,
    /// Total shard count of the checkpoint.
    pub shard_count: u16,
    /// The key range this shard owned (`None` for replicated plans).
    pub range: Option<Range<u64>>,
}

/// Encode one shard's plan envelope header; the caller appends the
/// `Persist` payload directly into the returned buffer, skipping the extra
/// staging `Vec` (and full-payload memcpy) that encode-then-concatenate
/// would cost.
pub(crate) fn encode_envelope_header<P: ShardPlan>(plan: &P, shard: usize) -> Vec<u8> {
    assert!(plan.shards() <= u16::MAX as usize, "envelope stamps shard counts as u16");
    let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN);
    out.extend_from_slice(&ENVELOPE_MAGIC);
    out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    out.push(P::STRATEGY.tag());
    out.push(match plan.tolerance() {
        Tolerance::Exact => 0,
        Tolerance::Approximate => 1,
    });
    out.extend_from_slice(&(shard as u16).to_le_bytes());
    out.extend_from_slice(&(plan.shards() as u16).to_le_bytes());
    let range = plan.shard_range(shard).unwrap_or(0..0);
    out.extend_from_slice(&range.start.to_le_bytes());
    out.extend_from_slice(&range.end.to_le_bytes());
    out
}

/// Split a checkpoint shard buffer into its decoded envelope and the
/// `Persist` payload that follows it. Total: every malformed input maps to
/// a typed [`DecodeError`], never a panic.
pub fn read_envelope(bytes: &[u8]) -> Result<(PlanEnvelope, &[u8]), DecodeError> {
    if bytes.len() < ENVELOPE_HEADER_LEN {
        return Err(DecodeError::Truncated {
            expected: ENVELOPE_HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[0..4] != ENVELOPE_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[0..4]);
        return Err(DecodeError::BadMagic { found });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != ENVELOPE_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let strategy = PlanStrategy::from_tag(bytes[6])
        .ok_or(DecodeError::Corrupt { context: "unknown shard-plan strategy tag" })?;
    let tolerance = match bytes[7] {
        0 => Tolerance::Exact,
        1 => Tolerance::Approximate,
        _ => return Err(DecodeError::Corrupt { context: "unknown tolerance marker" }),
    };
    let shard = u16::from_le_bytes([bytes[8], bytes[9]]);
    let shard_count = u16::from_le_bytes([bytes[10], bytes[11]]);
    let lo = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let hi = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if shard_count == 0 || shard >= shard_count {
        return Err(DecodeError::Corrupt { context: "shard index outside the stamped count" });
    }
    let range = match strategy {
        PlanStrategy::RoundRobin => None,
        PlanStrategy::KeyRange => {
            if lo >= hi {
                return Err(DecodeError::Corrupt { context: "empty key range in envelope" });
            }
            Some(lo..hi)
        }
    };
    let envelope = PlanEnvelope { strategy, tolerance, shard, shard_count, range };
    Ok((envelope, &bytes[ENVELOPE_HEADER_LEN..]))
}

/// The envelope cross-validation shared by every consumer of a checkpoint
/// set ([`validate_envelopes`] for plan-driven resume,
/// `merge_checkpointed` for plan-less cross-process merging): strategy and
/// tolerance must match the expectation, and buffers must arrive complete
/// and in shard order.
pub(crate) fn check_envelope(
    envelope: &PlanEnvelope,
    strategy: PlanStrategy,
    tolerance: Tolerance,
    shard: usize,
    shard_count: usize,
) -> Result<(), DecodeError> {
    if envelope.strategy != strategy {
        return Err(DecodeError::PlanMismatch {
            expected: strategy.name(),
            found: envelope.strategy.name(),
        });
    }
    if envelope.tolerance != tolerance {
        return Err(DecodeError::PlanMismatch {
            expected: tolerance.name(),
            found: envelope.tolerance.name(),
        });
    }
    if envelope.shard as usize != shard || envelope.shard_count as usize != shard_count {
        return Err(DecodeError::Corrupt { context: "shard buffers out of order or missing" });
    }
    Ok(())
}

/// Validate a checkpoint against the plan a caller wants to resume (or
/// merge) under, returning the bare `Persist` payloads in shard order.
///
/// Rejects, with typed errors: a different strategy or tolerance marker
/// ([`DecodeError::PlanMismatch`] — a key-range checkpoint can never be
/// resumed round-robin, and an approximate-tolerance checkpoint never under
/// an exact plan, which would panic at session spawn for float structures),
/// out-of-order or missing shards, a shard count disagreeing with the plan,
/// and key-range bounds disagreeing with the plan's.
pub(crate) fn validate_envelopes<'a, P: ShardPlan>(
    plan: &P,
    encoded: &'a [Vec<u8>],
) -> Result<Vec<&'a [u8]>, DecodeError> {
    if encoded.is_empty() {
        return Err(DecodeError::Corrupt { context: "need at least one encoded shard" });
    }
    if encoded.len() != plan.shards() {
        return Err(DecodeError::Corrupt { context: "shard count disagrees with the resume plan" });
    }
    let mut payloads = Vec::with_capacity(encoded.len());
    for (i, bytes) in encoded.iter().enumerate() {
        let (envelope, payload) = read_envelope(bytes)?;
        check_envelope(&envelope, P::STRATEGY, plan.tolerance(), i, encoded.len())?;
        if envelope.range != plan.shard_range(i) {
            return Err(DecodeError::Corrupt {
                context: "checkpoint key ranges disagree with the resume plan",
            });
        }
        payloads.push(payload);
    }
    Ok(payloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_range_splits_evenly_with_remainder_spread() {
        let plan = KeyRange::new(10, 3);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.range(0), 0..4);
        assert_eq!(plan.range(1), 4..7);
        assert_eq!(plan.range(2), 7..10);
        for i in 0..10 {
            let owner = plan.owner(i);
            assert!(plan.range(owner).contains(&i), "index {i} routed to wrong shard {owner}");
        }
    }

    #[test]
    fn key_range_owner_covers_boundaries() {
        let plan = KeyRange::with_bounds(vec![0, 5, 6, 64]);
        assert_eq!(plan.owner(0), 0);
        assert_eq!(plan.owner(4), 0);
        assert_eq!(plan.owner(5), 1);
        assert_eq!(plan.owner(6), 2);
        assert_eq!(plan.owner(63), 2);
    }

    #[test]
    fn round_robin_cursor_advances_on_seal() {
        let mut plan = RoundRobin::new(3);
        let u = Update::new(0, 1);
        assert_eq!(plan.route(&u), 0);
        assert_eq!(plan.route(&u), 0, "cursor only moves on seal");
        plan.batch_sealed(0);
        assert_eq!(plan.route(&u), 1);
        plan.batch_sealed(1);
        plan.batch_sealed(2);
        assert_eq!(plan.route(&u), 0, "cursor wraps");
    }

    #[test]
    fn envelope_roundtrip_and_rejections() {
        let plan = KeyRange::approximate(100, 4);
        let mut buf = encode_envelope_header(&plan, 2);
        buf.extend_from_slice(b"payload");
        let (envelope, payload) = read_envelope(&buf).expect("roundtrip");
        assert_eq!(payload, b"payload");
        assert_eq!(envelope.strategy, PlanStrategy::KeyRange);
        assert_eq!(envelope.tolerance, Tolerance::Approximate);
        assert_eq!(envelope.shard, 2);
        assert_eq!(envelope.shard_count, 4);
        assert_eq!(envelope.range, Some(50..75));

        // every truncation prefix is a typed error, never a panic
        for cut in 0..buf.len() {
            assert!(read_envelope(&buf[..cut]).is_err() || cut >= ENVELOPE_HEADER_LEN);
        }
        // bare Persist bytes are named as the wrong magic
        let mut bad = buf.clone();
        bad[0..4].copy_from_slice(b"LPSK");
        assert!(matches!(read_envelope(&bad), Err(DecodeError::BadMagic { .. })));
        // unknown strategy tag
        let mut bad = buf.clone();
        bad[6] = 9;
        assert!(matches!(read_envelope(&bad), Err(DecodeError::Corrupt { .. })));
    }

    #[test]
    #[should_panic(expected = "non-empty ranges")]
    fn key_range_rejects_more_shards_than_keys() {
        let _ = KeyRange::new(3, 4);
    }
}

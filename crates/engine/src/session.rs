//! The sans-io ingestion front-end: [`EngineBuilder`] → [`IngestSession`].
//!
//! A session owns the worker threads but exposes a **non-blocking,
//! poll-driven** surface: [`IngestSession::offer`] accepts as many updates
//! as current capacity allows and returns [`Poll::Pending`] instead of ever
//! blocking the caller on a full worker channel. That makes the engine
//! embeddable behind a socket loop, an async executor, or any other
//! event-driven driver without new runtime dependencies — the caller decides
//! what "wait" means.
//!
//! ## Lifecycle
//!
//! ```text
//! EngineBuilder::new(&proto).plan(...).batch_size(...)
//!     └─ session() ──► offer(&updates) ─┬─► Poll::Ready(accepted)
//!                      ▲                └─► Poll::Pending (backpressure)
//!                      └──── caller retries / drains ◄┘
//!                      drain() ──► Poll::Ready when all buffers handed off
//!                      seal()  ──► Ok(final merged structure) (blocking, terminal)
//!                                  Err(WorkerPanicked) if a shard died
//! ```
//!
//! ## Worker panic containment
//!
//! A panic inside a worker (a structure bug, a poisoned update) is contained
//! to its shard: the session marks the shard dead and keeps accepting and
//! routing work for the others instead of propagating the panic into the
//! dispatcher. The terminal operations surface it as a typed
//! [`EngineError::WorkerPanicked`], and
//! [`IngestSession::checkpoint_surviving`] persists every healthy shard's
//! state so a degraded fleet can still checkpoint what it has.
//!
//! Internally the session stages routed updates per shard (one copy, into
//! the staging buffer), seals a staging buffer into a dispatch batch when it
//! reaches the batch size, and hands sealed batches to worker channels with
//! `try_send` — the batch `Vec` is **moved** on handoff, never cloned, and a
//! batch that finds its channel full simply waits in the bounded outbox
//! until a later poll. Peak buffered memory is bounded by
//! `shards × batch_size` staged updates plus `2 × shards` outbox batches on
//! top of the worker channels' own backlog.

use std::collections::VecDeque;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::task::Poll;
use std::thread::JoinHandle;

use lps_sketch::{DecodeError, Persist};
use lps_stream::{Update, UpdateStream, DEFAULT_BATCH_SIZE};

use crate::plan::{encode_envelope_header, validate_envelopes, RoundRobin, ShardPlan, Tolerance};
use crate::{decode_compatible_shards, EngineError, ShardIngest};

/// How many dispatch batches may sit unprocessed in each worker's channel.
/// Together with the outbox cap this bounds peak buffered memory at roughly
/// `shards × (WORKER_BACKLOG + 2) × batch_size` updates.
const WORKER_BACKLOG: usize = 8;

/// Sealed batches the outbox may hold before [`IngestSession::offer`]
/// reports backpressure, per shard.
const OUTBOX_BATCHES_PER_SHARD: usize = 2;

struct Worker<T> {
    sender: SyncSender<Vec<Update>>,
    handle: JoinHandle<T>,
}

/// Configures and spawns an [`IngestSession`] (or resumes one from a
/// checkpoint). This is the front door of the engine:
///
/// ```
/// use lps_engine::{EngineBuilder, KeyRange};
/// use lps_hash::SeedSequence;
/// use lps_sketch::{Mergeable, SparseRecovery};
/// use lps_stream::Update;
///
/// let mut seeds = SeedSequence::new(7);
/// let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
/// let updates: Vec<Update> = (0..1000).map(|i| Update::new(i % 100, 1)).collect();
///
/// // four shards, each owning a quarter of the coordinate space
/// let mut session =
///     EngineBuilder::new(&proto).plan(KeyRange::new(1 << 12, 4)).session();
/// session.ingest_blocking(&updates);
/// let merged = session.seal().unwrap();
///
/// // bit-identical to sequential ingestion
/// let mut sequential = proto.clone();
/// sequential.process_batch(&updates);
/// assert_eq!(merged.state_digest(), sequential.state_digest());
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder<T: ShardIngest + 'static, P: ShardPlan = RoundRobin> {
    prototype: T,
    plan: P,
    batch_size: usize,
}

impl<T: ShardIngest + 'static> EngineBuilder<T, RoundRobin> {
    /// Start configuring an engine around a zero-state prototype. Defaults:
    /// a single-shard [`RoundRobin`] plan and [`DEFAULT_BATCH_SIZE`]
    /// dispatch batches.
    pub fn new(prototype: &T) -> Self {
        EngineBuilder {
            prototype: prototype.clone(),
            plan: RoundRobin::new(1),
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Convenience for the default plan: round-robin over `shards` workers
    /// (preserving a previously set tolerance).
    pub fn shards(mut self, shards: usize) -> Self {
        self.plan = RoundRobin::new(shards).with_tolerance(self.plan.tolerance());
        self
    }
}

impl<T: ShardIngest + 'static, P: ShardPlan> EngineBuilder<T, P> {
    /// Use a different partitioning strategy (e.g. [`crate::KeyRange`]).
    pub fn plan<Q: ShardPlan>(self, plan: Q) -> EngineBuilder<T, Q> {
        EngineBuilder { prototype: self.prototype, plan, batch_size: self.batch_size }
    }

    /// Dispatch batch size: updates staged per shard before a batch is
    /// sealed and handed to the worker.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Spawn the worker threads and return the live session.
    ///
    /// # Panics
    ///
    /// If `T` merges only approximately (the float structures) and the plan
    /// does not carry [`Tolerance::Approximate`] — sharding them must be an
    /// explicit opt-in.
    pub fn session(self) -> IngestSession<T, P> {
        let states = self.plan.build_states(&self.prototype);
        IngestSession::from_states(self.plan, states, self.batch_size)
    }

    /// Re-animate a session from a plan-aware checkpoint
    /// ([`IngestSession::checkpoint`]): validates the envelope of every
    /// shard buffer against this builder's plan (strategy, shard count, key
    /// ranges), then seed-compatibility across the payloads, before any
    /// thread spawns. The builder's prototype is not consulted — state comes
    /// entirely from the checkpoint.
    pub fn resume(self, encoded: &[Vec<u8>]) -> Result<IngestSession<T, P>, DecodeError>
    where
        T: Persist,
    {
        let payloads = validate_envelopes(&self.plan, encoded)?;
        let states = decode_compatible_shards::<T, _>(&payloads)?;
        Ok(IngestSession::from_states(self.plan, states, self.batch_size))
    }
}

/// A live sharded ingestion pipeline with a sans-io surface: non-blocking
/// [`IngestSession::offer`] / [`IngestSession::drain`], terminal
/// [`IngestSession::seal`]. Built by [`EngineBuilder`].
pub struct IngestSession<T: ShardIngest + 'static, P: ShardPlan> {
    plan: P,
    workers: Vec<Worker<T>>,
    /// Per-shard staging buffer (< `batch_size` routed updates each).
    staging: Vec<Vec<Update>>,
    /// Sealed batches awaiting channel capacity, global FIFO (per-shard
    /// order is preserved; batches for different shards may overtake).
    outbox: VecDeque<(usize, Vec<Update>)>,
    /// Shards whose worker was observed dead (disconnected channel) before
    /// join time. Batches routed to a dead shard are dropped — the state
    /// they would have updated is already lost to the panic.
    dead: Vec<bool>,
    batch_size: usize,
    accepted: u64,
}

impl<T: ShardIngest + 'static, P: ShardPlan> IngestSession<T, P> {
    /// Spawn one worker per state. The common core of fresh construction
    /// (plan-built states) and resume (decoded checkpoint states).
    pub(crate) fn from_states(plan: P, states: Vec<T>, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        assert_eq!(states.len(), plan.shards(), "plan shard count must match states");
        assert!(
            T::TOLERANCE == Tolerance::Exact || plan.tolerance() == Tolerance::Approximate,
            "this structure's shard merges reassociate floating-point sums; sharding it \
             requires explicitly opting in with an approximate-tolerance plan \
             (RoundRobin::approximate / KeyRange::approximate)"
        );
        let shards = states.len();
        let workers = states
            .into_iter()
            .map(|mut shard| {
                let (sender, receiver) =
                    std::sync::mpsc::sync_channel::<Vec<Update>>(WORKER_BACKLOG);
                let handle = std::thread::spawn(move || {
                    while let Ok(batch) = receiver.recv() {
                        shard.ingest_batch(&batch);
                    }
                    shard
                });
                Worker { sender, handle }
            })
            .collect();
        IngestSession {
            plan,
            workers,
            staging: (0..shards).map(|_| Vec::with_capacity(batch_size)).collect(),
            outbox: VecDeque::new(),
            dead: vec![false; shards],
            batch_size,
            accepted: 0,
        }
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The plan driving routing and merging.
    pub fn plan(&self) -> &P {
        &self.plan
    }

    /// Updates accepted so far (staged, in flight, or already ingested).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Updates currently buffered inside the session (staged or in the
    /// outbox) — i.e. accepted but not yet handed to a worker channel.
    pub fn buffered(&self) -> usize {
        self.staging.iter().map(Vec::len).sum::<usize>()
            + self.outbox.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    fn outbox_cap(&self) -> usize {
        self.workers.len() * OUTBOX_BATCHES_PER_SHARD
    }

    /// Try to move queued batches from the outbox into worker channels.
    /// Never blocks; preserves per-shard FIFO order.
    fn pump(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        let mut stuck = vec![false; self.workers.len()];
        let mut remaining = VecDeque::with_capacity(self.outbox.len());
        while let Some((shard, batch)) = self.outbox.pop_front() {
            if stuck[shard] {
                remaining.push_back((shard, batch));
                continue;
            }
            match self.workers[shard].sender.try_send(batch) {
                Ok(()) => {}
                Err(TrySendError::Full(batch)) => {
                    stuck[shard] = true;
                    remaining.push_back((shard, batch));
                }
                // worker panicked: contain it — mark the shard dead and
                // drop the batch (its state is already lost to the panic)
                Err(TrySendError::Disconnected(_)) => self.dead[shard] = true,
            }
        }
        self.outbox = remaining;
    }

    /// Hand a sealed batch to its worker, or queue it. The batch `Vec` is
    /// moved, never cloned — a full channel costs nothing but queue position.
    fn dispatch(&mut self, shard: usize, batch: Vec<Update>) {
        debug_assert!(!batch.is_empty());
        if self.dead[shard] {
            return;
        }
        // per-shard FIFO: an earlier batch for this shard queued in the
        // outbox must reach the worker first
        if self.outbox.iter().any(|(s, _)| *s == shard) {
            self.outbox.push_back((shard, batch));
            return;
        }
        match self.workers[shard].sender.try_send(batch) {
            Ok(()) => {}
            Err(TrySendError::Full(batch)) => self.outbox.push_back((shard, batch)),
            Err(TrySendError::Disconnected(_)) => self.dead[shard] = true,
        }
    }

    /// Seal shard `shard`'s staging buffer into a dispatch batch.
    fn seal_shard(&mut self, shard: usize) {
        if self.staging[shard].is_empty() {
            return;
        }
        self.plan.batch_sealed(shard);
        let batch =
            std::mem::replace(&mut self.staging[shard], Vec::with_capacity(self.batch_size));
        self.dispatch(shard, batch);
    }

    /// Offer updates to the engine **without blocking**.
    ///
    /// Returns `Poll::Ready(accepted)` with how many updates from the front
    /// of `updates` were accepted (the caller re-offers the rest later), or
    /// `Poll::Pending` when backpressure from the workers prevents accepting
    /// any right now — retry after the workers make progress (or call
    /// [`IngestSession::drain`] from your event loop). `offer(&[])` is a
    /// pure progress poll: it flushes queued batches opportunistically and
    /// returns `Poll::Ready(0)`.
    ///
    /// Accepted updates are copied exactly once (into the staging buffer);
    /// sealed batches are moved to the workers, never cloned.
    pub fn offer(&mut self, updates: &[Update]) -> Poll<usize> {
        self.pump();
        let mut taken = 0;
        for u in updates {
            if self.outbox.len() >= self.outbox_cap() {
                self.pump();
                if self.outbox.len() >= self.outbox_cap() {
                    break;
                }
            }
            let shard = self.plan.route(u);
            debug_assert!(shard < self.staging.len(), "plan routed to nonexistent shard");
            self.staging[shard].push(*u);
            taken += 1;
            if self.staging[shard].len() >= self.batch_size {
                self.seal_shard(shard);
            }
        }
        self.accepted += taken as u64;
        if taken == 0 && !updates.is_empty() {
            Poll::Pending
        } else {
            Poll::Ready(taken)
        }
    }

    /// Flush everything buffered in the session toward the workers without
    /// blocking: seals all partial staging buffers and pumps the outbox.
    /// `Poll::Ready(())` once every accepted update has been handed to a
    /// worker channel (workers may still be ingesting); `Poll::Pending` if
    /// batches remain queued behind full channels — poll again later.
    pub fn drain(&mut self) -> Poll<()> {
        for shard in 0..self.staging.len() {
            self.seal_shard(shard);
        }
        self.pump();
        if self.outbox.is_empty() {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }

    /// Blocking convenience over [`IngestSession::offer`] for callers
    /// without an event loop: ingest the whole slice, applying backpressure
    /// by parking on the oldest queued batch's worker channel (no spin).
    pub fn ingest_blocking(&mut self, updates: &[Update]) {
        let mut rest = updates;
        while !rest.is_empty() {
            match self.offer(rest) {
                Poll::Ready(n) => rest = &rest[n..],
                Poll::Pending => self.block_on_capacity(),
            }
        }
    }

    /// Blocking convenience: ingest a whole stream.
    pub fn ingest_stream_blocking(&mut self, stream: &UpdateStream) {
        self.ingest_blocking(stream.updates());
    }

    /// Send the oldest queued batch with a blocking `send`, waiting for its
    /// worker to free channel capacity. A dead worker's batch is dropped
    /// (panic containment), so this always makes progress.
    fn block_on_capacity(&mut self) {
        if let Some((shard, batch)) = self.outbox.pop_front() {
            if self.workers[shard].sender.send(batch).is_err() {
                self.dead[shard] = true;
            }
        }
    }

    /// Seal every staging buffer and push the whole outbox down to the
    /// workers, blocking on channel capacity as needed.
    fn flush_blocking(&mut self) {
        for shard in 0..self.staging.len() {
            self.seal_shard(shard);
        }
        while !self.outbox.is_empty() {
            self.block_on_capacity();
        }
    }

    /// Close the channels and join the workers: surviving shard states with
    /// their shard indices, plus the indices of shards whose worker
    /// panicked. The panic payloads are swallowed — containment, not
    /// propagation.
    fn join_shards(&mut self) -> (Vec<(usize, T)>, Vec<usize>) {
        let mut survivors = Vec::new();
        let mut panicked = Vec::new();
        for (shard, w) in std::mem::take(&mut self.workers).into_iter().enumerate() {
            drop(w.sender);
            match w.handle.join() {
                Ok(state) => survivors.push((shard, state)),
                Err(_) => panicked.push(shard),
            }
        }
        (survivors, panicked)
    }

    /// End the session: flush every buffered update (blocking as needed —
    /// this call is terminal), join the workers, and recombine the shard
    /// states under the plan's merge (additive tree for round robin,
    /// disjoint union for key ranges) into the sketch of everything
    /// accepted.
    ///
    /// If any worker panicked, returns
    /// [`EngineError::WorkerPanicked`] for the lowest-indexed dead shard
    /// instead of propagating the panic — a merged result that silently
    /// missed a shard's stream would violate the linearity contract. Use
    /// [`IngestSession::checkpoint_surviving`] when the healthy shards'
    /// state must be persisted anyway.
    pub fn seal(mut self) -> Result<T, EngineError> {
        self.flush_blocking();
        let (survivors, panicked) = self.join_shards();
        if let Some(&shard) = panicked.first() {
            return Err(EngineError::WorkerPanicked { shard });
        }
        Ok(self.plan.merge_states(survivors.into_iter().map(|(_, state)| state).collect()))
    }

    /// Stop ingestion and serialize every shard's state **without** merging,
    /// each buffer prefixed with the plan envelope (strategy, tolerance,
    /// shard index/count, owned key range) ahead of the `Persist` payload.
    ///
    /// The stamped plan makes checkpoints self-describing:
    /// [`EngineBuilder::resume`] (and [`crate::merge_checkpointed`]) refuse
    /// buffers taken under a different strategy, so a key-range checkpoint
    /// cannot be silently recombined as round-robin.
    ///
    /// Like [`IngestSession::seal`], reports a panicked worker as
    /// [`EngineError::WorkerPanicked`] rather than checkpointing a stream
    /// with a hole in it; [`IngestSession::checkpoint_surviving`] is the
    /// explicitly-degraded variant.
    pub fn checkpoint(mut self) -> Result<Vec<Vec<u8>>, EngineError>
    where
        T: Persist,
    {
        self.flush_blocking();
        let plan = self.plan.clone();
        let (survivors, panicked) = self.join_shards();
        if let Some(&shard) = panicked.first() {
            return Err(EngineError::WorkerPanicked { shard });
        }
        Ok(survivors
            .into_iter()
            .map(|(shard, state)| {
                let mut out = encode_envelope_header(&plan, shard);
                state.encode_state(&mut out);
                out
            })
            .collect())
    }

    /// Degraded-mode checkpoint: serialize **every surviving shard** behind
    /// its plan envelope (stamped with the shard's true index), and report
    /// which shards' workers panicked. Unlike
    /// [`IngestSession::checkpoint`], this never fails — a fleet that lost
    /// a shard can still persist the healthy ones and re-ingest only the
    /// dead shard's slice of the stream.
    pub fn checkpoint_surviving(mut self) -> (Vec<(usize, Vec<u8>)>, Vec<usize>)
    where
        T: Persist,
    {
        self.flush_blocking();
        let plan = self.plan.clone();
        let (survivors, panicked) = self.join_shards();
        let buffers = survivors
            .into_iter()
            .map(|(shard, state)| {
                let mut out = encode_envelope_header(&plan, shard);
                state.encode_state(&mut out);
                (shard, out)
            })
            .collect();
        (buffers, panicked)
    }
}

impl<T: ShardIngest + 'static, P: ShardPlan + std::fmt::Debug> std::fmt::Debug
    for IngestSession<T, P>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestSession")
            .field("plan", &self.plan)
            .field("shards", &self.workers.len())
            .field("batch_size", &self.batch_size)
            .field("accepted", &self.accepted)
            .field("buffered", &self.buffered())
            .finish()
    }
}

//! Checkpoint / restore / cross-process-merge equivalence for the engine:
//! every path through the plan-aware envelope codec must land on the same
//! bits as single-process sequential ingestion, and a checkpoint taken
//! under one shard plan must never be silently recombined under another.

use lps_core::L0Sampler;
use lps_engine::{
    merge_checkpointed, parallel_ingest, read_envelope, EngineBuilder, KeyRange, PlanStrategy,
    RoundRobin, Tolerance,
};
use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, DecodeError, LinearSketch,
    Mergeable, PStableSketch, Persist, SparseRecovery,
};
use lps_stream::Update;

fn workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
    let mut s = SeedSequence::new(seed);
    (0..len)
        .map(|_| {
            let delta = (s.next_below(9) as i64) - 4;
            Update::new(s.next_below(n), if delta == 0 { 1 } else { delta })
        })
        .collect()
}

#[test]
fn checkpointed_shards_merge_to_the_sequential_digest_under_both_plans() {
    let mut seeds = SeedSequence::new(1);
    let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
    let updates = workload(1 << 12, 5000, 2);
    let mut sequential = proto.clone();
    sequential.process_batch(&updates);

    for shards in [1, 2, 3, 4] {
        let mut session = EngineBuilder::new(&proto).shards(shards).session();
        session.ingest_blocking(&updates);
        let encoded = session.checkpoint().unwrap();
        assert_eq!(encoded.len(), shards);
        let merged: SparseRecovery = merge_checkpointed(&encoded).expect("round-robin merge");
        assert_eq!(
            merged.state_digest(),
            sequential.state_digest(),
            "round-robin digest mismatch at {shards} shards"
        );

        let mut session = EngineBuilder::new(&proto).plan(KeyRange::new(1 << 12, shards)).session();
        session.ingest_blocking(&updates);
        let encoded = session.checkpoint().unwrap();
        let merged: SparseRecovery = merge_checkpointed(&encoded).expect("key-range merge");
        assert_eq!(
            merged.state_digest(),
            sequential.state_digest(),
            "key-range digest mismatch at {shards} shards"
        );
        assert_eq!(merged.recover(), sequential.recover());
    }
}

#[test]
fn resume_continues_exactly_where_the_checkpoint_stopped() {
    let mut seeds = SeedSequence::new(3);
    let proto = CountMinSketch::new(1 << 10, 64, 5, &mut seeds);
    let updates = workload(1 << 10, 6000, 4);
    let (first_half, second_half) = updates.split_at(updates.len() / 2);
    let mut sequential = proto.clone();
    sequential.process_batch(&updates);

    // round robin, through the builder/session checkpoint surface
    let merged = {
        let mut session = EngineBuilder::new(&proto).shards(3).batch_size(128).session();
        session.ingest_blocking(first_half);
        let encoded = session.checkpoint().unwrap();
        let mut resumed: lps_engine::IngestSession<CountMinSketch, RoundRobin> =
            EngineBuilder::new(&proto).shards(3).batch_size(128).resume(&encoded).expect("resume");
        resumed.ingest_blocking(second_half);
        resumed.seal().unwrap()
    };
    assert_eq!(merged.state_digest(), sequential.state_digest());

    // key range, through the builder/session surface
    let plan = KeyRange::new(1 << 10, 3);
    let mut session = EngineBuilder::new(&proto).plan(plan.clone()).batch_size(128).session();
    session.ingest_blocking(first_half);
    let encoded = session.checkpoint().unwrap();
    let mut resumed =
        EngineBuilder::new(&proto).plan(plan).batch_size(128).resume(&encoded).expect("resume");
    resumed.ingest_blocking(second_half);
    assert_eq!(resumed.seal().unwrap().state_digest(), sequential.state_digest());
}

#[test]
fn merge_checkpointed_covers_every_exact_structure() {
    let n = 1 << 10;
    let updates = workload(n, 4000, 5);
    let mut seeds = SeedSequence::new(6);

    macro_rules! check {
        ($proto:expr, $ty:ty, $ingest:expr) => {{
            let proto = $proto;
            let mut sequential = proto.clone();
            let ingest: fn(&mut $ty, &[Update]) = $ingest;
            ingest(&mut sequential, &updates);
            for encoded in [
                {
                    let mut s = EngineBuilder::new(&proto).shards(4).session();
                    s.ingest_blocking(&updates);
                    s.checkpoint().unwrap()
                },
                {
                    let mut s = EngineBuilder::new(&proto).plan(KeyRange::new(n, 4)).session();
                    s.ingest_blocking(&updates);
                    s.checkpoint().unwrap()
                },
            ] {
                let merged: $ty = merge_checkpointed(&encoded).expect("merge");
                assert_eq!(merged.state_digest(), sequential.state_digest());
            }
        }};
    }

    check!(SparseRecovery::new(n, 8, &mut seeds), SparseRecovery, |s, u| s.process_batch(u));
    check!(L0Sampler::new(n, 0.25, &mut seeds), L0Sampler, |s, u| {
        lps_core::LpSampler::process_batch(s, u)
    });
    check!(CountSketch::with_default_rows(n, 8, &mut seeds), CountSketch, |s, u| {
        LinearSketch::process_batch(s, u)
    });
    check!(CountMinSketch::new(n, 64, 5, &mut seeds), CountMinSketch, |s, u| s.process_batch(u));
    check!(CountMedianSketch::new(n, 64, 5, &mut seeds), CountMedianSketch, |s, u| {
        LinearSketch::process_batch(s, u)
    });
    check!(AmsSketch::with_default_shape(n, &mut seeds), AmsSketch, |s, u| {
        LinearSketch::process_batch(s, u)
    });
}

#[test]
fn key_range_checkpoint_cannot_be_resumed_round_robin() {
    let mut seeds = SeedSequence::new(7);
    let proto = SparseRecovery::new(1 << 10, 6, &mut seeds);
    let updates = workload(1 << 10, 2000, 8);

    let mut session = EngineBuilder::new(&proto).plan(KeyRange::new(1 << 10, 3)).session();
    session.ingest_blocking(&updates);
    let encoded = session.checkpoint().unwrap();

    // the envelope stamps the producing strategy…
    let (envelope, _) = read_envelope(&encoded[0]).expect("read envelope");
    assert_eq!(envelope.strategy, PlanStrategy::KeyRange);
    assert_eq!(envelope.tolerance, Tolerance::Exact);
    assert_eq!(envelope.shard_count, 3);
    assert!(envelope.range.is_some());

    // …so a round-robin resume is rejected as typed, not absorbed
    let err = EngineBuilder::<SparseRecovery, _>::new(&proto)
        .shards(3)
        .resume(&encoded)
        .expect_err("key-range checkpoint must not resume round-robin");
    assert_eq!(err, DecodeError::PlanMismatch { expected: "round_robin", found: "key_range" });

    // and the right plan accepts it
    let resumed = EngineBuilder::new(&proto)
        .plan(KeyRange::new(1 << 10, 3))
        .resume(&encoded)
        .expect("matching plan resumes");
    let _ = resumed.seal().unwrap();
}

#[test]
fn approximate_checkpoint_cannot_be_resumed_under_an_exact_plan() {
    let mut seeds = SeedSequence::new(11);
    let proto = PStableSketch::with_default_rows(1 << 10, 1.0, &mut seeds);
    let updates = workload(1 << 10, 2000, 12);

    let mut session = EngineBuilder::new(&proto).plan(RoundRobin::approximate(2)).session();
    session.ingest_blocking(&updates);
    let encoded = session.checkpoint().unwrap();
    let (envelope, _) = read_envelope(&encoded[0]).expect("read envelope");
    assert_eq!(envelope.tolerance, Tolerance::Approximate);

    // a default (exact) resume would panic at session spawn for a float
    // structure — the envelope's tolerance marker rejects it as typed first
    let err = EngineBuilder::<PStableSketch, _>::new(&proto)
        .shards(2)
        .resume(&encoded)
        .expect_err("approximate checkpoint must not resume under an exact plan");
    assert_eq!(
        err,
        DecodeError::PlanMismatch { expected: "exact tolerance", found: "approximate tolerance" }
    );

    // the explicit opt-in plan resumes fine
    let resumed = EngineBuilder::new(&proto)
        .plan(RoundRobin::approximate(2))
        .resume(&encoded)
        .expect("matching tolerance resumes");
    let _ = resumed.seal().unwrap();
}

#[test]
fn resume_rejects_disagreeing_key_ranges_and_mixed_strategies() {
    let mut seeds = SeedSequence::new(9);
    let proto = SparseRecovery::new(1 << 10, 6, &mut seeds);
    let updates = workload(1 << 10, 2000, 10);

    let mut session = EngineBuilder::new(&proto).plan(KeyRange::new(1 << 10, 2)).session();
    session.ingest_blocking(&updates);
    let encoded = session.checkpoint().unwrap();

    // same strategy, different boundaries: rejected before decoding counters
    let err = EngineBuilder::<SparseRecovery, _>::new(&proto)
        .plan(KeyRange::with_bounds(vec![0, 17, 1 << 10]))
        .resume(&encoded)
        .expect_err("boundary disagreement must be rejected");
    assert!(matches!(err, DecodeError::Corrupt { .. }));

    // mixing strategies inside one checkpoint set: rejected by the merge
    let mut rr = EngineBuilder::new(&proto).shards(2).session();
    rr.ingest_blocking(&updates);
    let rr_encoded = rr.checkpoint().unwrap();
    let mixed = vec![encoded[0].clone(), rr_encoded[1].clone()];
    let err = merge_checkpointed::<SparseRecovery>(&mixed)
        .expect_err("mixed strategies must be rejected");
    assert!(matches!(err, DecodeError::PlanMismatch { .. }));
}

#[test]
fn merge_checkpointed_rejects_mismatched_seeds_and_bare_buffers() {
    let updates = workload(512, 1000, 7);
    let mut s1 = SeedSequence::new(8);
    let mut s2 = SeedSequence::new(9); // different master seed
    let mk = |seeds: &mut SeedSequence| {
        let proto = SparseRecovery::new(512, 4, seeds);
        let mut session = EngineBuilder::new(&proto).shards(1).session();
        session.ingest_blocking(&updates);
        session.checkpoint().unwrap().remove(0)
    };
    let a = mk(&mut s1);
    let b = mk(&mut s2);
    // hand-build a two-shard set out of two singleton checkpoints: fix the
    // stamped shard counts so the seed comparison is what gets exercised
    let restamp = |mut buf: Vec<u8>, shard: u16, count: u16| {
        buf[8..10].copy_from_slice(&shard.to_le_bytes());
        buf[10..12].copy_from_slice(&count.to_le_bytes());
        buf
    };
    let err = merge_checkpointed::<SparseRecovery>(&[restamp(a.clone(), 0, 2), restamp(b, 1, 2)])
        .expect_err("differently-seeded shards must be rejected");
    assert_eq!(err, DecodeError::SeedMismatch { shard: 1 });

    // bare Persist buffers (no envelope) are refused by the checkpoint path
    let mut seeds = SeedSequence::new(10);
    let bare = SparseRecovery::new(512, 4, &mut seeds).encode_to_vec();
    assert!(matches!(
        merge_checkpointed::<SparseRecovery>(&[bare]),
        Err(DecodeError::BadMagic { .. })
    ));
    assert!(matches!(merge_checkpointed::<SparseRecovery>(&[]), Err(DecodeError::Corrupt { .. })));
}

#[test]
fn merge_encoded_still_covers_bare_persist_buffers() {
    // the bare-Persist primitive keeps working for states serialized
    // outside the engine
    let mut seeds = SeedSequence::new(11);
    let proto = L0Sampler::new(1 << 10, 0.25, &mut seeds);
    let updates = workload(1 << 10, 3000, 12);
    let mut sequential = proto.clone();
    lps_core::LpSampler::process_batch(&mut sequential, &updates);

    let (left, right) = updates.split_at(updates.len() / 2);
    let mut a = proto.clone();
    lps_core::LpSampler::process_batch(&mut a, left);
    let mut b = proto.clone();
    lps_core::LpSampler::process_batch(&mut b, right);
    let merged: L0Sampler =
        lps_engine::merge_encoded(&[a.encode_to_vec(), b.encode_to_vec()]).expect("bare merge");
    assert_eq!(merged.state_digest(), sequential.state_digest());
}

#[test]
fn merge_checkpointed_agrees_with_in_process_seal() {
    // the two merge paths (session seal vs checkpoint→merge_checkpointed)
    // must be bit-identical, since they share the same deterministic tree
    let mut seeds = SeedSequence::new(13);
    let proto = L0Sampler::new(1 << 10, 0.25, &mut seeds);
    let updates = workload(1 << 10, 3000, 14);

    let in_process = parallel_ingest(&proto, &updates, 4);

    let mut session = EngineBuilder::new(&proto).shards(4).session();
    session.ingest_blocking(&updates);
    let cross: L0Sampler = merge_checkpointed(&session.checkpoint().unwrap()).unwrap();

    assert_eq!(in_process.state_digest(), cross.state_digest());
}

//! Checkpoint / restore / cross-process-merge equivalence for the sharded
//! engine: every path through the codec must land on the same bits as
//! single-process sequential ingestion.

use lps_core::L0Sampler;
use lps_engine::{merge_encoded, parallel_ingest, ShardedEngine};
use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, DecodeError, LinearSketch,
    Mergeable, Persist, SparseRecovery,
};
use lps_stream::Update;

fn workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
    let mut s = SeedSequence::new(seed);
    (0..len)
        .map(|_| {
            let delta = (s.next_below(9) as i64) - 4;
            Update::new(s.next_below(n), if delta == 0 { 1 } else { delta })
        })
        .collect()
}

#[test]
fn checkpointed_shards_merge_to_the_sequential_digest() {
    let mut seeds = SeedSequence::new(1);
    let proto = SparseRecovery::new(1 << 12, 8, &mut seeds);
    let updates = workload(1 << 12, 5000, 2);
    let mut sequential = proto.clone();
    sequential.process_batch(&updates);

    for shards in [1, 2, 3, 4] {
        let mut engine = ShardedEngine::new(&proto, shards);
        engine.ingest(&updates);
        let encoded = engine.checkpoint_shards();
        assert_eq!(encoded.len(), shards);
        let merged: SparseRecovery = merge_encoded(&encoded).expect("cross-process merge");
        assert_eq!(
            merged.state_digest(),
            sequential.state_digest(),
            "digest mismatch at {shards} shards"
        );
        assert_eq!(merged.recover(), sequential.recover());
    }
}

#[test]
fn resume_from_continues_exactly_where_the_checkpoint_stopped() {
    let mut seeds = SeedSequence::new(3);
    let proto = CountMinSketch::new(1 << 10, 64, 5, &mut seeds);
    let updates = workload(1 << 10, 6000, 4);
    let (first_half, second_half) = updates.split_at(updates.len() / 2);

    // ingest half, checkpoint, resume in a "new" engine, ingest the rest
    let mut engine = ShardedEngine::with_batch_size(&proto, 3, 128);
    engine.ingest(first_half);
    let encoded = engine.checkpoint_shards();
    let mut resumed: ShardedEngine<CountMinSketch> =
        ShardedEngine::resume_from(&encoded, 128).expect("resume");
    assert_eq!(resumed.shards(), 3);
    resumed.ingest(second_half);
    let merged = resumed.finish();

    let mut sequential = proto.clone();
    sequential.process_batch(&updates);
    assert_eq!(merged.state_digest(), sequential.state_digest());
}

#[test]
fn merge_encoded_covers_every_exact_structure() {
    let n = 1 << 10;
    let updates = workload(n, 4000, 5);
    let mut seeds = SeedSequence::new(6);

    macro_rules! check {
        ($proto:expr, $ty:ty, $ingest:expr) => {{
            let proto = $proto;
            let mut sequential = proto.clone();
            let ingest: fn(&mut $ty, &[Update]) = $ingest;
            ingest(&mut sequential, &updates);
            let mut engine = ShardedEngine::new(&proto, 4);
            engine.ingest(&updates);
            let merged: $ty = merge_encoded(&engine.checkpoint_shards()).expect("merge");
            assert_eq!(merged.state_digest(), sequential.state_digest());
        }};
    }

    check!(SparseRecovery::new(n, 8, &mut seeds), SparseRecovery, |s, u| s.process_batch(u));
    check!(L0Sampler::new(n, 0.25, &mut seeds), L0Sampler, |s, u| {
        lps_core::LpSampler::process_batch(s, u)
    });
    check!(CountSketch::with_default_rows(n, 8, &mut seeds), CountSketch, |s, u| {
        LinearSketch::process_batch(s, u)
    });
    check!(CountMinSketch::new(n, 64, 5, &mut seeds), CountMinSketch, |s, u| s.process_batch(u));
    check!(CountMedianSketch::new(n, 64, 5, &mut seeds), CountMedianSketch, |s, u| {
        LinearSketch::process_batch(s, u)
    });
    check!(AmsSketch::with_default_shape(n, &mut seeds), AmsSketch, |s, u| {
        LinearSketch::process_batch(s, u)
    });
}

#[test]
fn merge_encoded_rejects_mismatched_seeds() {
    let updates = workload(512, 1000, 7);
    let mut s1 = SeedSequence::new(8);
    let mut s2 = SeedSequence::new(9); // different master seed
    let a = {
        let mut sk = SparseRecovery::new(512, 4, &mut s1);
        sk.process_batch(&updates);
        sk
    };
    let b = {
        let mut sk = SparseRecovery::new(512, 4, &mut s2);
        sk.process_batch(&updates);
        sk
    };
    let err = merge_encoded::<SparseRecovery>(&[a.encode_to_vec(), b.encode_to_vec()])
        .expect_err("differently-seeded shards must be rejected");
    assert_eq!(err, DecodeError::SeedMismatch { shard: 1 });
}

#[test]
fn merge_encoded_rejects_mixed_structures_and_empty_input() {
    let mut seeds = SeedSequence::new(10);
    let a = SparseRecovery::new(256, 4, &mut seeds);
    let b = CountMinSketch::new(256, 16, 3, &mut seeds);
    let err = merge_encoded::<SparseRecovery>(&[a.encode_to_vec(), b.encode_to_vec()])
        .expect_err("mixed structure tags must be rejected");
    assert!(matches!(err, DecodeError::WrongStructure { .. }));
    // the wrong file in the *reference* slot must also be named as a
    // structure mismatch, not blamed on shard 1 as a seed mismatch
    let err = merge_encoded::<SparseRecovery>(&[b.encode_to_vec(), a.encode_to_vec()])
        .expect_err("wrong structure at shard 0 must be rejected");
    assert!(matches!(err, DecodeError::WrongStructure { .. }));
    assert!(matches!(merge_encoded::<SparseRecovery>(&[]), Err(DecodeError::Corrupt { .. })));
}

#[test]
fn merge_encoded_agrees_with_in_process_finish() {
    // the two merge paths (engine finish vs encode→merge_encoded) must be
    // bit-identical, since they share the same deterministic tree merge
    let mut seeds = SeedSequence::new(11);
    let proto = L0Sampler::new(1 << 10, 0.25, &mut seeds);
    let updates = workload(1 << 10, 3000, 12);

    let in_process = parallel_ingest(&proto, &updates, 4);

    let mut engine = ShardedEngine::new(&proto, 4);
    engine.ingest(&updates);
    let cross: L0Sampler = merge_encoded(&engine.checkpoint_shards()).unwrap();

    assert_eq!(in_process.state_digest(), cross.state_digest());
}

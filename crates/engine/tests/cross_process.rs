//! A genuine cross-OS-process test of the persistence layer: the parent
//! test re-executes its own test binary as a **child process** that ingests
//! shards and writes their encoded states to disk; the parent then reads the
//! files, merges them with [`merge_checkpointed`] (under the shard plan
//! stamped in each envelope — one structure travels as a key-range
//! checkpoint, the other as round robin), and digest-compares against
//! sequential ingestion computed independently on its side.
//!
//! Both processes derive the workload and seeds from fixed constants, so the
//! only state crossing the boundary is the shard files — exactly the
//! contract of a distributed deployment. (CI additionally runs the
//! `experiments -- checkpoint` pipeline, which does the same through the
//! public CLI.)

use lps_core::{L0Sampler, LpSampler};
use lps_engine::{merge_checkpointed, EngineBuilder, KeyRange};
use lps_hash::SeedSequence;
use lps_sketch::{Mergeable, SparseRecovery};
use lps_stream::Update;

const DIMENSION: u64 = 1 << 12;
const UPDATES: usize = 8000;
const WORKLOAD_SEED: u64 = 0xAB5E;
const STRUCTURE_SEED: u64 = 0x51DE;
const SHARDS: usize = 3;
/// Environment variable carrying the shard-file directory to the child.
const DIR_VAR: &str = "LPS_CROSS_PROCESS_DIR";

fn workload() -> Vec<Update> {
    let mut s = SeedSequence::new(WORKLOAD_SEED);
    (0..UPDATES)
        .map(|_| {
            let delta = (s.next_below(9) as i64) - 4;
            Update::new(s.next_below(DIMENSION), if delta == 0 { 1 } else { delta })
        })
        .collect()
}

fn prototypes() -> (SparseRecovery, L0Sampler) {
    let mut seeds = SeedSequence::new(STRUCTURE_SEED);
    (SparseRecovery::new(DIMENSION, 8, &mut seeds), L0Sampler::new(DIMENSION, 0.25, &mut seeds))
}

/// Child-process half: when the directory variable is set, shard-ingest the
/// workload and write the encoded shard states. When run as a normal test
/// (variable absent) this is a no-op, so plain `cargo test` stays green.
#[test]
fn child_writes_shard_files() {
    let Ok(dir) = std::env::var(DIR_VAR) else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create shard dir");
    let updates = workload();
    let (sparse, l0) = prototypes();

    // the sparse-recovery shards travel as a key-range checkpoint, the L0
    // shards as round robin: both plan envelopes cross the process boundary
    let mut session = EngineBuilder::new(&sparse).plan(KeyRange::new(DIMENSION, SHARDS)).session();
    session.ingest_blocking(&updates);
    for (i, buf) in session.checkpoint().unwrap().iter().enumerate() {
        std::fs::write(dir.join(format!("sparse.shard-{i}.lps")), buf).expect("write shard");
    }
    let mut session = EngineBuilder::new(&l0).shards(SHARDS).session();
    session.ingest_blocking(&updates);
    for (i, buf) in session.checkpoint().unwrap().iter().enumerate() {
        std::fs::write(dir.join(format!("l0.shard-{i}.lps")), buf).expect("write shard");
    }
}

/// Parent-process half: spawn the child, read its shard files, merge across
/// the process boundary, and compare digests with sequential ingestion.
#[test]
fn merging_shards_from_another_process_reproduces_sequential_digests() {
    if std::env::var(DIR_VAR).is_ok() {
        // we *are* the child; only child_writes_shard_files should do work
        return;
    }
    let dir = std::env::temp_dir().join(format!("lps-cross-process-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let status = std::process::Command::new(std::env::current_exe().expect("test binary path"))
        .args(["--exact", "child_writes_shard_files", "--nocapture"])
        .env(DIR_VAR, &dir)
        .status()
        .expect("spawn child test process");
    assert!(status.success(), "child shard-writer process failed");

    let read_shards = |prefix: &str| -> Vec<Vec<u8>> {
        (0..SHARDS)
            .map(|i| {
                std::fs::read(dir.join(format!("{prefix}.shard-{i}.lps")))
                    .expect("read shard file written by the child process")
            })
            .collect()
    };

    let updates = workload();
    let (sparse_proto, l0_proto) = prototypes();

    let merged: SparseRecovery = merge_checkpointed(&read_shards("sparse")).expect("merge sparse");
    let mut sequential = sparse_proto.clone();
    sequential.process_batch(&updates);
    assert_eq!(merged.state_digest(), sequential.state_digest(), "sparse recovery digest");
    assert_eq!(merged.recover(), sequential.recover());

    let merged: L0Sampler = merge_checkpointed(&read_shards("l0")).expect("merge l0");
    let mut sequential = l0_proto.clone();
    sequential.process_batch(&updates);
    assert_eq!(merged.state_digest(), sequential.state_digest(), "l0 sampler digest");
    assert_eq!(merged.sample(), sequential.sample());

    std::fs::remove_dir_all(&dir).ok();
}

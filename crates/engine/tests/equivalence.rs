//! Parallel-vs-sequential equivalence, pinned at the bit level for every
//! exact-arithmetic structure the engine supports, under **both** shard
//! plans: for any update stream and any shard count, sharded ingestion
//! followed by the plan's recombination must reproduce the sequential state
//! digest exactly — round robin through the additive tree merge, key range
//! through the disjoint union. This three-way identity (sequential ==
//! round-robin == key-range) is the contract that makes the partitioning
//! strategy a pure performance choice: it changes wall-clock time and cache
//! behavior and nothing else.

use lps_core::{FisL0Sampler, L0Sampler, LpSampler};
use lps_engine::{parallel_ingest, EngineBuilder, KeyRange, ShardIngest};
use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, Mergeable,
    SparseRecovery,
};
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 512;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -30i64..30), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

/// Sequential ingestion state vs session state under both plans at `shards`
/// shards, bit-compared through the state digest.
fn assert_plans_equal_sequential<T, F>(
    proto: &T,
    sequential_ingest: F,
    ups: &[Update],
    shards: usize,
) where
    T: ShardIngest + 'static,
    F: FnOnce(&mut T, &[Update]),
{
    let mut sequential = proto.clone();
    sequential_ingest(&mut sequential, ups);

    // ragged dispatch batch size exercises uneven shard loads
    let mut round_robin = EngineBuilder::new(proto).shards(shards).batch_size(37).session();
    round_robin.ingest_blocking(ups);
    let round_robin = round_robin.seal().unwrap();
    assert_eq!(
        round_robin.state_digest(),
        sequential.state_digest(),
        "round-robin state diverged from sequential at {shards} shards"
    );

    let mut key_range =
        EngineBuilder::new(proto).plan(KeyRange::new(DIM, shards)).batch_size(37).session();
    key_range.ingest_blocking(ups);
    let key_range = key_range.seal().unwrap();
    assert_eq!(
        key_range.state_digest(),
        sequential.state_digest(),
        "key-range state diverged from sequential at {shards} shards"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_recovery_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 6, &mut seeds);
        assert_plans_equal_sequential(&proto, |s, u| s.process_batch(u), &to_updates(&ups), shards);
    }

    #[test]
    fn l0_sampler_equivalence(ups in updates_strategy(150), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = L0Sampler::new(DIM, 0.25, &mut seeds);
        assert_plans_equal_sequential(&proto, LpSampler::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn fis_l0_equivalence(ups in updates_strategy(100), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = FisL0Sampler::new(DIM, &mut seeds);
        assert_plans_equal_sequential(&proto, LpSampler::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn count_sketch_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 4, 5, &mut seeds);
        assert_plans_equal_sequential(&proto, LinearSketch::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn count_min_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinSketch::new(DIM, 32, 5, &mut seeds);
        assert_plans_equal_sequential(&proto, |s, u| s.process_batch(u), &to_updates(&ups), shards);
    }

    #[test]
    fn count_median_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMedianSketch::new(DIM, 32, 5, &mut seeds);
        assert_plans_equal_sequential(&proto, LinearSketch::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn ams_equivalence(ups in updates_strategy(150), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AmsSketch::new(DIM, 5, 4, &mut seeds);
        assert_plans_equal_sequential(&proto, LinearSketch::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn decoded_output_survives_sharding(ups in updates_strategy(40), shards in 2usize..6, seed in any::<u64>()) {
        // beyond state bits: the decoded answers agree too, under both plans
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 24, &mut seeds);
        let updates = to_updates(&ups);
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        let merged = parallel_ingest(&proto, &updates, shards);
        prop_assert_eq!(merged.recover(), sequential.recover());
        let mut session = EngineBuilder::new(&proto).plan(KeyRange::new(DIM, shards)).session();
        session.ingest_blocking(&updates);
        prop_assert_eq!(session.seal().unwrap().recover(), sequential.recover());
    }

    #[test]
    fn skewed_key_ranges_still_recombine_exactly(ups in updates_strategy(120), seed in any::<u64>()) {
        // deliberately unbalanced explicit boundaries: correctness must be
        // independent of how well the partition matches the key skew
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 6, &mut seeds);
        let updates = to_updates(&ups);
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        let plan = KeyRange::with_bounds(vec![0, 3, 17, DIM]);
        let mut session = EngineBuilder::new(&proto).plan(plan).batch_size(23).session();
        session.ingest_blocking(&updates);
        prop_assert_eq!(session.seal().unwrap().state_digest(), sequential.state_digest());
    }
}

//! Parallel-vs-sequential equivalence, pinned at the bit level for every
//! structure the engine supports: for any update stream and any shard
//! count, sharded ingestion followed by the tree merge must reproduce the
//! sequential state digest exactly. This is the contract that makes the
//! engine safe to deploy — parallelism changes wall-clock time and nothing
//! else.

use lps_core::{FisL0Sampler, L0Sampler, LpSampler};
use lps_engine::{parallel_ingest, ShardIngest, ShardedEngine};
use lps_hash::SeedSequence;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, LinearSketch, SparseRecovery,
};
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 512;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -30i64..30), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

/// Sequential ingestion state vs engine state at `shards` shards,
/// bit-compared through the state digest.
fn assert_parallel_equals_sequential<T, F>(
    proto: &T,
    sequential_ingest: F,
    ups: &[Update],
    shards: usize,
) where
    T: ShardIngest + 'static,
    F: FnOnce(&mut T, &[Update]),
{
    let mut sequential = proto.clone();
    sequential_ingest(&mut sequential, ups);
    // ragged dispatch batch size exercises uneven shard loads
    let mut engine = ShardedEngine::with_batch_size(proto, shards, 37);
    engine.ingest(ups);
    let merged = engine.finish();
    assert_eq!(
        merged.state_digest(),
        sequential.state_digest(),
        "parallel state diverged from sequential at {shards} shards"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_recovery_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 6, &mut seeds);
        assert_parallel_equals_sequential(&proto, |s, u| s.process_batch(u), &to_updates(&ups), shards);
    }

    #[test]
    fn l0_sampler_equivalence(ups in updates_strategy(150), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = L0Sampler::new(DIM, 0.25, &mut seeds);
        assert_parallel_equals_sequential(&proto, LpSampler::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn fis_l0_equivalence(ups in updates_strategy(100), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = FisL0Sampler::new(DIM, &mut seeds);
        assert_parallel_equals_sequential(&proto, LpSampler::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn count_sketch_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 4, 5, &mut seeds);
        assert_parallel_equals_sequential(&proto, LinearSketch::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn count_min_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinSketch::new(DIM, 32, 5, &mut seeds);
        assert_parallel_equals_sequential(&proto, |s, u| s.process_batch(u), &to_updates(&ups), shards);
    }

    #[test]
    fn count_median_equivalence(ups in updates_strategy(200), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMedianSketch::new(DIM, 32, 5, &mut seeds);
        assert_parallel_equals_sequential(&proto, LinearSketch::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn ams_equivalence(ups in updates_strategy(150), shards in 1usize..6, seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AmsSketch::new(DIM, 5, 4, &mut seeds);
        assert_parallel_equals_sequential(&proto, LinearSketch::process_batch, &to_updates(&ups), shards);
    }

    #[test]
    fn decoded_output_survives_sharding(ups in updates_strategy(40), shards in 2usize..6, seed in any::<u64>()) {
        // beyond state bits: the decoded answers agree too
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 24, &mut seeds);
        let updates = to_updates(&ups);
        let mut sequential = proto.clone();
        sequential.process_batch(&updates);
        let merged = parallel_ingest(&proto, &updates, shards);
        prop_assert_eq!(merged.recover(), sequential.recover());
    }
}

//! Estimator-level bounds for the newly shardable float structures.
//!
//! The p-stable sketch, the precision/AKO samplers and both heavy-hitter
//! drivers hold dense `f64` counters, so sharding them reassociates
//! floating-point sums: the merged state is *not* bit-identical to
//! sequential ingestion (which is why they sit behind
//! `Tolerance::Approximate`). What linearity still guarantees — and what
//! these tests pin — is estimator-level agreement: each merged counter
//! differs from its sequential value by at most `~2kε` relative (`k` =
//! shard count, `ε = 2⁻⁵³`; Kahan compensation keeps the within-shard sums
//! exact to `O(ε)`), so estimates land within a tiny relative
//! tolerance of the sequential ones and threshold decisions with any margin
//! (heavy-hitter reports) are unchanged. The bounds asserted here (1e-9)
//! are ~6 orders of magnitude above the drift observed in
//! `tests/float_drift.rs`, and ~7 below any estimator's accuracy guarantee.
//!
//! Everything is deterministic (fixed seeds, fixed workload, fixed shard
//! count, fixed tree-merge association), so these are regression pins, not
//! flaky statistical tests.

use lps_core::{AkoSampler, LpSampler, PrecisionLpSampler};
use lps_engine::{partitioned_ingest, EngineBuilder, KeyRange, RoundRobin};
use lps_hash::SeedSequence;
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_sketch::{LinearSketch, PStableSketch};
use lps_stream::Update;

const DIM: u64 = 1 << 12;
const REL_TOL: f64 = 1e-9;

/// A mixed workload with a few strong heavy hitters (indices 3, 700, 2900)
/// so threshold decisions have a wide margin.
fn workload(len: usize, seed: u64) -> Vec<Update> {
    let mut s = SeedSequence::new(seed);
    (0..len)
        .map(|i| {
            if i % 5 == 0 {
                Update::new([3, 700, 2900][i % 3], 25)
            } else {
                let delta = (s.next_below(9) as i64) - 4;
                Update::new(s.next_below(DIM), if delta == 0 { 1 } else { delta })
            }
        })
        .collect()
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

fn plans(shards: usize) -> (RoundRobin, KeyRange) {
    (RoundRobin::approximate(shards), KeyRange::approximate(DIM, shards))
}

#[test]
fn pstable_estimate_drift_is_bounded_under_both_plans() {
    let mut seeds = SeedSequence::new(1);
    let proto = PStableSketch::with_default_rows(DIM, 1.0, &mut seeds);
    let ups = workload(20_000, 2);
    let mut sequential = proto.clone();
    LinearSketch::process_batch(&mut sequential, &ups);

    let (rr, kr) = plans(4);
    for (name, merged) in [
        ("round_robin", partitioned_ingest(&proto, &ups, rr)),
        ("key_range", partitioned_ingest(&proto, &ups, kr)),
    ] {
        assert!(
            rel_close(merged.estimate(), sequential.estimate(), REL_TOL),
            "{name}: sharded estimate {} drifted from sequential {}",
            merged.estimate(),
            sequential.estimate()
        );
    }
}

#[test]
fn precision_sampler_recovery_drift_is_bounded() {
    let mut seeds = SeedSequence::new(3);
    let proto = PrecisionLpSampler::new(DIM, 1.0, 0.25, &mut seeds);
    let ups = workload(8_000, 4);
    let mut sequential = proto.clone();
    LpSampler::process_batch(&mut sequential, &ups);

    let (rr, kr) = plans(4);
    for (name, merged) in [
        ("round_robin", partitioned_ingest(&proto, &ups, rr)),
        ("key_range", partitioned_ingest(&proto, &ups, kr)),
    ] {
        let (s, m) = (sequential.recovery_state(), merged.recovery_state());
        assert_eq!(s.best_index, m.best_index, "{name}: recovered index flipped");
        assert!(
            rel_close(s.best_zstar, m.best_zstar, REL_TOL),
            "{name}: z* {} drifted from sequential {}",
            m.best_zstar,
            s.best_zstar
        );
        assert!(rel_close(s.r, m.r, REL_TOL), "{name}: norm estimate drifted");
        assert!(rel_close(s.s, m.s, REL_TOL), "{name}: tail estimate drifted");
    }
}

#[test]
fn ako_sampler_sample_survives_sharding() {
    let mut seeds = SeedSequence::new(5);
    let proto = AkoSampler::new(DIM, 1.0, 0.25, &mut seeds);
    let ups = workload(8_000, 6);
    let mut sequential = proto.clone();
    LpSampler::process_batch(&mut sequential, &ups);

    let (rr, kr) = plans(4);
    for (name, merged) in [
        ("round_robin", partitioned_ingest(&proto, &ups, rr)),
        ("key_range", partitioned_ingest(&proto, &ups, kr)),
    ] {
        let (s, m) = (sequential.sample(), merged.sample());
        match (s, m) {
            (None, None) => {}
            (Some(s), Some(m)) => {
                assert_eq!(s.index, m.index, "{name}: sampled index flipped");
                assert!(
                    rel_close(s.estimate, m.estimate, REL_TOL),
                    "{name}: sampled estimate drifted"
                );
            }
            (s, m) => panic!("{name}: sample presence flipped ({s:?} vs {m:?})"),
        }
    }
}

#[test]
fn heavy_hitter_reports_are_unchanged_by_sharding() {
    let ups = workload(12_000, 8);

    let mut seeds = SeedSequence::new(9);
    let proto = CountSketchHeavyHitters::new(DIM, 1.0, 0.125, &mut seeds);
    let mut sequential = proto.clone();
    sequential.process_batch(&ups);
    let (rr, kr) = plans(4);
    assert_eq!(partitioned_ingest(&proto, &ups, rr).report(), sequential.report());
    assert_eq!(partitioned_ingest(&proto, &ups, kr).report(), sequential.report());

    let mut seeds = SeedSequence::new(10);
    let proto = CountMinHeavyHitters::new(DIM, 0.125, &mut seeds);
    let mut sequential = proto.clone();
    sequential.process_batch(&ups);
    let (rr, kr) = plans(4);
    assert_eq!(partitioned_ingest(&proto, &ups, rr).report(), sequential.report());
    assert_eq!(partitioned_ingest(&proto, &ups, kr).report(), sequential.report());
}

#[test]
fn exact_plan_shard_counts_are_free_for_float_structures_too() {
    // shard-count sweep: the drift bound holds at any width
    let mut seeds = SeedSequence::new(11);
    let proto = PStableSketch::with_default_rows(DIM, 1.5, &mut seeds);
    let ups = workload(10_000, 12);
    let mut sequential = proto.clone();
    LinearSketch::process_batch(&mut sequential, &ups);
    for shards in [1, 2, 3, 8] {
        let mut session =
            EngineBuilder::new(&proto).plan(RoundRobin::approximate(shards)).session();
        assert_eq!(session.shards(), shards);
        session.ingest_blocking(&ups);
        let merged = session.seal().unwrap();
        assert!(
            rel_close(merged.estimate(), sequential.estimate(), REL_TOL),
            "drift exceeded bound at {shards} shards"
        );
    }
}

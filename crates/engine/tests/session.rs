//! Behavior of the sans-io [`IngestSession`]: the non-blocking
//! `offer`/`drain` contract (backpressure surfaces as `Poll::Pending`, never
//! as a blocked dispatcher), exactness across partial acceptance, per-shard
//! stream-order preservation, the approximate-tolerance gate for float
//! structures, and digest-compatibility between the poll-driven and
//! blocking driving styles.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::Poll;

use lps_engine::{
    EngineBuilder, IngestSession, KeyRange, RoundRobin, ShardIngest, ShardPlan, Tolerance,
};
use lps_hash::SeedSequence;
use lps_sketch::{Mergeable, PStableSketch, SparseRecovery, StateDigest};
use lps_stream::Update;

/// A test structure whose ingestion can be *blocked from the outside*: while
/// the shared gate is closed, any worker entering `ingest_batch` parks on the
/// condvar. This lets the tests create real, deterministic backpressure —
/// workers stalled, channels full — and observe that `offer` reports
/// `Poll::Pending` instead of blocking the caller (the old dispatch loop
/// would sit in a blocking `send` here, holding an already-cloned batch).
#[derive(Clone)]
struct GatedSketch {
    gate: Arc<(Mutex<bool>, Condvar)>,
    /// Set the first time a worker had to park on the closed gate.
    stalled: Arc<AtomicBool>,
    /// Per-shard state: deltas in arrival order (merge = concatenation).
    seen: Vec<i64>,
}

impl GatedSketch {
    fn new() -> Self {
        GatedSketch {
            gate: Arc::new((Mutex::new(false), Condvar::new())),
            stalled: Arc::new(AtomicBool::new(false)),
            seen: Vec::new(),
        }
    }

    fn open_gate(&self) {
        let (lock, cvar) = &*self.gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
}

impl Mergeable for GatedSketch {
    fn merge_from(&mut self, other: &Self) {
        self.seen.extend_from_slice(&other.seen);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.seen {
            d.write_i64(v);
        }
        d.finish()
    }
}

impl ShardIngest for GatedSketch {
    fn ingest_batch(&mut self, updates: &[Update]) {
        let (lock, cvar) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            self.stalled.store(true, Ordering::SeqCst);
            open = cvar.wait(open).unwrap();
        }
        drop(open);
        self.seen.extend(updates.iter().map(|u| u.delta));
    }
}

fn updates(n: usize) -> Vec<Update> {
    (0..n).map(|i| Update::new((i % 64) as u64, i as i64 + 1)).collect()
}

/// The heart of the backpressure satellite fix: with every worker stalled,
/// `offer` must keep returning (`Ready` while buffers fill, then `Pending`)
/// instead of blocking — and once the gate opens, every accepted update must
/// be ingested exactly once.
#[test]
fn offer_reports_pending_under_backpressure_instead_of_blocking() {
    let proto = GatedSketch::new();
    let mut session = EngineBuilder::new(&proto).shards(2).batch_size(8).session();
    let ups = updates(4000);

    // Prime the pipeline with a few batches and wait until a worker is
    // provably parked on the closed gate, so the backpressure observed
    // below is real worker stall, not scheduling noise.
    let mut accepted = match session.offer(&ups[..32]) {
        Poll::Ready(n) => n,
        Poll::Pending => unreachable!("empty buffers accept the first batches"),
    };
    while !proto.stalled.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }

    let mut saw_pending = false;
    // If offer ever blocked, this loop would deadlock with the gate closed
    // and the test would hang; bounded buffers guarantee Pending instead.
    for _ in 0..10_000 {
        match session.offer(&ups[accepted..]) {
            Poll::Ready(n) => accepted += n,
            Poll::Pending => {
                saw_pending = true;
                break;
            }
        }
        if accepted == ups.len() {
            break;
        }
    }
    assert!(saw_pending, "a stalled worker must eventually surface as Poll::Pending");
    assert!(accepted < ups.len(), "bounded buffers cannot absorb the whole stream");
    assert!(accepted > 0, "some updates must be accepted before backpressure");
    assert_eq!(session.accepted() as usize, accepted);

    // Unblock the workers; the blocking conveniences finish the stream.
    proto.open_gate();
    session.ingest_blocking(&ups[accepted..]);
    let merged = session.seal().unwrap();

    // exactly-once: the union of all shards saw every delta exactly once
    let mut got: Vec<i64> = merged.seen.clone();
    got.sort_unstable();
    let mut want: Vec<i64> = ups.iter().map(|u| u.delta).collect();
    want.sort_unstable();
    assert_eq!(got, want, "updates were lost or duplicated under backpressure");
    assert!(proto.stalled.load(Ordering::SeqCst), "the gate did stall the workers");
}

/// Per-shard stream order must survive the outbox (batches for a stalled
/// shard may not be overtaken by later batches for the same shard).
#[test]
fn per_shard_order_is_preserved_across_backpressure() {
    let proto = GatedSketch::new();
    let mut session = EngineBuilder::new(&proto).shards(1).batch_size(4).session();
    let ups = updates(500);

    let mut accepted = 0;
    while accepted < ups.len() {
        match session.offer(&ups[accepted..]) {
            Poll::Ready(n) => accepted += n,
            Poll::Pending => break,
        }
    }
    proto.open_gate();
    session.ingest_blocking(&ups[accepted..]);
    let merged = session.seal().unwrap();
    let want: Vec<i64> = ups.iter().map(|u| u.delta).collect();
    assert_eq!(merged.seen, want, "single-shard ingestion must preserve stream order");
}

/// `drain` flushes staged partial batches and reports readiness.
#[test]
fn drain_flushes_partial_batches() {
    let proto = GatedSketch::new();
    proto.open_gate();
    let mut session = EngineBuilder::new(&proto).shards(3).batch_size(1000).session();
    let ups = updates(17); // far below one batch: stays staged without drain
    assert_eq!(session.offer(&ups), Poll::Ready(17));
    assert_eq!(session.buffered(), 17);
    while session.drain().is_pending() {
        std::thread::yield_now();
    }
    assert_eq!(session.buffered(), 0);
    let merged = session.seal().unwrap();
    assert_eq!(merged.seen.len(), 17);
}

/// The sans-io poll loop must land on the same bits as the blocking
/// `ingest_blocking`/`seal` surface (and sequential ingestion) — polling is a
/// different driving style, not different semantics.
#[test]
fn poll_driven_session_reproduces_blocking_session_digests() {
    let mut seeds = SeedSequence::new(42);
    let proto = SparseRecovery::new(1 << 10, 8, &mut seeds);
    let mut s = SeedSequence::new(43);
    let ups: Vec<Update> = (0..5000)
        .map(|_| {
            let delta = (s.next_below(9) as i64) - 4;
            Update::new(s.next_below(1 << 10), if delta == 0 { 1 } else { delta })
        })
        .collect();

    let mut sequential = proto.clone();
    sequential.process_batch(&ups);

    let blocking = {
        let mut session = EngineBuilder::new(&proto).shards(4).batch_size(128).session();
        session.ingest_blocking(&ups);
        session.seal().unwrap()
    };

    let mut session = EngineBuilder::new(&proto).shards(4).batch_size(128).session();
    let mut rest = &ups[..];
    while !rest.is_empty() {
        match session.offer(rest) {
            Poll::Ready(n) => rest = &rest[n..],
            Poll::Pending => std::thread::yield_now(),
        }
    }
    while session.drain().is_pending() {
        std::thread::yield_now();
    }
    let polled = session.seal().unwrap();

    assert_eq!(blocking.state_digest(), sequential.state_digest());
    assert_eq!(polled.state_digest(), sequential.state_digest());
}

/// Float structures may only be sharded behind an explicit approximate plan.
#[test]
#[should_panic(expected = "approximate-tolerance plan")]
fn float_structure_under_exact_plan_is_refused() {
    let mut seeds = SeedSequence::new(5);
    let proto = PStableSketch::with_default_rows(1 << 10, 1.0, &mut seeds);
    let _ = EngineBuilder::new(&proto).shards(2).session();
}

/// With the opt-in, float structures shard fine (estimator-level bounds are
/// pinned separately in `tests/float_sharding.rs`).
#[test]
fn float_structure_under_approximate_plan_builds() {
    let mut seeds = SeedSequence::new(6);
    let proto = PStableSketch::with_default_rows(1 << 10, 1.0, &mut seeds);
    let mut session = EngineBuilder::new(&proto).plan(RoundRobin::approximate(2)).session();
    session.ingest_blocking(&updates(100));
    let _ = session.seal().unwrap();
}

/// The plan accessor reports what was configured.
#[test]
fn session_exposes_its_plan() {
    let mut seeds = SeedSequence::new(7);
    let proto = SparseRecovery::new(256, 4, &mut seeds);
    let session: IngestSession<_, KeyRange> =
        EngineBuilder::new(&proto).plan(KeyRange::new(256, 4)).session();
    assert_eq!(session.shards(), 4);
    assert_eq!(session.plan().tolerance(), Tolerance::Exact);
    assert_eq!(session.plan().range(0), 0..64);
    let _ = session.seal().unwrap();
}

// ---------------------------------------------------------------------------
// Worker panic containment
// ---------------------------------------------------------------------------

use lps_engine::EngineError;
use lps_sketch::{DecodeError, Persist, WireReader, WireWriter};

/// The delta that makes a [`BombSketch`] worker panic mid-ingest.
const BOMB: i64 = i64::MIN;

/// A test structure that panics when it ingests the [`BOMB`] delta —
/// deterministic worker death, targeted at whichever shard the plan routes
/// the bomb to.
#[derive(Clone, Debug, PartialEq)]
struct BombSketch {
    seen: Vec<i64>,
}

impl BombSketch {
    fn new() -> Self {
        BombSketch { seen: Vec::new() }
    }
}

impl Mergeable for BombSketch {
    fn merge_from(&mut self, other: &Self) {
        self.seen.extend_from_slice(&other.seen);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.seen {
            d.write_i64(v);
        }
        d.finish()
    }
}

impl ShardIngest for BombSketch {
    fn ingest_batch(&mut self, updates: &[Update]) {
        for u in updates {
            assert_ne!(u.delta, BOMB, "bomb delta ingested: worker goes down");
            self.seen.push(u.delta);
        }
    }
}

impl Persist for BombSketch {
    const TAG: u16 = 0x7777; // test-only tag, never on a real wire

    fn encode_seeds(&self, _w: &mut WireWriter<'_>) {}

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        w.write_len(self.seen.len());
        for &v in &self.seen {
            w.write_i64(v);
        }
    }

    fn decode_parts(
        _seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let n = counters.read_count(8)?;
        Ok(BombSketch { seen: counters.read_i64s(n)? })
    }
}

/// A worker panic must surface at `seal` as a typed error naming the dead
/// shard — not propagate as a panic into the caller.
#[test]
fn worker_panic_surfaces_as_typed_engine_error() {
    let proto = BombSketch::new();
    // batch_size 2 and round-robin dealing: updates 0..2 -> shard 0,
    // 2..4 -> shard 1, 4..6 -> shard 2
    let mut session = EngineBuilder::new(&proto).shards(3).batch_size(2).session();
    let ups = vec![
        Update::new(0, BOMB), // shard 0 dies on this batch
        Update::new(1, 2),
        Update::new(2, 3),
        Update::new(3, 4),
        Update::new(4, 5),
        Update::new(5, 6),
    ];
    session.ingest_blocking(&ups);
    assert_eq!(session.seal(), Err(EngineError::WorkerPanicked { shard: 0 }));
}

/// After one worker dies mid-stream, the session keeps accepting and
/// routing a long tail of further updates without panicking or hanging —
/// containment under continued load, not just at the terminal call.
#[test]
fn session_survives_a_dead_worker_under_continued_load() {
    let proto = BombSketch::new();
    let mut session = EngineBuilder::new(&proto).shards(2).batch_size(2).session();
    session.ingest_blocking(&[Update::new(0, BOMB), Update::new(1, 1)]);
    // thousands more updates, half of them routed at the dead shard
    let tail: Vec<Update> = (0..4000).map(|i| Update::new(i % 64, i as i64 + 1)).collect();
    session.ingest_blocking(&tail);
    match session.seal() {
        Err(EngineError::WorkerPanicked { shard: 0 }) => {}
        other => panic!("expected shard 0 reported dead, got {other:?}"),
    }
}

/// `checkpoint` refuses to persist a stream with a hole in it, with the
/// same typed error as `seal`.
#[test]
fn checkpoint_reports_the_panicked_shard() {
    let proto = BombSketch::new();
    let mut session = EngineBuilder::new(&proto).shards(2).batch_size(1).session();
    session.ingest_blocking(&[Update::new(0, 1), Update::new(1, BOMB)]);
    assert_eq!(session.checkpoint(), Err(EngineError::WorkerPanicked { shard: 1 }));
}

/// The degraded path: every surviving shard's state is checkpointed behind
/// its true-index plan envelope, the dead shard is reported, and the
/// surviving buffers decode back to exactly what those shards ingested.
#[test]
fn surviving_shards_checkpoint_and_decode_after_a_panic() {
    let proto = BombSketch::new();
    let mut session = EngineBuilder::new(&proto).shards(3).batch_size(2).session();
    let ups = vec![
        Update::new(0, BOMB), // batch 0 -> shard 0 (dies)
        Update::new(1, 2),
        Update::new(2, 3), // batch 1 -> shard 1
        Update::new(3, 4),
        Update::new(4, 5), // batch 2 -> shard 2
        Update::new(5, 6),
    ];
    session.ingest_blocking(&ups);
    let (buffers, panicked) = session.checkpoint_surviving();
    assert_eq!(panicked, vec![0]);
    assert_eq!(buffers.len(), 2);

    let mut recovered = Vec::new();
    for (shard, buf) in &buffers {
        let (envelope, payload) = lps_engine::read_envelope(buf).unwrap();
        assert_eq!(usize::from(envelope.shard), *shard, "envelope stamps the true shard index");
        assert_eq!(envelope.shard_count, 3, "envelope keeps the full fleet size");
        let state = BombSketch::decode_state(payload).unwrap();
        recovered.push((*shard, state.seen.clone()));
    }
    recovered.sort();
    assert_eq!(recovered, vec![(1, vec![3, 4]), (2, vec![5, 6])]);
}

/// With no panic, `checkpoint_surviving` is just `checkpoint` with indices:
/// all shards survive and nothing is reported dead.
#[test]
fn checkpoint_surviving_with_healthy_workers_reports_no_deaths() {
    let proto = BombSketch::new();
    let mut session = EngineBuilder::new(&proto).shards(2).batch_size(2).session();
    session.ingest_blocking(&[Update::new(0, 1), Update::new(1, 2)]);
    let (buffers, panicked) = session.checkpoint_surviving();
    assert!(panicked.is_empty());
    assert_eq!(buffers.len(), 2);
    assert_eq!(buffers.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 1]);
}

//! Arithmetic in the prime field GF(2^61 - 1).
//!
//! Every hash family and fingerprint in this workspace is built on polynomial
//! evaluation over a fixed prime field. We use the Mersenne prime
//! `P = 2^61 - 1` because reduction modulo a Mersenne prime needs only shifts
//! and adds, and because 61-bit residues multiply safely inside `u128`.
//!
//! The field size comfortably exceeds every domain we hash from (coordinate
//! indices are at most `2^40` in all experiments), which is what the k-wise
//! independence arguments require: a polynomial hash family is only k-wise
//! independent on domains no larger than the field.

/// The Mersenne prime 2^61 - 1.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// An element of GF(2^61 - 1), kept in canonical reduced form `0 <= v < P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Construct a field element, reducing the input modulo P.
    #[inline]
    pub fn new(v: u64) -> Self {
        Fp(reduce_u64(v))
    }

    /// Construct a field element from a value that is **already** a canonical
    /// residue in `[0, P)`, skipping the reduction of [`Fp::new`].
    ///
    /// Every stream coordinate index in this workspace is far below `P`
    /// (indices are at most `2^40` in all experiments), so the hot update
    /// paths use this constructor instead of re-reducing on every hash
    /// evaluation. The precondition is debug-asserted; in release builds a
    /// violating input would silently produce a non-canonical element, so
    /// callers must only pass values they can prove reduced.
    #[inline]
    pub fn from_reduced(v: u64) -> Self {
        debug_assert!(v < MERSENNE_P, "from_reduced requires a canonical residue, got {v}");
        Fp(v)
    }

    /// Construct from an arbitrary 128-bit value, reducing modulo P.
    #[inline]
    pub fn from_u128(v: u128) -> Self {
        Fp(reduce_u128(v))
    }

    /// The canonical representative in `[0, P)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Field addition.
    #[inline]
    #[allow(clippy::should_implement_trait)] // the `std::ops` impls below delegate here
    pub fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0; // < 2^62, no overflow
        if s >= MERSENNE_P {
            s -= MERSENNE_P;
        }
        Fp(s)
    }

    /// Field subtraction.
    #[inline]
    #[allow(clippy::should_implement_trait)] // the `std::ops` impls below delegate here
    pub fn sub(self, rhs: Fp) -> Fp {
        if self.0 >= rhs.0 {
            Fp(self.0 - rhs.0)
        } else {
            Fp(self.0 + MERSENNE_P - rhs.0)
        }
    }

    /// Field negation.
    #[inline]
    #[allow(clippy::should_implement_trait)] // the `std::ops` impls below delegate here
    pub fn neg(self) -> Fp {
        if self.0 == 0 {
            Fp(0)
        } else {
            Fp(MERSENNE_P - self.0)
        }
    }

    /// Field multiplication via u128 widening and Mersenne reduction.
    #[inline]
    #[allow(clippy::should_implement_trait)] // the `std::ops` impls below delegate here
    pub fn mul(self, rhs: Fp) -> Fp {
        Fp(mul_mod(self.0, rhs.0))
    }

    /// Fused multiply-add: `self · b + c` with a **single** Mersenne
    /// reduction, instead of the two reductions `mul` followed by `add`
    /// would perform.
    ///
    /// Safe because the unreduced sum is bounded: for canonical operands the
    /// product is at most `(P−1)²` and the addend at most `P−1`, so the
    /// `u128` accumulator stays below `2^122 + 2^61`, comfortably inside
    /// `reduce_u128`'s input range (three 61-bit limbs). The result is the
    /// same canonical residue the unfused sequence produces — canonical
    /// representatives are unique, so the two are bit-identical (pinned by
    /// `mul_add_matches_mul_then_add` below). This is the inner step of
    /// [`horner`], the single hottest scalar kernel in the workspace.
    #[inline]
    pub fn mul_add(self, b: Fp, c: Fp) -> Fp {
        Fp(reduce_u128(self.0 as u128 * b.0 as u128 + c.0 as u128))
    }

    /// Exponentiation by squaring.
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Exponentiation using a precomputed [`PowTable`] for this base.
    ///
    /// `self` must be the base the table was built from (debug-asserted);
    /// the cost is one field multiplication per non-zero 4-bit digit of the
    /// exponent instead of the ~61 squarings of [`Fp::pow`].
    #[inline]
    pub fn pow_with_table(self, table: &PowTable, e: u64) -> Fp {
        debug_assert_eq!(self, table.base(), "pow_with_table used with a mismatched table");
        table.pow(e)
    }

    /// Multiplicative inverse via Fermat's little theorem (`a^(P-2)`).
    ///
    /// Returns `None` for zero, which has no inverse.
    pub fn inv(self) -> Option<Fp> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(MERSENNE_P - 2))
        }
    }

    /// True iff this is the additive identity.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::new(v)
    }
}

impl From<u32> for Fp {
    fn from(v: u32) -> Self {
        Fp::new(v as u64)
    }
}

impl std::ops::Add for Fp {
    type Output = Fp;
    fn add(self, rhs: Fp) -> Fp {
        Fp::add(self, rhs)
    }
}

impl std::ops::Sub for Fp {
    type Output = Fp;
    fn sub(self, rhs: Fp) -> Fp {
        Fp::sub(self, rhs)
    }
}

impl std::ops::Mul for Fp {
    type Output = Fp;
    fn mul(self, rhs: Fp) -> Fp {
        Fp::mul(self, rhs)
    }
}

impl std::ops::Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(self)
    }
}

impl std::ops::AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = Fp::add(*self, rhs);
    }
}

impl std::ops::MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = Fp::mul(*self, rhs);
    }
}

/// Number of 4-bit windows covering a full 64-bit exponent.
const POW_WINDOWS: usize = 16;
/// Number of digit values per 4-bit window.
const POW_DIGITS: usize = 16;

/// Precomputed powers of a fixed base `r`, supporting `r^e` in at most 15
/// field multiplications for any 64-bit exponent `e`.
///
/// The table stores `table[w][d] = r^(d · 16^w)` for every window
/// `w ∈ [0, 16)` and digit `d ∈ [0, 16)`. Writing the exponent in base 16 as
/// `e = Σ_w d_w · 16^w`, the law of exponents gives
/// `r^e = Π_w r^(d_w · 16^w) = Π_w table[w][d_w]`, so evaluating `r^e` costs
/// one multiplication per **non-zero** digit (≤ 15 after the first factor).
///
/// **Correctness argument.** Each row is built by induction:
/// `table[w][0] = 1 = r^0` and `table[w][d] = table[w][d-1] · step_w` where
/// `step_w = r^(16^w)`, so `table[w][d] = r^(d·16^w)` exactly; the next
/// window's step is `step_{w+1} = table[w][15] · step_w = r^(15·16^w + 16^w)
/// = r^(16^{w+1})`. All arithmetic is exact modular arithmetic in canonical
/// reduced form, so the windowed product equals [`Fp::pow`] bit for bit —
/// pinned by the `pow_table_matches_square_and_multiply` test below.
///
/// This is the hot-path replacement for the per-cell `r.pow(index)` in the
/// sparse-recovery fingerprint `Σ x_i · r^i`: sketches build one table per
/// fingerprint base at construction time (2 KiB, derived — not charged as
/// stored randomness) and amortise it over every stream update.
#[derive(Debug, Clone)]
pub struct PowTable {
    base: Fp,
    table: [[Fp; POW_DIGITS]; POW_WINDOWS],
}

impl PowTable {
    /// Precompute the windowed power table of `base`.
    pub fn new(base: Fp) -> Self {
        let mut table = [[Fp::ONE; POW_DIGITS]; POW_WINDOWS];
        let mut step = base; // r^(16^w), starting at w = 0
        for row in table.iter_mut() {
            for d in 1..POW_DIGITS {
                row[d] = row[d - 1].mul(step);
            }
            step = row[POW_DIGITS - 1].mul(step);
        }
        PowTable { base, table }
    }

    /// The base `r` this table was built from.
    #[inline]
    pub fn base(&self) -> Fp {
        self.base
    }

    /// Compute `base^e` from the table: one multiplication per non-zero
    /// 4-bit digit of `e`.
    #[inline]
    pub fn pow(&self, mut e: u64) -> Fp {
        let mut acc = Fp::ONE;
        let mut w = 0usize;
        while e != 0 {
            let d = (e & 0xF) as usize;
            if d != 0 {
                acc = acc.mul(self.table[w][d]);
            }
            e >>= 4;
            w += 1;
        }
        acc
    }

    /// The table entry `base^(d · 16^w)` — the per-window factor the lane
    /// kernels in [`crate::simd`] gather when evaluating several exponents at
    /// once (`d = 0` yields [`Fp::ONE`], so uniform lanes can multiply
    /// unconditionally without changing the result).
    #[inline]
    pub(crate) fn entry(&self, w: usize, d: usize) -> Fp {
        self.table[w][d]
    }
}

/// Reduce a `u64` modulo the Mersenne prime using shift-and-add.
#[inline]
fn reduce_u64(v: u64) -> u64 {
    // v = hi * 2^61 + lo, and 2^61 == 1 (mod P)
    let mut r = (v & MERSENNE_P) + (v >> 61);
    if r >= MERSENNE_P {
        r -= MERSENNE_P;
    }
    r
}

/// Reduce a `u128` modulo the Mersenne prime. Valid for any input below
/// `2^123` (three 61-bit limbs plus two conditional subtractions), which
/// covers both a full product of canonical residues and a fused
/// product-plus-addend (see [`Fp::mul_add`]). Shared with the lane kernels
/// in [`crate::simd`].
#[inline]
pub(crate) fn reduce_u128(v: u128) -> u64 {
    // Split into 61-bit limbs: v = a + b*2^61 + c*2^122 with 2^61 == 1 (mod P).
    let a = (v & (MERSENNE_P as u128)) as u64;
    let b = ((v >> 61) & (MERSENNE_P as u128)) as u64;
    let c = (v >> 122) as u64;
    let mut r = a as u128 + b as u128 + c as u128;
    // r < 3 * 2^61, two conditional subtractions suffice
    if r >= MERSENNE_P as u128 {
        r -= MERSENNE_P as u128;
    }
    if r >= MERSENNE_P as u128 {
        r -= MERSENNE_P as u128;
    }
    r as u64
}

/// Multiply two reduced residues modulo the Mersenne prime.
#[inline]
pub fn mul_mod(a: u64, b: u64) -> u64 {
    reduce_u128((a as u128) * (b as u128))
}

/// Evaluate the polynomial with the given coefficients (constant term first)
/// at point `x`, using Horner's rule. This is the work-horse of every k-wise
/// independent hash family in this crate. Each step is the fused
/// [`Fp::mul_add`] — one reduction per coefficient instead of the two the
/// unfused `mul` + `add` sequence paid.
#[inline]
pub fn horner(coeffs: &[Fp], x: Fp) -> Fp {
    let mut acc = Fp::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc.mul_add(x, c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow_mul(a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % (MERSENNE_P as u128)) as u64
    }

    #[test]
    fn constants() {
        assert_eq!(MERSENNE_P, 2305843009213693951);
        assert_eq!(Fp::ZERO.value(), 0);
        assert_eq!(Fp::ONE.value(), 1);
    }

    #[test]
    fn reduction_of_large_inputs() {
        assert_eq!(Fp::new(MERSENNE_P).value(), 0);
        assert_eq!(Fp::new(MERSENNE_P + 1).value(), 1);
        assert_eq!(Fp::new(u64::MAX).value(), u64::MAX % MERSENNE_P);
        assert_eq!(Fp::from_u128(u128::MAX).value(), (u128::MAX % MERSENNE_P as u128) as u64);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let a = Fp::new(123456789012345678);
        let b = Fp::new(987654321098765432);
        assert_eq!((a + b - b).value(), a.value());
        assert_eq!((a + (-a)).value(), 0);
        assert_eq!((Fp::ZERO - a).value(), a.neg().value());
    }

    #[test]
    fn mul_matches_reference() {
        let cases = [
            (0u64, 0u64),
            (1, MERSENNE_P - 1),
            (MERSENNE_P - 1, MERSENNE_P - 1),
            (123456789, 987654321),
            (1 << 60, (1 << 60) + 12345),
        ];
        for (a, b) in cases {
            assert_eq!(mul_mod(a, b), slow_mul(a, b), "a={a} b={b}");
        }
    }

    #[test]
    fn mul_add_matches_mul_then_add() {
        // The fused kernel must be bit-identical to the unfused reference on
        // the whole canonical range, including the P−1 edge residues where
        // the unreduced accumulator peaks at (P−1)² + (P−1).
        let edge = [0u64, 1, 2, MERSENNE_P - 2, MERSENNE_P - 1, 123456789, 1 << 60];
        for &a in &edge {
            for &b in &edge {
                for &c in &edge {
                    let (a, b, c) = (Fp::new(a), Fp::new(b), Fp::new(c));
                    assert_eq!(
                        a.mul_add(b, c),
                        a.mul(b).add(c),
                        "fused mul-add diverged at a={} b={} c={}",
                        a.value(),
                        b.value(),
                        c.value()
                    );
                }
            }
        }
        // a pseudo-random sweep on top of the edge lattice
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state % MERSENNE_P
        };
        for _ in 0..2000 {
            let (a, b, c) = (Fp::new(next()), Fp::new(next()), Fp::new(next()));
            assert_eq!(a.mul_add(b, c), a.mul(b).add(c));
        }
    }

    #[test]
    fn pow_and_inverse() {
        let a = Fp::new(1234567891011);
        let inv = a.inv().expect("nonzero has inverse");
        assert_eq!((a * inv).value(), 1);
        assert!(Fp::ZERO.inv().is_none());
        // Fermat: a^(P-1) = 1
        assert_eq!(a.pow(MERSENNE_P - 1).value(), 1);
        assert_eq!(a.pow(0).value(), 1);
    }

    #[test]
    fn horner_matches_direct_evaluation() {
        // f(x) = 3 + 5x + 7x^2
        let coeffs = [Fp::new(3), Fp::new(5), Fp::new(7)];
        let x = Fp::new(11);
        let direct = Fp::new(3) + Fp::new(5) * x + Fp::new(7) * x * x;
        assert_eq!(horner(&coeffs, x), direct);
        // empty polynomial is identically zero
        assert_eq!(horner(&[], x), Fp::ZERO);
    }

    #[test]
    fn from_reduced_is_identity_on_canonical_residues() {
        for v in [0u64, 1, 12345, MERSENNE_P - 1] {
            assert_eq!(Fp::from_reduced(v), Fp::new(v));
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn from_reduced_rejects_unreduced_input_in_debug() {
        let _ = Fp::from_reduced(MERSENNE_P);
    }

    #[test]
    fn pow_table_matches_square_and_multiply() {
        let bases = [Fp::new(2), Fp::new(123456789012345), Fp::new(MERSENNE_P - 1)];
        for base in bases {
            let table = PowTable::new(base);
            assert_eq!(table.base(), base);
            let exponents = [
                0u64,
                1,
                2,
                15,
                16,
                17,
                (1 << 40) - 1,
                1 << 40,
                0xDEAD_BEEF_CAFE_F00D,
                u64::MAX,
                MERSENNE_P - 1,
                MERSENNE_P - 2,
            ];
            for e in exponents {
                assert_eq!(
                    table.pow(e),
                    base.pow(e),
                    "windowed pow diverged at base {} exponent {e}",
                    base.value()
                );
                assert_eq!(base.pow_with_table(&table, e), base.pow(e));
            }
        }
    }

    #[test]
    fn pow_table_handles_zero_and_one_bases() {
        let zero = PowTable::new(Fp::ZERO);
        assert_eq!(zero.pow(0), Fp::ONE);
        assert_eq!(zero.pow(7), Fp::ZERO);
        let one = PowTable::new(Fp::ONE);
        assert_eq!(one.pow(u64::MAX), Fp::ONE);
    }

    #[test]
    fn distributivity_spot_check() {
        let a = Fp::new(999999999999);
        let b = Fp::new(888888888888);
        let c = Fp::new(777777777777);
        assert_eq!(a * (b + c), a * b + a * c);
    }
}

//! k-wise independent hash families via random polynomials over GF(2^61 - 1).
//!
//! A degree-(k-1) polynomial with uniformly random coefficients over a prime
//! field is a k-wise independent function from the field to itself: for any k
//! distinct inputs the k outputs are independent and uniform. All sketches in
//! this workspace derive their hash functions from this construction:
//!
//! * [`KWiseHash`] — the general family, used for the k-wise independent
//!   scaling factors `t_i` of the precision Lp sampler (Figure 1, step 4).
//! * [`PairwiseHash`] — k = 2, used by count-sketch bucket and sign hashes.
//! * [`FourWiseHash`] — k = 4, used by the AMS F2 sketch.
//!
//! Outputs can be mapped to a bucket range `[m]`, to signs `{±1}`, or to a
//! fixed-point uniform value in `(0, 1]`, which is exactly what the precision
//! sampler needs for its scaling exponents.

use std::sync::Arc;

use crate::field::{horner, Fp, MERSENNE_P};
use crate::seeds::{SeedPool, SeedSequence};

/// A k-wise independent hash function `[u64] -> [0, P)` realised as a random
/// degree-(k-1) polynomial over GF(2^61 - 1).
///
/// The coefficient vector — the complete seed material — is held behind an
/// [`Arc`], so cloning a hash function (and therefore cloning any sketch
/// built on it) shares the seed storage instead of copying it. A clone's
/// state is counters-only: this is what makes per-tenant sketch fleets cheap
/// (`lps-registry` stamps out millions of tenants from one prototype).
#[derive(Debug, Clone)]
pub struct KWiseHash {
    coeffs: Arc<[Fp]>,
}

impl KWiseHash {
    /// Sample a fresh k-wise independent hash function. `k >= 1`.
    pub fn new(k: usize, seeds: &mut SeedSequence) -> Self {
        assert!(k >= 1, "independence parameter k must be at least 1");
        let coeffs: Vec<Fp> = (0..k).map(|_| Fp::new(seeds.next_u64() & MERSENNE_P)).collect();
        KWiseHash { coeffs: coeffs.into() }
    }

    /// Construct from explicit coefficients (constant term first). Mostly for tests.
    pub fn from_coefficients(coeffs: Vec<Fp>) -> Self {
        assert!(!coeffs.is_empty());
        KWiseHash { coeffs: coeffs.into() }
    }

    /// Construct from already-shared seed material: the hash function reuses
    /// the `Arc` instead of copying the coefficients, so every instance built
    /// from the same allocation evaluates identically and shares storage.
    pub fn with_seeds(coeffs: Arc<[Fp]>) -> Self {
        assert!(!coeffs.is_empty());
        KWiseHash { coeffs }
    }

    /// Sample the pool's k-wise hash function: every call with the same pool
    /// and `k` returns an identically-seeded (merge-compatible) function.
    pub fn from_pool(k: usize, pool: &SeedPool) -> Self {
        KWiseHash::new(k, &mut pool.sequence_for(0x4B57_4853 ^ k as u64))
    }

    /// The shared coefficient allocation, for threading one seed allocation
    /// through many instances via [`KWiseHash::with_seeds`].
    pub fn shared_seeds(&self) -> Arc<[Fp]> {
        Arc::clone(&self.coeffs)
    }

    /// The independence parameter k (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The polynomial coefficients (constant term first) — the complete seed
    /// material of the hash function, exposed so the `lps-sketch` codec layer
    /// can serialize it ([`KWiseHash::from_coefficients`] is the inverse).
    pub fn coefficients(&self) -> &[Fp] {
        &self.coeffs
    }

    /// Evaluate the hash on a key that is already a canonical field residue
    /// (`key < P`), returning a field element.
    ///
    /// Every stream coordinate index in the workspace is at most `2^40`, far
    /// below `P`, so the update paths skip the modular reduction that
    /// `Fp::new` would perform on every evaluation. The precondition is
    /// debug-asserted by [`Fp::from_reduced`].
    #[inline]
    pub fn hash_field(&self, key: u64) -> Fp {
        horner(&self.coeffs, Fp::from_reduced(key))
    }

    /// Evaluate the hash, returning the canonical residue in `[0, P)`.
    ///
    /// Like every entry point below, the key must already be a reduced
    /// residue (`key < P`) — see [`KWiseHash::hash_field`].
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        self.hash_field(key).value()
    }

    /// Map the hash output to a bucket in `[0, m)`. Requires `key < P`.
    ///
    /// Uses the multiply-shift range reduction, which keeps the distribution
    /// within O(m/P) of uniform — negligible for every m we use.
    #[inline]
    pub fn bucket(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        ((self.hash(key) as u128 * m as u128) >> 61) as usize
    }

    /// Map the hash output to a sign in `{-1, +1}`. Requires `key < P`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Map the hash output to a uniform value in `(0, 1]`. Requires `key < P`.
    ///
    /// The precision sampler divides by `t_i^{1/p}`, so zero must be excluded;
    /// we return `(h + 1) / P` which lies in `(0, 1]` and is uniform over a
    /// grid of P points. The paper's discretization argument (Section 2,
    /// Theorem 1 proof) permits exactly this: scaling factors only need
    /// polynomially-bounded precision.
    #[inline]
    pub fn unit_interval(&self, key: u64) -> f64 {
        (self.hash(key) as f64 + 1.0) / (MERSENNE_P as f64)
    }

    /// Number of random bits stored by this hash function (the seed material).
    pub fn random_bits(&self) -> u64 {
        (self.coeffs.len() as u64) * 61
    }

    /// Batch evaluation: hash every key in `keys` (each a reduced residue,
    /// `key < P`) into `out`, [`crate::simd::LANES`] lanes at a time with a
    /// scalar tail. Bit-identical to calling [`KWiseHash::hash`] per key.
    #[inline]
    pub fn hash_keys(&self, keys: &[u64], out: &mut [u64]) {
        crate::simd::horner_many(&self.coeffs, keys, out);
    }

    /// Batch bucket mapping: `out[i]` is `keys[i]`'s bucket in `[0, m)`, via
    /// the same multiply-shift reduction as [`KWiseHash::bucket`]. The hash
    /// values scratch buffer is caller-provided so hot walks can reuse it.
    #[inline]
    pub fn buckets_into(&self, keys: &[u64], m: usize, hashes: &mut [u64], out: &mut [usize]) {
        debug_assert!(m > 0);
        assert_eq!(keys.len(), out.len(), "buckets_into output length mismatch");
        self.hash_keys(keys, hashes);
        for (&h, b) in hashes.iter().zip(out.iter_mut()) {
            *b = ((h as u128 * m as u128) >> 61) as usize;
        }
    }
}

/// A pairwise (2-wise) independent hash function.
///
/// All evaluation methods require reduced keys (`key < P`), like
/// [`KWiseHash::hash_field`]; stream indices always satisfy this.
#[derive(Debug, Clone)]
pub struct PairwiseHash(KWiseHash);

impl PairwiseHash {
    /// Sample a fresh pairwise independent hash function.
    pub fn new(seeds: &mut SeedSequence) -> Self {
        PairwiseHash(KWiseHash::new(2, seeds))
    }

    /// Wrap an existing degree-1 polynomial hash (`independence() == 2`).
    /// Inverse of [`PairwiseHash::kwise`]; used by the serialization layer.
    pub fn from_kwise(inner: KWiseHash) -> Self {
        assert_eq!(inner.independence(), 2, "pairwise hash needs exactly 2 coefficients");
        PairwiseHash(inner)
    }

    /// The underlying polynomial hash (the seed material).
    pub fn kwise(&self) -> &KWiseHash {
        &self.0
    }

    /// Map a key to a bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, key: u64, m: usize) -> usize {
        self.0.bucket(key, m)
    }

    /// Map a key to a sign in `{-1, +1}`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        self.0.sign(key)
    }

    /// Raw hash value in `[0, P)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        self.0.hash(key)
    }

    /// Batch evaluation — see [`KWiseHash::hash_keys`].
    #[inline]
    pub fn hash_keys(&self, keys: &[u64], out: &mut [u64]) {
        self.0.hash_keys(keys, out)
    }

    /// Stored random bits.
    pub fn random_bits(&self) -> u64 {
        self.0.random_bits()
    }
}

/// A 4-wise independent hash function (needed by the AMS variance argument).
///
/// All evaluation methods require reduced keys (`key < P`), like
/// [`KWiseHash::hash_field`]; stream indices always satisfy this.
#[derive(Debug, Clone)]
pub struct FourWiseHash(KWiseHash);

impl FourWiseHash {
    /// Sample a fresh 4-wise independent hash function.
    pub fn new(seeds: &mut SeedSequence) -> Self {
        FourWiseHash(KWiseHash::new(4, seeds))
    }

    /// Wrap an existing degree-3 polynomial hash (`independence() == 4`).
    /// Inverse of [`FourWiseHash::kwise`]; used by the serialization layer.
    pub fn from_kwise(inner: KWiseHash) -> Self {
        assert_eq!(inner.independence(), 4, "4-wise hash needs exactly 4 coefficients");
        FourWiseHash(inner)
    }

    /// The underlying polynomial hash (the seed material).
    pub fn kwise(&self) -> &KWiseHash {
        &self.0
    }

    /// Map a key to a sign in `{-1, +1}`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        self.0.sign(key)
    }

    /// Map a key to a bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, key: u64, m: usize) -> usize {
        self.0.bucket(key, m)
    }

    /// Raw hash value in `[0, P)`.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        self.0.hash(key)
    }

    /// Batch evaluation — see [`KWiseHash::hash_keys`].
    #[inline]
    pub fn hash_keys(&self, keys: &[u64], out: &mut [u64]) {
        self.0.hash_keys(keys, out)
    }

    /// Stored random bits.
    pub fn random_bits(&self) -> u64 {
        self.0.random_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn constant_polynomial_is_constant() {
        let h = KWiseHash::from_coefficients(vec![Fp::new(42)]);
        for key in [0u64, 1, 17, 1 << 40] {
            assert_eq!(h.hash(key), 42);
        }
    }

    #[test]
    fn linear_polynomial_matches_formula() {
        // h(x) = 3 + 5x mod P
        let h = KWiseHash::from_coefficients(vec![Fp::new(3), Fp::new(5)]);
        assert_eq!(h.hash(10), 53);
        assert_eq!(h.hash(0), 3);
    }

    #[test]
    fn independence_parameter_reported() {
        let mut s = seq(1);
        assert_eq!(KWiseHash::new(7, &mut s).independence(), 7);
        assert_eq!(PairwiseHash::new(&mut s).random_bits(), 2 * 61);
        assert_eq!(FourWiseHash::new(&mut s).random_bits(), 4 * 61);
    }

    #[test]
    fn buckets_in_range() {
        let mut s = seq(2);
        let h = KWiseHash::new(3, &mut s);
        for m in [1usize, 2, 7, 64, 1000] {
            for key in 0..200u64 {
                assert!(h.bucket(key, m) < m);
            }
        }
    }

    #[test]
    fn signs_are_plus_minus_one_and_balanced() {
        let mut s = seq(3);
        let h = PairwiseHash::new(&mut s);
        let mut pos = 0i64;
        let n = 20_000u64;
        for key in 0..n {
            let sign = h.sign(key);
            assert!(sign == 1 || sign == -1);
            if sign == 1 {
                pos += 1;
            }
        }
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "sign bias too large: {frac}");
    }

    #[test]
    fn unit_interval_in_range_and_spread() {
        let mut s = seq(4);
        let h = KWiseHash::new(6, &mut s);
        let n = 10_000u64;
        let mut sum = 0.0;
        for key in 0..n {
            let u = h.unit_interval(key);
            assert!(u > 0.0 && u <= 1.0);
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean of uniform values off: {mean}");
    }

    #[test]
    fn bucket_distribution_roughly_uniform() {
        let mut s = seq(5);
        let h = PairwiseHash::new(&mut s);
        let m = 16usize;
        let n = 32_000u64;
        let mut counts = vec![0u64; m];
        for key in 0..n {
            counts[h.bucket(key, m)] += 1;
        }
        let expected = n as f64 / m as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {b} count {c} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn pairwise_collision_probability_close_to_uniform() {
        // Empirical check of the defining property: Pr[h(a)=h(b)] ~ 1/m for a != b.
        let m = 32usize;
        let trials = 4000usize;
        let mut collisions = 0usize;
        let mut s = seq(6);
        for _ in 0..trials {
            let h = PairwiseHash::new(&mut s);
            if h.bucket(12345, m) == h.bucket(67890, m) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        let expect = 1.0 / m as f64;
        assert!(
            (rate - expect).abs() < 3.0 * (expect / trials as f64).sqrt() + 0.01,
            "collision rate {rate} too far from {expect}"
        );
    }

    #[test]
    fn clones_and_with_seeds_share_the_coefficient_allocation() {
        let mut s = seq(7);
        let h = KWiseHash::new(5, &mut s);
        let clone = h.clone();
        assert!(Arc::ptr_eq(&h.shared_seeds(), &clone.shared_seeds()));
        let rebuilt = KWiseHash::with_seeds(h.shared_seeds());
        assert!(Arc::ptr_eq(&h.shared_seeds(), &rebuilt.shared_seeds()));
        for key in 0..100u64 {
            assert_eq!(h.hash(key), rebuilt.hash(key));
        }
    }

    #[test]
    fn pool_draws_are_identical_across_calls_and_distinct_across_k() {
        let pool = SeedPool::new(99);
        let a = KWiseHash::from_pool(4, &pool);
        let b = KWiseHash::from_pool(4, &pool);
        assert_eq!(a.coefficients(), b.coefficients());
        let c = KWiseHash::from_pool(5, &pool);
        assert_ne!(a.coefficients(), &c.coefficients()[..4]);
    }

    #[test]
    fn batch_hash_and_buckets_match_scalar_for_ragged_lengths() {
        let mut s = seq(11);
        for k in [2usize, 4, 16] {
            let h = KWiseHash::new(k, &mut s);
            for len in [0usize, 1, 7, 8, 9, 13, 24, 37] {
                let keys: Vec<u64> =
                    (0..len as u64).map(|i| i.wrapping_mul(0x9E37) % (1 << 40)).collect();
                let mut out = vec![0u64; len];
                h.hash_keys(&keys, &mut out);
                let mut hashes = vec![0u64; len];
                let mut buckets = vec![0usize; len];
                h.buckets_into(&keys, 97, &mut hashes, &mut buckets);
                for (i, &key) in keys.iter().enumerate() {
                    assert_eq!(out[i], h.hash(key), "k={k} len={len} i={i}");
                    assert_eq!(hashes[i], h.hash(key));
                    assert_eq!(buckets[i], h.bucket(key, 97));
                }
            }
        }
        let pw = PairwiseHash::new(&mut s);
        let fw = FourWiseHash::new(&mut s);
        let keys: Vec<u64> = (0..13u64).collect();
        let mut out = vec![0u64; 13];
        pw.hash_keys(&keys, &mut out);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(out[i], pw.hash(key));
        }
        fw.hash_keys(&keys, &mut out);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(out[i], fw.hash(key));
        }
    }

    #[test]
    fn distinct_functions_from_distinct_seeds() {
        let mut s1 = seq(100);
        let mut s2 = seq(200);
        let h1 = KWiseHash::new(2, &mut s1);
        let h2 = KWiseHash::new(2, &mut s2);
        let diffs = (0..64u64).filter(|&k| h1.hash(k) != h2.hash(k)).count();
        assert!(diffs > 60);
    }
}

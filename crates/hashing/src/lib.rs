//! # lps-hash
//!
//! Hashing and pseudorandomness substrate for the `lp-samplers` workspace,
//! a reproduction of *"Tight Bounds for Lp Samplers, Finding Duplicates in
//! Streams, and Related Problems"* (Jowhari, Sağlam, Tardos; PODS 2011).
//!
//! The paper's algorithms need three kinds of randomness, all provided here:
//!
//! * **k-wise independent hash families** ([`kwise`]) built from random
//!   polynomials over the Mersenne-prime field GF(2^61 − 1) ([`field`]).
//!   The precision Lp sampler's scaling factors `t_i` (Figure 1, step 4) are
//!   k-wise independent for `k = 10⌈1/|p−1|⌉`, count-sketch uses pairwise
//!   hashes, and the AMS sketch uses 4-wise signs.
//! * **Tabulation hashing** ([`tabulation`]) for generators and baselines
//!   where speed matters more than provable independence.
//! * **A Nisan-style pseudorandom generator** ([`nisan`]) that stretches an
//!   O(log² n)-bit seed into polynomially many bits fooling space-bounded
//!   tests — the derandomization step of the paper's L0 sampler (Theorem 2).
//!
//! All randomness is derived deterministically from [`seeds::SeedSequence`]
//! so every experiment in the workspace is reproducible from a single master
//! seed, and every structure can report the number of random bits it stores
//! (the paper's space model charges for stored randomness).
//!
//! The batched update paths evaluate these primitives many keys at a time
//! through the lane-parallel kernels in [`simd`]; the `simd` cargo feature
//! additionally enables an AVX2-multiversioned backend (runtime-dispatched,
//! bit-identical to the portable lanes and to the scalar path).

// The only unsafe code in the workspace is the `#[target_feature]` dispatch
// in `simd`, which exists only under the `simd` feature; the default build
// stays `forbid(unsafe_code)`, and even with the feature every unsafe block
// must carry an explicit allow + SAFETY comment.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod field;
pub mod kwise;
pub mod nisan;
pub mod seeds;
pub mod simd;
pub mod tabulation;

pub use field::{mul_mod, Fp, PowTable, MERSENNE_P};
pub use kwise::{FourWiseHash, KWiseHash, PairwiseHash};
pub use nisan::{NisanPrg, NisanStream};
pub use seeds::{derive_seeds, splitmix64, SeedPool, SeedSequence};
pub use tabulation::TabulationHash;

//! A Nisan-style pseudorandom generator for space-bounded computation.
//!
//! Theorem 2 of the paper derandomizes the L0 sampler with Nisan's PRG
//! [Nisan, STOC'90]: a generator that stretches an O(log² n)-bit seed into
//! polynomially many pseudorandom bits that fool every logspace tester. The
//! streaming algorithm then stores only the seed instead of all the random
//! bits describing its subsets.
//!
//! We implement the classic recursive construction. Fix a block length `b`
//! (bits) and a depth `d`. The seed consists of one `b`-bit block `x` and `d`
//! pairwise-independent hash functions `h_1, …, h_d : {0,1}^b → {0,1}^b`.
//! The output of the depth-`d` generator is the concatenation
//!
//! ```text
//! G_d(x) = G_{d-1}(x) ∘ G_{d-1}(h_d(x))
//! ```
//!
//! with `G_0(x) = x`, producing `2^d` blocks of `b` bits each from a seed of
//! `b + 2·b·d` bits (each pairwise hash needs two `b`-bit coefficients). With
//! `b = Θ(log n)` and `d = Θ(log n)` the seed is `Θ(log² n)` bits, which is
//! exactly the budget Theorem 2 charges.
//!
//! Block `i` of the output can be computed directly (without materialising
//! the whole output) by following the binary expansion of `i` from the top
//! level down and applying `h_level` whenever the corresponding bit is 1;
//! this is what [`NisanPrg::block`] does, so a streaming algorithm can address
//! its pseudorandom bits lazily, as the L0 sampler does.

use crate::seeds::SeedSequence;

/// A pairwise-independent function {0,1}^64 → {0,1}^64 of the form
/// `x ↦ a·x + b` over the ring of 64-bit words (multiply-shift style mixing).
#[derive(Debug, Clone, Copy)]
struct BlockHash {
    a: u64,
    b: u64,
}

impl BlockHash {
    fn new(seeds: &mut SeedSequence) -> Self {
        // Force `a` odd so that multiplication is a bijection on Z/2^64.
        BlockHash { a: seeds.next_u64() | 1, b: seeds.next_u64() }
    }

    #[inline]
    fn apply(&self, x: u64) -> u64 {
        // multiply-add followed by an xor-shift finaliser to spread high bits
        let y = self.a.wrapping_mul(x).wrapping_add(self.b);
        y ^ (y >> 29)
    }
}

/// A Nisan-style pseudorandom generator producing `2^depth` blocks of 64 bits.
#[derive(Debug, Clone)]
pub struct NisanPrg {
    root: u64,
    levels: Vec<BlockHash>,
}

impl NisanPrg {
    /// Create a generator of the given depth (output length `2^depth` blocks).
    ///
    /// `depth` is typically `ceil(log2(number of pseudorandom words needed))`;
    /// the L0 sampler uses `depth = O(log n)`.
    pub fn new(depth: usize, seeds: &mut SeedSequence) -> Self {
        assert!(depth <= 48, "output length 2^{depth} blocks is unreasonably large");
        let root = seeds.next_u64();
        let levels = (0..depth).map(|_| BlockHash::new(seeds)).collect();
        NisanPrg { root, levels }
    }

    /// Depth of the generator.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of 64-bit output blocks, `2^depth`.
    pub fn num_blocks(&self) -> u64 {
        1u64 << self.levels.len()
    }

    /// Compute output block `index` (0-based) directly.
    ///
    /// Walking from the top level to the bottom, the left half of the output
    /// of `G_d` keeps the current block value and the right half first applies
    /// `h_d`. Bit `d-1-j` of the index therefore decides whether level `d-j`'s
    /// hash is applied.
    pub fn block(&self, index: u64) -> u64 {
        assert!(index < self.num_blocks(), "block index out of range");
        let mut x = self.root;
        let d = self.levels.len();
        for level in (0..d).rev() {
            // The top level corresponds to the most significant index bit.
            let bit = (index >> level) & 1;
            if bit == 1 {
                x = self.levels[level].apply(x);
            } else {
                // The left branch re-uses x unchanged, but we still mix in the
                // level number so that sibling subtrees do not share prefixes
                // verbatim (pure Nisan uses x directly; the mixing keeps the
                // same seed length and only strengthens the generator).
                x = x.rotate_left(1) ^ (level as u64).wrapping_mul(0x9E3779B97F4A7C15);
            }
        }
        x
    }

    /// Produce an iterator over all output blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_blocks()).map(move |i| self.block(i))
    }

    /// Number of truly random bits stored (the seed): one root block plus two
    /// words per level.
    pub fn seed_bits(&self) -> u64 {
        64 + (self.levels.len() as u64) * 2 * 64
    }
}

/// A convenience wrapper exposing the PRG as a sequential word stream, which
/// is how the L0 sampler consumes it.
#[derive(Debug, Clone)]
pub struct NisanStream {
    prg: NisanPrg,
    next: u64,
}

impl NisanStream {
    /// Wrap a generator as a sequential stream starting at block 0.
    pub fn new(prg: NisanPrg) -> Self {
        NisanStream { prg, next: 0 }
    }

    /// Next pseudorandom 64-bit word; wraps around after `2^depth` words.
    pub fn next_u64(&mut self) -> u64 {
        let w = self.prg.block(self.next);
        self.next = (self.next + 1) % self.prg.num_blocks();
        w
    }

    /// Next pseudorandom value below `bound`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Seed bits stored.
    pub fn seed_bits(&self) -> u64 {
        self.prg.seed_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prg(depth: usize, seed: u64) -> NisanPrg {
        let mut s = SeedSequence::new(seed);
        NisanPrg::new(depth, &mut s)
    }

    #[test]
    fn block_count_and_seed_bits() {
        let g = prg(10, 1);
        assert_eq!(g.num_blocks(), 1024);
        assert_eq!(g.depth(), 10);
        assert_eq!(g.seed_bits(), 64 + 10 * 128);
    }

    #[test]
    fn deterministic_blocks() {
        let g1 = prg(8, 7);
        let g2 = prg(8, 7);
        for i in 0..g1.num_blocks() {
            assert_eq!(g1.block(i), g2.block(i));
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let g1 = prg(8, 1);
        let g2 = prg(8, 2);
        let same = (0..256).filter(|&i| g1.block(i) == g2.block(i)).count();
        assert!(same < 5);
    }

    #[test]
    fn blocks_look_distinct() {
        let g = prg(12, 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..g.num_blocks() {
            seen.insert(g.block(i));
        }
        // A truly random stream of 4096 64-bit words collides with negligible
        // probability; allow a tiny slack for the pseudorandom construction.
        assert!(seen.len() as u64 >= g.num_blocks() - 2);
    }

    #[test]
    fn bit_balance_of_output() {
        let g = prg(12, 4);
        let mut ones = 0u64;
        for w in g.iter() {
            ones += w.count_ones() as u64;
        }
        let total = g.num_blocks() * 64;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit bias {frac}");
    }

    #[test]
    fn stream_wraps_and_respects_bounds() {
        let g = prg(4, 5);
        let mut s = NisanStream::new(g);
        for _ in 0..40 {
            assert!(s.next_below(10) < 10);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_panics() {
        let g = prg(3, 6);
        let _ = g.block(8);
    }

    #[test]
    fn low_order_bits_roughly_uniform_over_small_range() {
        // The L0 sampler uses the stream to pick subsets; check residues mod 8.
        let g = prg(13, 8);
        let mut counts = [0u64; 8];
        for w in g.iter() {
            counts[(w % 8) as usize] += 1;
        }
        let expected = g.num_blocks() as f64 / 8.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.1);
        }
    }
}

//! Deterministic seed derivation for reproducible experiments.
//!
//! Every randomized structure in the workspace is constructed from a
//! [`SeedSequence`]: a splittable, deterministic stream of 64-bit words
//! derived from a single master seed with the SplitMix64 output function.
//! This makes every experiment reproducible from a single integer while
//! still giving well-mixed, independent-looking seeds to each component.
//!
//! The sequence also tracks how many words were drawn, so components can
//! report the number of random bits they consumed — the paper's space model
//! charges for stored randomness, and the experiment harness reports it.

/// A deterministic, splittable source of 64-bit seed words.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
    drawn: u64,
}

/// SplitMix64 output function: a fast, well-mixed permutation of 64-bit words.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedSequence {
    /// Create a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { state: splitmix64(master ^ 0xA5A5_A5A5_5A5A_5A5A), drawn: 0 }
    }

    /// Draw the next 64-bit seed word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        self.drawn += 1;
        splitmix64(self.state)
    }

    /// Draw a uniform value in `[0, bound)` (bound > 0) by 128-bit multiply-shift.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let r = self.next_u64();
        ((r as u128 * bound as u128) >> 64) as u64
    }

    /// Split off an independent child sequence; the child is derived from the
    /// next word of this sequence, so siblings are decorrelated.
    pub fn split(&mut self) -> SeedSequence {
        SeedSequence::new(self.next_u64())
    }

    /// Number of 64-bit words drawn from this sequence so far (children not included).
    pub fn words_drawn(&self) -> u64 {
        self.drawn
    }

    /// Number of random bits drawn from this sequence so far.
    pub fn bits_drawn(&self) -> u64 {
        self.drawn * 64
    }

    /// Fill a slice with seed words.
    pub fn fill(&mut self, out: &mut [u64]) {
        for w in out.iter_mut() {
            *w = self.next_u64();
        }
    }
}

/// Convenience: derive `count` decorrelated 64-bit seeds from a master seed.
pub fn derive_seeds(master: u64, count: usize) -> Vec<u64> {
    let mut seq = SeedSequence::new(master);
    (0..count).map(|_| seq.next_u64()).collect()
}

/// One set of hash seeds shared by every tenant of a prototype.
///
/// A [`SeedSequence`] is a *stream*: drawing from it advances its state, so
/// two structures built from the same `&mut` sequence get different seeds.
/// A `SeedPool` is the opposite: a fixed point in seed space. Every call to
/// [`SeedPool::sequence`] returns a sequence in the *same* initial state, so
/// every prototype built from it is identically seeded — and identically
/// seeded linear sketches are merge-compatible (their `Persist` seed sections
/// are byte-identical merge witnesses).
///
/// This is the sharing rule the multi-tenant registry (`lps-registry`) is
/// built on: one pool per registry, one seed allocation per prototype, and a
/// tenant's own state is counters-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedPool {
    master: u64,
}

impl SeedPool {
    /// Create a pool from a master seed.
    pub fn new(master: u64) -> Self {
        SeedPool { master }
    }

    /// The master seed the pool was created from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The pool's canonical seed sequence. Every call returns the same
    /// initial state, so structures constructed from successive calls are
    /// identically seeded (and therefore merge-compatible).
    pub fn sequence(&self) -> SeedSequence {
        SeedSequence::new(self.master)
    }

    /// A labeled, decorrelated seed sequence: the same `(pool, domain)` pair
    /// always yields the same stream, while distinct domains yield
    /// independent-looking streams. Use this when one pool must seed several
    /// unrelated components (e.g. a hash family per independence parameter).
    pub fn sequence_for(&self, domain: u64) -> SeedSequence {
        SeedSequence::new(splitmix64(self.master ^ domain.rotate_left(17)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_master() {
        let mut a = SeedSequence::new(42);
        let mut b = SeedSequence::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_masters_differ() {
        let mut a = SeedSequence::new(1);
        let mut b = SeedSequence::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_children_are_decorrelated() {
        let mut parent = SeedSequence::new(7);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let matches = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn bits_accounting() {
        let mut s = SeedSequence::new(5);
        assert_eq!(s.bits_drawn(), 0);
        s.next_u64();
        s.next_u64();
        assert_eq!(s.words_drawn(), 2);
        assert_eq!(s.bits_drawn(), 128);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut s = SeedSequence::new(11);
        for bound in [1u64, 2, 3, 17, 1000, 1 << 40] {
            for _ in 0..50 {
                assert!(s.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut s = SeedSequence::new(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[s.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues of a small bound should appear");
    }

    #[test]
    fn pool_sequences_are_replayable_and_domain_separated() {
        let pool = SeedPool::new(77);
        let mut a = pool.sequence();
        let mut b = pool.sequence();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64(), "pool sequences must replay identically");
        }
        let mut d1 = pool.sequence_for(1);
        let mut d2 = pool.sequence_for(2);
        let matches = (0..64).filter(|_| d1.next_u64() == d2.next_u64()).count();
        assert_eq!(matches, 0, "distinct domains must be decorrelated");
        let mut r1 = pool.sequence_for(1);
        let mut r2 = pool.sequence_for(1);
        for _ in 0..32 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn derive_seeds_unique() {
        let seeds = derive_seeds(99, 256);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }
}

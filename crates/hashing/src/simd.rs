//! Lane-parallel Mersenne-61 field kernels for the batched update path.
//!
//! Every structure in the workspace bottoms out in the same scalar kernels —
//! k-wise polynomial hashing ([`crate::field::horner`]) and windowed
//! fingerprint powers ([`PowTable::pow`]) over GF(2^61 − 1). The batched
//! walks already present updates in arrays, so this module evaluates them
//! [`LANES`] at a time:
//!
//! * fixed-width kernels on [`Lanes`] — [`reduce_lanes`], [`mul_mod_lanes`],
//!   [`mul_add_mod_lanes`], [`horner_lanes`], [`pow_lanes`];
//! * slice-level drivers with a scalar tail — [`horner_many`], [`pow_many`],
//!   [`mul_mod_many`] — which is what [`crate::KWiseHash::hash_keys`] and the
//!   sketch crates call;
//! * [`PolyBank`], the transposed rows×keys variant: many polynomials (the
//!   AMS per-counter sign hashes) evaluated at one key, lanes running across
//!   *polynomials* instead of keys.
//!
//! # Backends, and why both are bit-identical
//!
//! The default backend is portable: each lane is an independent
//! `u128`-widening multiply followed by the same three-limb Mersenne
//! reduction the scalar path uses (`field::reduce_u128`). Eight
//! independent dependency chains break the serial multiply→reduce latency
//! chain that bounds scalar Horner, so this already speeds up the kernel on
//! any out-of-order core, and the fixed-trip-count inner loops are written
//! so LLVM can unroll (and, where profitable, auto-vectorize) them.
//!
//! The `simd` cargo feature adds an explicitly multiversioned x86-64 backend:
//! the same kernels in a 32-bit-limb formulation (no `u128` carries, so the
//! compiler lowers the lane multiplies to packed `vpmuludq` under AVX2),
//! compiled inside `#[target_feature(enable = "avx2")]` wrappers and selected
//! once per slice-level call by runtime CPU detection. The public API is
//! identical with or without the feature.
//!
//! Correctness is differential, not analytical trust: every kernel produces
//! the **canonical** residue in `[0, P)`, and canonical representatives are
//! unique — so portable lanes, AVX2 lanes, and the scalar path must agree
//! bit for bit. The 32-bit-limb derivation (with overflow bounds) is
//! documented at `mul_add_lane_limb` (private, in this file); the property
//! tests in this module and
//! in `tests/properties.rs` pin lane-vs-scalar equality over the full
//! canonical range including the `P − 1` edge residues and every remainder
//! tail length.

use crate::field::{reduce_u128, Fp, PowTable, MERSENNE_P};

/// Number of field elements a lane kernel processes per step.
///
/// Eight 64-bit lanes fill one AVX-512 register or two AVX2 registers, and —
/// just as importantly for the portable backend — give the scheduler eight
/// independent multiply→reduce chains to overlap.
pub const LANES: usize = 8;

/// A register-shaped group of [`LANES`] canonical residues (each `< P`).
pub type Lanes = [u64; LANES];

/// The scalar fused multiply-add each portable lane runs:
/// `(a·b + c) mod P` via `u128` widening, exactly as [`Fp::mul_add`].
#[inline(always)]
fn mul_add_lane_u128(a: u64, b: u64, c: u64) -> u64 {
    reduce_u128(a as u128 * b as u128 + c as u128)
}

/// The 32-bit-limb fused multiply-add: `(a·b + c) mod P` for canonical
/// `a, b, c < P`, computed without any `u128` arithmetic so the lane loops
/// vectorize to packed 32×32→64 multiplies (`vpmuludq`) under AVX2.
///
/// Derivation and bounds. Split `a = a_lo + 2^32·a_hi` (so `a_hi < 2^29`)
/// and likewise `b`; then `a·b = ll + 2^32·(lh + hl) + 2^64·hh` with
/// `ll < 2^64`, `m = lh + hl < 2^62`, `hh < 2^58` — every partial fits `u64`.
/// Using `2^61 ≡ 1` (so `2^64 ≡ 8` and `2^32·m ≡ ((m mod 2^29)·2^32 +
/// ⌊m/2^29⌋)` because `2^32·2^29 = 2^61`):
///
/// ```text
/// s = (ll mod 2^61) + ⌊ll/2^61⌋ + (m mod 2^29)·2^32 + ⌊m/2^29⌋ + 8·hh + c
///   < 2^61 + 8 + 2^61 + 2^33 + 2^61 + 2^61  <  2^64   (no overflow)
/// ```
///
/// One fold `r = (s mod 2^61) + ⌊s/2^61⌋ ≤ (P−1) + 7 < 2P`, so a single
/// conditional subtraction lands in canonical `[0, P)` — the same residue
/// [`mul_add_lane_u128`] computes, hence bit-identical.
#[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(dead_code))]
#[inline(always)]
fn mul_add_lane_limb(a: u64, b: u64, c: u64) -> u64 {
    const LO32: u64 = 0xFFFF_FFFF;
    let (a_lo, a_hi) = (a & LO32, a >> 32);
    let (b_lo, b_hi) = (b & LO32, b >> 32);
    let ll = a_lo * b_lo;
    let m = a_lo * b_hi + a_hi * b_lo;
    let hh = a_hi * b_hi;
    let s = (ll & MERSENNE_P) + (ll >> 61) + ((m & 0x1FFF_FFFF) << 32) + (m >> 29) + (hh << 3) + c;
    let r = (s & MERSENNE_P) + (s >> 61);
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

/// Reduce each lane of arbitrary `u64` values to its canonical residue,
/// using the same shift-and-add fold as the scalar [`Fp::new`].
#[inline]
pub fn reduce_lanes(v: &Lanes) -> Lanes {
    let mut out = [0u64; LANES];
    for l in 0..LANES {
        let r = (v[l] & MERSENNE_P) + (v[l] >> 61);
        out[l] = if r >= MERSENNE_P { r - MERSENNE_P } else { r };
    }
    out
}

/// Lane-wise field multiplication of canonical residues: `out[l] = a[l]·b[l]
/// mod P`. Portable reference kernel (the `simd` backend runs the same math
/// in 32-bit limbs — see the module docs).
#[inline]
pub fn mul_mod_lanes(a: &Lanes, b: &Lanes) -> Lanes {
    let mut out = [0u64; LANES];
    for l in 0..LANES {
        out[l] = mul_add_lane_u128(a[l], b[l], 0);
    }
    out
}

/// Lane-wise fused multiply-add of canonical residues:
/// `out[l] = (a[l]·b[l] + c[l]) mod P`, one reduction per lane.
#[inline]
pub fn mul_add_mod_lanes(a: &Lanes, b: &Lanes, c: &Lanes) -> Lanes {
    let mut out = [0u64; LANES];
    for l in 0..LANES {
        out[l] = mul_add_lane_u128(a[l], b[l], c[l]);
    }
    out
}

/// Evaluate one polynomial (constant term first, as in
/// [`crate::field::horner`]) at [`LANES`] points simultaneously. Each lane
/// runs the identical fused Horner recurrence, so every lane equals the
/// scalar `horner(coeffs, x)` bit for bit.
#[inline]
pub fn horner_lanes(coeffs: &[Fp], x: &Lanes) -> Lanes {
    let mut acc = [0u64; LANES];
    for &c in coeffs.iter().rev() {
        let cv = c.value();
        for l in 0..LANES {
            acc[l] = mul_add_lane_u128(acc[l], x[l], cv);
        }
    }
    acc
}

/// Windowed exponentiation of the table's base at [`LANES`] exponents
/// simultaneously: `out[l] = base^(e[l])`.
///
/// Unlike the scalar [`PowTable::pow`], which skips zero digits, the lanes
/// multiply unconditionally by the gathered window factor (`table[w][0]` is
/// exactly `1`, so the product is unchanged) — uniform control flow across
/// lanes, identical canonical results. The window count is driven by the OR
/// of all lane exponents, so no lane terminates early.
#[inline]
pub fn pow_lanes(table: &PowTable, e: &Lanes) -> Lanes {
    let mut acc = [1u64; LANES];
    let mut all = e.iter().fold(0u64, |a, &v| a | v);
    let mut w = 0usize;
    while all != 0 {
        let mut factors = [0u64; LANES];
        for l in 0..LANES {
            let d = ((e[l] >> (4 * w)) & 0xF) as usize;
            factors[l] = table.entry(w, d).value();
        }
        for l in 0..LANES {
            acc[l] = mul_add_lane_u128(acc[l], factors[l], 0);
        }
        all >>= 4;
        w += 1;
    }
    acc
}

// ---------------------------------------------------------------------------
// Slice-level drivers: LANES-wide main loop + scalar tail, behind one
// dispatch point per call. These are what the sketch/core batch paths use.
// ---------------------------------------------------------------------------

#[inline(always)]
fn horner_many_with(
    mul_add: impl Fn(u64, u64, u64) -> u64 + Copy,
    coeffs: &[Fp],
    keys: &[u64],
    out: &mut [u64],
) {
    let whole = keys.len() - keys.len() % LANES;
    for (xs, os) in keys[..whole].chunks_exact(LANES).zip(out[..whole].chunks_exact_mut(LANES)) {
        let mut acc = [0u64; LANES];
        for &c in coeffs.iter().rev() {
            let cv = c.value();
            for l in 0..LANES {
                debug_assert!(xs[l] < MERSENNE_P, "horner_many requires canonical keys");
                acc[l] = mul_add(acc[l], xs[l], cv);
            }
        }
        os.copy_from_slice(&acc);
    }
    for (&x, o) in keys[whole..].iter().zip(out[whole..].iter_mut()) {
        *o = crate::field::horner(coeffs, Fp::from_reduced(x)).value();
    }
}

#[inline(always)]
fn pow_many_with(
    mul: impl Fn(u64, u64, u64) -> u64 + Copy,
    table: &PowTable,
    exps: &[u64],
    out: &mut [u64],
) {
    let whole = exps.len() - exps.len() % LANES;
    for (es, os) in exps[..whole].chunks_exact(LANES).zip(out[..whole].chunks_exact_mut(LANES)) {
        let mut acc = [1u64; LANES];
        let mut all = es.iter().fold(0u64, |a, &v| a | v);
        let mut w = 0usize;
        while all != 0 {
            for l in 0..LANES {
                let d = ((es[l] >> (4 * w)) & 0xF) as usize;
                acc[l] = mul(acc[l], table.entry(w, d).value(), 0);
            }
            all >>= 4;
            w += 1;
        }
        os.copy_from_slice(&acc);
    }
    for (&e, o) in exps[whole..].iter().zip(out[whole..].iter_mut()) {
        *o = table.pow(e).value();
    }
}

#[inline(always)]
fn mul_mod_many_with(
    mul: impl Fn(u64, u64, u64) -> u64 + Copy,
    a: &[u64],
    b: &[u64],
    out: &mut [u64],
) {
    for ((&x, &y), o) in a.iter().zip(b.iter()).zip(out.iter_mut()) {
        *o = mul(x, y, 0);
    }
}

/// Explicitly multiversioned x86-64 wrappers: the same generic drivers,
/// instantiated with the 32-bit-limb lane kernel and compiled with AVX2
/// enabled so the fixed-width inner loops lower to packed `vpmuludq`
/// multiplies. Selected at runtime by [`avx2_available`]; never compiled
/// without the `simd` feature, which keeps the default build `unsafe`-free.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    #![allow(unsafe_code)]

    use super::*;

    /// # Safety
    /// Caller must have verified AVX2 support (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn horner_many(coeffs: &[Fp], keys: &[u64], out: &mut [u64]) {
        horner_many_with(mul_add_lane_limb, coeffs, keys, out);
    }

    /// # Safety
    /// Caller must have verified AVX2 support (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pow_many(table: &PowTable, exps: &[u64], out: &mut [u64]) {
        pow_many_with(mul_add_lane_limb, table, exps, out);
    }

    /// # Safety
    /// Caller must have verified AVX2 support (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_mod_many(a: &[u64], b: &[u64], out: &mut [u64]) {
        mul_mod_many_with(mul_add_lane_limb, a, b, out);
    }

    /// # Safety
    /// Caller must have verified AVX2 support (see [`super::avx2_available`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn poly_bank_eval(bank: &PolyBank, key: u64, out: &mut [u64]) {
        bank.eval_key_with(mul_add_lane_limb, key, out);
    }
}

/// Runtime AVX2 detection (cached by `std` behind an atomic load), checked
/// once per slice-level batch call, not per lane group.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx2_available() -> bool {
    std::is_x86_feature_detected!("avx2")
}

/// Evaluate the polynomial at every key in `keys` (all canonical residues),
/// writing canonical hash values into `out`. Bit-identical to calling
/// `horner(coeffs, Fp::from_reduced(key))` per key; `keys.len()` need not be
/// a multiple of [`LANES`] — the remainder runs through the scalar kernel.
#[cfg_attr(feature = "simd", allow(unsafe_code))]
pub fn horner_many(coeffs: &[Fp], keys: &[u64], out: &mut [u64]) {
    assert_eq!(keys.len(), out.len(), "horner_many output length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: dispatch is guarded by runtime AVX2 detection.
        unsafe { avx2::horner_many(coeffs, keys, out) };
        return;
    }
    horner_many_with(mul_add_lane_u128, coeffs, keys, out);
}

/// Compute `base^e` for every exponent in `exps` from the windowed table,
/// writing canonical residues into `out`. Bit-identical to [`PowTable::pow`]
/// per exponent, any slice length.
#[cfg_attr(feature = "simd", allow(unsafe_code))]
pub fn pow_many(table: &PowTable, exps: &[u64], out: &mut [u64]) {
    assert_eq!(exps.len(), out.len(), "pow_many output length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: dispatch is guarded by runtime AVX2 detection.
        unsafe { avx2::pow_many(table, exps, out) };
        return;
    }
    pow_many_with(mul_add_lane_u128, table, exps, out);
}

/// Element-wise field products of canonical residues:
/// `out[i] = a[i]·b[i] mod P`. Used to fold per-update signed deltas into
/// batched fingerprint powers.
#[cfg_attr(feature = "simd", allow(unsafe_code))]
pub fn mul_mod_many(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(a.len() == b.len() && a.len() == out.len(), "mul_mod_many length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2_available() {
        // SAFETY: dispatch is guarded by runtime AVX2 detection.
        unsafe { avx2::mul_mod_many(a, b, out) };
        return;
    }
    mul_mod_many_with(mul_add_lane_u128, a, b, out);
}

/// The rows×keys variant, transposed: a bank of same-degree polynomials laid
/// out coefficient-major so one key can be evaluated against **all** of them
/// with lanes running across polynomials.
///
/// This is the shape of the AMS table walk — `groups × group_size` 4-wise
/// sign polynomials all evaluated at each update's coordinate — where the
/// per-key loop over hash functions, not the per-hash loop over keys, is the
/// hot axis. Building a bank costs one pass over the coefficient vectors
/// (`degree × count` copies), amortised over every key in a batch.
#[derive(Debug, Clone)]
pub struct PolyBank {
    count: usize,
    degree: usize,
    /// Lane-padded polynomial count (`count` rounded up to [`LANES`]).
    padded: usize,
    /// `coeffs[j * padded + h]` = coefficient `j` of polynomial `h`
    /// (constant term first); the pad lanes hold zero polynomials.
    coeffs: Vec<u64>,
}

impl PolyBank {
    /// Build a bank from polynomials' coefficient slices (constant term
    /// first, as [`crate::KWiseHash::coefficients`] exposes them). All
    /// polynomials must share one degree; the bank may be empty.
    pub fn new<'a, I>(polys: I) -> Self
    where
        I: IntoIterator<Item = &'a [Fp]>,
    {
        let polys: Vec<&[Fp]> = polys.into_iter().collect();
        let count = polys.len();
        let degree = polys.first().map_or(0, |p| p.len());
        let padded = count.div_ceil(LANES).max(1) * LANES;
        let mut coeffs = vec![0u64; degree * padded];
        for (h, poly) in polys.iter().enumerate() {
            assert_eq!(poly.len(), degree, "PolyBank polynomials must share a degree");
            for (j, c) in poly.iter().enumerate() {
                coeffs[j * padded + h] = c.value();
            }
        }
        PolyBank { count, degree, padded, coeffs }
    }

    /// Number of polynomials in the bank.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Coefficients per polynomial (the independence parameter k).
    pub fn degree(&self) -> usize {
        self.degree
    }

    #[inline(always)]
    fn eval_key_with(
        &self,
        mul_add: impl Fn(u64, u64, u64) -> u64 + Copy,
        key: u64,
        out: &mut [u64],
    ) {
        debug_assert!(key < MERSENNE_P, "PolyBank requires canonical keys");
        for chunk in 0..self.padded / LANES {
            let base = chunk * LANES;
            let mut acc = [0u64; LANES];
            for j in (0..self.degree).rev() {
                let row = &self.coeffs[j * self.padded + base..j * self.padded + base + LANES];
                for l in 0..LANES {
                    acc[l] = mul_add(acc[l], key, row[l]);
                }
            }
            let take = LANES.min(self.count - base.min(self.count));
            out[base..base + take].copy_from_slice(&acc[..take]);
        }
    }

    /// Evaluate every polynomial at `key` (a canonical residue), writing one
    /// canonical hash value per polynomial into `out` (length ≥
    /// [`PolyBank::count`]). Bit-identical to running scalar Horner per
    /// polynomial.
    #[cfg_attr(feature = "simd", allow(unsafe_code))]
    pub fn eval_key(&self, key: u64, out: &mut [u64]) {
        assert!(out.len() >= self.count, "PolyBank output buffer too small");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if avx2_available() {
            // SAFETY: dispatch is guarded by runtime AVX2 detection.
            unsafe { avx2::poly_bank_eval(self, key, out) };
            return;
        }
        self.eval_key_with(mul_add_lane_u128, key, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{horner, mul_mod};
    use crate::seeds::SeedSequence;

    const P1: u64 = MERSENNE_P - 1;

    fn edge_and_random_values(n: usize, seed: u64) -> Vec<u64> {
        let mut vals = vec![0u64, 1, 2, 0xFFFF_FFFF, 1 << 32, P1 - 1, P1];
        let mut s = SeedSequence::new(seed);
        while vals.len() < n {
            vals.push(s.next_below(MERSENNE_P));
        }
        vals.truncate(n);
        vals
    }

    #[test]
    fn limb_kernel_matches_u128_kernel_on_edges_and_random_sweep() {
        let edge = [0u64, 1, 2, 0xFFFF_FFFF, 1 << 32, (1 << 61) - 3, P1];
        for &a in &edge {
            for &b in &edge {
                for &c in &edge {
                    assert_eq!(
                        mul_add_lane_limb(a, b, c),
                        mul_add_lane_u128(a, b, c),
                        "limb kernel diverged at a={a} b={b} c={c}"
                    );
                }
            }
        }
        let mut s = SeedSequence::new(0x11B);
        for _ in 0..5000 {
            let (a, b, c) =
                (s.next_below(MERSENNE_P), s.next_below(MERSENNE_P), s.next_below(MERSENNE_P));
            assert_eq!(mul_add_lane_limb(a, b, c), mul_add_lane_u128(a, b, c));
        }
    }

    #[test]
    fn reduce_lanes_matches_scalar_reduction() {
        let v: Lanes = [0, 1, MERSENNE_P, MERSENNE_P + 1, u64::MAX, P1, 1 << 62, 42];
        let reduced = reduce_lanes(&v);
        for l in 0..LANES {
            assert_eq!(reduced[l], Fp::new(v[l]).value());
        }
    }

    #[test]
    fn mul_lanes_match_scalar_mul_mod() {
        let a: Lanes = [0, 1, P1, P1, 123456789, 1 << 60, P1 - 1, 7];
        let b: Lanes = [P1, P1, P1, 2, 987654321, (1 << 60) + 12345, P1 - 1, 11];
        let prod = mul_mod_lanes(&a, &b);
        for l in 0..LANES {
            assert_eq!(prod[l], mul_mod(a[l], b[l]), "lane {l}");
        }
        let c: Lanes = [P1, 0, P1, 1, 5, P1, P1 - 1, 13];
        let fused = mul_add_mod_lanes(&a, &b, &c);
        for l in 0..LANES {
            assert_eq!(
                fused[l],
                Fp::from_reduced(a[l])
                    .mul_add(Fp::from_reduced(b[l]), Fp::from_reduced(c[l]))
                    .value(),
                "fused lane {l}"
            );
        }
    }

    #[test]
    fn horner_lanes_and_many_match_scalar_for_every_tail_length() {
        let mut s = SeedSequence::new(7);
        for k in [1usize, 2, 4, 16, 32] {
            let coeffs: Vec<Fp> = (0..k).map(|_| Fp::new(s.next_below(MERSENNE_P))).collect();
            for len in 0..(3 * LANES + 1) {
                let keys = edge_and_random_values(len, 0xABC + len as u64);
                let mut out = vec![0u64; len];
                horner_many(&coeffs, &keys, &mut out);
                for (i, &key) in keys.iter().enumerate() {
                    assert_eq!(
                        out[i],
                        horner(&coeffs, Fp::from_reduced(key)).value(),
                        "k={k} len={len} i={i}"
                    );
                }
            }
            let x: Lanes = edge_and_random_values(LANES, 99).try_into().unwrap();
            let lanes = horner_lanes(&coeffs, &x);
            for l in 0..LANES {
                assert_eq!(lanes[l], horner(&coeffs, Fp::from_reduced(x[l])).value());
            }
        }
    }

    #[test]
    fn pow_lanes_and_many_match_windowed_scalar() {
        for base in [Fp::new(2), Fp::new(123456789012345), Fp::new(P1), Fp::ZERO, Fp::ONE] {
            let table = PowTable::new(base);
            let e: Lanes = [0, 1, 15, 16, (1 << 40) - 1, 0xDEAD_BEEF_CAFE_F00D, u64::MAX, P1 - 1];
            let lanes = pow_lanes(&table, &e);
            for l in 0..LANES {
                assert_eq!(lanes[l], table.pow(e[l]).value(), "base {} lane {l}", base.value());
            }
            for len in 0..(2 * LANES + 3) {
                let exps: Vec<u64> =
                    (0..len as u64).map(|i| i.wrapping_mul(0x9E37_79B9) ^ e[0]).collect();
                let mut out = vec![0u64; len];
                pow_many(&table, &exps, &mut out);
                for (i, &exp) in exps.iter().enumerate() {
                    assert_eq!(out[i], table.pow(exp).value(), "len={len} i={i}");
                }
            }
        }
    }

    #[test]
    fn mul_mod_many_matches_scalar_elementwise() {
        let a = edge_and_random_values(LANES * 2 + 5, 1);
        let b = edge_and_random_values(LANES * 2 + 5, 2);
        let mut out = vec![0u64; a.len()];
        mul_mod_many(&a, &b, &mut out);
        for i in 0..a.len() {
            assert_eq!(out[i], mul_mod(a[i], b[i]), "i={i}");
        }
    }

    #[test]
    fn poly_bank_matches_per_polynomial_horner() {
        let mut s = SeedSequence::new(0xBA4C);
        // counts straddling the lane width, including a remainder tail
        for count in [0usize, 1, 7, 8, 9, 27] {
            let polys: Vec<Vec<Fp>> = (0..count)
                .map(|_| (0..4).map(|_| Fp::new(s.next_below(MERSENNE_P))).collect())
                .collect();
            let bank = PolyBank::new(polys.iter().map(|p| p.as_slice()));
            assert_eq!(bank.count(), count);
            let mut out = vec![0u64; count];
            for key in [0u64, 1, 123456, P1, (1 << 40) - 1] {
                bank.eval_key(key, &mut out);
                for (h, poly) in polys.iter().enumerate() {
                    assert_eq!(
                        out[h],
                        horner(poly, Fp::from_reduced(key)).value(),
                        "count={count} key={key} poly={h}"
                    );
                }
            }
        }
    }
}

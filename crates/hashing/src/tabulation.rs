//! Simple tabulation hashing.
//!
//! Tabulation hashing splits a 64-bit key into 8 bytes and XORs together one
//! random 64-bit table entry per byte. It is 3-independent, extremely fast,
//! and behaves like a fully random function for most streaming tasks. We use
//! it where speed matters more than provable k-wise independence: workload
//! generators, the Gopalan–Radhakrishnan baseline, and the level hashes of
//! the Frahling–Indyk–Sohler-style L0 baseline.

use std::sync::Arc;

use crate::seeds::{SeedPool, SeedSequence};

const BYTES: usize = 8;
const TABLE: usize = 256;

/// A simple tabulation hash function on 64-bit keys.
///
/// The 16 KiB of random tables — the complete seed material — live behind an
/// [`Arc`], so clones share the allocation; a clone's own state is zero bytes
/// (see [`crate::KWiseHash`] for the rationale: per-tenant sketch fleets).
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Arc<[[u64; TABLE]; BYTES]>,
}

impl TabulationHash {
    /// Sample a fresh tabulation hash function (8 * 256 random words).
    pub fn new(seeds: &mut SeedSequence) -> Self {
        let mut tables = Box::new([[0u64; TABLE]; BYTES]);
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = seeds.next_u64();
            }
        }
        TabulationHash { tables: tables.into() }
    }

    /// Rebuild a hash function from previously stored tables — the inverse of
    /// [`TabulationHash::tables`], used by the serialization layer.
    pub fn from_tables(tables: Box<[[u64; 256]; 8]>) -> Self {
        TabulationHash { tables: tables.into() }
    }

    /// Construct from already-shared tables: the hash function reuses the
    /// `Arc` instead of copying 16 KiB of seed material.
    pub fn with_seeds(tables: Arc<[[u64; 256]; 8]>) -> Self {
        TabulationHash { tables }
    }

    /// Sample the pool's tabulation hash function: every call with the same
    /// pool returns an identically-seeded function.
    pub fn from_pool(pool: &SeedPool) -> Self {
        TabulationHash::new(&mut pool.sequence_for(0x7AB7_AB7A))
    }

    /// The shared table allocation, for threading one seed allocation through
    /// many instances via [`TabulationHash::with_seeds`].
    pub fn shared_seeds(&self) -> Arc<[[u64; 256]; 8]> {
        Arc::clone(&self.tables)
    }

    /// The full random tables (the seed material: 8 byte positions × 256
    /// entries), exposed so the codec layer can serialize them.
    pub fn tables(&self) -> &[[u64; 256]; 8] {
        &self.tables
    }

    /// Hash a 64-bit key to a 64-bit value.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let mut acc = 0u64;
        let bytes = key.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            acc ^= self.tables[i][b as usize];
        }
        acc
    }

    /// Map a key to a bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        ((self.hash(key) as u128 * m as u128) >> 64) as usize
    }

    /// Map a key to a uniform value in `[0, 1)`.
    #[inline]
    pub fn unit_interval(&self, key: u64) -> f64 {
        (self.hash(key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Map a key to a sign in `{-1, +1}`.
    #[inline]
    pub fn sign(&self, key: u64) -> i64 {
        if self.hash(key) & 1 == 1 {
            1
        } else {
            -1
        }
    }

    /// Random bits stored by the tables.
    pub fn random_bits(&self) -> u64 {
        (BYTES * TABLE * 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut s = SeedSequence::new(1);
        let h = TabulationHash::new(&mut s);
        assert_eq!(h.hash(42), h.hash(42));
        assert_eq!(h.bucket(42, 97), h.bucket(42, 97));
    }

    #[test]
    fn bucket_in_range_and_spread() {
        let mut s = SeedSequence::new(2);
        let h = TabulationHash::new(&mut s);
        let m = 10usize;
        let mut counts = vec![0u64; m];
        for key in 0..20_000u64 {
            let b = h.bucket(key, m);
            assert!(b < m);
            counts[b] += 1;
        }
        let expected = 2000.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.15);
        }
    }

    #[test]
    fn unit_interval_in_range() {
        let mut s = SeedSequence::new(3);
        let h = TabulationHash::new(&mut s);
        for key in 0..1000u64 {
            let u = h.unit_interval(key);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let mut s = SeedSequence::new(4);
        let h = TabulationHash::new(&mut s);
        let mut total_flips = 0u32;
        let samples = 200u64;
        for key in 0..samples {
            let a = h.hash(key);
            let b = h.hash(key ^ 1);
            total_flips += (a ^ b).count_ones();
        }
        let avg = total_flips as f64 / samples as f64;
        assert!(avg > 20.0 && avg < 44.0, "poor avalanche: {avg}");
    }

    #[test]
    fn clones_and_pool_draws_share_or_agree() {
        let mut s = SeedSequence::new(6);
        let h = TabulationHash::new(&mut s);
        assert!(Arc::ptr_eq(&h.shared_seeds(), &h.clone().shared_seeds()));
        let rebuilt = TabulationHash::with_seeds(h.shared_seeds());
        assert_eq!(h.hash(123456789), rebuilt.hash(123456789));

        let pool = SeedPool::new(7);
        let a = TabulationHash::from_pool(&pool);
        let b = TabulationHash::from_pool(&pool);
        assert_eq!(a.hash(42), b.hash(42));
        assert_eq!(a.tables(), b.tables());
    }

    #[test]
    fn random_bits_accounting() {
        let mut s = SeedSequence::new(5);
        let h = TabulationHash::new(&mut s);
        assert_eq!(h.random_bits(), 8 * 256 * 64);
    }
}

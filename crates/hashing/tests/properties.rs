//! Property-based tests for the field arithmetic and hash families.

use lps_hash::{Fp, KWiseHash, SeedSequence, MERSENNE_P};
use proptest::prelude::*;

fn ref_add(a: u64, b: u64) -> u64 {
    (((a as u128 % MERSENNE_P as u128) + (b as u128 % MERSENNE_P as u128)) % MERSENNE_P as u128)
        as u64
}

fn ref_mul(a: u64, b: u64) -> u64 {
    (((a as u128 % MERSENNE_P as u128) * (b as u128 % MERSENNE_P as u128)) % MERSENNE_P as u128)
        as u64
}

proptest! {
    #[test]
    fn field_add_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!((Fp::new(a) + Fp::new(b)).value(), ref_add(a, b));
    }

    #[test]
    fn field_mul_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!((Fp::new(a) * Fp::new(b)).value(), ref_mul(a, b));
    }

    #[test]
    fn field_sub_is_inverse_of_add(a in any::<u64>(), b in any::<u64>()) {
        let x = Fp::new(a);
        let y = Fp::new(b);
        prop_assert_eq!((x + y - y).value(), x.value());
    }

    #[test]
    fn field_mul_is_commutative_and_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!((x * y).value(), (y * x).value());
        prop_assert_eq!(((x * y) * z).value(), (x * (y * z)).value());
    }

    #[test]
    fn field_distributivity(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!((x * (y + z)).value(), (x * y + x * z).value());
    }

    #[test]
    fn nonzero_elements_have_inverses(a in 1u64..MERSENNE_P) {
        let x = Fp::new(a);
        let inv = x.inv().unwrap();
        prop_assert_eq!((x * inv).value(), 1);
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication(a in any::<u64>(), e in 0u64..64) {
        let x = Fp::new(a);
        let mut expected = Fp::ONE;
        for _ in 0..e {
            expected *= x;
        }
        prop_assert_eq!(x.pow(e).value(), expected.value());
    }

    #[test]
    // hash keys are field residues (stream indices in practice), so the
    // strategies draw from [0, P) — the domain the fast constructor asserts
    fn kwise_hash_outputs_are_in_field_and_deterministic(seed in any::<u64>(), key in 0..MERSENNE_P, k in 1usize..8) {
        let mut s1 = SeedSequence::new(seed);
        let mut s2 = SeedSequence::new(seed);
        let h1 = KWiseHash::new(k, &mut s1);
        let h2 = KWiseHash::new(k, &mut s2);
        let v = h1.hash(key);
        prop_assert!(v < MERSENNE_P);
        prop_assert_eq!(v, h2.hash(key));
    }

    #[test]
    fn kwise_bucket_and_unit_interval_ranges(seed in any::<u64>(), key in 0..MERSENNE_P, m in 1usize..10_000) {
        let mut s = SeedSequence::new(seed);
        let h = KWiseHash::new(4, &mut s);
        prop_assert!(h.bucket(key, m) < m);
        let u = h.unit_interval(key);
        prop_assert!(u > 0.0 && u <= 1.0);
        let sign = h.sign(key);
        prop_assert!(sign == 1 || sign == -1);
    }

    #[test]
    fn seed_sequence_next_below_is_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut s = SeedSequence::new(seed);
        prop_assert!(s.next_below(bound) < bound);
    }
}

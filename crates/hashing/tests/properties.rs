//! Property-based tests for the field arithmetic and hash families.

use lps_hash::field::horner;
use lps_hash::simd::{
    self, horner_lanes, mul_add_mod_lanes, mul_mod_lanes, pow_lanes, reduce_lanes, Lanes, PolyBank,
    LANES,
};
use lps_hash::{Fp, KWiseHash, PowTable, SeedSequence, MERSENNE_P};
use proptest::prelude::*;

fn ref_add(a: u64, b: u64) -> u64 {
    (((a as u128 % MERSENNE_P as u128) + (b as u128 % MERSENNE_P as u128)) % MERSENNE_P as u128)
        as u64
}

fn ref_mul(a: u64, b: u64) -> u64 {
    (((a as u128 % MERSENNE_P as u128) * (b as u128 % MERSENNE_P as u128)) % MERSENNE_P as u128)
        as u64
}

proptest! {
    #[test]
    fn field_add_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!((Fp::new(a) + Fp::new(b)).value(), ref_add(a, b));
    }

    #[test]
    fn field_mul_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!((Fp::new(a) * Fp::new(b)).value(), ref_mul(a, b));
    }

    #[test]
    fn field_sub_is_inverse_of_add(a in any::<u64>(), b in any::<u64>()) {
        let x = Fp::new(a);
        let y = Fp::new(b);
        prop_assert_eq!((x + y - y).value(), x.value());
    }

    #[test]
    fn field_mul_is_commutative_and_associative(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!((x * y).value(), (y * x).value());
        prop_assert_eq!(((x * y) * z).value(), (x * (y * z)).value());
    }

    #[test]
    fn field_distributivity(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (Fp::new(a), Fp::new(b), Fp::new(c));
        prop_assert_eq!((x * (y + z)).value(), (x * y + x * z).value());
    }

    #[test]
    fn nonzero_elements_have_inverses(a in 1u64..MERSENNE_P) {
        let x = Fp::new(a);
        let inv = x.inv().unwrap();
        prop_assert_eq!((x * inv).value(), 1);
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication(a in any::<u64>(), e in 0u64..64) {
        let x = Fp::new(a);
        let mut expected = Fp::ONE;
        for _ in 0..e {
            expected *= x;
        }
        prop_assert_eq!(x.pow(e).value(), expected.value());
    }

    #[test]
    // hash keys are field residues (stream indices in practice), so the
    // strategies draw from [0, P) — the domain the fast constructor asserts
    fn kwise_hash_outputs_are_in_field_and_deterministic(seed in any::<u64>(), key in 0..MERSENNE_P, k in 1usize..8) {
        let mut s1 = SeedSequence::new(seed);
        let mut s2 = SeedSequence::new(seed);
        let h1 = KWiseHash::new(k, &mut s1);
        let h2 = KWiseHash::new(k, &mut s2);
        let v = h1.hash(key);
        prop_assert!(v < MERSENNE_P);
        prop_assert_eq!(v, h2.hash(key));
    }

    #[test]
    fn kwise_bucket_and_unit_interval_ranges(seed in any::<u64>(), key in 0..MERSENNE_P, m in 1usize..10_000) {
        let mut s = SeedSequence::new(seed);
        let h = KWiseHash::new(4, &mut s);
        prop_assert!(h.bucket(key, m) < m);
        let u = h.unit_interval(key);
        prop_assert!(u > 0.0 && u <= 1.0);
        let sign = h.sign(key);
        prop_assert!(sign == 1 || sign == -1);
    }

    #[test]
    fn seed_sequence_next_below_is_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut s = SeedSequence::new(seed);
        prop_assert!(s.next_below(bound) < bound);
    }
}

/// Lanes mixing random residues with the edge values the Mersenne reduction
/// is most likely to get wrong: 0, 1, P−1, and the 32-bit limb boundary.
fn lanes_with_edges(seed: u64) -> Lanes {
    let mut s = SeedSequence::new(seed);
    let mut lanes = [0u64; LANES];
    for lane in lanes.iter_mut() {
        *lane = s.next_below(MERSENNE_P);
    }
    lanes[0] = MERSENNE_P - 1;
    lanes[1] = 0;
    lanes[2] = 1;
    lanes[3] = 0xFFFF_FFFF;
    lanes
}

proptest! {
    #[test]
    fn lane_mul_and_fused_mul_add_match_scalar(sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>()) {
        let a = lanes_with_edges(sa);
        let b = lanes_with_edges(sb);
        let c = lanes_with_edges(sc);
        let prod = mul_mod_lanes(&a, &b);
        let fused = mul_add_mod_lanes(&a, &b, &c);
        for l in 0..LANES {
            let (x, y, z) = (Fp::from_reduced(a[l]), Fp::from_reduced(b[l]), Fp::from_reduced(c[l]));
            prop_assert_eq!(prod[l], x.mul(y).value());
            prop_assert_eq!(fused[l], x.mul(y).add(z).value());
        }
    }

    #[test]
    fn lane_reduce_matches_scalar_over_full_u64_range(seed in any::<u64>()) {
        let mut s = SeedSequence::new(seed);
        let mut v = [0u64; LANES];
        for lane in v.iter_mut() {
            *lane = s.next_u64();
        }
        v[0] = u64::MAX;
        v[1] = MERSENNE_P;
        let reduced = reduce_lanes(&v);
        for l in 0..LANES {
            prop_assert_eq!(reduced[l], Fp::new(v[l]).value());
        }
    }

    #[test]
    fn lane_horner_matches_scalar_horner(seed in any::<u64>(), xs in any::<u64>(), k in 1usize..8) {
        let mut s = SeedSequence::new(seed);
        let coeffs: Vec<Fp> = (0..k).map(|_| Fp::new(s.next_u64())).collect();
        let x = lanes_with_edges(xs);
        let got = horner_lanes(&coeffs, &x);
        for l in 0..LANES {
            prop_assert_eq!(got[l], horner(&coeffs, Fp::from_reduced(x[l])).value());
        }
    }

    #[test]
    fn horner_many_matches_per_key_hash_for_remainder_tails(seed in any::<u64>(), len in 0usize..40, k in 1usize..8) {
        let mut s = SeedSequence::new(seed);
        let h = KWiseHash::new(k, &mut s);
        let mut keys: Vec<u64> = (0..len).map(|_| s.next_below(MERSENNE_P)).collect();
        if len > 0 {
            keys[0] = MERSENNE_P - 1;
        }
        let mut out = vec![0u64; len];
        h.hash_keys(&keys, &mut out);
        for (i, &key) in keys.iter().enumerate() {
            prop_assert_eq!(out[i], h.hash(key));
        }
    }

    #[test]
    fn pow_lanes_and_many_match_windowed_scalar(base in any::<u64>(), es in any::<u64>(), len in 0usize..20) {
        let table = PowTable::new(Fp::new(base));
        let mut e = lanes_with_edges(es);
        e[4] = u64::MAX;
        let got = pow_lanes(&table, &e);
        for l in 0..LANES {
            prop_assert_eq!(got[l], table.pow(e[l]).value());
        }
        let mut s = SeedSequence::new(es);
        let exps: Vec<u64> = (0..len).map(|_| s.next_u64()).collect();
        let mut out = vec![0u64; len];
        simd::pow_many(&table, &exps, &mut out);
        for (i, &exp) in exps.iter().enumerate() {
            prop_assert_eq!(out[i], table.pow(exp).value());
        }
    }

    #[test]
    fn poly_bank_matches_scalar_horner_per_polynomial(seed in any::<u64>(), count in 0usize..20, key in 0..MERSENNE_P) {
        let mut s = SeedSequence::new(seed);
        let polys: Vec<Vec<Fp>> = (0..count)
            .map(|_| (0..4).map(|_| Fp::new(s.next_u64())).collect())
            .collect();
        let bank = PolyBank::new(polys.iter().map(|p| p.as_slice()));
        let mut out = vec![0u64; count];
        bank.eval_key(key, &mut out);
        for (h, poly) in polys.iter().enumerate() {
            prop_assert_eq!(out[h], horner(poly, Fp::from_reduced(key)).value());
        }
    }
}

//! Count-min / count-median heavy hitters — the prior baseline the paper's
//! Section 4.4 compares against (Cormode–Muthukrishnan, the p = 1 case).
//!
//! The count-min sketch with width `O(1/φ)` overestimates every coordinate by
//! at most `φ/4·‖x‖₁` (strict turnstile), so thresholding point queries at
//! `(3/4)φ·‖x‖₁` yields a valid heavy hitter set for p = 1. For general
//! update streams the same table is queried by medians (count-median). Either
//! way the space is `O(φ^{-1} log² n)` bits — the paper's contribution is
//! extending the φ^{-p} trade-off to every `p ∈ (0, 2]` via count-sketch.

use lps_hash::SeedSequence;
use lps_sketch::linear::LinearSketch;
use lps_sketch::persist::tags;
use lps_sketch::{
    CountMinSketch, DecodeError, Mergeable, PStableSketch, Persist, StateDigest, WireReader,
    WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update, UpdateStream};

/// Count-min based heavy hitters for the strict turnstile model, p = 1.
#[derive(Debug, Clone)]
pub struct CountMinHeavyHitters {
    dimension: u64,
    phi: f64,
    sketch: CountMinSketch,
    norm: PStableSketch,
}

impl CountMinHeavyHitters {
    /// Create a heavy hitter structure for threshold φ under the L1 norm.
    pub fn new(dimension: u64, phi: f64, seeds: &mut SeedSequence) -> Self {
        assert!(phi > 0.0 && phi < 1.0);
        let width = ((4.0 / phi).ceil() as usize).max(2);
        let rows = (((dimension.max(4) as f64).log2()).ceil() as usize).max(5) | 1;
        let sketch = CountMinSketch::new(dimension, width, rows, seeds);
        let norm = PStableSketch::with_default_rows(dimension, 1.0, seeds);
        CountMinHeavyHitters { dimension, phi, sketch, norm }
    }

    /// The heaviness threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// Width of the underlying count-min table.
    pub fn width(&self) -> usize {
        self.sketch.width()
    }

    /// Process a single update.
    pub fn update(&mut self, index: u64, delta: i64) {
        self.sketch.update(index, delta);
        self.norm.update(index, delta as f64);
    }

    /// Process a batch of updates through both internal sketches' batched
    /// fast paths.
    pub fn process_batch(&mut self, updates: &[Update]) {
        self.sketch.process_batch(updates);
        self.norm.process_batch(updates);
    }

    /// Process a whole stream through the batched path.
    pub fn process(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Report the heavy hitter set using the internal L1 norm estimate.
    pub fn report(&self) -> Vec<u64> {
        let r = self.norm.upper_estimate();
        if r.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Vec::new();
        }
        self.report_with_norm(0.75 * r)
    }

    /// Report using an externally supplied (e.g. exact) value of `‖x‖₁`.
    pub fn report_with_norm(&self, norm: f64) -> Vec<u64> {
        let threshold = 0.75 * self.phi * norm;
        (0..self.dimension).filter(|&i| self.sketch.estimate(i) as f64 >= threshold).collect()
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. The inner p-stable norm counters are dense `f64` sums, so
    /// sharding this driver is approximate (estimator-level drift, see
    /// [`Mergeable::merge_from`]); the engine requires an explicit
    /// approximate-tolerance plan to drive it.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        lps_sketch::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// coincides with [`Mergeable::merge_from`] on both inner sketches.
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl Mergeable for CountMinHeavyHitters {
    /// Merge an identically-seeded driver by composing its inner merges
    /// (exact integer count-min table, float p-stable norm counters).
    ///
    /// Under sharded ingestion the count-min table is bit-exact and only the
    /// p-stable norm counters drift, by at most `~2kε` relative per counter
    /// (`k` = shard count, `ε = 2⁻⁵³`, modulo cancellation; Kahan
    /// compensation keeps each shard's sums exact to `O(ε)`) — far
    /// below the φ-threshold margins, so non-marginal reports are unchanged
    /// (measured in `tests/float_drift.rs`).
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.phi, other.phi, "threshold mismatch");
        self.sketch.merge(&other.sketch);
        self.norm.merge_from(&other.norm);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.sketch.state_digest()).write_u64(self.norm.state_digest());
        d.finish()
    }
}

impl Persist for CountMinHeavyHitters {
    const TAG: u16 = tags::CM_HEAVY_HITTERS;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_f64(self.phi);
        self.sketch.encode_seeds(w);
        self.norm.encode_seeds(w);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        self.sketch.encode_counters(w);
        self.norm.encode_counters(w);
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let phi = seeds.read_finite_f64("heavy hitter phi must be finite")?;
        if dimension == 0 || !(phi > 0.0 && phi < 1.0) {
            return Err(DecodeError::Corrupt {
                context: "count-min heavy hitters need phi in (0, 1)",
            });
        }
        let sketch = CountMinSketch::decode_parts(seeds, counters)?;
        let norm = PStableSketch::decode_parts(seeds, counters)?;
        Ok(CountMinHeavyHitters { dimension, phi, sketch, norm })
    }
}

impl SpaceUsage for CountMinHeavyHitters {
    fn space(&self) -> SpaceBreakdown {
        self.sketch.space().combine(&self.norm.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_hh::is_valid_heavy_hitter_set;
    use lps_stream::{zipf_stream, TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn finds_planted_heavy_hitters() {
        let n = 2048u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::Strict);
        stream.push(Update::new(42, 5000));
        for i in 0..n {
            stream.push(Update::new(i, 2));
        }
        let truth = TruthVector::from_stream(&stream);
        let phi = 0.25;
        let mut s = seeds(1);
        let mut hh = CountMinHeavyHitters::new(n, phi, &mut s);
        hh.process(&stream);
        let reported = hh.report_with_norm(truth.lp_norm(1.0));
        assert!(reported.contains(&42));
        assert!(is_valid_heavy_hitter_set(&truth, 1.0, phi, &reported).is_valid());
    }

    #[test]
    fn zipfian_stream_valid_set() {
        let n = 1024u64;
        let mut gen = seeds(2);
        let stream = zipf_stream(n, 20_000, 1.4, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        let phi = 0.0625;
        let mut s = seeds(3);
        let mut hh = CountMinHeavyHitters::new(n, phi, &mut s);
        hh.process(&stream);
        let reported = hh.report_with_norm(truth.lp_norm(1.0));
        assert!(is_valid_heavy_hitter_set(&truth, 1.0, phi, &reported).is_valid());
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let mut s = seeds(4);
        let hh = CountMinHeavyHitters::new(128, 0.25, &mut s);
        assert!(hh.report().is_empty());
    }

    #[test]
    fn width_scales_with_inverse_phi() {
        let mut s = seeds(5);
        let coarse = CountMinHeavyHitters::new(1024, 0.25, &mut s);
        let fine = CountMinHeavyHitters::new(1024, 0.025, &mut s);
        assert!(fine.width() > 5 * coarse.width());
        assert!(fine.bits_used() > coarse.bits_used());
    }
}

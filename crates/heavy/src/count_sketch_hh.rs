//! The paper's heavy hitter upper bound: count-sketch with `m = 1/φ^p`
//! (Section 4.4).
//!
//! The argument in the paper: with count-sketch parameter `m`, every point
//! estimate errs by at most `d = Err^m_2(x)/√m`, and for any `p ∈ (0, 2]`
//! one has `d ≤ ‖x‖_p / m^{1/p}`. Setting `m = ⌈1/φ^p⌉` makes the error at
//! most `φ‖x‖_p` up to the constant absorbed by the gap between the φ and
//! φ/2 thresholds; reporting every coordinate whose estimate clears
//! `(3/4)φ·r̂` (with `r̂` a 2-approximation of `‖x‖_p` from the p-stable
//! sketch) therefore yields a valid heavy hitter set with high probability in
//! `O(φ^{-p} log² n)` bits — matching the Theorem 9 lower bound.

use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{
    CountSketch, DecodeError, LinearSketch, Mergeable, PStableSketch, Persist, StateDigest,
    WireReader, WireWriter,
};
use lps_stream::{SpaceBreakdown, SpaceUsage, Update, UpdateStream};

use crate::exact_hh::exact_heavy_hitters;

/// Count-sketch based heavy hitters for general update streams, any `p ∈ (0, 2]`.
#[derive(Debug, Clone)]
pub struct CountSketchHeavyHitters {
    dimension: u64,
    p: f64,
    phi: f64,
    sketch: CountSketch,
    norm: PStableSketch,
}

impl CountSketchHeavyHitters {
    /// Create a heavy hitter structure for threshold φ under the Lp norm.
    pub fn new(dimension: u64, p: f64, phi: f64, seeds: &mut SeedSequence) -> Self {
        assert!(p > 0.0 && p <= 2.0, "the count-sketch bound covers p in (0, 2]");
        assert!(phi > 0.0 && phi < 1.0);
        // m = ceil(1/phi^p), with a small constant for the norm-estimate slack
        let m = ((2.0 / phi.powf(p)).ceil() as usize).max(2);
        let sketch = CountSketch::with_default_rows(dimension, m, seeds);
        let norm = PStableSketch::with_default_rows(dimension, p, seeds);
        CountSketchHeavyHitters { dimension, p, phi, sketch, norm }
    }

    /// The count-sketch parameter m in use.
    pub fn m(&self) -> usize {
        self.sketch.m()
    }

    /// The heaviness threshold φ.
    pub fn phi(&self) -> f64 {
        self.phi
    }

    /// The norm exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Process a single update.
    pub fn update(&mut self, index: u64, delta: i64) {
        self.sketch.update(index, delta as f64);
        self.norm.update(index, delta as f64);
    }

    /// Process a batch of updates: the count-sketch coalesces and walks its
    /// table row-major, the norm sketch caches its p-stable coefficients.
    pub fn process_batch(&mut self, updates: &[Update]) {
        self.sketch.process_batch(updates);
        self.norm.process_batch(updates);
    }

    /// Process a whole stream through the batched path.
    pub fn process(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Report the heavy hitter set: every coordinate whose count-sketch
    /// estimate reaches `(3/4)·φ·r̂`, where `r̂ ≈ ‖x‖_p`.
    pub fn report(&self) -> Vec<u64> {
        // upper_estimate() is in [‖x‖_p, 2‖x‖_p]; halve it to centre the
        // threshold between the φ and φ/2 validity boundaries.
        let r = self.norm.upper_estimate();
        if r.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Vec::new();
        }
        let norm_guess = 0.75 * r; // in [0.75, 1.5]·‖x‖_p w.h.p.
        let threshold = 0.75 * self.phi * norm_guess;
        let mut out = Vec::new();
        for i in 0..self.dimension {
            if self.sketch.estimate(i).abs() >= threshold {
                out.push(i);
            }
        }
        out
    }

    /// Report using the *exact* norm (used by experiments to isolate the
    /// count-sketch error from the norm-estimation error).
    pub fn report_with_norm(&self, exact_norm: f64) -> Vec<u64> {
        let threshold = 0.75 * self.phi * exact_norm;
        (0..self.dimension).filter(|&i| self.sketch.estimate(i).abs() >= threshold).collect()
    }

    /// Convenience for tests: the exact heavy hitters of a ground-truth vector.
    pub fn exact(x: &lps_stream::TruthVector, p: f64, phi: f64) -> Vec<u64> {
        exact_heavy_hitters(x, p, phi)
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone. The inner p-stable norm counters are dense `f64` sums, so
    /// sharding this driver is approximate (estimator-level drift, see
    /// [`Mergeable::merge_from`]); the engine requires an explicit
    /// approximate-tolerance plan to drive it.
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        lps_sketch::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// coincides with [`Mergeable::merge_from`] on both inner sketches.
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl Mergeable for CountSketchHeavyHitters {
    /// Merge an identically-seeded driver by composing its inner merges:
    /// the count-sketch merge is exact for integer workloads, the p-stable
    /// norm merge is linear up to floating-point rounding.
    ///
    /// Under sharded ingestion only the p-stable norm counters drift, and by
    /// at most `~2kε` relative per counter (`k` = shard count, `ε = 2⁻⁵³`,
    /// modulo cancellation; Kahan compensation keeps each shard's sums
    /// exact to `O(ε)`) — orders of magnitude below the
    /// driver's φ-threshold margins, so the reported heavy-hitter set of a
    /// sharded run matches the sequential one except for coordinates sitting
    /// exactly on the threshold (measured in `tests/float_drift.rs`).
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.phi, other.phi, "threshold mismatch");
        assert_eq!(self.p, other.p, "exponent mismatch");
        self.sketch.merge_from(&other.sketch);
        self.norm.merge_from(&other.norm);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.sketch.state_digest()).write_u64(self.norm.state_digest());
        d.finish()
    }
}

impl Persist for CountSketchHeavyHitters {
    const TAG: u16 = tags::CS_HEAVY_HITTERS;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_f64(self.p);
        w.write_f64(self.phi);
        self.sketch.encode_seeds(w);
        self.norm.encode_seeds(w);
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        self.sketch.encode_counters(w);
        self.norm.encode_counters(w);
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let p = seeds.read_finite_f64("heavy hitter p must be finite")?;
        let phi = seeds.read_finite_f64("heavy hitter phi must be finite")?;
        if dimension == 0 || !(p > 0.0 && p <= 2.0) || !(phi > 0.0 && phi < 1.0) {
            return Err(DecodeError::Corrupt {
                context: "count-sketch heavy hitters need p in (0, 2] and phi in (0, 1)",
            });
        }
        let sketch = CountSketch::decode_parts(seeds, counters)?;
        let norm = PStableSketch::decode_parts(seeds, counters)?;
        Ok(CountSketchHeavyHitters { dimension, p, phi, sketch, norm })
    }
}

impl SpaceUsage for CountSketchHeavyHitters {
    fn space(&self) -> SpaceBreakdown {
        self.sketch.space().combine(&self.norm.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_hh::is_valid_heavy_hitter_set;
    use lps_stream::{zipf_stream, TruthVector, TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn m_scales_with_phi_and_p() {
        let mut s = seeds(1);
        let a = CountSketchHeavyHitters::new(1024, 1.0, 0.125, &mut s);
        let b = CountSketchHeavyHitters::new(1024, 1.0, 0.03125, &mut s);
        assert!(b.m() > a.m());
        let c = CountSketchHeavyHitters::new(1024, 2.0, 0.125, &mut s);
        assert!(c.m() > a.m(), "for phi < 1, 1/phi^p grows with p, so p=2 needs more buckets");
    }

    #[test]
    fn finds_planted_heavy_hitters_l1() {
        let n = 4096u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::General);
        // two heavy coordinates on top of a light signed tail
        stream.push(Update::new(100, 4000));
        stream.push(Update::new(3000, -3500));
        for i in 0..n {
            stream.push(Update::new(i, if i % 2 == 0 { 1 } else { -1 }));
        }
        let truth = TruthVector::from_stream(&stream);
        let phi = 0.25;
        let mut s = seeds(2);
        let mut hh = CountSketchHeavyHitters::new(n, 1.0, phi, &mut s);
        hh.process(&stream);
        let reported = hh.report();
        assert!(reported.contains(&100));
        assert!(reported.contains(&3000));
        assert!(is_valid_heavy_hitter_set(&truth, 1.0, phi, &reported).is_valid());
    }

    #[test]
    fn valid_sets_on_zipfian_streams_for_various_p() {
        let n = 2048u64;
        let mut gen = seeds(3);
        let stream = zipf_stream(n, 30_000, 1.3, &mut gen);
        let truth = TruthVector::from_stream(&stream);
        for (p, phi) in [(1.0, 0.125), (2.0, 0.25), (0.5, 0.0625), (1.5, 0.125)] {
            let mut s = seeds(100 + (p * 10.0) as u64);
            let mut hh = CountSketchHeavyHitters::new(n, p, phi, &mut s);
            hh.process(&stream);
            let reported = hh.report_with_norm(truth.lp_norm(p));
            let verdict = is_valid_heavy_hitter_set(&truth, p, phi, &reported);
            assert!(
                verdict.is_valid(),
                "invalid heavy hitter set for p={p}, phi={phi}: {verdict:?}"
            );
        }
    }

    #[test]
    fn empty_stream_reports_nothing() {
        let mut s = seeds(4);
        let hh = CountSketchHeavyHitters::new(128, 1.0, 0.25, &mut s);
        assert!(hh.report().is_empty());
    }

    #[test]
    fn strict_turnstile_deletions_respected() {
        let n = 512u64;
        let mut stream = UpdateStream::new(n, TurnstileModel::Strict);
        // coordinate 7 is briefly heavy then mostly deleted
        stream.push(Update::new(7, 1000));
        stream.push(Update::new(9, 800));
        stream.push(Update::new(7, -995));
        for i in 0..200u64 {
            stream.push(Update::new(i + 200, 1));
        }
        let truth = TruthVector::from_stream(&stream);
        let phi = 0.3;
        let mut s = seeds(5);
        let mut hh = CountSketchHeavyHitters::new(n, 1.0, phi, &mut s);
        hh.process(&stream);
        let reported = hh.report_with_norm(truth.lp_norm(1.0));
        assert!(reported.contains(&9));
        assert!(!reported.contains(&7), "deleted coordinate must not be reported");
    }

    #[test]
    fn space_scales_with_inverse_phi_to_the_p() {
        let mut s = seeds(6);
        let coarse = CountSketchHeavyHitters::new(1 << 12, 1.0, 0.25, &mut s);
        let fine = CountSketchHeavyHitters::new(1 << 12, 1.0, 0.0625, &mut s);
        let ratio = fine.bits_used() as f64 / coarse.bits_used() as f64;
        assert!(ratio > 2.0, "phi shrank 4x, counters should grow accordingly (ratio {ratio:.2})");
    }
}

//! Exact heavy hitters and validity checking.
//!
//! The experiments need two things from ground truth: the exact heavy hitter
//! set of a vector, and a checker for the paper's validity condition (Section
//! 4.4): a set `S` is valid when it contains every coordinate with
//! `|x_i| ≥ φ‖x‖_p` and none with `|x_i| ≤ (φ/2)‖x‖_p`. Coordinates strictly
//! between the two thresholds may or may not be included.

use lps_stream::TruthVector;

/// The exact set of φ-heavy hitters of `x` under the Lp norm:
/// `{ i : |x_i| ≥ φ‖x‖_p }`.
pub fn exact_heavy_hitters(x: &TruthVector, p: f64, phi: f64) -> Vec<u64> {
    assert!(p > 0.0 && phi > 0.0);
    let norm = x.lp_norm(p);
    let threshold = phi * norm;
    x.values()
        .iter()
        .enumerate()
        .filter(|(_, &v)| (v.abs() as f64) >= threshold && v != 0)
        .map(|(i, _)| i as u64)
        .collect()
}

/// The verdict of [`is_valid_heavy_hitter_set`], carrying the witnesses of a
/// violation for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeavyHitterValidity {
    /// The reported set satisfies the paper's definition.
    Valid,
    /// A coordinate with `|x_i| ≥ φ‖x‖_p` is missing from the set.
    MissingHeavy(u64),
    /// A coordinate with `|x_i| ≤ (φ/2)‖x‖_p` was wrongly included.
    IncludedLight(u64),
}

impl HeavyHitterValidity {
    /// True when the set is valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, HeavyHitterValidity::Valid)
    }
}

/// Check the paper's validity condition for a reported heavy hitter set.
pub fn is_valid_heavy_hitter_set(
    x: &TruthVector,
    p: f64,
    phi: f64,
    reported: &[u64],
) -> HeavyHitterValidity {
    assert!(p > 0.0 && phi > 0.0);
    let norm = x.lp_norm(p);
    let heavy_threshold = phi * norm;
    let light_threshold = 0.5 * phi * norm;
    let reported_set: std::collections::HashSet<u64> = reported.iter().copied().collect();
    for (i, &v) in x.values().iter().enumerate() {
        let mag = v.abs() as f64;
        let i = i as u64;
        if mag >= heavy_threshold && v != 0 && !reported_set.contains(&i) {
            return HeavyHitterValidity::MissingHeavy(i);
        }
    }
    for &i in reported {
        let mag = x.get(i).abs() as f64;
        if mag <= light_threshold {
            return HeavyHitterValidity::IncludedLight(i);
        }
    }
    HeavyHitterValidity::Valid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_from(vals: &[i64]) -> TruthVector {
        TruthVector::from_values(vals.to_vec())
    }

    #[test]
    fn exact_heavy_hitters_l1() {
        // ‖x‖₁ = 100; φ = 0.3 -> threshold 30
        let x = vec_from(&[50, -40, 5, 5, 0, 0, 0, 0]);
        let hh = exact_heavy_hitters(&x, 1.0, 0.3);
        assert_eq!(hh, vec![0, 1]);
    }

    #[test]
    fn exact_heavy_hitters_l2_differ_from_l1() {
        // under L2 the big coordinates dominate the norm more strongly
        let x = vec_from(&[20, 9, 9, 9, 9, 9, 9, 9]);
        let l1 = exact_heavy_hitters(&x, 1.0, 0.5);
        let l2 = exact_heavy_hitters(&x, 2.0, 0.5);
        assert!(l1.is_empty(), "20 < 0.5*83 so no L1 heavy hitter");
        assert_eq!(l2, vec![0], "20 > 0.5*‖x‖₂ ≈ 15.5");
    }

    #[test]
    fn validity_checker_accepts_exact_set() {
        let x = vec_from(&[50, -40, 5, 5, 0, 0]);
        let hh = exact_heavy_hitters(&x, 1.0, 0.3);
        assert!(is_valid_heavy_hitter_set(&x, 1.0, 0.3, &hh).is_valid());
    }

    #[test]
    fn validity_checker_detects_missing_heavy() {
        let x = vec_from(&[50, -40, 5, 5, 0, 0]);
        let verdict = is_valid_heavy_hitter_set(&x, 1.0, 0.3, &[0]);
        assert_eq!(verdict, HeavyHitterValidity::MissingHeavy(1));
        assert!(!verdict.is_valid());
    }

    #[test]
    fn validity_checker_detects_light_inclusion() {
        let x = vec_from(&[50, -40, 5, 5, 0, 0]);
        // coordinate 4 has value 0 <= phi/2 * norm, so including it is invalid
        let verdict = is_valid_heavy_hitter_set(&x, 1.0, 0.3, &[0, 1, 4]);
        assert_eq!(verdict, HeavyHitterValidity::IncludedLight(4));
    }

    #[test]
    fn borderline_coordinates_may_go_either_way() {
        // coordinate with magnitude strictly between phi/2 and phi thresholds
        let x = vec_from(&[60, 25, 15, 0]);
        // ‖x‖₁ = 100, φ = 0.4: heavy ≥ 40, light ≤ 20. 25 is in between.
        assert!(is_valid_heavy_hitter_set(&x, 1.0, 0.4, &[0]).is_valid());
        assert!(is_valid_heavy_hitter_set(&x, 1.0, 0.4, &[0, 1]).is_valid());
        assert!(!is_valid_heavy_hitter_set(&x, 1.0, 0.4, &[0, 2]).is_valid());
    }
}

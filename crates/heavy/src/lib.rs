//! # lps-heavy
//!
//! Heavy hitters for general update streams (Section 4.4 of
//! Jowhari–Sağlam–Tardos, PODS 2011).
//!
//! A heavy hitters algorithm with parameters `p > 0` and `φ > 0` must output
//! a set `S ⊆ [n]` containing every `i` with `|x_i| ≥ φ‖x‖_p` and no `i` with
//! `|x_i| ≤ (φ/2)‖x‖_p`. The paper observes that running count-sketch with
//! `m = 1/φ^p` achieves this in O(φ^{-p} log² n) bits for every `p ∈ (0, 2]`
//! (its Lemma 1 error bound `Err^m_2(x)/√m ≤ ‖x‖_p/m^{1/p}` is exactly the
//! needed point-query accuracy), and Theorem 9 proves a matching
//! Ω(φ^{-p} log² n) lower bound — the reduction behind that bound lives in
//! `lps-commgames`.
//!
//! * [`count_sketch_hh`] — the paper's upper bound: count-sketch + p-stable
//!   norm estimate.
//! * [`count_min_hh`] — the count-min / count-median prior baseline (valid
//!   for p = 1).
//! * [`exact_hh`] — exact ground truth and the validity checker used by the
//!   experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count_min_hh;
pub mod count_sketch_hh;
pub mod exact_hh;

pub use count_min_hh::CountMinHeavyHitters;
pub use count_sketch_hh::CountSketchHeavyHitters;
pub use exact_hh::{exact_heavy_hitters, is_valid_heavy_hitter_set, HeavyHitterValidity};

//! Batched-vs-sequential interchangeability for the heavy-hitter drivers:
//! `process_batch` must leave the sketches in a state that reports exactly
//! the heavy-hitter set the update-at-a-time path reports.

use lps_hash::SeedSequence;
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_stream::Update;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn count_sketch_hh_batch_matches_sequential(
        updates in prop::collection::vec((0u64..512, -30i64..30), 0..120),
        seed in any::<u64>(),
    ) {
        let ups: Vec<Update> = updates.iter().map(|&(i, d)| Update::new(i, d)).collect();
        let mut s = SeedSequence::new(seed);
        let proto = CountSketchHeavyHitters::new(512, 1.0, 0.125, &mut s);
        let mut sequential = proto.clone();
        for u in &ups {
            sequential.update(u.index, u.delta);
        }
        let mut batched = proto;
        let half = ups.len() / 2;
        batched.process_batch(&ups[..half]);
        batched.process_batch(&ups[half..]);
        prop_assert_eq!(sequential.report(), batched.report());
    }

    #[test]
    fn count_min_hh_batch_matches_sequential(
        updates in prop::collection::vec((0u64..512, 0i64..30), 0..120),
        seed in any::<u64>(),
    ) {
        let ups: Vec<Update> = updates.iter().map(|&(i, d)| Update::new(i, d)).collect();
        let mut s = SeedSequence::new(seed);
        let proto = CountMinHeavyHitters::new(512, 0.125, &mut s);
        let mut sequential = proto.clone();
        for u in &ups {
            sequential.update(u.index, u.delta);
        }
        let mut batched = proto;
        let half = ups.len() / 2;
        batched.process_batch(&ups[..half]);
        batched.process_batch(&ups[half..]);
        prop_assert_eq!(sequential.report(), batched.report());
    }
}

//! Quantifies floating-point merge drift for the heavy-hitter drivers under
//! sharded ingestion (ROADMAP float-structures item; see
//! `crates/core/tests/float_drift.rs` for the error model: with Kahan
//! compensation, per-counter relative drift ≤ ~2kε with ε = 2⁻⁵³ for k
//! shards, orders of magnitude below the drivers' φ-threshold margins).

use lps_hash::SeedSequence;
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_sketch::Mergeable;
use lps_stream::Update;

fn workload(n: u64, len: usize, seed: u64) -> Vec<Update> {
    let mut s = SeedSequence::new(seed);
    let mut out: Vec<Update> = (0..len)
        .map(|_| {
            let delta = (s.next_below(9) as i64) - 4;
            Update::new(s.next_below(n), if delta == 0 { 1 } else { delta })
        })
        .collect();
    // clearly-heavy coordinates, far from the φ boundary relative to drift
    out.push(Update::new(100, 40_000));
    out.push(Update::new(2000, -35_000));
    out
}

fn shard_and_merge<S: Mergeable + Clone>(
    proto: &S,
    updates: &[Update],
    shards: usize,
    ingest: impl Fn(&mut S, &[Update]),
) -> S {
    let mut states: Vec<S> = (0..shards).map(|_| proto.clone()).collect();
    for (i, chunk) in updates.chunks(256).enumerate() {
        ingest(&mut states[i % shards], chunk);
    }
    let mut merged = states.remove(0);
    for s in &states {
        merged.merge_from(s);
    }
    merged
}

#[test]
fn count_sketch_hh_sharded_report_matches_sequential() {
    let n = 4096u64;
    let updates = workload(n, 8000, 31);
    let mut seeds = SeedSequence::new(32);
    let proto = CountSketchHeavyHitters::new(n, 1.0, 0.25, &mut seeds);

    let mut sequential = proto.clone();
    sequential.process_batch(&updates);
    let sharded = shard_and_merge(&proto, &updates, 4, |s, u| s.process_batch(u));

    // the count-sketch table sees only integer updates, so it is exact; the
    // p-stable norm counters drift by ≤ ~2kε, far from flipping a report
    // decision on non-marginal coordinates
    let seq_report = sequential.report();
    let shard_report = sharded.report();
    assert_eq!(seq_report, shard_report, "sharded heavy-hitter set diverged");
    assert!(seq_report.contains(&100) && seq_report.contains(&2000));
}

#[test]
fn count_min_hh_sharded_report_matches_sequential() {
    let n = 4096u64;
    let updates: Vec<Update> = {
        // strict-turnstile: keep everything non-negative for count-min
        let mut s = SeedSequence::new(33);
        let mut out: Vec<Update> =
            (0..8000).map(|_| Update::new(s.next_below(n), 1 + s.next_below(3) as i64)).collect();
        out.push(Update::new(55, 60_000));
        out
    };
    let mut seeds = SeedSequence::new(34);
    let proto = CountMinHeavyHitters::new(n, 0.25, &mut seeds);

    let mut sequential = proto.clone();
    sequential.process_batch(&updates);
    let sharded = shard_and_merge(&proto, &updates, 4, |s, u| s.process_batch(u));

    let seq_report = sequential.report();
    assert_eq!(seq_report, sharded.report(), "sharded count-min report diverged");
    assert!(seq_report.contains(&55));
}

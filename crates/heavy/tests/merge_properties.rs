//! Merge-law property tests for the heavy-hitter drivers: both compose an
//! exact integer sketch (count-sketch / count-min table) with a
//! floating-point p-stable norm sketch, so commutativity is bitwise while
//! associativity is checked on the reported heavy-hitter set.

use lps_hash::SeedSequence;
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_sketch::Mergeable;
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 256;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, 1i64..20), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

fn merge_orders<S: Mergeable + Clone>(sa: &S, sb: &S, sc: &S) -> (S, S) {
    let mut ab = sa.clone();
    ab.merge_from(sb);
    let mut ba = sb.clone();
    ba.merge_from(sa);
    assert_eq!(ab.state_digest(), ba.state_digest(), "merge must commute bitwise");
    let mut ab_c = ab;
    ab_c.merge_from(sc);
    let mut bc = sb.clone();
    bc.merge_from(sc);
    let mut a_bc = sa.clone();
    a_bc.merge_from(&bc);
    (ab_c, a_bc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn count_sketch_hh_merge_laws(a in updates_strategy(30), b in updates_strategy(30), c in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketchHeavyHitters::new(DIM, 1.0, 0.25, &mut seeds);
        let mut sa = proto.clone();
        sa.process_batch(&to_updates(&a));
        let mut sb = proto.clone();
        sb.process_batch(&to_updates(&b));
        let mut sc = proto.clone();
        sc.process_batch(&to_updates(&c));
        let (ab_c, a_bc) = merge_orders(&sa, &sb, &sc);
        // float reassociation may shift the norm estimate by ULPs; the
        // reported set must not change for these integer workloads
        prop_assert_eq!(ab_c.report(), a_bc.report());
    }

    #[test]
    fn count_min_hh_merge_laws(a in updates_strategy(30), b in updates_strategy(30), c in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinHeavyHitters::new(DIM, 0.25, &mut seeds);
        let mut sa = proto.clone();
        sa.process_batch(&to_updates(&a));
        let mut sb = proto.clone();
        sb.process_batch(&to_updates(&b));
        let mut sc = proto.clone();
        sc.process_batch(&to_updates(&c));
        let (ab_c, a_bc) = merge_orders(&sa, &sb, &sc);
        prop_assert_eq!(ab_c.report(), a_bc.report());
    }

    #[test]
    fn hh_merge_matches_concatenated_stream_report(a in updates_strategy(30), b in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketchHeavyHitters::new(DIM, 1.0, 0.25, &mut seeds);
        let mut sa = proto.clone();
        sa.process_batch(&to_updates(&a));
        let mut sb = proto.clone();
        sb.process_batch(&to_updates(&b));
        sa.merge_from(&sb);
        let mut concat = proto.clone();
        concat.process_batch(&to_updates(&a));
        concat.process_batch(&to_updates(&b));
        prop_assert_eq!(sa.report(), concat.report());
    }
}

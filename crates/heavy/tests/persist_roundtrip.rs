//! Wire-format round-trip properties for the heavy-hitter drivers.

use lps_hash::SeedSequence;
use lps_heavy::{CountMinHeavyHitters, CountSketchHeavyHitters};
use lps_sketch::{Mergeable, Persist};
use lps_stream::Update;
use proptest::prelude::*;

const DIM: u64 = 256;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -20i64..20), 0..max_len)
}

fn to_updates(updates: &[(u64, i64)]) -> Vec<Update> {
    updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn count_sketch_hh_roundtrip(a in updates_strategy(30), b in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketchHeavyHitters::new(DIM, 1.0, 0.25, &mut seeds);
        let mut sa = proto.clone();
        let mut sb = proto.clone();
        sa.process_batch(&to_updates(&a));
        sb.process_batch(&to_updates(&b));
        for s in [&sa, &sb] {
            let decoded = CountSketchHeavyHitters::decode_state(&s.encode_to_vec()).unwrap();
            prop_assert_eq!(decoded.state_digest(), s.state_digest());
            prop_assert_eq!(decoded.report(), s.report());
        }
        let mut merged = sa.clone();
        merged.merge_from(&sb);
        let decoded = CountSketchHeavyHitters::decode_state(&merged.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), merged.state_digest());
    }

    #[test]
    fn count_min_hh_roundtrip(a in updates_strategy(30), b in updates_strategy(30), seed in any::<u64>()) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinHeavyHitters::new(DIM, 0.25, &mut seeds);
        let mut sa = proto.clone();
        let mut sb = proto.clone();
        sa.process_batch(&to_updates(&a));
        sb.process_batch(&to_updates(&b));
        for s in [&sa, &sb] {
            let decoded = CountMinHeavyHitters::decode_state(&s.encode_to_vec()).unwrap();
            prop_assert_eq!(decoded.state_digest(), s.state_digest());
            prop_assert_eq!(decoded.report(), s.report());
        }
        let mut merged = sa.clone();
        merged.merge_from(&sb);
        let decoded = CountMinHeavyHitters::decode_state(&merged.encode_to_vec()).unwrap();
        prop_assert_eq!(decoded.state_digest(), merged.state_digest());
    }
}

#[test]
fn malformed_buffers_rejected() {
    let mut seeds = SeedSequence::new(3);
    let mut hh = CountSketchHeavyHitters::new(DIM, 1.0, 0.25, &mut seeds);
    hh.update(7, 100);
    let good = hh.encode_to_vec();
    for cut in [0, 3, 8, 15, good.len() / 2, good.len() - 1] {
        assert!(CountSketchHeavyHitters::decode_state(&good[..cut]).is_err());
    }
    let mut cm = CountMinHeavyHitters::new(DIM, 0.25, &mut seeds);
    cm.update(7, 100);
    match CountMinHeavyHitters::decode_state(&good) {
        Err(lps_sketch::DecodeError::WrongStructure { .. }) => {}
        other => panic!("expected WrongStructure, got {other:?}"),
    }
    let step = (good.len() / 48).max(1);
    for pos in (0..good.len()).step_by(step) {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        let _ = CountSketchHeavyHitters::decode_state(&bad); // must not panic
    }
}

//! Tenant-tagged envelopes for evicted sketch segments.
//!
//! When the registry evicts a tenant it serializes the tenant's
//! [`crate::LazySketch`] through [`lps_sketch::Persist`] and wraps the bytes
//! in a small self-describing envelope stamping the tenant id; the
//! [`FileSpill`](crate::FileSpill) log then frames each envelope in a
//! checksummed commit record (see [`crate::spill`]), so a spill file is a
//! walkable, crash-recoverable sequence of `(tenant, payload)` segments
//! that can be re-indexed by a fresh process (cross-process restore,
//! mirroring the engine's plan envelopes in `lps_engine`).
//!
//! Layout (little-endian, mirroring the sketch wire format's conventions):
//!
//! ```text
//! magic "LPST" (4) | version u16 (2) | tenant u64 (8) | payload_len u64 (8)
//! payload (payload_len bytes, a complete `Persist` encoding)
//! ```

use lps_sketch::{DecodeError, WireReader, WireWriter};

/// Magic prefix of a tenant segment ("LPS Tenant").
pub const TENANT_MAGIC: [u8; 4] = *b"LPST";

/// Version of the tenant-envelope layout.
pub const TENANT_VERSION: u16 = 1;

/// Fixed-size prefix before the payload bytes.
pub const TENANT_HEADER_LEN: usize = 4 + 2 + 8 + 8;

/// Wrap an encoded sketch `payload` in a tenant-tagged segment.
pub fn encode_tenant_segment(tenant: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(TENANT_HEADER_LEN + payload.len());
    let mut w = WireWriter::new(&mut out);
    w.write_raw(&TENANT_MAGIC);
    w.write_u16(TENANT_VERSION);
    w.write_u64(tenant);
    w.write_len(payload.len());
    w.write_raw(payload);
    out
}

/// Read one tenant segment from the front of `bytes`.
///
/// Returns `(tenant, payload, consumed)` where `consumed` is the total
/// segment length, letting callers walk a concatenated spill file. Every
/// malformed prefix maps to a typed [`DecodeError`]; the payload length is
/// validated against the bytes actually present before any slice is taken,
/// so corrupt lengths can never over-allocate.
pub fn read_tenant_segment(bytes: &[u8]) -> Result<(u64, &[u8], usize), DecodeError> {
    let mut r = WireReader::new(bytes);
    let mut magic = [0u8; 4];
    for slot in &mut magic {
        *slot = r.read_u8()?;
    }
    if magic != TENANT_MAGIC {
        return Err(DecodeError::BadMagic { found: magic });
    }
    let version = r.read_u16()?;
    if version != TENANT_VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let tenant = r.read_u64()?;
    // read_count validates `len` against the unconsumed bytes, so the slice
    // below cannot go out of bounds and the length cannot over-allocate
    let len = r.read_count(1)?;
    let payload = &bytes[TENANT_HEADER_LEN..TENANT_HEADER_LEN + len];
    Ok((tenant, payload, TENANT_HEADER_LEN + len))
}

/// Decode a byte slice holding exactly one tenant segment.
///
/// Like [`read_tenant_segment`] but rejects trailing bytes, the right
/// contract for per-tenant blobs handed back by a spill backend.
pub fn decode_tenant_segment(bytes: &[u8]) -> Result<(u64, &[u8]), DecodeError> {
    let (tenant, payload, consumed) = read_tenant_segment(bytes)?;
    if consumed != bytes.len() {
        return Err(DecodeError::TrailingBytes { extra: bytes.len() - consumed });
    }
    Ok((tenant, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_walk() {
        let a = encode_tenant_segment(7, b"alpha");
        let b = encode_tenant_segment(u64::MAX, b"");
        let mut file = a.clone();
        file.extend_from_slice(&b);

        let (tenant, payload, consumed) = read_tenant_segment(&file).unwrap();
        assert_eq!((tenant, payload), (7, &b"alpha"[..]));
        let (tenant, payload, rest) = read_tenant_segment(&file[consumed..]).unwrap();
        assert_eq!((tenant, payload), (u64::MAX, &b""[..]));
        assert_eq!(consumed + rest, file.len());

        assert_eq!(decode_tenant_segment(&a).unwrap(), (7, &b"alpha"[..]));
        assert!(matches!(decode_tenant_segment(&file), Err(DecodeError::TrailingBytes { .. })));
    }

    #[test]
    fn malformed_prefixes_are_typed_errors() {
        let seg = encode_tenant_segment(3, b"payload");
        for cut in 0..seg.len() {
            assert!(read_tenant_segment(&seg[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        let mut bad = seg.clone();
        bad[0] = b'X';
        assert!(matches!(read_tenant_segment(&bad), Err(DecodeError::BadMagic { .. })));
        let mut bad = seg.clone();
        bad[4] = 0xFF;
        assert!(matches!(read_tenant_segment(&bad), Err(DecodeError::UnsupportedVersion { .. })));
        // an absurd payload length must be rejected before allocation
        let mut bad = seg;
        bad[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_tenant_segment(&bad).is_err());
    }
}

//! Deterministic fault injection for spill backends.
//!
//! Robustness claims are only testable if the faults are reproducible, so a
//! [`FaultPlan`] drives every injected failure from the same seed
//! infrastructure the sketches draw their hash seeds from
//! ([`lps_hash::SeedSequence`]): the same seed and the same operation
//! sequence produce the same faults, on every platform, every run. A
//! [`FaultySpill`] wraps any [`SpillBackend`] and injects, per the plan:
//!
//! * **transient I/O errors** on `put`/`get` (kind `Interrupted`) — the
//!   retryable class of the [`SpillBackend`] error contract;
//! * **short writes** on `put`: the wrapper hands the *inner* backend a
//!   truncated prefix of the segment and then reports `WriteZero`, so the
//!   underlying store really does contain a torn artifact (exactly what a
//!   crash mid-`write_all` leaves in a [`crate::FileSpill`] — recovery must
//!   skip or truncate it, never serve it);
//! * **read-side corruption** on `get`: one deterministic byte of the
//!   returned segment is flipped, exercising every decode-validation path
//!   above the backend;
//! * **permanent per-tenant failure**: a deterministic subset of tenants
//!   (plus any explicitly marked ones) fail every `put` with a
//!   non-retryable kind (`PermissionDenied`), which is what drives the
//!   registry's quarantine path.
//!
//! Per-tenant permanence is a pure function of `(seed, tenant)` — not of
//! operation order — so whether a tenant is doomed does not depend on when
//! it first spills.

use std::collections::HashSet;
use std::io;

use lps_hash::{splitmix64, SeedSequence};

use crate::spill::SpillBackend;

/// Domain-separation constants so the per-tenant permanence draw, the
/// per-op draws, and the corruption position draw sample independent
/// streams of the same seed.
const PERMANENT_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const OP_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// A seeded, deterministic schedule of injected faults.
///
/// Rates are in **per-mille** (0..=1000): `with_transient_put(50)` fails
/// roughly 5% of puts with a retryable error. All rates default to zero, so
/// `FaultPlan::new(seed)` alone injects nothing.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    transient_put_per_mille: u64,
    transient_get_per_mille: u64,
    short_write_per_mille: u64,
    corrupt_read_per_mille: u64,
    permanent_tenant_per_mille: u64,
    permanent_tenants: HashSet<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing until rates are set.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_put_per_mille: 0,
            transient_get_per_mille: 0,
            short_write_per_mille: 0,
            corrupt_read_per_mille: 0,
            permanent_tenant_per_mille: 0,
            permanent_tenants: HashSet::new(),
        }
    }

    /// Fail this fraction (per mille) of `put` calls with `Interrupted`.
    pub fn with_transient_put(mut self, per_mille: u64) -> Self {
        assert!(per_mille <= 1000);
        self.transient_put_per_mille = per_mille;
        self
    }

    /// Fail this fraction (per mille) of `get` calls with `Interrupted`.
    pub fn with_transient_get(mut self, per_mille: u64) -> Self {
        assert!(per_mille <= 1000);
        self.transient_get_per_mille = per_mille;
        self
    }

    /// Turn this fraction (per mille) of `put` calls into short writes: the
    /// inner backend receives a truncated segment prefix and the caller
    /// receives `WriteZero`.
    pub fn with_short_write(mut self, per_mille: u64) -> Self {
        assert!(per_mille <= 1000);
        self.short_write_per_mille = per_mille;
        self
    }

    /// Flip one byte in this fraction (per mille) of `get` results.
    pub fn with_corrupt_read(mut self, per_mille: u64) -> Self {
        assert!(per_mille <= 1000);
        self.corrupt_read_per_mille = per_mille;
        self
    }

    /// Doom this fraction (per mille) of the tenant space: a doomed tenant
    /// fails every `put` with `PermissionDenied`. Which tenants are doomed
    /// is a pure function of the plan seed and the tenant id.
    pub fn with_permanent_tenants(mut self, per_mille: u64) -> Self {
        assert!(per_mille <= 1000);
        self.permanent_tenant_per_mille = per_mille;
        self
    }

    /// Explicitly doom `tenant` regardless of the rate draw.
    pub fn with_permanent_tenant(mut self, tenant: u64) -> Self {
        self.permanent_tenants.insert(tenant);
        self
    }

    /// Whether `tenant` fails permanently under this plan (order-independent).
    pub fn tenant_is_doomed(&self, tenant: u64) -> bool {
        if self.permanent_tenants.contains(&tenant) {
            return true;
        }
        self.permanent_tenant_per_mille > 0
            && splitmix64(self.seed ^ PERMANENT_SALT ^ tenant) % 1000
                < self.permanent_tenant_per_mille
    }
}

/// Running counts of what a [`FaultySpill`] actually injected.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FaultStats {
    /// `put` calls failed with a retryable kind.
    pub transient_puts: u64,
    /// `get` calls failed with a retryable kind.
    pub transient_gets: u64,
    /// `put` calls turned into short writes (torn artifact committed to the
    /// inner backend, `WriteZero` returned).
    pub short_writes: u64,
    /// `get` results returned with a flipped byte.
    pub corrupted_reads: u64,
    /// `put` calls rejected because the tenant is permanently doomed.
    pub permanent_puts: u64,
}

/// A [`SpillBackend`] decorator that injects the faults a [`FaultPlan`]
/// schedules. See the [module docs](self) for the fault classes.
#[derive(Debug)]
pub struct FaultySpill<B> {
    inner: B,
    plan: FaultPlan,
    /// Per-op draw stream, advanced once per fault decision so the schedule
    /// depends only on the operation sequence.
    draws: SeedSequence,
    stats: FaultStats,
}

impl<B> FaultySpill<B> {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let draws = SeedSequence::new(plan.seed ^ OP_SALT);
        Self { inner, plan, draws, stats: FaultStats::default() }
    }

    /// What has been injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably (tests poke at the real store).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// One per-mille Bernoulli draw from the deterministic op stream.
    fn draw(&mut self, per_mille: u64) -> bool {
        // always advance the stream, even at rate zero, so enabling one
        // fault class does not shift every other class's schedule
        let roll = self.draws.next_below(1000);
        roll < per_mille
    }
}

fn transient(op: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("injected transient {op} failure"))
}

impl<B: SpillBackend> SpillBackend for FaultySpill<B> {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        if self.plan.tenant_is_doomed(tenant) {
            self.stats.permanent_puts += 1;
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("injected permanent failure for tenant {tenant}"),
            ));
        }
        if self.draw(self.plan.transient_put_per_mille) {
            self.stats.transient_puts += 1;
            return Err(transient("put"));
        }
        if self.draw(self.plan.short_write_per_mille) {
            self.stats.short_writes += 1;
            // commit a torn prefix to the inner backend — the realistic
            // artifact of a write that died partway — then report failure
            if segment.len() >= 2 {
                let cut = 1 + self.draws.next_below(segment.len() as u64 - 1) as usize;
                let _ = self.inner.put(tenant, &segment[..cut]);
            }
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected short write for tenant {tenant}"),
            ));
        }
        self.inner.put(tenant, segment)
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        if self.draw(self.plan.transient_get_per_mille) {
            self.stats.transient_gets += 1;
            return Err(transient("get"));
        }
        let mut segment = self.inner.get(tenant)?;
        if let Some(seg) = &mut segment {
            if !seg.is_empty() && self.draw(self.plan.corrupt_read_per_mille) {
                self.stats.corrupted_reads += 1;
                let pos = self.draws.next_below(seg.len() as u64) as usize;
                seg[pos] ^= 0xA5;
            }
        }
        Ok(segment)
    }

    fn remove(&mut self, tenant: u64) {
        self.inner.remove(tenant);
    }

    fn spilled(&self) -> usize {
        self.inner.spilled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::encode_tenant_segment;
    use crate::spill::MemorySpill;

    #[test]
    fn zero_rate_plan_is_transparent() {
        let mut spill = FaultySpill::new(MemorySpill::new(), FaultPlan::new(1));
        let seg = encode_tenant_segment(7, b"payload");
        spill.put(7, &seg).unwrap();
        assert_eq!(spill.get(7).unwrap().unwrap(), seg);
        assert_eq!(spill.stats(), &FaultStats::default());
    }

    #[test]
    fn schedules_are_reproducible() {
        let run = |seed: u64| {
            let plan = FaultPlan::new(seed)
                .with_transient_put(200)
                .with_transient_get(100)
                .with_corrupt_read(100);
            let mut spill = FaultySpill::new(MemorySpill::new(), plan);
            let mut outcomes = Vec::new();
            for tenant in 0..200u64 {
                let seg = encode_tenant_segment(tenant, b"x");
                outcomes.push(spill.put(tenant, &seg).is_ok());
                outcomes.push(matches!(spill.get(tenant), Ok(Some(_))));
            }
            (outcomes, spill.stats().clone())
        };
        let (a_out, a_stats) = run(42);
        let (b_out, b_stats) = run(42);
        assert_eq!(a_out, b_out, "same seed, same schedule");
        assert_eq!(a_stats, b_stats);
        assert!(a_stats.transient_puts > 0, "a 20% rate over 200 puts must fire");
        let (c_out, _) = run(43);
        assert_ne!(a_out, c_out, "different seed, different schedule");
    }

    #[test]
    fn doomed_tenants_are_order_independent() {
        let plan = FaultPlan::new(9).with_permanent_tenants(100);
        let doomed: Vec<u64> = (0..1000).filter(|&t| plan.tenant_is_doomed(t)).collect();
        assert!(
            doomed.len() > 50 && doomed.len() < 200,
            "10% of 1000 tenants, got {}",
            doomed.len()
        );
        // the draw is a pure function of (seed, tenant): re-asking agrees
        for &t in &doomed {
            assert!(plan.tenant_is_doomed(t));
        }
        let explicit = FaultPlan::new(9).with_permanent_tenant(12345);
        assert!(explicit.tenant_is_doomed(12345));
        assert!(!explicit.tenant_is_doomed(12346));
    }

    #[test]
    fn short_writes_leave_a_torn_artifact_in_the_inner_backend() {
        let plan = FaultPlan::new(5).with_short_write(1000);
        let mut spill = FaultySpill::new(MemorySpill::new(), plan);
        let seg = encode_tenant_segment(3, b"a tenant segment body");
        let err = spill.put(3, &seg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(spill.stats().short_writes, 1);
        let torn = spill.inner_mut().get(3).unwrap().expect("torn artifact committed");
        assert!(torn.len() < seg.len(), "inner backend must hold a strict prefix");
        assert_eq!(torn[..], seg[..torn.len()]);
    }

    #[test]
    fn corrupt_reads_flip_exactly_one_byte() {
        let plan = FaultPlan::new(6).with_corrupt_read(1000);
        let mut spill = FaultySpill::new(MemorySpill::new(), plan);
        let seg = encode_tenant_segment(8, b"some payload bytes");
        spill.put(8, &seg).unwrap();
        let read = spill.get(8).unwrap().unwrap();
        let differing = seg.iter().zip(&read).filter(|(a, b)| a != b).count();
        assert_eq!(differing, 1, "exactly one byte flipped");
        assert_eq!(spill.stats().corrupted_reads, 1);
    }
}

//! Lazy per-tenant sketch state: a sorted sparse update log until the tenant
//! earns a real structure.
//!
//! Under Zipf-distributed tenant traffic most tenants see a handful of
//! updates; allocating every tenant a full sketch table (kilobytes of
//! counters plus hash state) up front would waste almost all of it. A
//! [`LazySketch<T>`] starts as a coalesced, index-sorted `(index, delta)`
//! log — tens of bytes for a tiny stream — and **materializes** the real
//! structure `T` by replaying the log as a single batch once the log
//! outgrows a density threshold.
//!
//! Replay runs through [`ShardIngest::ingest_batch`], the same path the
//! engine's shards use, so for `Tolerance::Exact` structures the
//! materialized state is bit-identical to one that ingested the stream
//! directly (their batch paths coalesce to the same sorted integer sums).
//!
//! The state digest and the persisted form are **representation-dependent**:
//! a sparse log and its materialized structure digest differently even
//! though they describe the same vector. That is deliberate — eviction and
//! restore preserve the representation, so the registry's digest-identity
//! guarantee ("an evicted-then-restored tenant digests bit-identically to
//! one that never left memory") is checked at the representation level, the
//! only level at which bit identity is meaningful.

use std::sync::Arc;

use lps_engine::ShardIngest;
use lps_sketch::persist::tags;
use lps_sketch::{DecodeError, Mergeable, Persist, StateDigest, WireReader, WireWriter};
use lps_stream::{coalesce_updates, Update};

/// Per-tenant sketch state: sparse update log or materialized structure.
#[derive(Debug, Clone)]
pub enum LazySketch<T> {
    /// The tenant's stream so far, as a coalesced index-sorted log of
    /// non-zero deltas, plus the prototype's seed section (shared by every
    /// sparse tenant of the registry) so the encoded form carries the same
    /// merge witness a dense encoding would.
    Sparse {
        /// The prototype's `Persist` seed section, byte-identical to what
        /// [`Persist::encode_seeds`] of the materialized `T` would write.
        seeds: Arc<Vec<u8>>,
        /// Strictly index-sorted `(index, delta)` pairs, zero deltas elided.
        log: Vec<(u64, i64)>,
    },
    /// The materialized structure.
    Dense(T),
}

impl<T> LazySketch<T> {
    /// A fresh sparse tenant carrying the registry's shared seed section.
    pub fn sparse(seeds: Arc<Vec<u8>>) -> Self {
        LazySketch::Sparse { seeds, log: Vec::new() }
    }

    /// Wrap an already-materialized structure.
    pub fn dense(inner: T) -> Self {
        LazySketch::Dense(inner)
    }

    /// Whether the tenant has materialized its structure.
    pub fn is_dense(&self) -> bool {
        matches!(self, LazySketch::Dense(_))
    }

    /// Number of log entries (0 once dense).
    pub fn log_len(&self) -> usize {
        match self {
            LazySketch::Sparse { log, .. } => log.len(),
            LazySketch::Dense(_) => 0,
        }
    }

    /// The materialized structure, if any.
    pub fn as_dense(&self) -> Option<&T> {
        match self {
            LazySketch::Sparse { .. } => None,
            LazySketch::Dense(inner) => Some(inner),
        }
    }
}

/// Merge two strictly-sorted delta logs, dropping entries that cancel.
fn merge_logs(a: &[(u64, i64)], b: &[(u64, i64)]) -> Vec<(u64, i64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&(ia, va)), Some(&(ib, vb))) => {
                if ia < ib {
                    i += 1;
                    (ia, va)
                } else if ib < ia {
                    j += 1;
                    (ib, vb)
                } else {
                    i += 1;
                    j += 1;
                    (ia, va.wrapping_add(vb))
                }
            }
            (Some(&(ia, va)), None) => {
                i += 1;
                (ia, va)
            }
            (None, Some(&(ib, vb))) => {
                j += 1;
                (ib, vb)
            }
            (None, None) => unreachable!("loop condition"),
        };
        if next.1 != 0 {
            out.push(next);
        }
    }
    out
}

fn log_as_updates(log: &[(u64, i64)]) -> Vec<Update> {
    log.iter().map(|&(index, delta)| Update::new(index, delta)).collect()
}

impl<T: ShardIngest> LazySketch<T> {
    /// Absorb a batch of updates. Sparse tenants fold the batch into the
    /// sorted log; once the log holds more than `threshold` entries the
    /// structure materializes from `proto` by replay. Dense tenants ingest
    /// directly. Returns `true` if this call materialized the structure.
    pub fn apply(&mut self, proto: &T, updates: &[Update], threshold: usize) -> bool {
        match self {
            LazySketch::Sparse { log, .. } => {
                let incoming = coalesce_updates(updates);
                *log = merge_logs(log, &incoming);
                if log.len() > threshold {
                    self.materialize(proto);
                    true
                } else {
                    false
                }
            }
            LazySketch::Dense(inner) => {
                inner.ingest_batch(updates);
                false
            }
        }
    }

    /// Force materialization: clone `proto` and replay the log as one batch.
    /// No-op for dense tenants.
    pub fn materialize(&mut self, proto: &T) {
        if let LazySketch::Sparse { log, .. } = self {
            let mut inner = proto.clone();
            inner.ingest_batch(&log_as_updates(log));
            *self = LazySketch::Dense(inner);
        }
    }

    /// Evaluate `f` against the tenant's materialized view. Dense tenants
    /// hand over their structure directly; sparse tenants replay their log
    /// into a scratch clone of `proto` (the tenant itself stays sparse).
    pub fn with_state<R>(&self, proto: &T, f: impl FnOnce(&T) -> R) -> R {
        match self {
            LazySketch::Sparse { log, .. } => {
                let mut scratch = proto.clone();
                scratch.ingest_batch(&log_as_updates(log));
                f(&scratch)
            }
            LazySketch::Dense(inner) => f(inner),
        }
    }
}

impl<T: ShardIngest> Mergeable for LazySketch<T> {
    /// Merge another tenant state into this one. Sparse ∪ sparse merges the
    /// logs; any dense operand forces the result dense (the sparse side's
    /// log is replayed into the dense structure).
    fn merge_from(&mut self, other: &Self) {
        match (&mut *self, other) {
            (LazySketch::Sparse { log: a, seeds }, LazySketch::Sparse { log: b, .. }) => {
                let merged = merge_logs(a, b);
                *self = LazySketch::Sparse { seeds: Arc::clone(seeds), log: merged };
            }
            (LazySketch::Dense(inner), LazySketch::Sparse { log, .. }) => {
                inner.ingest_batch(&log_as_updates(log));
            }
            (LazySketch::Sparse { log, .. }, LazySketch::Dense(inner)) => {
                let mut dense = inner.clone();
                dense.ingest_batch(&log_as_updates(log));
                *self = LazySketch::Dense(dense);
            }
            (LazySketch::Dense(a), LazySketch::Dense(b)) => a.merge_from(b),
        }
    }

    /// Representation-dependent digest: a kind marker followed by the log
    /// pairs (sparse) or the inner structure's digest (dense). See the
    /// module docs for why representation-dependence is the right contract.
    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        match self {
            LazySketch::Sparse { log, .. } => {
                d.write_u64(0);
                for &(index, delta) in log {
                    d.write_u64(index).write_i64(delta);
                }
            }
            LazySketch::Dense(inner) => {
                d.write_u64(1);
                d.write_u64(inner.state_digest());
            }
        }
        d.finish()
    }
}

/// Counter-section kind markers for the two representations.
const KIND_SPARSE: u8 = 0;
const KIND_DENSE: u8 = 1;

impl<T: Persist> Persist for LazySketch<T> {
    /// Composed tag: the lazy marker OR-ed onto the inner structure's tag.
    /// The `assert!` is evaluated at compile time when the impl is
    /// instantiated, so a future inner tag colliding with the marker is a
    /// build error, not a silent aliasing.
    const TAG: u16 = {
        assert!(
            T::TAG & tags::LAZY_BASE == 0,
            "inner structure tag collides with the LAZY_BASE marker bit"
        );
        tags::LAZY_BASE | T::TAG
    };

    /// Both representations write the *same* seed section — the prototype's
    /// seed material — so sparse and dense encodings of tenants of one
    /// registry stay mutually merge-compatible (byte-identical witnesses).
    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        match self {
            LazySketch::Sparse { seeds, .. } => w.write_raw(seeds),
            LazySketch::Dense(inner) => inner.encode_seeds(w),
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        match self {
            LazySketch::Sparse { log, .. } => {
                w.write_u8(KIND_SPARSE);
                w.write_len(log.len());
                for &(index, delta) in log {
                    w.write_u64(index);
                    w.write_i64(delta);
                }
            }
            LazySketch::Dense(inner) => {
                w.write_u8(KIND_DENSE);
                inner.encode_counters(w);
            }
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        match counters.read_u8()? {
            KIND_SPARSE => {
                let len = counters.read_count(16)?;
                let mut log = Vec::with_capacity(len);
                let mut previous: Option<u64> = None;
                for _ in 0..len {
                    let index = counters.read_u64()?;
                    let delta = counters.read_i64()?;
                    if previous.is_some_and(|p| p >= index) {
                        return Err(DecodeError::Corrupt {
                            context: "lazy-sketch log indices must strictly increase",
                        });
                    }
                    if delta == 0 {
                        return Err(DecodeError::Corrupt {
                            context: "lazy-sketch log holds a cancelled delta",
                        });
                    }
                    previous = Some(index);
                    log.push((index, delta));
                }
                let seed_bytes = seeds.take_rest().to_vec();
                Ok(LazySketch::Sparse { seeds: Arc::new(seed_bytes), log })
            }
            KIND_DENSE => Ok(LazySketch::Dense(T::decode_parts(seeds, counters)?)),
            _ => Err(DecodeError::Corrupt { context: "unknown lazy-sketch representation kind" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_hash::SeedSequence;
    use lps_sketch::SparseRecovery;

    fn proto() -> SparseRecovery {
        let mut seeds = SeedSequence::new(41);
        SparseRecovery::new(1 << 10, 6, &mut seeds)
    }

    fn seed_bytes_of(proto: &SparseRecovery) -> Arc<Vec<u8>> {
        let mut v = Vec::new();
        proto.encode_seeds(&mut WireWriter::new(&mut v));
        Arc::new(v)
    }

    #[test]
    fn sparse_log_coalesces_and_materializes_bit_identically() {
        let proto = proto();
        let mut lazy = LazySketch::sparse(seed_bytes_of(&proto));
        let updates: Vec<Update> =
            [(5u64, 3i64), (2, 1), (5, -3), (9, 4), (2, 2)].map(|(i, d)| Update::new(i, d)).into();
        assert!(!lazy.apply(&proto, &updates, 100));
        assert_eq!(lazy.log_len(), 2, "index 5 cancelled, index 2 coalesced");

        // materialization replays through the same batch path as direct ingestion
        let mut direct = proto.clone();
        direct.ingest_batch(&updates);
        lazy.materialize(&proto);
        assert_eq!(lazy.as_dense().unwrap().state_digest(), direct.state_digest());
    }

    #[test]
    fn threshold_crossing_materializes_during_apply() {
        let proto = proto();
        let mut lazy = LazySketch::sparse(seed_bytes_of(&proto));
        let updates: Vec<Update> = (0..10).map(|i| Update::new(i, 1)).collect();
        assert!(lazy.apply(&proto, &updates, 4), "log of 10 exceeds threshold 4");
        assert!(lazy.is_dense());
    }

    #[test]
    fn sparse_and_dense_encodings_share_the_seed_section() {
        let proto = proto();
        let mut sparse = LazySketch::sparse(seed_bytes_of(&proto));
        sparse.apply(&proto, &[Update::new(3, 2)], 100);
        let mut dense = sparse.clone();
        dense.materialize(&proto);
        let a = sparse.encode_to_vec();
        let b = dense.encode_to_vec();
        assert_eq!(
            lps_sketch::seed_section(&a).unwrap(),
            lps_sketch::seed_section(&b).unwrap(),
            "sparse and dense tenants must stay merge-compatible"
        );
    }

    #[test]
    fn roundtrip_preserves_digest_for_both_representations() {
        let proto = proto();
        let mut lazy = LazySketch::sparse(seed_bytes_of(&proto));
        lazy.apply(&proto, &[Update::new(7, 5), Update::new(1, -2)], 100);
        let decoded = LazySketch::<SparseRecovery>::decode_state(&lazy.encode_to_vec()).unwrap();
        assert_eq!(decoded.state_digest(), lazy.state_digest());

        lazy.materialize(&proto);
        let decoded = LazySketch::<SparseRecovery>::decode_state(&lazy.encode_to_vec()).unwrap();
        assert_eq!(decoded.state_digest(), lazy.state_digest());
    }

    #[test]
    fn merge_covers_all_representation_pairs() {
        let proto = proto();
        let seeds = seed_bytes_of(&proto);
        let ups_a = [Update::new(1, 2), Update::new(8, 1)];
        let ups_b = [Update::new(8, 3), Update::new(2, -1)];
        let mut direct = proto.clone();
        direct.ingest_batch(&ups_a);
        direct.ingest_batch(&ups_b);
        let direct_digest = direct.state_digest();

        for (a_dense, b_dense) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut a = LazySketch::sparse(Arc::clone(&seeds));
            a.apply(&proto, &ups_a, 100);
            let mut b = LazySketch::sparse(Arc::clone(&seeds));
            b.apply(&proto, &ups_b, 100);
            if a_dense {
                a.materialize(&proto);
            }
            if b_dense {
                b.materialize(&proto);
            }
            a.merge_from(&b);
            let merged = a.with_state(&proto, |s| s.state_digest());
            assert_eq!(merged, direct_digest, "case dense=({a_dense}, {b_dense})");
        }
    }
}

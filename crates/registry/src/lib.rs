//! # lps-registry
//!
//! A multi-tenant sketch registry: millions of keyed sketches behind one
//! engine. Keyed workloads — per-user duplicate detection, per-flow L0
//! sampling, per-key Lp statistics over the turnstile streams of
//! Jowhari–Sağlam–Tardos (PODS 2011) — need one sketch *per key*, and the
//! keys are Zipf-distributed: a handful of tenants are hot, the long tail
//! sees a few updates each. The registry makes that cheap along three axes:
//!
//! * **Shared seeds.** Every tenant is cloned from one prototype, so all
//!   tenants share hash-seed state and any two tenants (and any
//!   evicted-then-restored tenant) stay mutually mergeable.
//! * **Lazy tenants.** A tenant starts as a sorted sparse update log
//!   ([`LazySketch`]) costing tens of bytes and only materializes the full
//!   structure when its log crosses a density threshold — so the Zipf tail
//!   never pays for tables it would leave near-empty.
//! * **Bounded residency.** At most `max_resident` tenants live in memory
//!   (intrusive LRU over a slab); colder tenants serialize into
//!   tenant-tagged envelopes ([`envelope`]) bound for a [`SpillBackend`]
//!   — in-memory or an append-only file whose index survives process
//!   restarts — and restore transparently on the next touch.
//!
//! The ingest surface is sans-io like the engine's sessions:
//! [`SketchRegistry::route`] reports `Pending` when the eviction outbox is
//! over its backlog, and [`SketchRegistry::drain`] flushes it.
//! [`ShardedRegistry`] partitions hashed tenant space with the engine's
//! [`KeyRange`](lps_engine::KeyRange) plan for multi-shard fleets.
//!
//! The durability boundary is crash-safe and fault-tolerant: [`FileSpill`]
//! appends checksummed commit records and recovers every committed record
//! across a crash (truncating a torn tail, see [`spill`]); [`drain`]
//! retries transient backend failures under a bounded
//! [`RetryPolicy`] and quarantines permanently
//! failing tenants instead of wedging the fleet; and the [`fault`] module
//! provides seeded, deterministic fault injection ([`FaultySpill`]) to
//! prove all of it under test.
//!
//! [`drain`]: SketchRegistry::drain

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod fault;
pub mod lazy;
pub mod registry;
pub mod sharded;
pub mod spill;

pub use envelope::{
    decode_tenant_segment, encode_tenant_segment, read_tenant_segment, TENANT_HEADER_LEN,
    TENANT_MAGIC, TENANT_VERSION,
};
pub use fault::{FaultPlan, FaultStats, FaultySpill};
pub use lazy::LazySketch;
pub use registry::{RegistryConfig, RegistryError, RegistryStats, RetryPolicy, SketchRegistry};
pub use sharded::ShardedRegistry;
pub use spill::{
    record_checksum, FileSpill, MemorySpill, SpillBackend, SpillStats, RECORD_HEADER_LEN,
    RECORD_MAGIC,
};

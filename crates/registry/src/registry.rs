//! The multi-tenant sketch registry: millions of keyed sketches behind one
//! ingest surface.
//!
//! A [`SketchRegistry`] owns a fleet of per-tenant [`LazySketch`] states
//! cloned from one prototype, so every tenant shares the prototype's hash
//! seeds — which is what keeps any two tenants of a registry mergeable and
//! keeps a tenant mergeable across eviction and restore. Residency is
//! bounded: at most `max_resident` tenants live in memory, ordered by an
//! intrusive LRU list over slab slots; colder tenants are serialized into
//! tenant-tagged envelopes and pushed to a [`SpillBackend`], then restored
//! transparently the next time they are touched.
//!
//! Ingestion is sans-io, mirroring the engine's ingest sessions: [`route`]
//! returns [`Poll::Pending`] when the eviction outbox has grown past the
//! configured backlog, and [`drain`] flushes the outbox to the backend.
//! Callers that don't care use [`route_blocking`].
//!
//! [`route`]: SketchRegistry::route
//! [`drain`]: SketchRegistry::drain
//! [`route_blocking`]: SketchRegistry::route_blocking

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::sync::Arc;
use std::task::Poll;

use lps_engine::ShardIngest;
use lps_sketch::{DecodeError, Mergeable, Persist, WireWriter};
use lps_stream::Update;

use crate::envelope::{decode_tenant_segment, encode_tenant_segment};
use crate::lazy::LazySketch;
use crate::spill::SpillBackend;

/// How [`SketchRegistry::drain`] responds to spill-backend failures.
///
/// The [`SpillBackend`] error contract divides failures into **transient**
/// kinds (`Interrupted`, `WouldBlock`, `TimedOut`, `WriteZero` — the same
/// `put` may be retried verbatim) and **permanent** kinds (everything
/// else). `drain` retries a transient failure up to `max_attempts` times;
/// a permanent failure, or a transient one that exhausts the budget, is
/// escalated (quarantine or a returned error respectively) — in neither
/// case is the segment lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per segment per [`SketchRegistry::drain`] call
    /// (first try included). Must be at least 1.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// Whether the [`SpillBackend`] error contract classifies `error` as
    /// retryable.
    pub fn is_transient(error: &io::Error) -> bool {
        matches!(
            error.kind(),
            io::ErrorKind::Interrupted
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::WriteZero
        )
    }
}

/// Tuning knobs for a [`SketchRegistry`], built fluently in the
/// [`EngineBuilder`](lps_engine::EngineBuilder) style:
///
/// ```
/// use lps_registry::{RegistryConfig, RetryPolicy};
///
/// let config = RegistryConfig::new()
///     .max_resident(4096)
///     .materialize_threshold(128)
///     .spill_backlog(256)
///     .retry(RetryPolicy { max_attempts: 5 });
/// assert_eq!(config.max_resident, 4096);
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable, but
/// construction outside this crate goes through [`RegistryConfig::new`] /
/// [`RegistryConfig::default`] plus the setters — bare struct literals (the
/// pre-0.3 idiom) no longer compile, so the config surface is one idiom
/// across engine and registry.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RegistryConfig {
    /// Maximum number of tenants resident in memory before LRU eviction.
    pub max_resident: usize,
    /// Sparse-log length above which a tenant materializes its structure.
    pub materialize_threshold: usize,
    /// Outbox depth at which [`SketchRegistry::route`] reports `Pending`
    /// instead of accepting more work.
    pub spill_backlog: usize,
    /// Retry budget and classification for spill failures during
    /// [`SketchRegistry::drain`].
    pub retry: RetryPolicy,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_resident: 1024,
            materialize_threshold: 64,
            spill_backlog: 64,
            retry: RetryPolicy::default(),
        }
    }
}

impl RegistryConfig {
    /// Start from the default configuration (1024 resident tenants,
    /// materialize at 64 logged updates, 64-segment outbox backlog, 3
    /// retry attempts).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the maximum number of tenants resident in memory before LRU
    /// eviction. Must be at least 1 (validated by `SketchRegistry::new`).
    pub fn max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = max_resident;
        self
    }

    /// Set the sparse-log length above which a tenant materializes its
    /// full structure.
    pub fn materialize_threshold(mut self, threshold: usize) -> Self {
        self.materialize_threshold = threshold;
        self
    }

    /// Set the outbox depth at which [`SketchRegistry::route`] reports
    /// `Pending` instead of accepting more work.
    pub fn spill_backlog(mut self, backlog: usize) -> Self {
        self.spill_backlog = backlog;
        self
    }

    /// Set the retry budget for spill failures during
    /// [`SketchRegistry::drain`].
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Counters describing a registry's lifetime activity.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RegistryStats {
    /// Tenants serialized and pushed toward the spill backend.
    pub evictions: u64,
    /// Tenants decoded back into residency (from outbox or backend).
    pub restores: u64,
    /// Sparse logs that crossed the density threshold and replayed into a
    /// full structure.
    pub materializations: u64,
    /// Updates accepted through [`SketchRegistry::route`].
    pub routed_updates: u64,
    /// Transient spill-put failures retried during [`SketchRegistry::drain`].
    pub transient_put_retries: u64,
    /// Transient spill-get failures retried during restore or query.
    pub transient_get_retries: u64,
    /// Tenants moved to the quarantine set after a permanent spill failure.
    pub quarantined: u64,
}

impl RegistryStats {
    /// Merge another stats block into this one (for sharded aggregation).
    pub fn absorb(&mut self, other: &RegistryStats) {
        self.evictions += other.evictions;
        self.restores += other.restores;
        self.materializations += other.materializations;
        self.routed_updates += other.routed_updates;
        self.transient_put_retries += other.transient_put_retries;
        self.transient_get_retries += other.transient_get_retries;
        self.quarantined += other.quarantined;
    }
}

/// Errors a registry operation can surface.
#[derive(Debug)]
pub enum RegistryError {
    /// The spill backend failed (transient failures already retried up to
    /// the [`RetryPolicy`] budget).
    Io(std::io::Error),
    /// A spilled segment failed to decode.
    Decode(DecodeError),
    /// The tenant's segment failed its spill permanently and the tenant
    /// was moved to the quarantine set. Its last-known state is held there
    /// (see [`SketchRegistry::take_quarantined`] /
    /// [`SketchRegistry::release_quarantined`]); every other tenant keeps
    /// routing and answering queries.
    Quarantined {
        /// The quarantined tenant id.
        tenant: u64,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "spill backend error: {e}"),
            RegistryError::Decode(e) => write!(f, "spilled segment rejected: {e}"),
            RegistryError::Quarantined { tenant } => {
                write!(f, "tenant {tenant} is quarantined after a permanent spill failure")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Decode(e) => Some(e),
            RegistryError::Quarantined { .. } => None,
        }
    }
}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<DecodeError> for RegistryError {
    fn from(e: DecodeError) -> Self {
        RegistryError::Decode(e)
    }
}

/// Sentinel for "no slot" in the intrusive LRU links.
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<T> {
    tenant: u64,
    state: LazySketch<T>,
    prev: usize,
    next: usize,
}

/// A bounded-residency fleet of per-tenant sketches sharing one prototype.
///
/// See the [module docs](self) for the residency model. The type parameter
/// `T` is any engine-ingestible, persistable sketch ([`ShardIngest`] +
/// [`Persist`]); `B` is the cold-storage policy.
pub struct SketchRegistry<T, B> {
    proto: T,
    config: RegistryConfig,
    /// Seed section of `proto`'s encoding, shared by every sparse tenant so
    /// sparse and dense encodings carry identical merge witnesses.
    seed_bytes: Arc<Vec<u8>>,
    /// Encoded size of the prototype, for the resident-memory estimate.
    proto_encoded_len: usize,
    slots: Vec<Option<Slot<T>>>,
    free: Vec<usize>,
    resident: HashMap<u64, usize>,
    /// Most-recently-used slot (head) … least-recently-used (tail).
    head: usize,
    tail: usize,
    /// Eviction order of outbox tenants, oldest first. May hold stale ids
    /// for tenants already restored or quarantined; [`drain`] skips any id
    /// with no `outbox` entry.
    ///
    /// [`drain`]: SketchRegistry::drain
    outbox_order: VecDeque<u64>,
    /// Evicted segments not yet flushed to the backend, indexed by tenant
    /// so [`query`]/[`digest`]/restore stay O(1) under a deep backlog.
    ///
    /// [`query`]: SketchRegistry::query
    /// [`digest`]: SketchRegistry::digest
    outbox: HashMap<u64, Vec<u8>>,
    /// Tenants whose segments failed their spill permanently, with the
    /// segment (their last-known state — never dropped) and the error.
    quarantine: HashMap<u64, (Vec<u8>, io::Error)>,
    spill: B,
    stats: RegistryStats,
}

impl<T: ShardIngest + Persist, B: SpillBackend> SketchRegistry<T, B> {
    /// Build a registry whose tenants are clones of `proto`.
    pub fn new(proto: T, config: RegistryConfig, spill: B) -> Self {
        assert!(config.max_resident >= 1, "registry needs at least one resident slot");
        let mut seed_bytes = Vec::new();
        proto.encode_seeds(&mut WireWriter::new(&mut seed_bytes));
        let proto_encoded_len = proto.encode_to_vec().len();
        Self {
            proto,
            config,
            seed_bytes: Arc::new(seed_bytes),
            proto_encoded_len,
            slots: Vec::new(),
            free: Vec::new(),
            resident: HashMap::new(),
            head: NIL,
            tail: NIL,
            outbox_order: VecDeque::new(),
            outbox: HashMap::new(),
            quarantine: HashMap::new(),
            spill,
            stats: RegistryStats::default(),
        }
    }

    /// The prototype every tenant is cloned from.
    pub fn prototype(&self) -> &T {
        &self.proto
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> &RegistryStats {
        &self.stats
    }

    /// Number of tenants currently resident in memory.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Number of tenants held by the spill backend.
    pub fn spilled_count(&self) -> usize {
        self.spill.spilled()
    }

    /// The spill backend, e.g. to read [`FileSpill`](crate::FileSpill) or
    /// [`FaultySpill`](crate::FaultySpill) statistics.
    pub fn spill(&self) -> &B {
        &self.spill
    }

    /// Mutable access to the spill backend. Intended for fault-injection
    /// harnesses (healing a simulated partition, reconfiguring a
    /// [`FaultySpill`](crate::FaultySpill)); mutating live tenant segments
    /// underneath the registry voids the digest-identity guarantee.
    pub fn spill_mut(&mut self) -> &mut B {
        &mut self.spill
    }

    /// Evicted segments awaiting a [`drain`](Self::drain).
    pub fn outbox_len(&self) -> usize {
        self.outbox.len()
    }

    /// Rough bytes held by resident tenant state: dense tenants are costed
    /// at the prototype's encoded size, sparse tenants at their log bytes.
    /// An estimate (allocator overhead and table capacity are not modeled),
    /// but it moves monotonically with real residency, which is what the
    /// bounded-memory benchmarks track.
    pub fn resident_bytes_estimate(&self) -> usize {
        self.resident
            .values()
            .map(|&slot| match &self.slots[slot].as_ref().expect("resident slot").state {
                LazySketch::Sparse { log, .. } => log.len() * 16,
                LazySketch::Dense(_) => self.proto_encoded_len,
            })
            .sum()
    }

    // ---- intrusive LRU plumbing -------------------------------------------

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let s = self.slots[slot].as_ref().expect("linked slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        {
            let s = self.slots[slot].as_mut().expect("slot to link");
            s.prev = NIL;
            s.next = self.head;
        }
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].as_mut().expect("old head").prev = slot,
        }
        self.head = slot;
    }

    fn insert_resident(&mut self, tenant: u64, state: LazySketch<T>) -> usize {
        let slot = match self.free.pop() {
            Some(free) => {
                self.slots[free] = Some(Slot { tenant, state, prev: NIL, next: NIL });
                free
            }
            None => {
                self.slots.push(Some(Slot { tenant, state, prev: NIL, next: NIL }));
                self.slots.len() - 1
            }
        };
        self.resident.insert(tenant, slot);
        self.push_front(slot);
        slot
    }

    /// Evict the LRU tail into the outbox. Must not be called while the
    /// registry is empty.
    fn evict_tail(&mut self) {
        let slot = self.tail;
        debug_assert_ne!(slot, NIL, "evict on an empty registry");
        self.unlink(slot);
        let Slot { tenant, state, .. } = self.slots[slot].take().expect("tail slot");
        self.free.push(slot);
        self.resident.remove(&tenant);
        let segment = encode_tenant_segment(tenant, &state.encode_to_vec());
        self.outbox_order.push_back(tenant);
        self.outbox.insert(tenant, segment);
        self.stats.evictions += 1;
    }

    /// Decode a spilled segment back into tenant state, verifying the
    /// stamped tenant id and that the seed section matches this registry's
    /// prototype (a segment from a differently-seeded registry is rejected
    /// with [`DecodeError::SeedMismatch`], not silently merged).
    fn decode_segment(&self, tenant: u64, segment: &[u8]) -> Result<LazySketch<T>, RegistryError> {
        let (stamped, payload) = decode_tenant_segment(segment)?;
        if stamped != tenant {
            return Err(RegistryError::Decode(DecodeError::Corrupt {
                context: "segment stamped with a different tenant id",
            }));
        }
        if lps_sketch::seed_section(payload)? != self.seed_bytes.as_slice() {
            return Err(RegistryError::Decode(DecodeError::SeedMismatch { shard: 0 }));
        }
        let mut state = LazySketch::<T>::decode_state(payload)?;
        // re-link restored sparse tenants to the shared seed bytes so a
        // restore does not duplicate the seed section per tenant
        if let LazySketch::Sparse { seeds, .. } = &mut state {
            *seeds = Arc::clone(&self.seed_bytes);
        }
        Ok(state)
    }

    /// [`SpillBackend::get`] under the retry budget: transient failures are
    /// retried up to `retry.max_attempts` total attempts.
    fn spill_get(&mut self, tenant: u64) -> Result<Option<Vec<u8>>, RegistryError> {
        let mut attempt = 1;
        loop {
            match self.spill.get(tenant) {
                Ok(segment) => return Ok(segment),
                Err(e)
                    if RetryPolicy::is_transient(&e)
                        && attempt < self.config.retry.max_attempts =>
                {
                    attempt += 1;
                    self.stats.transient_get_retries += 1;
                }
                Err(e) => return Err(RegistryError::Io(e)),
            }
        }
    }

    /// Bring `tenant` into residency (restoring or creating as needed) and
    /// return its slot index, evicting LRU tenants beyond the cap.
    fn touch(&mut self, tenant: u64) -> Result<usize, RegistryError> {
        if self.quarantine.contains_key(&tenant) {
            return Err(RegistryError::Quarantined { tenant });
        }
        if let Some(&slot) = self.resident.get(&tenant) {
            self.unlink(slot);
            self.push_front(slot);
            return Ok(slot);
        }
        // not resident: the newest state is in the outbox if it was evicted
        // but not yet drained, else in the backend, else it is a new tenant
        // (the stale id left in `outbox_order` is skipped by `drain`)
        let state = if let Some(segment) = self.outbox.remove(&tenant) {
            self.stats.restores += 1;
            self.decode_segment(tenant, &segment)?
        } else if let Some(segment) = self.spill_get(tenant)? {
            let state = self.decode_segment(tenant, &segment)?;
            self.spill.remove(tenant);
            self.stats.restores += 1;
            state
        } else {
            LazySketch::sparse(Arc::clone(&self.seed_bytes))
        };
        let slot = self.insert_resident(tenant, state);
        // the just-touched tenant sits at the head, so it is never the tail
        // here unless it is the only resident (and then the loop does not run)
        while self.resident.len() > self.config.max_resident {
            self.evict_tail();
        }
        Ok(slot)
    }

    // ---- public surface ---------------------------------------------------

    /// Route a batch of updates to `tenant`, restoring or creating it as
    /// needed. Returns `Poll::Pending` (accepting nothing) when the eviction
    /// outbox is past the configured backlog — call [`drain`](Self::drain)
    /// and retry, or use [`route_blocking`](Self::route_blocking). On
    /// `Ready(n)`, `n` updates were absorbed.
    pub fn route(&mut self, tenant: u64, updates: &[Update]) -> Result<Poll<usize>, RegistryError> {
        if self.outbox.len() > self.config.spill_backlog {
            return Ok(Poll::Pending);
        }
        let slot = self.touch(tenant)?;
        let threshold = self.config.materialize_threshold;
        let entry = self.slots[slot].as_mut().expect("touched slot");
        if entry.state.apply(&self.proto, updates, threshold) {
            self.stats.materializations += 1;
        }
        self.stats.routed_updates += updates.len() as u64;
        Ok(Poll::Ready(updates.len()))
    }

    /// Flush every outbox segment to the spill backend; returns how many
    /// segments were flushed.
    ///
    /// Failure handling follows the [`RetryPolicy`]: a transient `put`
    /// failure is retried in place up to the attempt budget (counted in
    /// [`RegistryStats::transient_put_retries`]); if the budget is
    /// exhausted, `drain` returns the error **with the segment still
    /// queued** — a later `drain` picks it back up, and no outbox segment
    /// is ever lost to an error. A permanent failure moves the tenant and
    /// its segment into the quarantine set (counted in
    /// [`RegistryStats::quarantined`]) and draining continues with the
    /// next tenant, so one bad segment cannot wedge the rest of the fleet.
    pub fn drain(&mut self) -> Result<usize, RegistryError> {
        let mut flushed = 0;
        while let Some(&tenant) = self.outbox_order.front() {
            // stale id: the tenant was restored (or quarantined) since it
            // was queued — nothing left to flush for it
            let Some(segment) = self.outbox.get(&tenant) else {
                self.outbox_order.pop_front();
                continue;
            };
            let mut attempt = 1;
            loop {
                match self.spill.put(tenant, segment) {
                    Ok(()) => {
                        self.outbox_order.pop_front();
                        self.outbox.remove(&tenant);
                        flushed += 1;
                        break;
                    }
                    Err(e) if RetryPolicy::is_transient(&e) => {
                        if attempt >= self.config.retry.max_attempts {
                            // budget exhausted: leave the segment queued at
                            // the front and surface the error
                            return Err(RegistryError::Io(e));
                        }
                        attempt += 1;
                        self.stats.transient_put_retries += 1;
                    }
                    Err(e) => {
                        // permanent: quarantine the tenant with its
                        // last-known state and keep draining the others
                        self.outbox_order.pop_front();
                        let segment = self.outbox.remove(&tenant).expect("segment just seen");
                        self.quarantine.insert(tenant, (segment, e));
                        self.stats.quarantined += 1;
                        break;
                    }
                }
            }
        }
        Ok(flushed)
    }

    /// [`route`](Self::route), draining the outbox whenever it reports
    /// `Pending`.
    pub fn route_blocking(
        &mut self,
        tenant: u64,
        updates: &[Update],
    ) -> Result<usize, RegistryError> {
        loop {
            match self.route(tenant, updates)? {
                Poll::Ready(n) => return Ok(n),
                Poll::Pending => {
                    self.drain()?;
                }
            }
        }
    }

    /// Evaluate `f` against `tenant`'s materialized sketch view without
    /// changing residency: resident tenants are read in place, spilled ones
    /// are decoded into a scratch state. Returns `None` for a tenant the
    /// registry has never seen.
    pub fn query<R>(
        &mut self,
        tenant: u64,
        f: impl FnOnce(&T) -> R,
    ) -> Result<Option<R>, RegistryError> {
        if self.quarantine.contains_key(&tenant) {
            return Err(RegistryError::Quarantined { tenant });
        }
        if let Some(&slot) = self.resident.get(&tenant) {
            let entry = self.slots[slot].as_ref().expect("resident slot");
            return Ok(Some(entry.state.with_state(&self.proto, f)));
        }
        let segment = match self.outbox.get(&tenant) {
            Some(seg) => Some(seg.clone()),
            None => self.spill_get(tenant)?,
        };
        match segment {
            Some(segment) => {
                let state = self.decode_segment(tenant, &segment)?;
                Ok(Some(state.with_state(&self.proto, f)))
            }
            None => Ok(None),
        }
    }

    /// The representation-level state digest of `tenant`'s current state
    /// (resident or spilled), or `None` if never seen. Eviction and restore
    /// preserve this digest bit-for-bit.
    pub fn digest(&mut self, tenant: u64) -> Result<Option<u64>, RegistryError> {
        if self.quarantine.contains_key(&tenant) {
            return Err(RegistryError::Quarantined { tenant });
        }
        if let Some(&slot) = self.resident.get(&tenant) {
            let entry = self.slots[slot].as_ref().expect("resident slot");
            return Ok(Some(entry.state.state_digest()));
        }
        let segment = match self.outbox.get(&tenant) {
            Some(seg) => Some(seg.clone()),
            None => self.spill_get(tenant)?,
        };
        match segment {
            Some(segment) => Ok(Some(self.decode_segment(tenant, &segment)?.state_digest())),
            None => Ok(None),
        }
    }

    // ---- quarantine surface -----------------------------------------------

    /// Number of tenants currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantine.len()
    }

    /// Whether `tenant` is quarantined.
    pub fn is_quarantined(&self, tenant: u64) -> bool {
        self.quarantine.contains_key(&tenant)
    }

    /// Iterate the quarantined tenants with the permanent error that put
    /// each one there (arbitrary order).
    pub fn quarantined_tenants(&self) -> impl Iterator<Item = (u64, &io::Error)> + '_ {
        self.quarantine.iter().map(|(&tenant, (_, error))| (tenant, error))
    }

    /// Remove `tenant` from quarantine, handing its last-known encoded
    /// segment and the error to the caller (e.g. to park it in a dead-letter
    /// store). The tenant becomes routable again as a fresh tenant.
    pub fn take_quarantined(&mut self, tenant: u64) -> Option<(Vec<u8>, io::Error)> {
        self.quarantine.remove(&tenant)
    }

    /// Remove `tenant` from quarantine and re-queue its segment into the
    /// outbox for another [`drain`](Self::drain) attempt (after the
    /// operator fixed the backend). Returns `false` if the tenant was not
    /// quarantined.
    pub fn release_quarantined(&mut self, tenant: u64) -> bool {
        match self.quarantine.remove(&tenant) {
            Some((segment, _)) => {
                self.outbox_order.push_back(tenant);
                self.outbox.insert(tenant, segment);
                true
            }
            None => false,
        }
    }

    /// Iterate the resident tenants from most to least recently used.
    pub fn resident_tenants(&self) -> impl Iterator<Item = u64> + '_ {
        std::iter::successors((self.head != NIL).then_some(self.head), move |&slot| {
            let next = self.slots[slot].as_ref().expect("linked slot").next;
            (next != NIL).then_some(next)
        })
        .map(|slot| self.slots[slot].as_ref().expect("linked slot").tenant)
    }
}

impl<T: fmt::Debug, B> fmt::Debug for SketchRegistry<T, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SketchRegistry")
            .field("resident", &self.resident.len())
            .field("outbox", &self.outbox.len())
            .field("quarantined", &self.quarantine.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

//! Tenant-space sharding: several registries behind one routing surface.
//!
//! A [`ShardedRegistry`] hashes tenant ids into a fixed 63-bit key space and
//! partitions that space with the engine's [`KeyRange`] plan, so each
//! sub-registry owns a contiguous hash range — the same partitioning the
//! engine uses for index-space sharding, reused one level up for tenant
//! space. Hashing first (splitmix64) spreads adversarial or sequential
//! tenant ids uniformly across shards.

use std::task::Poll;

use lps_engine::{KeyRange, ShardIngest};
use lps_hash::splitmix64;
use lps_sketch::Persist;
use lps_stream::Update;

use crate::registry::{RegistryConfig, RegistryError, RegistryStats, SketchRegistry};
use crate::spill::SpillBackend;

/// The hashed tenant key space: 63 bits, so every hashed key falls strictly
/// inside the plan's dimension and [`KeyRange::owner`] never sees an
/// out-of-range index.
const TENANT_KEY_SPACE: u64 = 1 << 63;

/// A fleet of [`SketchRegistry`] shards partitioning hashed tenant space.
pub struct ShardedRegistry<T, B> {
    shards: Vec<SketchRegistry<T, B>>,
    plan: KeyRange,
}

impl<T: ShardIngest + Persist, B: SpillBackend> ShardedRegistry<T, B> {
    /// Build `shards` registries, each a clone of `proto` with its own
    /// spill backend from `make_spill(shard_index)`.
    pub fn new(
        proto: &T,
        shards: usize,
        config: RegistryConfig,
        mut make_spill: impl FnMut(usize) -> B,
    ) -> Self {
        assert!(shards >= 1, "sharded registry needs at least one shard");
        let plan = KeyRange::new(TENANT_KEY_SPACE, shards);
        let shards = (0..shards)
            .map(|i| SketchRegistry::new(proto.clone(), config.clone(), make_spill(i)))
            .collect();
        Self { shards, plan }
    }

    /// The shard that owns `tenant`.
    pub fn shard_of(&self, tenant: u64) -> usize {
        // keep the hashed key inside the 63-bit plan dimension
        self.plan.owner(splitmix64(tenant) >> 1)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Route updates for `tenant` to its owning shard.
    pub fn route(&mut self, tenant: u64, updates: &[Update]) -> Result<Poll<usize>, RegistryError> {
        let shard = self.shard_of(tenant);
        self.shards[shard].route(tenant, updates)
    }

    /// [`route`](Self::route) that drains the owning shard on `Pending`.
    pub fn route_blocking(
        &mut self,
        tenant: u64,
        updates: &[Update],
    ) -> Result<usize, RegistryError> {
        let shard = self.shard_of(tenant);
        self.shards[shard].route_blocking(tenant, updates)
    }

    /// Drain every shard's outbox; returns total segments flushed.
    pub fn drain(&mut self) -> Result<usize, RegistryError> {
        let mut flushed = 0;
        for shard in &mut self.shards {
            flushed += shard.drain()?;
        }
        Ok(flushed)
    }

    /// Query `tenant` on its owning shard (see [`SketchRegistry::query`]).
    pub fn query<R>(
        &mut self,
        tenant: u64,
        f: impl FnOnce(&T) -> R,
    ) -> Result<Option<R>, RegistryError> {
        let shard = self.shard_of(tenant);
        self.shards[shard].query(tenant, f)
    }

    /// Representation-level digest of `tenant` (see
    /// [`SketchRegistry::digest`]).
    pub fn digest(&mut self, tenant: u64) -> Result<Option<u64>, RegistryError> {
        let shard = self.shard_of(tenant);
        self.shards[shard].digest(tenant)
    }

    /// Total resident tenants across shards.
    pub fn resident_count(&self) -> usize {
        self.shards.iter().map(SketchRegistry::resident_count).sum()
    }

    /// Total spilled tenants across shards.
    pub fn spilled_count(&self) -> usize {
        self.shards.iter().map(SketchRegistry::spilled_count).sum()
    }

    /// Summed resident-memory estimate across shards.
    pub fn resident_bytes_estimate(&self) -> usize {
        self.shards.iter().map(SketchRegistry::resident_bytes_estimate).sum()
    }

    /// Total quarantined tenants across shards (see
    /// [`SketchRegistry::quarantined_count`]).
    pub fn quarantined_count(&self) -> usize {
        self.shards.iter().map(SketchRegistry::quarantined_count).sum()
    }

    /// Whether `tenant` is quarantined on its owning shard.
    pub fn is_quarantined(&self, tenant: u64) -> bool {
        self.shards[self.shard_of(tenant)].is_quarantined(tenant)
    }

    /// Aggregated lifetime stats across shards.
    pub fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for shard in &self.shards {
            total.absorb(shard.stats());
        }
        total
    }

    /// Direct access to a shard (benchmarks and tests).
    pub fn shard(&self, index: usize) -> &SketchRegistry<T, B> {
        &self.shards[index]
    }
}

//! Spill backends: where evicted tenant segments go.
//!
//! The registry is sans-io about eviction the same way the engine's ingest
//! sessions are sans-io about ingestion: eviction produces tenant-tagged
//! segments ([`crate::envelope`]) into an outbox, and a [`SpillBackend`]
//! decides what "cold storage" means. [`MemorySpill`] keeps segments in a
//! map (tests, or a tiered in-process cache); [`FileSpill`] appends them to
//! a crash-safe commit log whose index a fresh process can rebuild by
//! walking the committed records, giving cross-process registry restore —
//! including restore after a crash mid-append — for free.
//!
//! ## The v2 record format
//!
//! Every [`FileSpill::put`] appends one *record*: a fixed commit header
//! followed by the tenant segment verbatim.
//!
//! ```text
//! magic "LPSR" (4) | segment_len u64 LE (8) | fnv1a64(segment) (8) | segment
//! ```
//!
//! A record **commits** when all of its bytes reach the file: the header's
//! length frames the segment and the checksum witnesses that every framed
//! byte is the byte that was written. [`FileSpill::open`] walks records from
//! the front and classifies what it finds:
//!
//! * a complete, checksum-valid record → recovered (indexed latest-wins);
//! * a record whose header, body, or checksum runs past / disagrees with the
//!   end of the file → a **torn tail** (a crash mid-append): the tail is
//!   truncated away, counted in [`SpillStats::torn_tail_recoveries`], and
//!   every committed record before it survives — never an error;
//! * a checksum-valid record whose segment does not decode as a tenant
//!   envelope → skipped and counted ([`SpillStats::skipped_records`]): one
//!   poisoned segment (e.g. a short write a faulty device reported as
//!   complete) must not take down the other tenants;
//! * mid-file corruption (bad record magic, or a checksum mismatch with
//!   committed records after it) → `InvalidData`: that is byte rot, not a
//!   crash artifact, and silently dropping interior records would be data
//!   loss.
//!
//! Files written by the v1 format (bare concatenated `LPST` segments, no
//! commit headers) are detected by their leading magic and migrated on
//! open: the v1 walk keeps its strict all-or-nothing contract (v1 had no
//! checksums, so a torn v1 tail is indistinguishable from corruption), then
//! the file is rewritten in v2 via [`FileSpill::compact`].
//!
//! Superseded segments (a re-spilled tenant's older records) are garbage;
//! when the garbage fraction of the file crosses the configured threshold,
//! [`FileSpill::compact`] rewrites the live records into a temporary file
//! and atomically renames it over the log, so a crash during compaction
//! leaves either the old file or the new one, never a mix.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::envelope::{decode_tenant_segment, read_tenant_segment};

/// Magic prefix of a v2 spill record ("LPS Record").
pub const RECORD_MAGIC: [u8; 4] = *b"LPSR";

/// Fixed-size commit header ahead of each segment: magic (4) +
/// segment length (8) + FNV-1a checksum of the segment (8).
pub const RECORD_HEADER_LEN: usize = 4 + 8 + 8;

/// FNV-1a over a byte slice — the commit checksum of a spill record (the
/// same function [`lps_sketch::StateDigest`] builds state digests from,
/// applied to raw bytes).
pub fn record_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cold storage for evicted tenant segments.
///
/// A segment handed to [`put`](SpillBackend::put) is a complete tenant
/// envelope (self-describing: magic, version, tenant id, payload), so a
/// backend may treat it as an opaque blob.
///
/// # Error contract
///
/// * A `put` that returns `Ok(())` has **committed** the segment: a
///   subsequent `get` (in this process or, for durable backends, after a
///   restart) must return exactly those bytes. A `put` that returns an
///   error has committed nothing the caller can rely on — the backend may
///   hold garbage internally (e.g. a torn file record), but must never
///   serve it as the tenant's state.
/// * An error of kind [`io::ErrorKind::Interrupted`], `WouldBlock`,
///   `TimedOut`, or `WriteZero` is **transient**: the caller may retry the
///   same `put` verbatim (the registry's `RetryPolicy` does exactly that).
///   Any other kind is **permanent** for this tenant: retrying is not
///   expected to succeed, and the registry responds by quarantining the
///   tenant rather than looping.
/// * `get` must be repeatable and must not invalidate the stored segment on
///   failure.
pub trait SpillBackend {
    /// Store `segment` as the latest state of `tenant`, replacing any prior.
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()>;
    /// Fetch the latest segment for `tenant`, or `None` if never spilled.
    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>>;
    /// Forget `tenant` (its state moved back into memory).
    fn remove(&mut self, tenant: u64);
    /// Number of tenants currently held.
    fn spilled(&self) -> usize;
}

/// In-memory spill backend: a plain map from tenant to segment bytes.
#[derive(Debug, Default)]
pub struct MemorySpill {
    segments: HashMap<u64, Vec<u8>>,
}

impl MemorySpill {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpillBackend for MemorySpill {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        self.segments.insert(tenant, segment.to_vec());
        Ok(())
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(self.segments.get(&tenant).cloned())
    }

    fn remove(&mut self, tenant: u64) {
        self.segments.remove(&tenant);
    }

    fn spilled(&self) -> usize {
        self.segments.len()
    }
}

/// Durability counters of a [`FileSpill`] (see the [module docs](self) for
/// the recovery classification they reflect).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SpillStats {
    /// Torn tails truncated away by [`FileSpill::open`] (at most one per
    /// open — a crash tears the one in-flight append).
    pub torn_tail_recoveries: u64,
    /// Bytes dropped by torn-tail truncation.
    pub truncated_bytes: u64,
    /// Committed records skipped because their segment did not decode.
    pub skipped_records: u64,
    /// Completed [`FileSpill::compact`] rewrites (including the v1→v2
    /// migration rewrite).
    pub compactions: u64,
    /// Whether this file was migrated from the headerless v1 layout.
    pub migrated_v1: bool,
}

/// Default garbage fraction above which [`FileSpill::put`] triggers an
/// automatic [`FileSpill::compact`].
pub const DEFAULT_COMPACT_GARBAGE_RATIO: f64 = 0.5;

/// Files smaller than this never auto-compact (the rewrite would cost more
/// than the garbage it reclaims).
const COMPACT_MIN_BYTES: u64 = 4096;

/// Append-only crash-safe file spill backend with an in-memory latest-wins
/// index.
///
/// Records are appended with a commit header (see the [module docs](self));
/// re-spilling a tenant appends a newer record and moves the index entry
/// (the old bytes become garbage until [`FileSpill::compact`] rewrites the
/// live set). [`FileSpill::open`] rebuilds the index by walking committed
/// records — truncating a torn tail from a crash mid-append instead of
/// refusing the file — so a registry can restore tenants spilled by a
/// previous process even when that process died inside a `put`.
#[derive(Debug)]
pub struct FileSpill {
    file: File,
    path: PathBuf,
    /// tenant → (segment offset, segment length) of the newest record.
    index: HashMap<u64, (u64, usize)>,
    /// Next append offset (the logical file length).
    tail: u64,
    /// Bytes occupied by live (indexed) records, headers included.
    live_bytes: u64,
    /// Garbage fraction that triggers auto-compaction from `put`.
    compact_garbage_ratio: f64,
    stats: SpillStats,
}

impl FileSpill {
    /// Create (truncating) a spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        Ok(Self {
            file,
            path,
            index: HashMap::new(),
            tail: 0,
            live_bytes: 0,
            compact_garbage_ratio: DEFAULT_COMPACT_GARBAGE_RATIO,
            stats: SpillStats::default(),
        })
    }

    /// Open an existing spill file, rebuilding the tenant index by walking
    /// its committed records.
    ///
    /// Recovery semantics (the crash-safety contract, see the
    /// [module docs](self)): every fully-committed record is recovered; a
    /// torn tail — the one append a crash can interrupt — is truncated away
    /// and counted in [`SpillStats::torn_tail_recoveries`], not reported as
    /// an error; a committed record whose segment does not decode is
    /// skipped and counted; only mid-file corruption (which no crash can
    /// produce) maps to `InvalidData`. Headerless v1 files are detected by
    /// their leading `LPST` magic, walked under the old strict contract,
    /// and migrated to v2 by an immediate compaction rewrite.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() >= 4 && bytes[0..4] == crate::envelope::TENANT_MAGIC {
            return Self::open_v1(file, path, &bytes);
        }

        let mut index = HashMap::new();
        let mut live = HashMap::new(); // tenant -> record_len, for live accounting
        let mut stats = SpillStats::default();
        let mut offset = 0usize;
        let mut torn_at = None;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            if rest.len() < RECORD_HEADER_LEN {
                torn_at = Some(offset);
                break;
            }
            if rest[0..4] != RECORD_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("spill record at offset {offset} has a foreign magic"),
                ));
            }
            let len = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes")) as usize;
            let checksum = u64::from_le_bytes(rest[12..20].try_into().expect("8 bytes"));
            let record_len = match RECORD_HEADER_LEN.checked_add(len) {
                Some(l) if l <= rest.len() => l,
                // length runs past EOF: the body of the in-flight append
                // never made it — a torn tail (an absurd length from a torn
                // header lands here too, which is exactly right)
                _ => {
                    torn_at = Some(offset);
                    break;
                }
            };
            let segment = &rest[RECORD_HEADER_LEN..record_len];
            if record_checksum(segment) != checksum {
                if offset + record_len == bytes.len() {
                    // final record, bytes differ from what the checksum
                    // witnessed: a torn sector write of the last append
                    torn_at = Some(offset);
                    break;
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("spill record at offset {offset} fails its checksum mid-file"),
                ));
            }
            match decode_tenant_segment(segment) {
                Ok((tenant, _)) => {
                    // latest-wins: a superseded record drops out of `live`
                    live.insert(tenant, record_len as u64);
                    index.insert(tenant, ((offset + RECORD_HEADER_LEN) as u64, len));
                }
                // committed garbage (e.g. a short write the device reported
                // complete): skip this record, keep every other tenant
                Err(_) => stats.skipped_records += 1,
            }
            offset += record_len;
        }
        let tail = match torn_at {
            Some(at) => {
                stats.torn_tail_recoveries += 1;
                stats.truncated_bytes += (bytes.len() - at) as u64;
                file.set_len(at as u64)?;
                at as u64
            }
            None => bytes.len() as u64,
        };
        let live_bytes = live.values().sum();
        Ok(Self {
            file,
            path,
            index,
            tail,
            live_bytes,
            compact_garbage_ratio: DEFAULT_COMPACT_GARBAGE_RATIO,
            stats,
        })
    }

    /// Walk a headerless v1 file (strict: v1 records carry no checksums, so
    /// a torn v1 tail cannot be told apart from corruption and stays an
    /// error) and migrate it to the v2 record format in place.
    fn open_v1(file: File, path: PathBuf, bytes: &[u8]) -> io::Result<Self> {
        let mut index = HashMap::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let (tenant, payload, consumed) = read_tenant_segment(&bytes[offset..])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let _ = payload;
            index.insert(tenant, (offset as u64, consumed));
            offset += consumed;
        }
        let mut spill = Self {
            file,
            path,
            index,
            tail: bytes.len() as u64,
            live_bytes: 0, // v1 offsets are raw segments; fixed by compact()
            compact_garbage_ratio: DEFAULT_COMPACT_GARBAGE_RATIO,
            stats: SpillStats { migrated_v1: true, ..SpillStats::default() },
        };
        // v1 index entries are (segment offset, total segment length) with
        // no header; rewrite the whole file as v2 records so from here on
        // the crash-safety contract holds
        spill.compact()?;
        Ok(spill)
    }

    /// Bytes currently occupied by the spill file (including superseded
    /// segments awaiting compaction).
    pub fn file_len(&self) -> u64 {
        self.tail
    }

    /// The path this spill file lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durability counters (torn tails recovered, records skipped,
    /// compactions run).
    pub fn stats(&self) -> &SpillStats {
        &self.stats
    }

    /// Fraction of the file occupied by superseded (garbage) records.
    pub fn garbage_ratio(&self) -> f64 {
        if self.tail == 0 {
            return 0.0;
        }
        (self.tail - self.live_bytes) as f64 / self.tail as f64
    }

    /// Override the garbage fraction above which [`FileSpill::put`]
    /// auto-compacts (default [`DEFAULT_COMPACT_GARBAGE_RATIO`]; a value
    /// `>= 1.0` disables auto-compaction).
    pub fn with_compact_garbage_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0, "a non-positive ratio would compact on every put");
        self.compact_garbage_ratio = ratio;
        self
    }

    /// Rewrite the live records into a temporary sibling file and atomically
    /// rename it over the log, dropping all garbage. A crash during
    /// compaction leaves either the complete old file or the complete new
    /// one — the rename is the commit point.
    pub fn compact(&mut self) -> io::Result<()> {
        // deterministic layout: live segments in current file order
        let mut entries: Vec<(u64, u64, usize)> =
            self.index.iter().map(|(&tenant, &(offset, len))| (tenant, offset, len)).collect();
        entries.sort_by_key(|&(_, offset, _)| offset);

        let tmp_path = self.path.with_extension("spill-compact-tmp");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut new_index = HashMap::with_capacity(entries.len());
        let mut out_offset = 0u64;
        for (tenant, offset, len) in entries {
            self.file.seek(SeekFrom::Start(offset))?;
            let mut segment = vec![0u8; len];
            self.file.read_exact(&mut segment)?;
            // v1 migration stores whole-segment offsets, v2 stores
            // body offsets; either way `segment` is the tenant envelope
            let record = encode_record(&segment);
            tmp.write_all(&record)?;
            new_index.insert(tenant, (out_offset + RECORD_HEADER_LEN as u64, len));
            out_offset += record.len() as u64;
        }
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.index = new_index;
        self.tail = out_offset;
        self.live_bytes = out_offset;
        self.stats.compactions += 1;
        Ok(())
    }

    fn maybe_compact(&mut self) -> io::Result<()> {
        if self.tail >= COMPACT_MIN_BYTES && self.garbage_ratio() > self.compact_garbage_ratio {
            self.compact()?;
        }
        Ok(())
    }
}

/// Frame one tenant segment as a v2 commit record.
fn encode_record(segment: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(RECORD_HEADER_LEN + segment.len());
    record.extend_from_slice(&RECORD_MAGIC);
    record.extend_from_slice(&(segment.len() as u64).to_le_bytes());
    record.extend_from_slice(&record_checksum(segment).to_le_bytes());
    record.extend_from_slice(segment);
    record
}

impl SpillBackend for FileSpill {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        let record = encode_record(segment);
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&record)?;
        let record_len = record.len() as u64;
        if let Some(&(_, old_len)) = self.index.get(&tenant) {
            self.live_bytes -= (RECORD_HEADER_LEN + old_len) as u64;
        }
        self.index.insert(tenant, (self.tail + RECORD_HEADER_LEN as u64, segment.len()));
        self.tail += record_len;
        self.live_bytes += record_len;
        self.maybe_compact()
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        let Some(&(offset, len)) = self.index.get(&tenant) else {
            return Ok(None);
        };
        self.file.seek(SeekFrom::Start(offset))?;
        let mut segment = vec![0u8; len];
        self.file.read_exact(&mut segment)?;
        // paranoia against index/file skew: the stamped id must match
        let (stamped, _) = decode_tenant_segment(&segment)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if stamped != tenant {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill index pointed tenant {tenant} at a segment stamped {stamped}"),
            ));
        }
        Ok(Some(segment))
    }

    fn remove(&mut self, tenant: u64) {
        if let Some((_, len)) = self.index.remove(&tenant) {
            self.live_bytes -= (RECORD_HEADER_LEN + len) as u64;
        }
    }

    fn spilled(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::encode_tenant_segment;
    use std::path::PathBuf;

    fn scratch_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lps-registry-{}-{name}.spill", std::process::id()));
        p
    }

    #[test]
    fn memory_spill_latest_wins() {
        let mut spill = MemorySpill::new();
        spill.put(9, &encode_tenant_segment(9, b"old")).unwrap();
        spill.put(9, &encode_tenant_segment(9, b"new")).unwrap();
        assert_eq!(spill.spilled(), 1);
        let seg = spill.get(9).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"new");
        spill.remove(9);
        assert!(spill.get(9).unwrap().is_none());
    }

    #[test]
    fn file_spill_roundtrips_and_reopens() {
        let path = scratch_path("reopen");
        {
            let mut spill = FileSpill::create(&path).unwrap();
            spill.put(1, &encode_tenant_segment(1, b"one")).unwrap();
            spill.put(2, &encode_tenant_segment(2, b"two")).unwrap();
            spill.put(1, &encode_tenant_segment(1, b"one-v2")).unwrap();
            assert_eq!(spill.spilled(), 2);
            let seg = spill.get(1).unwrap().unwrap();
            assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"one-v2");
        }
        // a fresh process (simulated by reopening) rebuilds the index and
        // sees the latest segment per tenant
        let mut reopened = FileSpill::open(&path).unwrap();
        assert_eq!(reopened.spilled(), 2);
        assert_eq!(reopened.stats().torn_tail_recoveries, 0);
        let seg = reopened.get(1).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"one-v2");
        let seg = reopened.get(2).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"two");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_committed_records_survive() {
        let path = scratch_path("torn");
        {
            let mut spill = FileSpill::create(&path).unwrap();
            spill.put(5, &encode_tenant_segment(5, b"committed")).unwrap();
            spill.put(6, &encode_tenant_segment(6, b"in-flight")).unwrap();
        }
        // chop the last byte: the second append becomes a torn tail
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let mut reopened = FileSpill::open(&path).unwrap();
        assert_eq!(reopened.stats().torn_tail_recoveries, 1);
        assert!(reopened.stats().truncated_bytes > 0);
        assert_eq!(reopened.spilled(), 1, "only the committed record survives");
        let seg = reopened.get(5).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"committed");
        assert!(reopened.get(6).unwrap().is_none());
        // and the truncation is physical: appending after recovery commits
        // at the truncated tail, so a further reopen sees a clean file
        reopened.put(7, &encode_tenant_segment(7, b"after")).unwrap();
        drop(reopened);
        let mut again = FileSpill::open(&path).unwrap();
        assert_eq!(again.stats().torn_tail_recoveries, 0);
        assert_eq!(again.spilled(), 2);
        assert_eq!(decode_tenant_segment(&again.get(7).unwrap().unwrap()).unwrap().1, b"after");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_still_an_error() {
        let path = scratch_path("midfile");
        {
            let mut spill = FileSpill::create(&path).unwrap();
            spill.put(1, &encode_tenant_segment(1, b"first-record")).unwrap();
            spill.put(2, &encode_tenant_segment(2, b"second-record")).unwrap();
        }
        // flip a byte inside the FIRST record's segment: checksum fails with
        // committed records after it -> corruption, not a crash artifact
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[RECORD_HEADER_LEN + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = FileSpill::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn undecodable_committed_record_is_skipped_not_fatal() {
        let path = scratch_path("skip");
        {
            let mut spill = FileSpill::create(&path).unwrap();
            spill.put(1, &encode_tenant_segment(1, b"good")).unwrap();
            // a committed record whose body is not a tenant envelope (what a
            // short write reported as complete looks like)
            spill.put(2, &encode_tenant_segment(2, b"poisoned")[..10]).unwrap();
            spill.put(3, &encode_tenant_segment(3, b"also-good")).unwrap();
        }
        let mut reopened = FileSpill::open(&path).unwrap();
        assert_eq!(reopened.stats().skipped_records, 1);
        assert_eq!(reopened.spilled(), 2);
        assert_eq!(decode_tenant_segment(&reopened.get(1).unwrap().unwrap()).unwrap().1, b"good");
        assert_eq!(
            decode_tenant_segment(&reopened.get(3).unwrap().unwrap()).unwrap().1,
            b"also-good"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_garbage_and_preserves_live_segments() {
        let path = scratch_path("compact");
        let mut spill = FileSpill::create(&path).unwrap();
        for round in 0..10 {
            for tenant in 0..4u64 {
                let body = format!("tenant-{tenant}-round-{round}");
                spill.put(tenant, &encode_tenant_segment(tenant, body.as_bytes())).unwrap();
            }
        }
        assert!(spill.garbage_ratio() > 0.8, "9/10 of the records are superseded");
        let before = spill.file_len();
        spill.compact().unwrap();
        assert!(spill.stats().compactions >= 1);
        assert!(spill.file_len() < before / 4, "compaction must reclaim the garbage");
        assert!((spill.garbage_ratio() - 0.0).abs() < f64::EPSILON);
        for tenant in 0..4u64 {
            let seg = spill.get(tenant).unwrap().unwrap();
            let expected = format!("tenant-{tenant}-round-9");
            assert_eq!(decode_tenant_segment(&seg).unwrap().1, expected.as_bytes());
        }
        // the compacted file reopens cleanly
        drop(spill);
        let reopened = FileSpill::open(&path).unwrap();
        assert_eq!(reopened.spilled(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn put_auto_compacts_past_the_garbage_threshold() {
        let path = scratch_path("autocompact");
        let mut spill = FileSpill::create(&path).unwrap();
        let big = vec![0xABu8; 600];
        for round in 0..32 {
            let _ = round;
            spill.put(1, &encode_tenant_segment(1, &big)).unwrap();
        }
        assert!(
            spill.stats().compactions >= 1,
            "re-spilling one tenant past 4 KiB must have auto-compacted"
        );
        assert!(spill.garbage_ratio() <= DEFAULT_COMPACT_GARBAGE_RATIO);
        assert_eq!(decode_tenant_segment(&spill.get(1).unwrap().unwrap()).unwrap().1, &big[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_are_migrated_on_open() {
        let path = scratch_path("v1");
        // a v1 file is the bare concatenation of tenant segments
        let mut v1 = Vec::new();
        v1.extend_from_slice(&encode_tenant_segment(1, b"one"));
        v1.extend_from_slice(&encode_tenant_segment(2, b"two"));
        v1.extend_from_slice(&encode_tenant_segment(1, b"one-v2"));
        std::fs::write(&path, &v1).unwrap();

        let mut spill = FileSpill::open(&path).unwrap();
        assert!(spill.stats().migrated_v1);
        assert_eq!(spill.stats().compactions, 1, "migration rewrites the file");
        assert_eq!(spill.spilled(), 2);
        assert_eq!(decode_tenant_segment(&spill.get(1).unwrap().unwrap()).unwrap().1, b"one-v2");
        assert_eq!(decode_tenant_segment(&spill.get(2).unwrap().unwrap()).unwrap().1, b"two");

        // the rewritten file is v2: reopening takes the record walk and a
        // torn tail is now recoverable
        drop(spill);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk[0..4], RECORD_MAGIC);
        let reopened = FileSpill::open(&path).unwrap();
        assert!(!reopened.stats().migrated_v1);
        assert_eq!(reopened.spilled(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_v1_tail_stays_an_error() {
        let path = scratch_path("v1-torn");
        let seg = encode_tenant_segment(5, b"whole");
        std::fs::write(&path, &seg[..seg.len() - 1]).unwrap();
        assert!(FileSpill::open(&path).is_err(), "v1 has no checksums; torn v1 stays strict");
        std::fs::remove_file(&path).ok();
    }
}

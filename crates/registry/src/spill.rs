//! Spill backends: where evicted tenant segments go.
//!
//! The registry is sans-io about eviction the same way the engine's ingest
//! sessions are sans-io about ingestion: eviction produces tenant-tagged
//! segments ([`crate::envelope`]) into an outbox, and a [`SpillBackend`]
//! decides what "cold storage" means. [`MemorySpill`] keeps segments in a
//! map (tests, or a tiered in-process cache); [`FileSpill`] appends them to
//! a log file whose index a fresh process can rebuild by walking the
//! segments, giving cross-process registry restore for free.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::envelope::{decode_tenant_segment, read_tenant_segment};

/// Cold storage for evicted tenant segments.
///
/// A segment handed to [`put`](SpillBackend::put) is a complete tenant
/// envelope (self-describing: magic, version, tenant id, payload), so a
/// backend may treat it as an opaque blob.
pub trait SpillBackend {
    /// Store `segment` as the latest state of `tenant`, replacing any prior.
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()>;
    /// Fetch the latest segment for `tenant`, or `None` if never spilled.
    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>>;
    /// Forget `tenant` (its state moved back into memory).
    fn remove(&mut self, tenant: u64);
    /// Number of tenants currently held.
    fn spilled(&self) -> usize;
}

/// In-memory spill backend: a plain map from tenant to segment bytes.
#[derive(Debug, Default)]
pub struct MemorySpill {
    segments: HashMap<u64, Vec<u8>>,
}

impl MemorySpill {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpillBackend for MemorySpill {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        self.segments.insert(tenant, segment.to_vec());
        Ok(())
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(self.segments.get(&tenant).cloned())
    }

    fn remove(&mut self, tenant: u64) {
        self.segments.remove(&tenant);
    }

    fn spilled(&self) -> usize {
        self.segments.len()
    }
}

/// Append-only file spill backend with an in-memory latest-wins index.
///
/// Segments are appended verbatim; re-spilling a tenant appends a newer
/// segment and moves the index entry (the old bytes become garbage until the
/// file is rewritten). [`FileSpill::open`] rebuilds the index by walking the
/// segments, so a registry can restore tenants spilled by a previous
/// process.
#[derive(Debug)]
pub struct FileSpill {
    file: File,
    /// tenant → (offset, total segment length) of the newest segment.
    index: HashMap<u64, (u64, usize)>,
    /// Next append offset (the file length).
    tail: u64,
}

impl FileSpill {
    /// Create (truncating) a spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self { file, index: HashMap::new(), tail: 0 })
    }

    /// Open an existing spill file, rebuilding the tenant index by walking
    /// its segments. A torn tail (e.g. a crash mid-append) is an error: the
    /// walk maps it to `InvalidData` rather than silently dropping tenants.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut index = HashMap::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let (tenant, _, consumed) = read_tenant_segment(&bytes[offset..])
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            index.insert(tenant, (offset as u64, consumed));
            offset += consumed;
        }
        let tail = bytes.len() as u64;
        Ok(Self { file, index, tail })
    }

    /// Bytes currently occupied by the spill file (including superseded
    /// segments awaiting compaction).
    pub fn file_len(&self) -> u64 {
        self.tail
    }
}

impl SpillBackend for FileSpill {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(segment)?;
        self.index.insert(tenant, (self.tail, segment.len()));
        self.tail += segment.len() as u64;
        Ok(())
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        let Some(&(offset, len)) = self.index.get(&tenant) else {
            return Ok(None);
        };
        self.file.seek(SeekFrom::Start(offset))?;
        let mut segment = vec![0u8; len];
        self.file.read_exact(&mut segment)?;
        // paranoia against index/file skew: the stamped id must match
        let (stamped, _) = decode_tenant_segment(&segment)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if stamped != tenant {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("spill index pointed tenant {tenant} at a segment stamped {stamped}"),
            ));
        }
        Ok(Some(segment))
    }

    fn remove(&mut self, tenant: u64) {
        self.index.remove(&tenant);
    }

    fn spilled(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::encode_tenant_segment;
    use std::path::PathBuf;

    fn scratch_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lps-registry-{}-{name}.spill", std::process::id()));
        p
    }

    #[test]
    fn memory_spill_latest_wins() {
        let mut spill = MemorySpill::new();
        spill.put(9, &encode_tenant_segment(9, b"old")).unwrap();
        spill.put(9, &encode_tenant_segment(9, b"new")).unwrap();
        assert_eq!(spill.spilled(), 1);
        let seg = spill.get(9).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"new");
        spill.remove(9);
        assert!(spill.get(9).unwrap().is_none());
    }

    #[test]
    fn file_spill_roundtrips_and_reopens() {
        let path = scratch_path("reopen");
        {
            let mut spill = FileSpill::create(&path).unwrap();
            spill.put(1, &encode_tenant_segment(1, b"one")).unwrap();
            spill.put(2, &encode_tenant_segment(2, b"two")).unwrap();
            spill.put(1, &encode_tenant_segment(1, b"one-v2")).unwrap();
            assert_eq!(spill.spilled(), 2);
            let seg = spill.get(1).unwrap().unwrap();
            assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"one-v2");
        }
        // a fresh process (simulated by reopening) rebuilds the index and
        // sees the latest segment per tenant
        let mut reopened = FileSpill::open(&path).unwrap();
        assert_eq!(reopened.spilled(), 2);
        let seg = reopened.get(1).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"one-v2");
        let seg = reopened.get(2).unwrap().unwrap();
        assert_eq!(decode_tenant_segment(&seg).unwrap().1, b"two");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_an_error_not_data_loss() {
        let path = scratch_path("torn");
        {
            let mut spill = FileSpill::create(&path).unwrap();
            spill.put(5, &encode_tenant_segment(5, b"whole")).unwrap();
        }
        // chop the last byte to simulate a crash mid-append
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(FileSpill::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

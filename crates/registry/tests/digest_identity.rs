//! The registry's central invariant, property-tested across the exact
//! structures: a tenant that was evicted to the spill backend and restored
//! on the next touch has a `state_digest` **bit-identical** to a tenant that
//! was never evicted, for any update history and any point in that history
//! where the eviction happens.

use lps_hash::SeedSequence;
use lps_registry::{MemorySpill, RegistryConfig, SketchRegistry};
use lps_sketch::{AmsSketch, CountMinSketch, CountSketch, Persist, SparseRecovery};
use lps_stream::Update;
use proptest::prelude::*;

use lps_engine::ShardIngest;

const DIM: u64 = 512;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -50i64..50), 1..max_len)
}

fn to_updates(pairs: &[(u64, i64)]) -> Vec<Update> {
    pairs.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

/// Feed tenant 1 the history split at `split`; evict it in between by
/// flooding the registry with filler tenants; compare against a registry
/// where tenant 1 never leaves memory.
fn assert_evicted_digest_identical<T: ShardIngest + Persist>(
    proto: T,
    history: &[(u64, i64)],
    split: usize,
    threshold: usize,
) {
    let split = split.min(history.len());
    let (before, after) = history.split_at(split);
    let config =
        RegistryConfig::new().max_resident(2).materialize_threshold(threshold).spill_backlog(8);

    // evicted path: filler tenants push tenant 1 out between the two halves
    let mut evicted = SketchRegistry::new(proto.clone(), config.clone(), MemorySpill::new());
    evicted.route_blocking(1, &to_updates(before)).unwrap();
    for filler in 100..110u64 {
        evicted.route_blocking(filler, &[Update::new(0, 1)]).unwrap();
    }
    evicted.drain().unwrap();
    assert!(
        !evicted.resident_tenants().any(|t| t == 1),
        "tenant 1 must actually have been evicted for the property to bite"
    );
    evicted.route_blocking(1, &to_updates(after)).unwrap();
    assert!(evicted.stats().evictions > 0 && evicted.stats().restores > 0);

    // resident path: a roomy registry where tenant 1 never leaves memory
    let roomy = RegistryConfig::new()
        .max_resident(1024)
        .materialize_threshold(threshold)
        .spill_backlog(1024);
    let mut resident = SketchRegistry::new(proto, roomy, MemorySpill::new());
    resident.route_blocking(1, &to_updates(before)).unwrap();
    resident.route_blocking(1, &to_updates(after)).unwrap();
    assert_eq!(resident.stats().evictions, 0);

    assert_eq!(
        evicted.digest(1).unwrap().unwrap(),
        resident.digest(1).unwrap().unwrap(),
        "evicted-then-restored digest diverged from never-evicted"
    );
    // and the underlying structures agree, not just the lazy wrapper
    let a = evicted.query(1, |s| s.state_digest()).unwrap().unwrap();
    let b = resident.query(1, |s| s.state_digest()).unwrap().unwrap();
    assert_eq!(a, b, "materialized views diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sparse_recovery_evicted_digest_identity(
        history in updates_strategy(60),
        split in 0usize..60,
        threshold in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 6, &mut seeds);
        assert_evicted_digest_identical(proto, &history, split, threshold);
    }

    #[test]
    fn count_sketch_evicted_digest_identity(
        history in updates_strategy(60),
        split in 0usize..60,
        threshold in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 8, 5, &mut seeds);
        assert_evicted_digest_identical(proto, &history, split, threshold);
    }

    #[test]
    fn count_min_evicted_digest_identity(
        history in prop::collection::vec((0..DIM, 1i64..50), 1..60),
        split in 0usize..60,
        threshold in 1usize..32,
        seed in any::<u64>(),
    ) {
        // strict turnstile (non-negative) for count-min
        let mut seeds = SeedSequence::new(seed);
        let proto = CountMinSketch::new(DIM, 64, 4, &mut seeds);
        assert_evicted_digest_identical(proto, &history, split, threshold);
    }

    #[test]
    fn ams_evicted_digest_identity(
        history in updates_strategy(40),
        split in 0usize..40,
        threshold in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = AmsSketch::new(DIM, 3, 8, &mut seeds);
        assert_evicted_digest_identical(proto, &history, split, threshold);
    }
}

//! Graceful degradation under injected spill faults: the outbox-loss
//! regression, bounded transient retries, quarantine isolation, and a
//! seeded `FaultySpill` smoke matrix proving digest-exact convergence under
//! fault schedules (widen with `LPS_FAULT_SEEDS=n` — CI runs it enlarged).

use std::io;

use lps_hash::SeedSequence;
use lps_registry::{
    FaultPlan, FaultySpill, MemorySpill, RegistryConfig, RegistryError, RetryPolicy,
    SketchRegistry, SpillBackend,
};
use lps_sketch::SparseRecovery;
use lps_stream::Update;

fn recovery_proto(seed: u64) -> SparseRecovery {
    let mut seeds = SeedSequence::new(seed);
    SparseRecovery::new(1 << 14, 8, &mut seeds)
}

/// A backend whose next `fail_next` puts fail with a transient kind — the
/// minimal reproduction of the outbox-loss bug: before the fix, `drain`
/// popped the segment first and the error dropped it on the floor.
struct FlakyPuts {
    inner: MemorySpill,
    fail_next: u32,
}

impl FlakyPuts {
    fn new(fail_next: u32) -> Self {
        Self { inner: MemorySpill::new(), fail_next }
    }
}

impl SpillBackend for FlakyPuts {
    fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
        if self.fail_next > 0 {
            self.fail_next -= 1;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"));
        }
        self.inner.put(tenant, segment)
    }

    fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
        self.inner.get(tenant)
    }

    fn remove(&mut self, tenant: u64) {
        self.inner.remove(tenant);
    }

    fn spilled(&self) -> usize {
        self.inner.spilled()
    }
}

fn tight_config() -> RegistryConfig {
    RegistryConfig::new()
        .max_resident(2)
        .materialize_threshold(4)
        .spill_backlog(8)
        .retry(RetryPolicy { max_attempts: 3 })
}

/// Regression for the outbox-loss bug: a `put` failure within the retry
/// budget is retried in place and the segment is flushed, not dropped.
#[test]
fn transient_put_failures_within_budget_are_retried_not_lost() {
    let proto = recovery_proto(1);
    let mut reg = SketchRegistry::new(proto, tight_config(), FlakyPuts::new(2));
    for tenant in 0..6u64 {
        reg.route_blocking(tenant, &[Update::new(tenant, 7)]).unwrap();
    }
    reg.drain().unwrap();
    assert_eq!(reg.outbox_len(), 0, "everything flushed despite two transient failures");
    assert_eq!(reg.stats().transient_put_retries, 2);
    // nothing lost: every tenant still answers with its exact state
    for tenant in 0..6u64 {
        let v = reg
            .query(tenant, |s| s.recover().entries().expect("sparse").to_vec())
            .unwrap()
            .expect("tenant exists");
        assert_eq!(v, vec![(tenant, 7)], "tenant {tenant}");
    }
}

/// Regression for the outbox-loss bug, exhaustion side: when the budget
/// runs out, `drain` errors but the segment stays queued, and a later
/// `drain` (the backend healed) flushes it.
#[test]
fn exhausted_retry_budget_keeps_the_segment_queued() {
    let proto = recovery_proto(2);
    // 9 failures: the first drain (3 attempts) and the second (3 more)
    // both exhaust; the third drain's first attempt still fails twice
    let mut reg = SketchRegistry::new(proto, tight_config(), FlakyPuts::new(7));
    for tenant in 0..4u64 {
        // route enough to force evictions into the outbox
        reg.route_blocking(tenant, &[Update::new(tenant, 1)]).unwrap();
    }
    let queued = reg.outbox_len();
    assert!(queued > 0, "evictions must have queued segments");

    let err = reg.drain().unwrap_err();
    assert!(matches!(err, RegistryError::Io(_)));
    assert_eq!(reg.outbox_len(), queued, "the failing segment must remain queued");

    let err = reg.drain().unwrap_err();
    assert!(matches!(err, RegistryError::Io(_)));
    assert_eq!(reg.outbox_len(), queued);

    // backend healed (failure budget spent): everything flushes
    reg.drain().unwrap();
    assert_eq!(reg.outbox_len(), 0);
    for tenant in 0..4u64 {
        let v = reg
            .query(tenant, |s| s.recover().entries().expect("sparse").to_vec())
            .unwrap()
            .expect("tenant exists");
        assert_eq!(v, vec![(tenant, 1)], "tenant {tenant} survived the flaky backend");
    }
}

/// The quarantine acceptance scenario: one permanently-failing tenant is
/// quarantined with a typed error; routing and queries for every other
/// tenant are unaffected.
#[test]
fn permanent_failure_quarantines_one_tenant_without_wedging_the_rest() {
    const DOOMED: u64 = 13;
    let proto = recovery_proto(3);
    let plan = FaultPlan::new(99).with_permanent_tenant(DOOMED);
    let spill = FaultySpill::new(MemorySpill::new(), plan);
    let mut reg = SketchRegistry::new(proto, tight_config(), spill);

    for tenant in 0..40u64 {
        reg.route_blocking(tenant, &[Update::new(tenant, 3)]).unwrap();
    }
    reg.drain().unwrap();

    assert!(reg.is_quarantined(DOOMED));
    assert_eq!(reg.quarantined_count(), 1);
    assert_eq!(reg.stats().quarantined, 1);
    assert!(matches!(
        reg.route(DOOMED, &[Update::new(1, 1)]),
        Err(RegistryError::Quarantined { tenant: DOOMED })
    ));
    assert!(matches!(
        reg.query(DOOMED, |_| ()),
        Err(RegistryError::Quarantined { tenant: DOOMED })
    ));
    assert!(matches!(reg.digest(DOOMED), Err(RegistryError::Quarantined { tenant: DOOMED })));

    // every other tenant routes and answers exactly
    for tenant in (0..40u64).filter(|&t| t != DOOMED) {
        reg.route_blocking(tenant, &[Update::new(tenant + 1000, 4)]).unwrap();
        let v = reg
            .query(tenant, |s| s.recover().entries().expect("sparse").to_vec())
            .unwrap()
            .expect("tenant exists");
        assert_eq!(v, vec![(tenant, 3), (tenant + 1000, 4)], "tenant {tenant}");
    }

    // the quarantined segment is the tenant's last-known state, not lost:
    // take it out and decode it
    let (segment, error) = reg.take_quarantined(DOOMED).expect("was quarantined");
    assert_eq!(error.kind(), io::ErrorKind::PermissionDenied);
    let (stamped, _) = lps_registry::decode_tenant_segment(&segment).unwrap();
    assert_eq!(stamped, DOOMED);
    assert!(!reg.is_quarantined(DOOMED), "take releases the tenant");
}

/// `release_quarantined` re-queues the held segment for another drain.
#[test]
fn released_quarantined_tenant_flushes_once_the_backend_heals() {
    const DOOMED: u64 = 5;
    let proto = recovery_proto(4);
    // a backend that permanently fails tenant 5 only while `broken` is set
    struct Partition {
        inner: MemorySpill,
        broken: bool,
    }
    impl SpillBackend for Partition {
        fn put(&mut self, tenant: u64, segment: &[u8]) -> io::Result<()> {
            if self.broken && tenant == DOOMED {
                return Err(io::Error::new(io::ErrorKind::PermissionDenied, "partitioned"));
            }
            self.inner.put(tenant, segment)
        }
        fn get(&mut self, tenant: u64) -> io::Result<Option<Vec<u8>>> {
            self.inner.get(tenant)
        }
        fn remove(&mut self, tenant: u64) {
            self.inner.remove(tenant);
        }
        fn spilled(&self) -> usize {
            self.inner.spilled()
        }
    }

    let spill = Partition { inner: MemorySpill::new(), broken: true };
    let mut reg = SketchRegistry::new(proto, tight_config(), spill);
    for tenant in 0..8u64 {
        reg.route_blocking(tenant, &[Update::new(tenant, 2)]).unwrap();
    }
    reg.drain().unwrap();
    assert!(reg.is_quarantined(DOOMED));

    // still quarantined: release before healing just re-quarantines
    assert!(reg.release_quarantined(DOOMED));
    reg.drain().unwrap();
    assert!(reg.is_quarantined(DOOMED), "backend still broken: quarantined again");
    assert_eq!(reg.stats().quarantined, 2);

    // heal, release, drain: the tenant's state finally lands in the backend
    // and is queryable again
    reg.spill_mut().broken = false;
    assert!(reg.release_quarantined(DOOMED));
    reg.drain().unwrap();
    assert!(!reg.is_quarantined(DOOMED));
    let v = reg
        .query(DOOMED, |s| s.recover().entries().expect("sparse").to_vec())
        .unwrap()
        .expect("tenant restored");
    assert_eq!(v, vec![(DOOMED, 2)]);
}

/// Seeded smoke matrix: registries driven over a `FaultySpill` with
/// transient and short-write schedules must converge to the exact same
/// per-tenant digests as a fault-free reference. `LPS_FAULT_SEEDS` widens
/// the matrix (CI runs 8 seeds).
#[test]
fn fault_matrix_converges_to_fault_free_digests() {
    let seeds: u64 =
        std::env::var("LPS_FAULT_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    for seed in 1..=seeds {
        let proto = recovery_proto(100);
        let tenants = 64u64;

        // fault-free reference registry
        let mut reference = SketchRegistry::new(proto.clone(), tight_config(), MemorySpill::new());
        // faulty registry: 10% transient puts, 5% transient gets, 5% short
        // writes — all retryable or superseded, so no state may be lost
        let plan = FaultPlan::new(seed)
            .with_transient_put(100)
            .with_transient_get(50)
            .with_short_write(50);
        let mut faulty =
            SketchRegistry::new(proto, tight_config(), FaultySpill::new(MemorySpill::new(), plan));

        let mut traffic = SeedSequence::new(seed ^ 0xDEAD);
        for _ in 0..2_000 {
            let tenant = traffic.next_below(tenants);
            let index = traffic.next_below(1 << 14);
            let delta = (traffic.next_below(9) as i64) - 4;
            let ups = [Update::new(index, if delta == 0 { 1 } else { delta })];
            reference.route_blocking(tenant, &ups).unwrap();
            // a transient schedule can exhaust one retry budget; the caller
            // retries the whole op, which must stay idempotent-safe
            let mut attempts = 0;
            loop {
                match faulty.route_blocking(tenant, &ups) {
                    Ok(_) => break,
                    Err(RegistryError::Io(_)) if attempts < 32 => attempts += 1,
                    Err(e) => panic!("seed {seed}: unexpected error {e}"),
                }
            }
        }

        for tenant in 0..tenants {
            let want = reference.digest(tenant).unwrap();
            let mut attempts = 0;
            let got = loop {
                match faulty.digest(tenant) {
                    Ok(d) => break d,
                    Err(RegistryError::Io(_)) if attempts < 32 => attempts += 1,
                    Err(e) => panic!("seed {seed}: digest error {e}"),
                }
            };
            assert_eq!(got, want, "seed {seed}, tenant {tenant} diverged under faults");
        }
        let stats = faulty.stats();
        assert!(
            stats.transient_put_retries > 0,
            "seed {seed}: the schedule must actually have injected put faults"
        );
    }
}

//! Registry lifecycle tests: routing, eviction, restore, query correctness,
//! and bounded residency under Zipf tenant traffic.

use std::task::Poll;

use lps_hash::SeedSequence;
use lps_registry::{FileSpill, MemorySpill, RegistryConfig, ShardedRegistry, SketchRegistry};
use lps_sketch::{CountSketch, LinearSketch, Mergeable, SparseRecovery};
use lps_stream::{Update, Zipf};

fn recovery_proto(seed: u64) -> SparseRecovery {
    let mut seeds = SeedSequence::new(seed);
    SparseRecovery::new(1 << 16, 8, &mut seeds)
}

/// The exact recovered entries of a sparse tenant (panics on `Dense`).
fn recovered(s: &SparseRecovery) -> Vec<(u64, i64)> {
    s.recover().entries().expect("sparse tenant must recover").to_vec()
}

#[test]
fn tenants_are_isolated_and_queryable() {
    let proto = recovery_proto(1);
    let mut reg = SketchRegistry::new(proto.clone(), RegistryConfig::default(), MemorySpill::new());

    reg.route_blocking(10, &[Update::new(3, 5), Update::new(9, -2)]).unwrap();
    reg.route_blocking(20, &[Update::new(3, 100)]).unwrap();

    let ten = reg.query(10, recovered).unwrap().expect("tenant 10 exists");
    assert_eq!(ten, vec![(3, 5), (9, -2)]);
    let twenty = reg.query(20, recovered).unwrap().unwrap();
    assert_eq!(twenty, vec![(3, 100)]);
    assert!(reg.query(999, |_| ()).unwrap().is_none(), "unknown tenant is None");
}

#[test]
fn eviction_keeps_residency_bounded_and_restores_transparently() {
    let proto = recovery_proto(2);
    let config = RegistryConfig::new().max_resident(4).materialize_threshold(2).spill_backlog(2);
    let mut reg = SketchRegistry::new(proto, config, MemorySpill::new());

    // touch 32 tenants, each with a distinguishable update
    for tenant in 0..32u64 {
        reg.route_blocking(tenant, &[Update::new(tenant, tenant as i64 + 1)]).unwrap();
        assert!(reg.resident_count() <= 4, "residency cap violated");
    }
    assert!(reg.stats().evictions >= 28, "28 tenants must have been evicted");
    reg.drain().unwrap();
    assert_eq!(reg.resident_count() + reg.spilled_count(), 32);

    // touching a spilled tenant restores its exact state
    let restores_before = reg.stats().restores;
    reg.route_blocking(0, &[Update::new(100, 7)]).unwrap();
    assert!(reg.stats().restores > restores_before);
    let v = reg.query(0, recovered).unwrap().unwrap();
    assert_eq!(v, vec![(0, 1), (100, 7)]);

    // every tenant still answers correctly wherever it lives
    for tenant in 1..32u64 {
        let v = reg.query(tenant, recovered).unwrap().unwrap();
        assert_eq!(v, vec![(tenant, tenant as i64 + 1)], "tenant {tenant}");
    }
}

#[test]
fn route_is_sans_io_pending_until_drained() {
    let proto = recovery_proto(3);
    let config = RegistryConfig::new().max_resident(1).materialize_threshold(4).spill_backlog(3);
    let mut reg = SketchRegistry::new(proto, config, MemorySpill::new());

    // each new tenant evicts the previous one; after 4 evictions the outbox
    // exceeds the backlog of 3 and route reports Pending
    let mut pending_at = None;
    for tenant in 0..16u64 {
        match reg.route(tenant, &[Update::new(1, 1)]).unwrap() {
            Poll::Ready(n) => assert_eq!(n, 1),
            Poll::Pending => {
                pending_at = Some(tenant);
                break;
            }
        }
    }
    let stalled = pending_at.expect("outbox backlog must eventually stall route");
    assert_eq!(reg.outbox_len(), 4, "stalled just past the backlog of 3");

    reg.drain().unwrap();
    assert_eq!(reg.outbox_len(), 0);
    assert!(matches!(reg.route(stalled, &[Update::new(1, 1)]).unwrap(), Poll::Ready(1)));
}

#[test]
fn registry_matches_per_tenant_sequential_sketches() {
    // the registry under eviction pressure must agree with one plain sketch
    // per tenant fed the same per-tenant stream
    let proto = CountSketch::new(1 << 12, 16, 5, &mut SeedSequence::new(4));
    let config = RegistryConfig::new().max_resident(8).materialize_threshold(8).spill_backlog(16);
    let mut reg = SketchRegistry::new(proto.clone(), config, MemorySpill::new());

    let tenants = 64u64;
    let mut reference: Vec<CountSketch> = (0..tenants).map(|_| proto.clone()).collect();
    let mut stream_seeds = SeedSequence::new(5);
    for _ in 0..2000 {
        let tenant = stream_seeds.next_below(tenants);
        let index = stream_seeds.next_below(1 << 12);
        let delta = (stream_seeds.next_below(19) as i64) - 9;
        let update = [Update::new(index, if delta == 0 { 1 } else { delta })];
        reg.route_blocking(tenant, &update).unwrap();
        reference[tenant as usize].process_batch(&update);
    }

    for tenant in 0..tenants {
        let expected = reference[tenant as usize].state_digest();
        let got =
            reg.query(tenant, |s| s.state_digest()).unwrap().expect("every tenant was touched");
        assert_eq!(got, expected, "tenant {tenant} diverged from sequential");
    }
}

#[test]
fn zipf_traffic_over_many_tenants_stays_bounded() {
    // the acceptance-shaped scenario, scaled for CI: 10^5 tenants under Zipf
    // traffic, residency bounded, evictions and restores both exercised
    let tenants = 100_000u64;
    let proto = recovery_proto(6);
    let config =
        RegistryConfig::new().max_resident(512).materialize_threshold(16).spill_backlog(256);
    let mut reg = SketchRegistry::new(proto, config, MemorySpill::new());

    let zipf = Zipf::new(tenants, 1.1);
    let mut seeds = SeedSequence::new(7);
    for _ in 0..20_000 {
        let tenant = zipf.sample(&mut seeds);
        let index = seeds.next_below(1 << 16);
        reg.route_blocking(tenant, &[Update::new(index, 1)]).unwrap();
        assert!(reg.resident_count() <= 512);
    }
    reg.drain().unwrap();

    let stats = reg.stats();
    assert_eq!(stats.routed_updates, 20_000);
    assert!(stats.evictions > 0, "Zipf tail must overflow residency");
    assert!(stats.restores > 0, "hot tenants must cycle back in");
    // Zipf head tenants concentrate enough updates to materialize
    assert!(stats.materializations > 0, "head tenants must cross the density threshold");
    // the resident estimate stays far below the cost of 10^5 dense tenants
    let bytes = reg.resident_bytes_estimate();
    assert!(bytes > 0 && bytes < 512 * 1024 * 1024, "resident estimate implausible: {bytes}");
}

#[test]
fn sharded_registry_partitions_tenants_consistently() {
    let proto = recovery_proto(8);
    let config = RegistryConfig::new().max_resident(32).materialize_threshold(4).spill_backlog(16);
    let mut reg = ShardedRegistry::new(&proto, 4, config, |_| MemorySpill::new());
    assert_eq!(reg.shard_count(), 4);

    let mut owners = std::collections::HashSet::new();
    for tenant in 0..256u64 {
        owners.insert(reg.shard_of(tenant));
        reg.route_blocking(tenant, &[Update::new(tenant, 1)]).unwrap();
    }
    assert_eq!(owners.len(), 4, "hashing must spread tenants over all shards");

    for tenant in 0..256u64 {
        let v = reg.query(tenant, recovered).unwrap().unwrap();
        assert_eq!(v, vec![(tenant, 1)]);
    }
    assert_eq!(reg.stats().routed_updates, 256);
    assert!(reg.resident_count() <= 4 * 32);
}

#[test]
fn file_spill_registry_survives_a_process_style_restart() {
    let mut path = std::env::temp_dir();
    path.push(format!("lps-registry-restart-{}.spill", std::process::id()));

    let proto = recovery_proto(9);
    let config = RegistryConfig::new().max_resident(2).materialize_threshold(2).spill_backlog(1);
    {
        let spill = FileSpill::create(&path).unwrap();
        let mut reg = SketchRegistry::new(proto.clone(), config.clone(), spill);
        for tenant in 0..12u64 {
            reg.route_blocking(tenant, &[Update::new(tenant, 2)]).unwrap();
        }
        reg.drain().unwrap();
        // evict everything still resident so the file holds all cold tenants
        for tenant in 100..102u64 {
            reg.route_blocking(tenant, &[Update::new(1, 1)]).unwrap();
        }
        reg.drain().unwrap();
    }

    // "restart": a fresh registry over the reopened spill file restores the
    // first process's tenants
    let spill = FileSpill::open(&path).unwrap();
    let mut reg = SketchRegistry::new(proto, config, spill);
    for tenant in 0..12u64 {
        let v = reg.query(tenant, recovered).unwrap().unwrap();
        assert_eq!(v, vec![(tenant, 2)], "tenant {tenant} lost across restart");
    }
    std::fs::remove_file(&path).ok();
}

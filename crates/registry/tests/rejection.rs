//! Malformed-input rejection for the registry's persisted forms (the
//! registry extension of `crates/sketch/tests/persist_roundtrip.rs`):
//! lazy-sketch segments and tenant envelopes must reject truncation at every
//! prefix, appended garbage, and corrupt tenant ids / counts — always with a
//! typed error, never a panic or a length-driven over-allocation.

use lps_engine::ShardIngest;
use lps_hash::SeedSequence;
use lps_registry::{
    decode_tenant_segment, encode_tenant_segment, read_tenant_segment, LazySketch,
    TENANT_HEADER_LEN,
};
use lps_sketch::{CountSketch, Persist, SparseRecovery, WireWriter};
use lps_stream::Update;
use proptest::prelude::*;
use std::sync::Arc;

const DIM: u64 = 256;

fn updates_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0..DIM, -50i64..50), 0..max_len)
}

fn to_updates(pairs: &[(u64, i64)]) -> Vec<Update> {
    pairs.iter().map(|&(i, d)| Update::new(i, d)).collect()
}

fn lazy_tenant<T: ShardIngest + Persist>(
    proto: &T,
    pairs: &[(u64, i64)],
    dense: bool,
) -> LazySketch<T> {
    let mut seed_bytes = Vec::new();
    proto.encode_seeds(&mut WireWriter::new(&mut seed_bytes));
    let mut lazy = LazySketch::sparse(Arc::new(seed_bytes));
    lazy.apply(proto, &to_updates(pairs), usize::MAX);
    if dense {
        lazy.materialize(proto);
    }
    lazy
}

/// Mirror of the sketch crate's malformed-variant sweep.
fn assert_rejects_malformed<S: Persist>(state: &S) {
    let good = state.encode_to_vec();
    assert!(S::decode_state(&good).is_ok(), "the untouched encoding must decode");

    for cut in 0..good.len() {
        assert!(S::decode_state(&good[..cut]).is_err(), "prefix of {cut} bytes accepted");
    }
    let mut long = good.clone();
    long.extend_from_slice(&[0xAB, 0xCD]);
    assert!(S::decode_state(&long).is_err(), "trailing bytes accepted");
    // single-byte corruption over the whole buffer: decode is total — either
    // a typed error or a structurally valid state, never a panic
    let step = (good.len() / 64).max(1);
    for pos in (0..good.len()).step_by(step) {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        let _ = S::decode_state(&bad);
    }
}

/// The same sweep for a tenant envelope wrapping `payload`.
fn assert_envelope_rejects_malformed(tenant: u64, payload: &[u8]) {
    let good = encode_tenant_segment(tenant, payload);
    assert_eq!(decode_tenant_segment(&good).unwrap(), (tenant, payload));

    for cut in 0..good.len() {
        assert!(
            read_tenant_segment(&good[..cut]).is_err(),
            "envelope prefix of {cut} bytes accepted"
        );
    }
    let mut long = good.clone();
    long.extend_from_slice(&[0x01]);
    assert!(decode_tenant_segment(&long).is_err(), "trailing envelope bytes accepted");

    // corrupt every header byte: magic, version, tenant id, payload length
    for pos in 0..TENANT_HEADER_LEN.min(good.len()) {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        // a flipped tenant-id byte still parses (the id is opaque here; the
        // registry checks it against its index) — everything else must not
        // panic, and length corruption must fail rather than over-allocate
        let _ = read_tenant_segment(&bad);
    }
    // maximal length field: must be Truncated, not an allocation attempt
    let mut bad = good.clone();
    bad[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(read_tenant_segment(&bad).is_err(), "absurd payload length accepted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sparse_lazy_segments_reject_malformed(
        pairs in updates_strategy(24),
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 5, &mut seeds);
        assert_rejects_malformed(&lazy_tenant(&proto, &pairs, false));
    }

    #[test]
    fn dense_lazy_segments_reject_malformed(
        pairs in updates_strategy(24),
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = CountSketch::new(DIM, 8, 4, &mut seeds);
        assert_rejects_malformed(&lazy_tenant(&proto, &pairs, true));
    }

    #[test]
    fn tenant_envelopes_reject_malformed(
        pairs in updates_strategy(24),
        tenant in any::<u64>(),
        dense in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut seeds = SeedSequence::new(seed);
        let proto = SparseRecovery::new(DIM, 5, &mut seeds);
        let payload = lazy_tenant(&proto, &pairs, dense).encode_to_vec();
        assert_envelope_rejects_malformed(tenant, &payload);
    }
}

#[test]
fn sparse_log_decode_rejects_unsorted_and_cancelled_entries() {
    let mut seeds = SeedSequence::new(99);
    let proto = SparseRecovery::new(DIM, 5, &mut seeds);
    let lazy = lazy_tenant(&proto, &[(3, 5), (9, 1)], false);
    let good = lazy.encode_to_vec();

    // locate the log region: it sits in the counter section after the kind
    // byte and count; flip the second index below the first to break sorting
    let header = lps_sketch::read_header(&good).unwrap();
    let counters_at = header.counter_range.start;
    let mut bad = good.clone();
    // counter section layout: kind u8 | count u64 | (index u64, delta i64)*
    let second_index_at = counters_at + 1 + 8 + 16;
    bad[second_index_at..second_index_at + 8].copy_from_slice(&1u64.to_le_bytes());
    assert!(LazySketch::<SparseRecovery>::decode_state(&bad).is_err(), "out-of-order log accepted");

    // a zero delta claims a cancelled entry, which encode never emits
    let mut bad = good.clone();
    let first_delta_at = counters_at + 1 + 8 + 8;
    bad[first_delta_at..first_delta_at + 8].copy_from_slice(&0i64.to_le_bytes());
    assert!(
        LazySketch::<SparseRecovery>::decode_state(&bad).is_err(),
        "cancelled log entry accepted"
    );

    // an inflated log count must be rejected before allocating
    let mut bad = good;
    let count_at = counters_at + 1;
    bad[count_at..count_at + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(
        LazySketch::<SparseRecovery>::decode_state(&bad).is_err(),
        "inflated log count accepted"
    );
}

#[test]
fn registry_restore_rejects_cross_registry_segments() {
    use lps_registry::{MemorySpill, RegistryConfig, SketchRegistry, SpillBackend};

    // a segment spilled by a differently-seeded registry must be refused on
    // restore (seed witness mismatch), not silently merged
    let proto_a = SparseRecovery::new(DIM, 5, &mut SeedSequence::new(1));
    let lazy = lazy_tenant(&proto_a, &[(1, 1), (2, 2), (3, 3)], true);
    let segment = encode_tenant_segment(7, &lazy.encode_to_vec());
    let mut foreign = MemorySpill::new();
    foreign.put(7, &segment).unwrap();

    let proto_b = SparseRecovery::new(DIM, 5, &mut SeedSequence::new(2));
    let config = RegistryConfig::new().max_resident(4).materialize_threshold(2).spill_backlog(8);
    let mut reg_b = SketchRegistry::new(proto_b, config, foreign);
    assert!(
        reg_b.route(7, &[Update::new(5, 5)]).is_err(),
        "segment from a differently-seeded registry must be rejected"
    );
}

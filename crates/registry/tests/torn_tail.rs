//! Crash-consistency property for the v2 spill log: a `FileSpill` file
//! truncated at **every** byte offset — simulating a crash mid-append —
//! must reopen without panicking and recover exactly the records that were
//! fully committed before the cut, byte-identical (and therefore
//! digest-identical) to the pre-crash segments.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

use lps_registry::{encode_tenant_segment, FileSpill, SpillBackend};
use proptest::prelude::*;

fn scratch_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lps-torn-{}-{tag}.spill", std::process::id()));
    p
}

/// One spill put per entry: `(tenant, payload)`. Small tenant range so
/// overwrites (superseded records) occur, exercising latest-wins recovery.
fn puts_strategy() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    prop::collection::vec((0..4u64, prop::collection::vec(any::<u8>(), 0..24)), 1..8)
}

proptest! {
    // every case tries ~hundreds of truncation offsets, so keep cases modest
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn truncation_at_every_offset_recovers_the_committed_prefix(
        puts in puts_strategy(),
        case in 0u64..u64::MAX,
    ) {
        let path = scratch_path(&format!("base-{case}"));
        let cut_path = scratch_path(&format!("cut-{case}"));

        // Write the log, recording the file length after each put: those are
        // the commit boundaries. Disable auto-compaction so boundaries are
        // exactly the record ends.
        let mut boundaries = Vec::with_capacity(puts.len());
        let mut segments = Vec::with_capacity(puts.len());
        {
            let mut spill = FileSpill::create(&path).unwrap().with_compact_garbage_ratio(1.1);
            for (tenant, payload) in &puts {
                let segment = encode_tenant_segment(*tenant, payload);
                spill.put(*tenant, &segment).unwrap();
                boundaries.push(spill.file_len());
                segments.push((*tenant, segment));
            }
        }
        let bytes = fs::read(&path).unwrap();
        prop_assert_eq!(bytes.len() as u64, *boundaries.last().unwrap());

        for cut in 0..=bytes.len() {
            // committed prefix: every record whose end lies at or before the cut
            let committed = boundaries.iter().filter(|&&b| b <= cut as u64).count();
            let mut expected: HashMap<u64, &[u8]> = HashMap::new();
            for (tenant, segment) in &segments[..committed] {
                expected.insert(*tenant, segment);
            }

            fs::write(&cut_path, &bytes[..cut]).unwrap();
            // must never error, let alone panic: a torn tail is recovery, not
            // corruption
            let mut reopened = FileSpill::open(&cut_path).unwrap();
            prop_assert_eq!(
                reopened.spilled(),
                expected.len(),
                "cut at byte {} of {}", cut, bytes.len()
            );
            for (tenant, want) in &expected {
                let got = reopened.get(*tenant).unwrap().unwrap();
                prop_assert_eq!(&got.as_slice(), want, "tenant {} at cut {}", tenant, cut);
            }
            // torn bytes past the last boundary must be trimmed and counted
            let last_boundary = boundaries[..committed].last().copied().unwrap_or(0);
            prop_assert_eq!(reopened.file_len(), last_boundary);
            if (cut as u64) > last_boundary {
                prop_assert_eq!(reopened.stats().torn_tail_recoveries, 1);
                prop_assert_eq!(reopened.stats().truncated_bytes, cut as u64 - last_boundary);
            } else {
                prop_assert_eq!(reopened.stats().torn_tail_recoveries, 0);
            }
        }

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&cut_path);
    }
}

//! The service catalog: which structures a server hosts, how they are
//! seeded, and how each answers queries.
//!
//! A server and its clients must agree on every random function, or
//! checkpoint uploads would be rejected as `SeedMismatch` and reference
//! digests would be meaningless. [`CatalogPrototypes::standard`] pins that
//! agreement the same way the cross-process checkpoint harness does: all
//! prototypes are drawn, in a fixed order, from one `SeedSequence`, so any
//! two parties constructing the catalog from the same `(dimension, seed)`
//! pair hold bit-identical structures.
//!
//! [`ServeQuery`] is the query-answering capability a catalog structure
//! adds on top of the engine's `ShardIngest` + `Persist`: samplers answer
//! [`Query::Sample`], counter sketches answer [`Query::PointEstimate`],
//! sparse recovery answers [`Query::Duplicates`], and everything answers
//! [`Query::Digest`] (the default implementation). Unsupported kinds come
//! back as typed [`ServiceError::Unsupported`] — never a panic, never a
//! silent wrong answer.

use lps_core::{FisL0Sampler, L0Sampler, LpSampler, Mergeable};
use lps_engine::ShardIngest;
use lps_hash::SeedSequence;
use lps_sketch::persist::tags;
use lps_sketch::{
    AmsSketch, CountMedianSketch, CountMinSketch, CountSketch, Persist, RecoveryOutput,
    SparseRecovery,
};

use crate::proto::{Query, Reply};
use crate::ServiceError;

/// The `(name, Persist tag)` of every structure a standard catalog hosts:
/// the seven exact-arithmetic `ShardIngest` implementors, whose merges are
/// bit-identical to sequential ingestion — the property the loopback CI
/// digest comparison rests on.
pub const CATALOG_STRUCTURES: [(&str, u16); 7] = [
    ("sparse_recovery", tags::SPARSE_RECOVERY),
    ("l0_sampler", tags::L0_SAMPLER),
    ("fis_l0", tags::FIS_L0_SAMPLER),
    ("count_sketch", tags::COUNT_SKETCH),
    ("count_min", tags::COUNT_MIN),
    ("count_median", tags::COUNT_MEDIAN),
    ("ams", tags::AMS),
];

/// How a catalog structure answers service queries.
///
/// The default [`ServeQuery::serve`] answers [`Query::Digest`] via
/// `Mergeable::state_digest` and rejects everything else as
/// [`ServiceError::Unsupported`]; implementors override it to add the
/// kinds their estimator supports.
pub trait ServeQuery: ShardIngest + Persist + Send + Sync + 'static {
    /// Catalog name, used in error details and logs.
    const NAME: &'static str;

    /// Answer `query` from this structure's current state.
    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

/// The typed rejection for a query kind a structure does not answer.
fn unsupported(structure: &'static str, query: &Query) -> ServiceError {
    ServiceError::Unsupported {
        structure,
        query: match query {
            Query::Sample { .. } => "sample",
            Query::PointEstimate { .. } => "point-estimate",
            Query::Duplicates { .. } => "duplicates",
            Query::Digest { .. } => "digest",
            Query::TenantDigest { .. } => "tenant-digest",
        },
    }
}

impl ServeQuery for SparseRecovery {
    const NAME: &'static str = "sparse_recovery";

    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::Duplicates { .. } => match self.recover() {
                RecoveryOutput::Recovered(entries) => Ok(Reply::Duplicates {
                    entries: entries.into_iter().filter(|&(_, count)| count >= 2).collect(),
                }),
                RecoveryOutput::Dense => Err(ServiceError::Unsupported {
                    structure: Self::NAME,
                    query: "duplicates (recovery saturated: more non-zeros than capacity)",
                }),
            },
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

impl ServeQuery for L0Sampler {
    const NAME: &'static str = "l0_sampler";

    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::Sample { .. } => {
                Ok(Reply::Sample { sample: LpSampler::sample(self).map(|s| (s.index, s.estimate)) })
            }
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

impl ServeQuery for FisL0Sampler {
    const NAME: &'static str = "fis_l0";

    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::Sample { .. } => {
                Ok(Reply::Sample { sample: LpSampler::sample(self).map(|s| (s.index, s.estimate)) })
            }
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

impl ServeQuery for CountSketch {
    const NAME: &'static str = "count_sketch";

    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::PointEstimate { index, .. } => {
                Ok(Reply::Estimate { value: self.estimate(*index) })
            }
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

impl ServeQuery for CountMinSketch {
    const NAME: &'static str = "count_min";

    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::PointEstimate { index, .. } => {
                Ok(Reply::Estimate { value: self.estimate(*index) as f64 })
            }
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

impl ServeQuery for CountMedianSketch {
    const NAME: &'static str = "count_median";

    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        match query {
            Query::PointEstimate { index, .. } => {
                Ok(Reply::Estimate { value: self.estimate(*index) })
            }
            Query::Digest { .. } => Ok(Reply::Digest { digest: self.state_digest() }),
            other => Err(unsupported(Self::NAME, other)),
        }
    }
}

impl ServeQuery for AmsSketch {
    const NAME: &'static str = "ams";
}

/// The identically-seeded structures a standard service hosts, plus the
/// per-tenant registry prototype. Both the server and any client that
/// wants to upload seed-compatible checkpoints (or recompute reference
/// digests) build this from the same `(dimension, seed)` pair.
#[derive(Debug, Clone)]
pub struct CatalogPrototypes {
    /// Exact s-sparse recovery (answers duplicates queries).
    pub sparse_recovery: SparseRecovery,
    /// The paper's zero-error L0 sampler (answers sample queries).
    pub l0_sampler: L0Sampler,
    /// The FIS-style L0 sampler baseline (answers sample queries).
    pub fis_l0: FisL0Sampler,
    /// Count-sketch (answers point-estimate queries).
    pub count_sketch: CountSketch,
    /// Count-min (answers point-estimate queries).
    pub count_min: CountMinSketch,
    /// Count-median (answers point-estimate queries).
    pub count_median: CountMedianSketch,
    /// AMS F2 sketch (digest only).
    pub ams: AmsSketch,
    /// Prototype every registry tenant is cloned from.
    pub tenant_proto: CountMinSketch,
}

impl CatalogPrototypes {
    /// Build the standard catalog over `[0, dimension)` from one master
    /// seed. Draw order is fixed; two calls with equal arguments produce
    /// bit-identical prototypes in every field.
    pub fn standard(dimension: u64, seed: u64) -> Self {
        let n = dimension;
        let mut seeds = SeedSequence::new(seed);
        CatalogPrototypes {
            sparse_recovery: SparseRecovery::new(n, 8, &mut seeds),
            l0_sampler: L0Sampler::new(n, 0.25, &mut seeds),
            fis_l0: FisL0Sampler::new(n, &mut seeds),
            count_sketch: CountSketch::with_default_rows(n, 16, &mut seeds),
            count_min: CountMinSketch::new(n, 256, 7, &mut seeds),
            count_median: CountMedianSketch::new(n, 256, 7, &mut seeds),
            ams: AmsSketch::with_default_shape(n, &mut seeds),
            tenant_proto: CountMinSketch::new(n, 128, 5, &mut seeds),
        }
    }
}

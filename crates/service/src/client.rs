//! The blocking client: a thin request/reply wrapper over any
//! `Read + Write` stream, speaking the [`crate::proto`] framing.
//!
//! Every helper is strictly synchronous — encode the request, write it,
//! read frames until one arrives, map a protocol [`Frame::Error`] to
//! [`ServiceError::Remote`]. The client is generic over the stream so the
//! same code drives TCP, Unix-domain sockets, and in-memory test pipes.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::task::Poll;

use lps_stream::Update;

use crate::proto::{Frame, FrameCodec, Query, Reply, PROTOCOL_VERSION};
use crate::ServiceError;

/// A connected service client.
///
/// Constructed either over TCP ([`ServiceClient::connect_tcp`]) or over any
/// existing stream ([`ServiceClient::handshake`]); both perform the
/// `Hello` version handshake before returning, so a constructed client is
/// known-compatible.
pub struct ServiceClient<S: Read + Write> {
    stream: S,
    codec: FrameCodec,
}

impl ServiceClient<TcpStream> {
    /// Connect over TCP and perform the `Hello` handshake.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(stream)
    }

    /// Connect over TCP, presenting an authentication token in the `Hello`
    /// handshake. A server that requires a different (or no) token rejects
    /// with [`crate::ErrorCode::Unauthorized`], surfaced as
    /// [`ServiceError::Remote`].
    pub fn connect_tcp_with_token<A: ToSocketAddrs>(
        addr: A,
        token: &str,
    ) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake_with_token(stream, Some(token))
    }
}

impl<S: Read + Write> ServiceClient<S> {
    /// Wrap an already-connected stream and perform the `Hello` handshake.
    pub fn handshake(stream: S) -> Result<Self, ServiceError> {
        Self::handshake_with_token(stream, None)
    }

    /// Wrap an already-connected stream and perform the `Hello` handshake,
    /// optionally presenting an authentication token.
    pub fn handshake_with_token(stream: S, token: Option<&str>) -> Result<Self, ServiceError> {
        let mut client = ServiceClient { stream, codec: FrameCodec::new() };
        let hello =
            Frame::Hello { major: PROTOCOL_VERSION, minor: 0, token: token.map(|t| t.to_string()) };
        match client.call(&hello)? {
            Frame::Hello { .. } => Ok(client),
            _ => Err(ServiceError::Proto(crate::ProtoError::Malformed {
                context: "handshake reply was not a hello frame",
            })),
        }
    }

    /// Send one frame and block for the next frame back. A protocol
    /// `Error` frame comes back as [`ServiceError::Remote`]; a clean
    /// disconnect as [`ServiceError::Closed`].
    fn call(&mut self, request: &Frame) -> Result<Frame, ServiceError> {
        let mut wire = Vec::new();
        FrameCodec::encode(request, &mut wire);
        self.stream.write_all(&wire)?;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // A previous read may have buffered the next frame already.
            if let Poll::Ready(frame) = self.codec.poll()? {
                return match frame {
                    Frame::Error { code, detail } => Err(ServiceError::Remote { code, detail }),
                    frame => Ok(frame),
                };
            }
            let n = match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ServiceError::Closed),
                Ok(n) => n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            if let Poll::Ready(frame) = self.codec.feed(&chunk[..n])? {
                return match frame {
                    Frame::Error { code, detail } => Err(ServiceError::Remote { code, detail }),
                    frame => Ok(frame),
                };
            }
        }
    }

    /// Stream a batch of updates into `tenant` (tenant 0 is the shared
    /// catalog; any other id lands in the multi-tenant registry). Returns
    /// the server's total accepted-update count.
    pub fn send_updates(&mut self, tenant: u64, updates: &[Update]) -> Result<u64, ServiceError> {
        let frame = Frame::UpdateBatch { tenant, updates: updates.to_vec() };
        match self.call(&frame)? {
            Frame::Reply(Reply::Ack { accepted }) => Ok(accepted),
            _ => Err(unexpected_reply()),
        }
    }

    /// Upload one shard's enveloped checkpoint buffer for server-side
    /// merging. The server validates the envelope against its own plan
    /// first; a mismatch comes back as [`ServiceError::Remote`] with
    /// [`crate::ErrorCode::PlanMismatch`] — and the connection survives.
    pub fn upload_checkpoint(&mut self, buffer: Vec<u8>) -> Result<u64, ServiceError> {
        match self.call(&Frame::CheckpointUpload { buffer })? {
            Frame::Reply(Reply::Ack { accepted }) => Ok(accepted),
            _ => Err(unexpected_reply()),
        }
    }

    /// Run any query and return the raw reply.
    pub fn query(&mut self, query: Query) -> Result<Reply, ServiceError> {
        match self.call(&Frame::Query(query))? {
            Frame::Reply(reply) => Ok(reply),
            _ => Err(unexpected_reply()),
        }
    }

    /// Draw a sample from the sampler with `structure` tag (live: answered
    /// from the latest published snapshot).
    pub fn sample(&mut self, structure: u16) -> Result<Option<(u64, f64)>, ServiceError> {
        match self.query(Query::Sample { structure })? {
            Reply::Sample { sample } => Ok(sample),
            _ => Err(unexpected_reply()),
        }
    }

    /// Point-estimate one coordinate of the counter sketch with
    /// `structure` tag (live).
    pub fn point_estimate(&mut self, structure: u16, index: u64) -> Result<f64, ServiceError> {
        match self.query(Query::PointEstimate { structure, index })? {
            Reply::Estimate { value } => Ok(value),
            _ => Err(unexpected_reply()),
        }
    }

    /// Recover the duplicate set from the sparse-recovery structure (live).
    pub fn duplicates(&mut self, structure: u16) -> Result<Vec<(u64, i64)>, ServiceError> {
        match self.query(Query::Duplicates { structure })? {
            Reply::Duplicates { entries } => Ok(entries),
            _ => Err(unexpected_reply()),
        }
    }

    /// State digest of the structure with `structure` tag, linearized with
    /// ingestion (the server publishes a fresh snapshot first).
    pub fn digest(&mut self, structure: u16) -> Result<u64, ServiceError> {
        match self.query(Query::Digest { structure })? {
            Reply::Digest { digest } => Ok(digest),
            _ => Err(unexpected_reply()),
        }
    }

    /// State digest of one registry tenant (`None` if the tenant has never
    /// received an update).
    pub fn tenant_digest(&mut self, tenant: u64) -> Result<Option<u64>, ServiceError> {
        match self.query(Query::TenantDigest { tenant })? {
            Reply::TenantDigest { digest } => Ok(digest),
            _ => Err(unexpected_reply()),
        }
    }

    /// Ask the server to shut down, consuming the client. Returns the
    /// server's final accepted-update count.
    pub fn shutdown(mut self) -> Result<u64, ServiceError> {
        match self.call(&Frame::Shutdown)? {
            Frame::Reply(Reply::Ack { accepted }) => Ok(accepted),
            _ => Err(unexpected_reply()),
        }
    }
}

fn unexpected_reply() -> ServiceError {
    ServiceError::Proto(crate::ProtoError::Malformed {
        context: "reply frame does not match the request kind",
    })
}

//! # lps-service
//!
//! The streaming sketch service: the workspace's wire-ready byte formats
//! (`Persist` payloads, `PlanEnvelope`s, checksummed records) finally put
//! behind a socket. Three layers, strictly stacked:
//!
//! * [`proto`] — a **sans-io framed protocol**: `LPSW`-magic frames with a
//!   length prefix and an FNV-1a payload checksum, decoded by the pure
//!   [`FrameCodec`] state machine. Decoding is total and typed like
//!   `persist::DecodeError`: no input panics, every malformed byte stream
//!   maps to a [`ProtoError`].
//! * [`merge`] — the **merge service**: a catalog of exact-arithmetic
//!   structures driven through sans-io `IngestSession`s plus a multi-tenant
//!   `SketchRegistry`, absorbing shard [`Frame::CheckpointUpload`]s
//!   (validated against the service plan — a mismatched envelope is a
//!   protocol [`Frame::Error`], not a disconnect) and publishing periodic
//!   merged snapshots that answer live queries **without pausing
//!   ingestion** (snapshot swap under an `Arc`; reads never take the
//!   ingest lock).
//! * [`server`] / [`client`] — a **blocking socket front-end** (std-only:
//!   `TcpListener`/`UnixListener`, a thread per connection feeding one
//!   ingest thread over a bounded channel, so backpressure lands on
//!   connections and never on the acceptor) and the matching client
//!   library.
//!
//! Every failure across the stack converges on [`ServiceError`], which the
//! server maps to typed protocol [`Frame::Error`]s instead of
//! string-formatting — the error-API unification the crates grew toward:
//! `EngineError`, `RegistryError`, `DecodeError` and [`ProtoError`] all
//! convert in via `From` and stay inspectable via `Error::source`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod merge;
pub mod proto;
pub mod server;

pub use catalog::{CatalogPrototypes, ServeQuery, CATALOG_STRUCTURES};
pub use client::ServiceClient;
pub use merge::{MergeService, ServiceConfig, ServiceCore, SnapshotHandle};
pub use proto::{ErrorCode, Frame, FrameCodec, ProtoError, Query, Reply};
pub use server::RunningServer;

use lps_engine::EngineError;
use lps_registry::RegistryError;
use lps_sketch::DecodeError;

/// The service's unified error type: every layer below the socket —
/// engine, registry, wire codecs, the framing protocol, plain I/O — folds
/// into one enum with `From` conversions, `Display`, and `source()`
/// chaining, so the server can map any internal failure to a typed
/// protocol [`Frame::Error`] and a client can match on what came back.
#[derive(Debug)]
pub enum ServiceError {
    /// The framing layer rejected the byte stream (see [`ProtoError`]).
    Proto(ProtoError),
    /// An uploaded buffer failed `Persist`/envelope decoding; the
    /// `DecodeError::PlanMismatch` case is how a checkpoint taken under
    /// the wrong shard plan surfaces.
    Decode(DecodeError),
    /// The ingest engine failed (see `lps_engine::EngineError`).
    Engine(EngineError),
    /// The tenant registry failed (see `lps_registry::RegistryError`).
    Registry(RegistryError),
    /// A socket or channel I/O failure.
    Io(std::io::Error),
    /// The peer answered with a protocol [`Frame::Error`] (client side).
    Remote {
        /// Machine-readable failure class from the wire.
        code: ErrorCode,
        /// Human-readable detail from the wire.
        detail: String,
    },
    /// The referenced structure tag is not in the service catalog.
    UnknownStructure {
        /// The `Persist` tag the request named.
        tag: u16,
    },
    /// The structure exists but does not answer this query kind.
    Unsupported {
        /// Catalog name of the structure.
        structure: &'static str,
        /// What was asked of it.
        query: &'static str,
    },
    /// The peer closed the connection mid-conversation.
    Closed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Proto(e) => write!(f, "protocol error: {e}"),
            ServiceError::Decode(e) => write!(f, "upload rejected: {e}"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Registry(e) => write!(f, "registry error: {e}"),
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Remote { code, detail } => {
                write!(f, "server reported {code:?}: {detail}")
            }
            ServiceError::UnknownStructure { tag } => {
                write!(f, "structure tag {tag:#06x} is not in the service catalog")
            }
            ServiceError::Unsupported { structure, query } => {
                write!(f, "structure {structure} does not answer {query} queries")
            }
            ServiceError::Closed => write!(f, "peer closed the connection mid-conversation"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Proto(e) => Some(e),
            ServiceError::Decode(e) => Some(e),
            ServiceError::Engine(e) => Some(e),
            ServiceError::Registry(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtoError> for ServiceError {
    fn from(e: ProtoError) -> Self {
        ServiceError::Proto(e)
    }
}

impl From<DecodeError> for ServiceError {
    fn from(e: DecodeError) -> Self {
        ServiceError::Decode(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<RegistryError> for ServiceError {
    fn from(e: RegistryError) -> Self {
        ServiceError::Registry(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl ServiceError {
    /// The wire classification of this failure — what a server stamps into
    /// the [`Frame::Error`] it sends back.
    pub fn error_code(&self) -> ErrorCode {
        match self {
            ServiceError::Proto(_) => ErrorCode::Proto,
            ServiceError::Decode(DecodeError::PlanMismatch { .. }) => ErrorCode::PlanMismatch,
            ServiceError::Decode(_) => ErrorCode::Decode,
            ServiceError::Engine(_) => ErrorCode::Engine,
            ServiceError::Registry(_) => ErrorCode::Registry,
            ServiceError::UnknownStructure { .. } => ErrorCode::UnknownStructure,
            ServiceError::Unsupported { .. } => ErrorCode::Unsupported,
            ServiceError::Remote { code, .. } => *code,
            ServiceError::Io(_) | ServiceError::Closed => ErrorCode::Internal,
        }
    }

    /// Render this failure as the protocol [`Frame::Error`] a server sends.
    pub fn to_error_frame(&self) -> Frame {
        Frame::Error { code: self.error_code(), detail: self.to_string() }
    }
}

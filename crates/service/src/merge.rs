//! The merge service: live ingestion, shard-checkpoint absorption, and
//! snapshot-published queries — the application layer behind the socket.
//!
//! ## Consistency model
//!
//! Two read paths with different guarantees:
//!
//! * **Live queries** (sample / point-estimate / duplicates) answer from
//!   the latest *published snapshot* — an immutable structure behind an
//!   `Arc` that connection threads clone out of [`SnapshotHandle`] under a
//!   brief map lock. Reads never touch the ingest path, never wait on it,
//!   and are stale by at most one publish interval
//!   ([`ServiceConfig::publish_interval`] accepted updates) plus whatever
//!   is in flight inside the ingest sessions.
//! * **Digest queries** (structure or tenant) route through the ingest
//!   thread like writes, forcing a fresh publish first — so they are
//!   linearized with ingestion: a digest answered after the service
//!   accepted updates `1..k` covers exactly those updates. The CI loopback
//!   harness leans on this for its bit-identity assertions.
//!
//! ## Publishing without pausing ingestion
//!
//! A publish reuses the checkpoint/resume machinery end to end: the live
//! [`IngestSession`] is checkpointed (serializing each shard behind its
//! plan envelope), immediately resumed from the same buffers, and the
//! buffers are tree-merged ([`merge_checkpointed`]) into the snapshot —
//! then any absorbed shard uploads are merged in. For the exact-arithmetic
//! catalog structures every one of those merges is bit-exact, so the
//! published digest equals sequential ingestion of everything the service
//! has accepted, regardless of how it arrived (streamed batches, shard
//! uploads, or both).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::task::Poll;

use lps_engine::{
    merge_checkpointed, read_envelope, EngineBuilder, IngestSession, PlanStrategy, RoundRobin,
    Tolerance,
};
use lps_registry::{MemorySpill, RegistryConfig, SketchRegistry};
use lps_sketch::persist::read_header;
use lps_sketch::{DecodeError, Mergeable};
use lps_stream::Update;

use crate::catalog::{CatalogPrototypes, ServeQuery};
use crate::proto::{Frame, Query, Reply};
use crate::ServiceError;

/// Configuration of a service instance, fluent like `EngineBuilder` and
/// [`RegistryConfig`]:
///
/// ```
/// use lps_service::ServiceConfig;
///
/// let config = ServiceConfig::new(1 << 14, 0xC0FE).shards(2).publish_interval(20_000);
/// assert_eq!(config.dimension, 1 << 14);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Coordinate-space dimension of every catalog structure.
    pub dimension: u64,
    /// Master seed the catalog prototypes are drawn from (clients must use
    /// the same seed to upload compatible checkpoints).
    pub seed: u64,
    /// Worker shards per catalog structure's ingest session.
    pub shards: usize,
    /// Dispatch batch size of the ingest sessions.
    pub batch_size: usize,
    /// Accepted-update count between automatic snapshot publishes.
    pub publish_interval: u64,
    /// Bound of the connection→ingest request channel (backpressure depth).
    pub queue_depth: usize,
    /// `max_resident` of the tenant registry.
    pub max_resident: usize,
    /// Authentication token connections must present in their `Hello`
    /// frame. `None` (the default) leaves the server open.
    pub auth_token: Option<String>,
}

impl ServiceConfig {
    /// A service over `[0, dimension)` seeded with `seed`; other knobs at
    /// their defaults (2 shards, 1024-update dispatch batches, publish
    /// every 25 000 accepted updates, 64-request queue, 1024 resident
    /// tenants).
    pub fn new(dimension: u64, seed: u64) -> Self {
        ServiceConfig {
            dimension,
            seed,
            shards: 2,
            batch_size: 1024,
            publish_interval: 25_000,
            queue_depth: 64,
            max_resident: 1024,
            auth_token: None,
        }
    }

    /// Set the worker shard count per structure.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Set the ingest sessions' dispatch batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Set the accepted-update count between automatic publishes.
    pub fn publish_interval(mut self, interval: u64) -> Self {
        self.publish_interval = interval.max(1);
        self
    }

    /// Set the bound of the connection→ingest request channel.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Set the tenant registry's resident cap.
    pub fn max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = max_resident.max(1);
        self
    }

    /// Require connections to authenticate with `token` in their `Hello`
    /// frame before any other frame is served.
    pub fn auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = Some(token.into());
        self
    }
}

/// One catalog structure's merge service: a live ingest session, the merge
/// of completed shard-checkpoint uploads, and snapshot publication.
pub struct MergeService<T: ServeQuery> {
    proto: T,
    shards: usize,
    batch_size: usize,
    session: Option<IngestSession<T, RoundRobin>>,
    /// Merged state of every *completed* upload set.
    absorbed: Option<T>,
    /// Incomplete upload sets, keyed by their envelope shard count; a slot
    /// per shard index, filled as buffers arrive in any order.
    pending: HashMap<usize, Vec<Option<Vec<u8>>>>,
}

impl<T: ServeQuery> MergeService<T> {
    /// A merge service for `proto`'s structure with a round-robin live
    /// session of `shards` workers.
    pub fn new(proto: T, shards: usize, batch_size: usize) -> Self {
        let session = EngineBuilder::new(&proto).shards(shards).batch_size(batch_size).session();
        MergeService {
            proto,
            shards,
            batch_size,
            session: Some(session),
            absorbed: None,
            pending: HashMap::new(),
        }
    }

    /// Route a run of updates into the live session via the sans-io
    /// `offer`/`drain` polls (spinning on drain under backpressure — the
    /// caller is the dedicated ingest thread, so blocking here is the
    /// intended backpressure point).
    pub fn ingest(&mut self, updates: &[Update]) {
        let session = self.session.as_mut().expect("live session always present");
        let mut rest = updates;
        while !rest.is_empty() {
            match session.offer(rest) {
                Poll::Ready(n) if n > 0 => rest = &rest[n..],
                _ => {
                    let _ = session.drain();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Accept one shard's enveloped checkpoint buffer. The envelope is
    /// validated against this service's plan *before* anything decodes: a
    /// key-range or approximate-tolerance checkpoint is rejected with
    /// `DecodeError::PlanMismatch` (which the server answers as a protocol
    /// `Error` frame — the connection survives). Once every shard of a set
    /// has arrived, the set is merged into the absorbed state and the next
    /// publish folds it into the snapshot.
    pub fn upload(&mut self, buffer: Vec<u8>) -> Result<(), ServiceError> {
        let (envelope, payload) = read_envelope(&buffer)?;
        if envelope.strategy != PlanStrategy::RoundRobin {
            return Err(DecodeError::PlanMismatch {
                expected: PlanStrategy::RoundRobin.name(),
                found: envelope.strategy.name(),
            }
            .into());
        }
        if envelope.tolerance != Tolerance::Exact {
            return Err(DecodeError::PlanMismatch {
                expected: Tolerance::Exact.name(),
                found: envelope.tolerance.name(),
            }
            .into());
        }
        let header = read_header(payload)?;
        if header.tag != T::TAG {
            return Err(DecodeError::WrongStructure { expected: T::TAG, found: header.tag }.into());
        }
        let count = envelope.shard_count as usize;
        if count == 0 || envelope.shard as usize >= count {
            return Err(DecodeError::Corrupt {
                context: "envelope shard index outside its shard count",
            }
            .into());
        }
        let set = self.pending.entry(count).or_insert_with(|| vec![None; count]);
        set[envelope.shard as usize] = Some(buffer);
        if set.iter().all(Option::is_some) {
            let set = self.pending.remove(&count).expect("set present");
            let buffers: Vec<Vec<u8>> =
                set.into_iter().map(|b| b.expect("all slots full")).collect();
            let merged: T = merge_checkpointed(&buffers)?;
            match &mut self.absorbed {
                Some(a) => a.merge_from(&merged),
                None => self.absorbed = Some(merged),
            }
        }
        Ok(())
    }

    /// Publish the current merged state: checkpoint the live session,
    /// resume it from the same buffers (ingestion continues right after),
    /// and return live ⊕ absorbed. Bit-exact for the catalog structures.
    ///
    /// If the checkpoint fails (a worker panicked), the panicked shard's
    /// state is lost: a **fresh** live session replaces the dead one so
    /// the service keeps serving, and the error propagates to the caller.
    pub fn publish(&mut self) -> Result<T, ServiceError> {
        let session = self.session.take().expect("live session always present");
        let buffers = match session.checkpoint() {
            Ok(buffers) => buffers,
            Err(e) => {
                self.session = Some(
                    EngineBuilder::new(&self.proto)
                        .shards(self.shards)
                        .batch_size(self.batch_size)
                        .session(),
                );
                return Err(e.into());
            }
        };
        self.session = Some(
            EngineBuilder::new(&self.proto)
                .shards(self.shards)
                .batch_size(self.batch_size)
                .resume(&buffers)?,
        );
        let mut snapshot: T = merge_checkpointed(&buffers)?;
        if let Some(absorbed) = &self.absorbed {
            snapshot.merge_from(absorbed);
        }
        Ok(snapshot)
    }
}

/// Object-safe query surface of a published snapshot.
trait SnapshotQuery: Send + Sync {
    fn serve(&self, query: &Query) -> Result<Reply, ServiceError>;
}

impl<T: ServeQuery> SnapshotQuery for T {
    fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        ServeQuery::serve(self, query)
    }
}

/// The published snapshots, one per catalog structure, keyed by `Persist`
/// tag. Connection threads hold a [`SnapshotHandle`]; the ingest thread
/// swaps fresh `Arc`s in after each publish.
#[derive(Default)]
struct SnapshotStore {
    map: Mutex<HashMap<u16, Arc<dyn SnapshotQuery>>>,
}

/// A cloneable, lock-light read handle over the published snapshots: the
/// surface connection threads answer live queries from. `serve` takes the
/// store lock only long enough to clone one `Arc` — it never contends with
/// ingestion, which holds no lock at all.
#[derive(Clone)]
pub struct SnapshotHandle {
    store: Arc<SnapshotStore>,
}

impl SnapshotHandle {
    /// Answer a live query from the latest published snapshot of the
    /// structure it names. Digest kinds are *not* answered here — they
    /// need linearization with ingestion, so the server routes them
    /// through the ingest thread ([`ServiceCore::apply`]).
    pub fn serve(&self, query: &Query) -> Result<Reply, ServiceError> {
        let tag = match query {
            Query::Sample { structure }
            | Query::PointEstimate { structure, .. }
            | Query::Duplicates { structure }
            | Query::Digest { structure } => *structure,
            Query::TenantDigest { .. } => {
                return Err(ServiceError::Unsupported {
                    structure: "registry",
                    query: "tenant-digest outside the ingest thread",
                })
            }
        };
        let snapshot = {
            let map = self.store.map.lock().expect("snapshot map lock");
            map.get(&tag).cloned()
        };
        match snapshot {
            Some(s) => s.serve(query),
            None => Err(ServiceError::UnknownStructure { tag }),
        }
    }
}

/// Object-safe wrapper over one structure's [`MergeService`], so the core
/// can hold the whole catalog in a single `Vec`.
trait Slot: Send {
    fn tag(&self) -> u16;
    fn name(&self) -> &'static str;
    fn ingest(&mut self, updates: &[Update]);
    fn upload(&mut self, buffer: Vec<u8>) -> Result<(), ServiceError>;
    /// Publish and return the fresh snapshot as a query object.
    fn publish(&mut self) -> Result<Arc<dyn SnapshotQuery>, ServiceError>;
    /// The prototype's zero state, for the initial snapshot.
    fn empty_snapshot(&self) -> Arc<dyn SnapshotQuery>;
}

struct CatalogSlot<T: ServeQuery> {
    service: MergeService<T>,
    proto: T,
}

impl<T: ServeQuery> Slot for CatalogSlot<T> {
    fn tag(&self) -> u16 {
        T::TAG
    }

    fn name(&self) -> &'static str {
        T::NAME
    }

    fn ingest(&mut self, updates: &[Update]) {
        self.service.ingest(updates);
    }

    fn upload(&mut self, buffer: Vec<u8>) -> Result<(), ServiceError> {
        self.service.upload(buffer)
    }

    fn publish(&mut self) -> Result<Arc<dyn SnapshotQuery>, ServiceError> {
        Ok(Arc::new(self.service.publish()?))
    }

    fn empty_snapshot(&self) -> Arc<dyn SnapshotQuery> {
        Arc::new(self.proto.clone())
    }
}

/// The single-threaded heart of the server: the catalog's merge services
/// plus the multi-tenant registry, applied to frames in arrival order by
/// the ingest thread. Everything here is sans-io — the socket layer lives
/// in [`crate::server`].
pub struct ServiceCore {
    slots: Vec<Box<dyn Slot>>,
    registry: SketchRegistry<lps_sketch::CountMinSketch, MemorySpill>,
    snapshots: Arc<SnapshotStore>,
    accepted: u64,
    since_publish: u64,
    publish_interval: u64,
}

impl ServiceCore {
    /// Build the standard catalog (see [`CatalogPrototypes::standard`])
    /// and the tenant registry from `config`, with every structure's
    /// initial snapshot published (the zero state), so queries are
    /// answerable before the first update arrives.
    pub fn new(config: &ServiceConfig) -> Self {
        let protos = CatalogPrototypes::standard(config.dimension, config.seed);
        let (shards, batch) = (config.shards, config.batch_size);
        fn slot<T: ServeQuery>(proto: T, shards: usize, batch: usize) -> Box<dyn Slot> {
            Box::new(CatalogSlot {
                service: MergeService::new(proto.clone(), shards, batch),
                proto,
            })
        }
        let slots: Vec<Box<dyn Slot>> = vec![
            slot(protos.sparse_recovery, shards, batch),
            slot(protos.l0_sampler, shards, batch),
            slot(protos.fis_l0, shards, batch),
            slot(protos.count_sketch, shards, batch),
            slot(protos.count_min, shards, batch),
            slot(protos.count_median, shards, batch),
            slot(protos.ams, shards, batch),
        ];
        let registry = SketchRegistry::new(
            protos.tenant_proto,
            RegistryConfig::new().max_resident(config.max_resident),
            MemorySpill::new(),
        );
        let snapshots = Arc::new(SnapshotStore::default());
        {
            let mut map = snapshots.map.lock().expect("snapshot map lock");
            for s in &slots {
                map.insert(s.tag(), s.empty_snapshot());
            }
        }
        ServiceCore {
            slots,
            registry,
            snapshots,
            accepted: 0,
            since_publish: 0,
            publish_interval: config.publish_interval.max(1),
        }
    }

    /// The read handle connection threads answer live queries from.
    pub fn snapshot_handle(&self) -> SnapshotHandle {
        SnapshotHandle { store: Arc::clone(&self.snapshots) }
    }

    /// Total updates accepted over this core's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Apply one frame in arrival order and produce the frame to send
    /// back. Only ingest-ordered frames route here (update batches,
    /// checkpoint uploads, digest queries, shutdown's final ack) — the
    /// server answers live queries from the [`SnapshotHandle`] without
    /// entering this method.
    pub fn apply(&mut self, frame: Frame) -> Result<Frame, ServiceError> {
        match frame {
            Frame::UpdateBatch { tenant: 0, updates } => {
                for slot in &mut self.slots {
                    slot.ingest(&updates);
                }
                self.accepted += updates.len() as u64;
                self.since_publish += updates.len() as u64;
                if self.since_publish >= self.publish_interval {
                    self.publish_all()?;
                }
                Ok(Frame::Reply(Reply::Ack { accepted: self.accepted }))
            }
            Frame::UpdateBatch { tenant, updates } => {
                loop {
                    match self.registry.route(tenant, &updates)? {
                        Poll::Ready(_) => break,
                        Poll::Pending => {
                            self.registry.drain()?;
                        }
                    }
                }
                self.accepted += updates.len() as u64;
                Ok(Frame::Reply(Reply::Ack { accepted: self.accepted }))
            }
            Frame::CheckpointUpload { buffer } => {
                let (_, payload) = read_envelope(&buffer)?;
                let tag = read_header(payload)?.tag;
                let slot = self
                    .slots
                    .iter_mut()
                    .find(|s| s.tag() == tag)
                    .ok_or(ServiceError::UnknownStructure { tag })?;
                slot.upload(buffer)?;
                // Fold the (possibly completed) upload set into the
                // published snapshot right away, so live queries see it.
                let snapshot = slot.publish()?;
                self.snapshots.map.lock().expect("snapshot map lock").insert(tag, snapshot);
                Ok(Frame::Reply(Reply::Ack { accepted: self.accepted }))
            }
            Frame::Query(Query::Digest { structure }) => {
                let slot = self
                    .slots
                    .iter_mut()
                    .find(|s| s.tag() == structure)
                    .ok_or(ServiceError::UnknownStructure { tag: structure })?;
                let snapshot = slot.publish()?;
                let reply = snapshot.serve(&Query::Digest { structure })?;
                self.snapshots.map.lock().expect("snapshot map lock").insert(structure, snapshot);
                Ok(Frame::Reply(reply))
            }
            Frame::Query(Query::TenantDigest { tenant }) => {
                // Materialized-view digest (not the lazy wrapper's
                // representation digest), so it matches a plain sequential
                // sketch fed the same updates.
                let digest = self.registry.query(tenant, |s| s.state_digest())?;
                Ok(Frame::Reply(Reply::TenantDigest { digest }))
            }
            Frame::Shutdown => Ok(Frame::Reply(Reply::Ack { accepted: self.accepted })),
            _ => Err(ServiceError::Proto(crate::ProtoError::Malformed {
                context: "frame is not routable through the ingest core",
            })),
        }
    }

    /// Publish every catalog structure's snapshot (called on the publish
    /// interval and before shutdown).
    pub fn publish_all(&mut self) -> Result<(), ServiceError> {
        for slot in &mut self.slots {
            let tag = slot.tag();
            let snapshot = slot.publish()?;
            self.snapshots.map.lock().expect("snapshot map lock").insert(tag, snapshot);
        }
        self.since_publish = 0;
        Ok(())
    }

    /// Name of the catalog structure with `tag`, if hosted.
    pub fn structure_name(&self, tag: u16) -> Option<&'static str> {
        self.slots.iter().find(|s| s.tag() == tag).map(|s| s.name())
    }
}

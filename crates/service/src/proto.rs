//! The framed wire protocol: a sans-io codec between byte streams and
//! typed [`Frame`]s.
//!
//! Every frame is length-prefixed and checksummed, mirroring the
//! `FileSpill` v2 commit-record discipline (`lps_registry::record_checksum`
//! is literally the same FNV-1a). Little-endian throughout:
//!
//! | offset | size | field                                    |
//! |--------|------|------------------------------------------|
//! | 0      | 4    | frame magic `LPSW`                       |
//! | 4      | 2    | protocol version (u16) — currently `1`   |
//! | 6      | 2    | frame tag (u16)                          |
//! | 8      | 4    | payload length `L` (u32)                 |
//! | 12     | 8    | FNV-1a checksum of the payload (u64)     |
//! | 20     | `L`  | the frame payload                        |
//!
//! [`FrameCodec`] is a pure state machine in the `IngestSession` mold: no
//! sockets, no clocks. [`FrameCodec::feed`] appends bytes and reports
//! `Poll::Pending` until a whole frame is buffered; decoding is **total** —
//! any malformed input (bad magic, unknown version or tag, oversized
//! length, checksum mismatch, payload that does not parse) returns a typed
//! [`ProtoError`] and never panics, exactly the `persist::DecodeError`
//! contract. After an error the codec stays poisoned: a byte stream that
//! has lost framing cannot be resynchronized, so the connection must be
//! torn down. (Application-level rejections — a checkpoint upload under the
//! wrong plan, say — are *not* codec errors: they travel back as
//! [`Frame::Error`] and the stream keeps going.)

use std::task::Poll;

use lps_registry::record_checksum;
use lps_stream::Update;

/// Leading magic of every frame: `LPSW` ("LPS wire").
pub const FRAME_MAGIC: [u8; 4] = *b"LPSW";

/// Current protocol version, stamped in every frame header and negotiated
/// by [`Frame::Hello`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Fixed byte length of the frame header ahead of the payload.
pub const FRAME_HEADER_LEN: usize = 20;

/// Upper bound on a frame payload. A declared length beyond this is
/// rejected as [`ProtoError::Oversized`] *before* any allocation, so a
/// corrupt length field can never trigger a speculative multi-gigabyte
/// `Vec` (the same discipline as `WireReader::claim`).
pub const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// Frame tags (u16, append-only like `persist::tags`).
pub mod tags {
    /// [`super::Frame::Hello`].
    pub const HELLO: u16 = 0x0001;
    /// [`super::Frame::UpdateBatch`].
    pub const UPDATE_BATCH: u16 = 0x0002;
    /// [`super::Frame::CheckpointUpload`].
    pub const CHECKPOINT_UPLOAD: u16 = 0x0003;
    /// [`super::Frame::Query`].
    pub const QUERY: u16 = 0x0004;
    /// [`super::Frame::Reply`].
    pub const REPLY: u16 = 0x0005;
    /// [`super::Frame::Error`].
    pub const ERROR: u16 = 0x0006;
    /// [`super::Frame::Shutdown`].
    pub const SHUTDOWN: u16 = 0x0007;
}

/// A typed rejection from the frame codec. Total decoding: every malformed
/// input maps to exactly one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer does not start with [`FRAME_MAGIC`].
    BadMagic {
        /// The four bytes found (zero-padded if fewer were available).
        found: [u8; 4],
    },
    /// The header's protocol version is not one this codec speaks.
    UnsupportedVersion {
        /// The version stamped in the header.
        found: u16,
    },
    /// The header carries a frame tag this codec does not know.
    UnknownFrameTag {
        /// The tag stamped in the header.
        found: u16,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized {
        /// The declared length.
        len: u32,
    },
    /// The payload bytes do not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum stamped in the header.
        expected: u64,
        /// FNV-1a of the payload actually received.
        found: u64,
    },
    /// The payload arrived intact but its body violates the frame's
    /// layout (truncated field, unknown kind byte, trailing bytes, …).
    Malformed {
        /// Which layout invariant was violated.
        context: &'static str,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected \"LPSW\")")
            }
            ProtoError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this codec speaks {PROTOCOL_VERSION})"
                )
            }
            ProtoError::UnknownFrameTag { found } => write!(f, "unknown frame tag {found:#06x}"),
            ProtoError::Oversized { len } => {
                write!(f, "declared payload length {len} exceeds the {MAX_PAYLOAD_LEN}-byte cap")
            }
            ProtoError::ChecksumMismatch { expected, found } => {
                write!(f, "payload checksum mismatch: header says {expected:016x}, bytes hash to {found:016x}")
            }
            ProtoError::Malformed { context } => write!(f, "malformed frame payload: {context}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Machine-readable class of a protocol [`Frame::Error`], so clients can
/// react without parsing the human-readable detail string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer's bytes broke the framing layer ([`ProtoError`]).
    Proto,
    /// An uploaded buffer failed wire-format decoding.
    Decode,
    /// An uploaded checkpoint was produced under a different shard plan
    /// than the service is configured with. The connection stays open.
    PlanMismatch,
    /// The ingest engine failed (a worker panicked).
    Engine,
    /// The tenant registry failed (spill backend or quarantine).
    Registry,
    /// The referenced structure tag is not in the service catalog.
    UnknownStructure,
    /// The structure exists but does not answer this query kind.
    Unsupported,
    /// Any other server-side failure.
    Internal,
    /// The connection did not present the authentication token the server
    /// requires (absent or mismatched `Hello` token, or a non-`Hello`
    /// frame before authenticating).
    Unauthorized,
}

impl ErrorCode {
    /// The u16 this code travels as.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Proto => 1,
            ErrorCode::Decode => 2,
            ErrorCode::PlanMismatch => 3,
            ErrorCode::Engine => 4,
            ErrorCode::Registry => 5,
            ErrorCode::UnknownStructure => 6,
            ErrorCode::Unsupported => 7,
            ErrorCode::Internal => 8,
            ErrorCode::Unauthorized => 9,
        }
    }

    /// Decode a wire code; unknown values map to [`ErrorCode::Internal`]
    /// (forward compatibility — an error is an error).
    pub fn from_u16(v: u16) -> ErrorCode {
        match v {
            1 => ErrorCode::Proto,
            2 => ErrorCode::Decode,
            3 => ErrorCode::PlanMismatch,
            4 => ErrorCode::Engine,
            5 => ErrorCode::Registry,
            6 => ErrorCode::UnknownStructure,
            7 => ErrorCode::Unsupported,
            9 => ErrorCode::Unauthorized,
            _ => ErrorCode::Internal,
        }
    }
}

/// A query against the service's latest published snapshot (or, for the
/// digest kinds, against linearized post-ingest state).
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Draw the current sample from an L0-sampler structure.
    Sample {
        /// `Persist` structure tag of the sampler.
        structure: u16,
    },
    /// Point-estimate one coordinate's frequency from a counter sketch.
    PointEstimate {
        /// `Persist` structure tag of the sketch.
        structure: u16,
        /// Coordinate to estimate.
        index: u64,
    },
    /// Recover the duplicate coordinates (entries with count ≥ 2) from the
    /// sparse-recovery structure.
    Duplicates {
        /// `Persist` structure tag (sparse recovery).
        structure: u16,
    },
    /// The structure's `state_digest` — answered through the ingest thread
    /// after a fresh publish, so it reflects everything routed before it.
    Digest {
        /// `Persist` structure tag.
        structure: u16,
    },
    /// A registry tenant's `state_digest` (or absent if never touched).
    TenantDigest {
        /// Tenant id in the multi-tenant registry.
        tenant: u64,
    },
}

/// A successful answer to an [`Frame::UpdateBatch`], [`Frame::CheckpointUpload`]
/// or [`Frame::Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Ingestion accepted; `accepted` counts updates routed by this server
    /// over its lifetime (monotone, so clients can assert progress).
    Ack {
        /// Total updates accepted so far.
        accepted: u64,
    },
    /// Answer to [`Query::Sample`]; `None` when the sampler's current state
    /// yields no sample.
    Sample {
        /// The sampled coordinate and its estimate, if any.
        sample: Option<(u64, f64)>,
    },
    /// Answer to [`Query::PointEstimate`].
    Estimate {
        /// The estimated frequency.
        value: f64,
    },
    /// Answer to [`Query::Duplicates`]: the recovered `(index, count)`
    /// entries with count ≥ 2, sorted by index.
    Duplicates {
        /// The duplicate coordinates and their exact counts.
        entries: Vec<(u64, i64)>,
    },
    /// Answer to [`Query::Digest`].
    Digest {
        /// The structure's `state_digest`.
        digest: u64,
    },
    /// Answer to [`Query::TenantDigest`]; `None` for a never-touched tenant.
    TenantDigest {
        /// The tenant's digest, if the tenant exists.
        digest: Option<u64>,
    },
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Version negotiation; first frame in each direction. A server
    /// rejects a `major` it does not speak with a [`Frame::Error`]
    /// (code [`ErrorCode::Proto`]) and closes. A server configured with an
    /// authentication token additionally rejects a mismatched or absent
    /// `token` with [`ErrorCode::Unauthorized`] and closes.
    Hello {
        /// Major protocol version; must match exactly.
        major: u16,
        /// Minor version; informational.
        minor: u16,
        /// Optional authentication token. Encodes to the original 4-byte
        /// hello payload when absent, so tokenless peers stay
        /// wire-compatible with version-1 frames.
        token: Option<String>,
    },
    /// A tenant-tagged run of turnstile updates. Tenant 0 addresses the
    /// shared catalog (every structure ingests the run); any other tenant
    /// routes into the multi-tenant registry.
    UpdateBatch {
        /// Destination tenant (0 = the shared catalog).
        tenant: u64,
        /// The updates, in stream order.
        updates: Vec<Update>,
    },
    /// One shard's engine checkpoint: a `PlanEnvelope` + `Persist` payload,
    /// byte-for-byte the buffer `IngestSession::checkpoint` produced — the
    /// service merges it once the shard set completes.
    CheckpointUpload {
        /// The enveloped checkpoint buffer, verbatim.
        buffer: Vec<u8>,
    },
    /// A read against the service (see [`Query`]).
    Query(
        /// The query.
        Query,
    ),
    /// A successful answer (see [`Reply`]).
    Reply(
        /// The answer.
        Reply,
    ),
    /// A typed application-level failure. Unlike a [`ProtoError`] it does
    /// **not** poison the stream: the connection continues.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Ask the server to finish queued work and exit (used by the CI
    /// loopback harness for a clean two-process teardown).
    Shutdown,
}

impl Frame {
    fn tag(&self) -> u16 {
        match self {
            Frame::Hello { .. } => tags::HELLO,
            Frame::UpdateBatch { .. } => tags::UPDATE_BATCH,
            Frame::CheckpointUpload { .. } => tags::CHECKPOINT_UPLOAD,
            Frame::Query(_) => tags::QUERY,
            Frame::Reply(_) => tags::REPLY,
            Frame::Error { .. } => tags::ERROR,
            Frame::Shutdown => tags::SHUTDOWN,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { major, minor, token } => {
                out.extend_from_slice(&major.to_le_bytes());
                out.extend_from_slice(&minor.to_le_bytes());
                // An absent token encodes to nothing: the payload is the
                // original 4-byte layout, decodable by pre-token peers.
                if let Some(token) = token {
                    out.push(1);
                    out.extend_from_slice(&(token.len() as u64).to_le_bytes());
                    out.extend_from_slice(token.as_bytes());
                }
            }
            Frame::UpdateBatch { tenant, updates } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&(updates.len() as u64).to_le_bytes());
                for u in updates {
                    out.extend_from_slice(&u.index.to_le_bytes());
                    out.extend_from_slice(&u.delta.to_le_bytes());
                }
            }
            Frame::CheckpointUpload { buffer } => out.extend_from_slice(buffer),
            Frame::Query(q) => match q {
                Query::Sample { structure } => {
                    out.push(0);
                    out.extend_from_slice(&structure.to_le_bytes());
                }
                Query::PointEstimate { structure, index } => {
                    out.push(1);
                    out.extend_from_slice(&structure.to_le_bytes());
                    out.extend_from_slice(&index.to_le_bytes());
                }
                Query::Duplicates { structure } => {
                    out.push(2);
                    out.extend_from_slice(&structure.to_le_bytes());
                }
                Query::Digest { structure } => {
                    out.push(3);
                    out.extend_from_slice(&structure.to_le_bytes());
                }
                Query::TenantDigest { tenant } => {
                    out.push(4);
                    out.extend_from_slice(&tenant.to_le_bytes());
                }
            },
            Frame::Reply(r) => match r {
                Reply::Ack { accepted } => {
                    out.push(0);
                    out.extend_from_slice(&accepted.to_le_bytes());
                }
                Reply::Sample { sample } => {
                    out.push(1);
                    match sample {
                        Some((index, estimate)) => {
                            out.push(1);
                            out.extend_from_slice(&index.to_le_bytes());
                            out.extend_from_slice(&estimate.to_le_bytes());
                        }
                        None => out.push(0),
                    }
                }
                Reply::Estimate { value } => {
                    out.push(2);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                Reply::Duplicates { entries } => {
                    out.push(3);
                    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
                    for (index, count) in entries {
                        out.extend_from_slice(&index.to_le_bytes());
                        out.extend_from_slice(&count.to_le_bytes());
                    }
                }
                Reply::Digest { digest } => {
                    out.push(4);
                    out.extend_from_slice(&digest.to_le_bytes());
                }
                Reply::TenantDigest { digest } => {
                    out.push(5);
                    match digest {
                        Some(d) => {
                            out.push(1);
                            out.extend_from_slice(&d.to_le_bytes());
                        }
                        None => out.push(0),
                    }
                }
            },
            Frame::Error { code, detail } => {
                out.extend_from_slice(&code.to_u16().to_le_bytes());
                out.extend_from_slice(&(detail.len() as u64).to_le_bytes());
                out.extend_from_slice(detail.as_bytes());
            }
            Frame::Shutdown => {}
        }
    }

    fn decode_payload(tag: u16, payload: &[u8]) -> Result<Frame, ProtoError> {
        let mut r = PayloadReader { bytes: payload, pos: 0 };
        let frame = match tag {
            tags::HELLO => {
                let major = r.u16("hello major")?;
                let minor = r.u16("hello minor")?;
                // Token field: absent entirely (the 4-byte layout), or a
                // presence byte followed by a length-prefixed UTF-8 string.
                let token = if r.remaining() == 0 {
                    None
                } else {
                    match r.u8("hello token presence")? {
                        0 => None,
                        1 => {
                            let len = r.u64("hello token length")?;
                            if len > r.remaining() as u64 {
                                return Err(ProtoError::Malformed {
                                    context: "hello token length exceeds the payload bytes",
                                });
                            }
                            let bytes = r.raw(len as usize, "hello token")?;
                            Some(String::from_utf8(bytes.to_vec()).map_err(|_| {
                                ProtoError::Malformed { context: "hello token is not UTF-8" }
                            })?)
                        }
                        _ => {
                            return Err(ProtoError::Malformed {
                                context: "hello token presence byte must be 0 or 1",
                            })
                        }
                    }
                };
                Frame::Hello { major, minor, token }
            }
            tags::UPDATE_BATCH => {
                let tenant = r.u64("batch tenant")?;
                let count = r.u64("batch count")?;
                // Each update is 16 bytes; the count must fit what actually
                // arrived, so a corrupt count can never drive a huge
                // speculative allocation.
                if count > (r.remaining() / 16) as u64 {
                    return Err(ProtoError::Malformed {
                        context: "update count exceeds the payload bytes",
                    });
                }
                let mut updates = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let index = r.u64("update index")?;
                    let delta = r.i64("update delta")?;
                    updates.push(Update { index, delta });
                }
                Frame::UpdateBatch { tenant, updates }
            }
            tags::CHECKPOINT_UPLOAD => {
                let buffer = payload.to_vec();
                r.pos = payload.len();
                Frame::CheckpointUpload { buffer }
            }
            tags::QUERY => match r.u8("query kind")? {
                0 => Frame::Query(Query::Sample { structure: r.u16("query structure")? }),
                1 => Frame::Query(Query::PointEstimate {
                    structure: r.u16("query structure")?,
                    index: r.u64("query index")?,
                }),
                2 => Frame::Query(Query::Duplicates { structure: r.u16("query structure")? }),
                3 => Frame::Query(Query::Digest { structure: r.u16("query structure")? }),
                4 => Frame::Query(Query::TenantDigest { tenant: r.u64("query tenant")? }),
                _ => return Err(ProtoError::Malformed { context: "unknown query kind" }),
            },
            tags::REPLY => match r.u8("reply kind")? {
                0 => Frame::Reply(Reply::Ack { accepted: r.u64("ack accepted")? }),
                1 => {
                    let sample = match r.u8("sample presence")? {
                        0 => None,
                        1 => Some((r.u64("sample index")?, r.f64("sample estimate")?)),
                        _ => {
                            return Err(ProtoError::Malformed {
                                context: "sample presence byte must be 0 or 1",
                            })
                        }
                    };
                    Frame::Reply(Reply::Sample { sample })
                }
                2 => Frame::Reply(Reply::Estimate { value: r.f64("estimate value")? }),
                3 => {
                    let count = r.u64("duplicates count")?;
                    if count > (r.remaining() / 16) as u64 {
                        return Err(ProtoError::Malformed {
                            context: "duplicate count exceeds the payload bytes",
                        });
                    }
                    let mut entries = Vec::with_capacity(count as usize);
                    for _ in 0..count {
                        entries.push((r.u64("duplicate index")?, r.i64("duplicate count")?));
                    }
                    Frame::Reply(Reply::Duplicates { entries })
                }
                4 => Frame::Reply(Reply::Digest { digest: r.u64("digest")? }),
                5 => {
                    let digest = match r.u8("tenant digest presence")? {
                        0 => None,
                        1 => Some(r.u64("tenant digest")?),
                        _ => {
                            return Err(ProtoError::Malformed {
                                context: "tenant digest presence byte must be 0 or 1",
                            })
                        }
                    };
                    Frame::Reply(Reply::TenantDigest { digest })
                }
                _ => return Err(ProtoError::Malformed { context: "unknown reply kind" }),
            },
            tags::ERROR => {
                let code = ErrorCode::from_u16(r.u16("error code")?);
                let len = r.u64("error detail length")?;
                if len > r.remaining() as u64 {
                    return Err(ProtoError::Malformed {
                        context: "error detail length exceeds the payload bytes",
                    });
                }
                let bytes = r.raw(len as usize, "error detail")?;
                let detail = String::from_utf8(bytes.to_vec())
                    .map_err(|_| ProtoError::Malformed { context: "error detail is not UTF-8" })?;
                Frame::Error { code, detail }
            }
            tags::SHUTDOWN => Frame::Shutdown,
            found => return Err(ProtoError::UnknownFrameTag { found }),
        };
        if r.pos != payload.len() {
            return Err(ProtoError::Malformed {
                context: "trailing bytes after the frame payload",
            });
        }
        Ok(frame)
    }
}

/// Bounds-checked little-endian payload reader (the `WireReader` discipline,
/// reporting [`ProtoError`] instead of `DecodeError`).
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn raw(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Malformed { context });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, ProtoError> {
        Ok(self.raw(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.raw(2, context)?.try_into().unwrap()))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.raw(8, context)?.try_into().unwrap()))
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.raw(8, context)?.try_into().unwrap()))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.raw(8, context)?.try_into().unwrap()))
    }
}

/// The sans-io frame state machine: bytes in, [`Frame`]s out.
///
/// ```
/// use std::task::Poll;
/// use lps_service::proto::{Frame, FrameCodec};
///
/// let mut wire = Vec::new();
/// FrameCodec::encode(&Frame::Hello { major: 1, minor: 0, token: None }, &mut wire);
///
/// let mut codec = FrameCodec::new();
/// // feed the bytes one at a time: Pending until the frame completes
/// let mut decoded = None;
/// for b in &wire {
///     if let Poll::Ready(frame) = codec.feed(std::slice::from_ref(b)).unwrap() {
///         decoded = Some(frame);
///     }
/// }
/// assert_eq!(decoded, Some(Frame::Hello { major: 1, minor: 0, token: None }));
/// ```
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: Vec<u8>,
    poisoned: Option<ProtoError>,
}

impl FrameCodec {
    /// A fresh codec with an empty buffer.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Append `bytes` to the internal buffer and try to decode the next
    /// frame: `Poll::Pending` until a whole frame is buffered, a typed
    /// [`ProtoError`] if the stream is (or previously became) malformed.
    /// Call [`FrameCodec::poll`] with no new bytes to drain additional
    /// frames that arrived in the same read.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Poll<Frame>, ProtoError> {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
        self.poll()
    }

    /// Try to decode the next buffered frame without appending new bytes.
    pub fn poll(&mut self) -> Result<Poll<Frame>, ProtoError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_decode() {
            Ok(poll) => Ok(poll),
            Err(e) => {
                // A framing error is unrecoverable: there is no resync
                // point in the stream, so every later poll repeats it.
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    fn try_decode(&mut self) -> Result<Poll<Frame>, ProtoError> {
        // The magic and the fixed header decode incrementally: reject bad
        // prefixes as soon as the offending bytes arrive rather than
        // waiting for a full header that will never come.
        let have = self.buf.len();
        let magic_len = have.min(4);
        if self.buf[..magic_len] != FRAME_MAGIC[..magic_len] {
            let mut found = [0u8; 4];
            found[..magic_len].copy_from_slice(&self.buf[..magic_len]);
            return Err(ProtoError::BadMagic { found });
        }
        if have >= 6 {
            let version = u16::from_le_bytes([self.buf[4], self.buf[5]]);
            if version != PROTOCOL_VERSION {
                return Err(ProtoError::UnsupportedVersion { found: version });
            }
        }
        if have >= 12 {
            let len = u32::from_le_bytes(self.buf[8..12].try_into().unwrap());
            if len > MAX_PAYLOAD_LEN {
                return Err(ProtoError::Oversized { len });
            }
        }
        if have < FRAME_HEADER_LEN {
            return Ok(Poll::Pending);
        }
        let tag = u16::from_le_bytes([self.buf[6], self.buf[7]]);
        let len = u32::from_le_bytes(self.buf[8..12].try_into().unwrap()) as usize;
        let expected_sum = u64::from_le_bytes(self.buf[12..20].try_into().unwrap());
        if have < FRAME_HEADER_LEN + len {
            return Ok(Poll::Pending);
        }
        let payload = &self.buf[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        let found_sum = record_checksum(payload);
        if found_sum != expected_sum {
            return Err(ProtoError::ChecksumMismatch { expected: expected_sum, found: found_sum });
        }
        let frame = Frame::decode_payload(tag, payload)?;
        self.buf.drain(..FRAME_HEADER_LEN + len);
        Ok(Poll::Ready(frame))
    }

    /// Append `frame`, fully framed (header + checksum + payload), to `out`.
    pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
        let mut payload = Vec::new();
        frame.encode_payload(&mut payload);
        assert!(
            payload.len() <= MAX_PAYLOAD_LEN as usize,
            "frame payload exceeds MAX_PAYLOAD_LEN; split the batch"
        );
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.extend_from_slice(&frame.tag().to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&record_checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_frames_in_one_feed_drain_in_order() {
        let mut wire = Vec::new();
        FrameCodec::encode(&Frame::Shutdown, &mut wire);
        FrameCodec::encode(&Frame::Hello { major: 1, minor: 2, token: None }, &mut wire);
        let mut codec = FrameCodec::new();
        assert_eq!(codec.feed(&wire).unwrap(), Poll::Ready(Frame::Shutdown));
        assert_eq!(
            codec.poll().unwrap(),
            Poll::Ready(Frame::Hello { major: 1, minor: 2, token: None })
        );
        assert_eq!(codec.poll().unwrap(), Poll::Pending);
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn hello_token_round_trips_and_tokenless_hello_is_four_bytes() {
        let with = Frame::Hello { major: 1, minor: 0, token: Some("s3cret ✓".to_string()) };
        let without = Frame::Hello { major: 1, minor: 0, token: None };
        for frame in [&with, &without] {
            let mut wire = Vec::new();
            FrameCodec::encode(frame, &mut wire);
            let mut codec = FrameCodec::new();
            assert_eq!(codec.feed(&wire).unwrap(), Poll::Ready(frame.clone()));
        }
        let mut wire = Vec::new();
        FrameCodec::encode(&without, &mut wire);
        assert_eq!(wire.len(), FRAME_HEADER_LEN + 4, "tokenless hello keeps the v1 layout");
    }

    #[test]
    fn poisoned_codec_repeats_its_error() {
        let mut codec = FrameCodec::new();
        let err = codec.feed(b"XXXX").unwrap_err();
        assert!(matches!(err, ProtoError::BadMagic { .. }));
        assert_eq!(codec.poll().unwrap_err(), err);
        // further bytes are ignored, not buffered
        assert_eq!(codec.feed(b"LPSW").unwrap_err(), err);
    }

    #[test]
    fn oversized_length_rejected_before_payload_arrives() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        wire.extend_from_slice(&tags::SHUTDOWN.to_le_bytes());
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut codec = FrameCodec::new();
        assert!(matches!(codec.feed(&wire).unwrap_err(), ProtoError::Oversized { len: u32::MAX }));
    }
}

//! The blocking socket front-end: std-only listeners feeding the sans-io
//! [`ServiceCore`] from a dedicated ingest thread.
//!
//! ## Threading model
//!
//! * **Acceptor thread** — polls a non-blocking listener, spawns one
//!   connection thread per accepted socket, and joins them on shutdown. It
//!   never touches the ingest channel, so a stalled ingest pipeline cannot
//!   stop new connections from being accepted.
//! * **Connection threads** — frame the byte stream through a per-connection
//!   [`FrameCodec`], answer live queries (sample / point-estimate /
//!   duplicates) directly from the [`SnapshotHandle`] without any ingest
//!   coordination, and forward ingest-ordered frames (update batches,
//!   checkpoint uploads, digest queries) over a **bounded** channel —
//!   blocking on `send` when the ingest thread falls behind, so
//!   backpressure lands on the connection that produced the load.
//! * **Ingest thread** — owns the [`ServiceCore`] outright (no lock) and
//!   applies requests in arrival order, posting each reply back on a
//!   one-shot channel.
//!
//! Failures stay scoped to their connection: a malformed byte stream earns
//! a best-effort [`Frame::Error`] and a close, a rejected upload (for
//! example a [`PlanMismatch`](lps_sketch::DecodeError::PlanMismatch)
//! envelope) earns a typed [`Frame::Error`] **and the connection keeps
//! going** — the protocol distinguishes "your request was bad" from "this
//! conversation is over".

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::task::Poll;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::merge::{ServiceConfig, ServiceCore, SnapshotHandle};
use crate::proto::{ErrorCode, Frame, FrameCodec, Query, PROTOCOL_VERSION};
use crate::ServiceError;

/// How long blocking reads wait before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(250);
/// How long the ingest thread waits on its queue before re-checking the
/// shutdown flag.
const INGEST_POLL: Duration = Duration::from_millis(50);
/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A request forwarded from a connection thread to the ingest thread. The
/// reply channel is a rendezvous: the connection blocks until the core has
/// applied the frame, which is what serializes acknowledgements with
/// ingestion.
enum Request {
    Apply(Frame, SyncSender<Frame>),
    Shutdown(SyncSender<Frame>),
}

/// The socket transports a connection thread can sit on. Both TCP and Unix
/// streams qualify; the trait erases the difference so one connection loop
/// serves both listeners.
trait Connection: Read + Write + Send {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl Connection for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }
}

#[cfg(unix)]
impl Connection for UnixStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, dur)
    }
}

/// A non-blocking accept source (TCP or Unix listener).
trait Acceptor: Send {
    /// Accept one pending connection, or `None` when none is waiting.
    fn poll_accept(&self) -> io::Result<Option<Box<dyn Connection>>>;
}

impl Acceptor for TcpListener {
    fn poll_accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(Box::new(stream))),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(unix)]
impl Acceptor for UnixListener {
    fn poll_accept(&self) -> io::Result<Option<Box<dyn Connection>>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(Box::new(stream))),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A running service instance: the acceptor, its connection threads, and
/// the ingest thread, all stoppable from the handle.
///
/// ```no_run
/// use lps_service::{RunningServer, ServiceConfig};
///
/// let config = ServiceConfig::new(1 << 12, 0xC0FE);
/// let server = RunningServer::bind_tcp("127.0.0.1:0", config).unwrap();
/// println!("listening on {}", server.local_addr().unwrap());
/// server.stop();
/// ```
pub struct RunningServer {
    addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<u64>>,
}

impl RunningServer {
    /// Bind a TCP listener (use port 0 to let the OS choose, then read it
    /// back from [`RunningServer::local_addr`]) and start serving.
    pub fn bind_tcp<A: ToSocketAddrs>(
        addr: A,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        Ok(Self::start(Box::new(listener), Some(local), config))
    }

    /// Bind a Unix-domain listener at `path` and start serving.
    #[cfg(unix)]
    pub fn bind_unix<P: AsRef<Path>>(path: P, config: ServiceConfig) -> Result<Self, ServiceError> {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Self::start(Box::new(listener), None, config))
    }

    fn start(listener: Box<dyn Acceptor>, addr: Option<SocketAddr>, config: ServiceConfig) -> Self {
        let core = ServiceCore::new(&config);
        let snapshots = core.snapshot_handle();
        let shutdown = Arc::new(AtomicBool::new(false));
        let auth_token = config.auth_token.clone().map(Arc::new);
        let (tx, rx) = sync_channel::<Request>(config.queue_depth);

        let ingest = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || ingest_loop(core, rx, shutdown))
        };
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(listener, tx, snapshots, shutdown, auth_token))
        };
        RunningServer { addr, shutdown, acceptor: Some(acceptor), ingest: Some(ingest) }
    }

    /// The bound TCP address (`None` for Unix-domain servers).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stop the server from this side: flag shutdown, then join the
    /// acceptor (which joins its connections) and the ingest thread.
    /// Returns the total updates the core accepted.
    pub fn stop(mut self) -> u64 {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads()
    }

    /// Wait for the server to be shut down by a client's
    /// [`Frame::Shutdown`], then join everything. Returns the total
    /// updates the core accepted.
    pub fn join(mut self) -> u64 {
        let accepted = match self.ingest.take() {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        };
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        accepted
    }

    fn join_threads(&mut self) -> u64 {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        match self.ingest.take() {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_threads();
    }
}

/// The ingest thread: applies requests in arrival order against the core
/// it exclusively owns. Returns the total accepted-update count.
fn ingest_loop(mut core: ServiceCore, rx: Receiver<Request>, shutdown: Arc<AtomicBool>) -> u64 {
    loop {
        match rx.recv_timeout(INGEST_POLL) {
            Ok(Request::Apply(frame, reply)) => {
                let response = match core.apply(frame) {
                    Ok(frame) => frame,
                    Err(e) => e.to_error_frame(),
                };
                let _ = reply.send(response);
            }
            Ok(Request::Shutdown(reply)) => {
                // Publish one final snapshot set so a post-mortem reader of
                // the handle sees everything, then acknowledge and stop.
                let response = match core.publish_all() {
                    Ok(()) => Frame::Reply(crate::proto::Reply::Ack { accepted: core.accepted() }),
                    Err(e) => e.to_error_frame(),
                };
                let _ = reply.send(response);
                shutdown.store(true, Ordering::SeqCst);
                break;
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    core.accepted()
}

/// The acceptor thread: polls the listener, spawns connection threads, and
/// joins them all once shutdown is flagged.
fn accept_loop(
    listener: Box<dyn Acceptor>,
    tx: SyncSender<Request>,
    snapshots: SnapshotHandle,
    shutdown: Arc<AtomicBool>,
    auth_token: Option<Arc<String>>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.poll_accept() {
            Ok(Some(conn)) => {
                let tx = tx.clone();
                let snapshots = snapshots.clone();
                let shutdown = Arc::clone(&shutdown);
                let auth_token = auth_token.clone();
                connections.push(std::thread::spawn(move || {
                    serve_connection(conn, tx, snapshots, shutdown, auth_token)
                }));
            }
            Ok(None) => std::thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Encode and write one frame.
fn write_frame(conn: &mut dyn Connection, frame: &Frame) -> io::Result<()> {
    let mut wire = Vec::new();
    FrameCodec::encode(frame, &mut wire);
    conn.write_all(&wire)
}

/// One connection's full lifetime: frame the byte stream, route each frame,
/// write each reply.
fn serve_connection(
    mut conn: Box<dyn Connection>,
    tx: SyncSender<Request>,
    snapshots: SnapshotHandle,
    shutdown: Arc<AtomicBool>,
    auth_token: Option<Arc<String>>,
) {
    if conn.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // An open server starts authenticated; a tokened one requires a
    // matching `Hello` before any other frame is served.
    let mut authed = auth_token.is_none();
    let mut codec = FrameCodec::new();
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        let n = match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let mut pending = &chunk[..n];
        loop {
            // Feed once, then keep polling: one read may complete several
            // frames, and each must be answered in order.
            let step = if pending.is_empty() { codec.poll() } else { codec.feed(pending) };
            pending = &[];
            match step {
                Ok(Poll::Pending) => break,
                Ok(Poll::Ready(frame)) => {
                    if !handle_frame(
                        conn.as_mut(),
                        frame,
                        &tx,
                        &snapshots,
                        auth_token.as_deref(),
                        &mut authed,
                    ) {
                        break 'conn;
                    }
                }
                Err(e) => {
                    // The codec is poisoned: the stream cannot be re-framed
                    // past this point, so report and hang up.
                    let _ = write_frame(
                        conn.as_mut(),
                        &Frame::Error { code: ErrorCode::Proto, detail: e.to_string() },
                    );
                    break 'conn;
                }
            }
        }
    }
}

/// Route one decoded frame; `false` means the connection should close.
fn handle_frame(
    conn: &mut dyn Connection,
    frame: Frame,
    tx: &SyncSender<Request>,
    snapshots: &SnapshotHandle,
    auth_token: Option<&String>,
    authed: &mut bool,
) -> bool {
    // A tokened server serves nothing before a successful `Hello`: every
    // other frame earns a typed rejection and a close.
    if !*authed && !matches!(frame, Frame::Hello { .. }) {
        let _ = write_frame(
            conn,
            &Frame::Error {
                code: ErrorCode::Unauthorized,
                detail: "authenticate with a hello frame first".to_string(),
            },
        );
        return false;
    }
    match frame {
        Frame::Hello { major, token, .. } => {
            if major != PROTOCOL_VERSION {
                let _ = write_frame(
                    conn,
                    &Frame::Error {
                        code: ErrorCode::Unsupported,
                        detail: format!(
                            "protocol major {major} is not supported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                );
                return false;
            }
            if let Some(required) = auth_token {
                if token.as_ref() != Some(required) {
                    // Absent and mismatched tokens are rejected alike; the
                    // detail never echoes the expected token.
                    let _ = write_frame(
                        conn,
                        &Frame::Error {
                            code: ErrorCode::Unauthorized,
                            detail: "hello token is missing or does not match".to_string(),
                        },
                    );
                    return false;
                }
                *authed = true;
            }
            write_frame(conn, &Frame::Hello { major: PROTOCOL_VERSION, minor: 0, token: None })
                .is_ok()
        }
        // Live queries: answered from the published snapshot, never
        // entering the ingest queue — ingestion load cannot delay them.
        Frame::Query(
            query @ (Query::Sample { .. } | Query::PointEstimate { .. } | Query::Duplicates { .. }),
        ) => {
            let response = match snapshots.serve(&query) {
                Ok(reply) => Frame::Reply(reply),
                Err(e) => e.to_error_frame(),
            };
            write_frame(conn, &response).is_ok()
        }
        Frame::Shutdown => {
            let (reply_tx, reply_rx) = sync_channel(1);
            if tx.send(Request::Shutdown(reply_tx)).is_err() {
                return false;
            }
            if let Ok(response) = reply_rx.recv() {
                let _ = write_frame(conn, &response);
            }
            false
        }
        // Everything else is ingest-ordered: update batches, checkpoint
        // uploads, digest queries. `send` blocks when the bounded queue is
        // full — that is the backpressure point.
        frame @ (Frame::UpdateBatch { .. } | Frame::CheckpointUpload { .. } | Frame::Query(_)) => {
            let (reply_tx, reply_rx) = sync_channel(1);
            if tx.send(Request::Apply(frame, reply_tx)).is_err() {
                let _ = write_frame(
                    conn,
                    &Frame::Error {
                        code: ErrorCode::Internal,
                        detail: "service is shutting down".to_string(),
                    },
                );
                return false;
            }
            match reply_rx.recv() {
                Ok(response) => write_frame(conn, &response).is_ok(),
                Err(_) => false,
            }
        }
        // A server never expects replies or errors from a client; flag it
        // but keep the conversation open.
        Frame::Reply(_) | Frame::Error { .. } => write_frame(
            conn,
            &Frame::Error {
                code: ErrorCode::Proto,
                detail: "unexpected reply/error frame from client".to_string(),
            },
        )
        .is_ok(),
    }
}

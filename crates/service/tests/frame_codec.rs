//! Property tests of the frame codec: total decoding under the
//! `persist::DecodeError` discipline, now at the framing layer.
//!
//! The laws:
//!
//! * **Round-trip** — any frame encodes and decodes back bit-identically,
//!   regardless of how the bytes are chunked on the way in.
//! * **Prefix totality** — every proper prefix of a valid frame is
//!   `Poll::Pending`, never an error, never a panic.
//! * **Corruption totality** — flipping any single bit of a valid wire
//!   image yields `Pending`, a typed [`ProtoError`], or a *different*
//!   frame; it never panics and never reproduces the original frame.
//! * **Typed rejections** — wrong version, unknown tag, corrupted checksum
//!   each map to their specific error variant.

use std::task::Poll;

use lps_service::proto::{
    tags, Frame, FrameCodec, ProtoError, Query, Reply, FRAME_MAGIC, PROTOCOL_VERSION,
};
use lps_service::ErrorCode;
use lps_stream::Update;
use proptest::prelude::*;

/// Deterministically build one frame of any wire kind from primitive
/// randomness (the vendored proptest has no `prop_oneof`/`prop_map`, so
/// variants are selected by an explicit kind byte).
#[allow(clippy::too_many_arguments)]
fn make_frame(
    kind: u8,
    tenant: u64,
    index: u64,
    value: f64,
    structure: u16,
    flag: bool,
    entries: &[(u64, i64)],
) -> Frame {
    match kind % 16 {
        // Both hello layouts: the 4-byte tokenless frame and the extended
        // frame carrying an arbitrary-content authentication token.
        0 => Frame::Hello {
            major: structure,
            minor: index as u16,
            token: flag.then(|| format!("tok-{tenant:#x} ünïcode ✓")),
        },
        1 => Frame::UpdateBatch {
            tenant,
            updates: entries.iter().map(|&(i, d)| Update { index: i, delta: d }).collect(),
        },
        2 => Frame::CheckpointUpload {
            buffer: entries
                .iter()
                .flat_map(|&(i, d)| {
                    let mut b = i.to_le_bytes().to_vec();
                    b.extend_from_slice(&d.to_le_bytes());
                    b
                })
                .collect(),
        },
        3 => Frame::Query(Query::Sample { structure }),
        4 => Frame::Query(Query::PointEstimate { structure, index }),
        5 => Frame::Query(Query::Duplicates { structure }),
        6 => Frame::Query(Query::Digest { structure }),
        7 => Frame::Query(Query::TenantDigest { tenant }),
        8 => Frame::Reply(Reply::Ack { accepted: tenant }),
        9 => Frame::Reply(Reply::Sample { sample: flag.then_some((index, value)) }),
        10 => Frame::Reply(Reply::Estimate { value }),
        11 => Frame::Reply(Reply::Duplicates { entries: entries.to_vec() }),
        12 => Frame::Reply(Reply::Digest { digest: tenant }),
        13 => Frame::Reply(Reply::TenantDigest { digest: flag.then_some(tenant) }),
        14 => Frame::Error {
            code: ErrorCode::from_u16(structure % 9),
            detail: format!("detail {tenant:#x} — ünïcode ✗"),
        },
        _ => Frame::Shutdown,
    }
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut wire = Vec::new();
    FrameCodec::encode(frame, &mut wire);
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    fn any_frame_round_trips_whole(
        kind in 0u8..16,
        tenant in any::<u64>(),
        index in any::<u64>(),
        value in any::<f64>(),
        structure in any::<u16>(),
        flag in any::<bool>(),
        entries in prop::collection::vec((any::<u64>(), -1_000i64..1_000), 0..24),
    ) {
        let frame = make_frame(kind, tenant, index, value, structure, flag, &entries);
        let wire = encode(&frame);
        let mut codec = FrameCodec::new();
        prop_assert_eq!(codec.feed(&wire).unwrap(), Poll::Ready(frame));
        prop_assert_eq!(codec.buffered(), 0);
        prop_assert_eq!(codec.poll().unwrap(), Poll::Pending);
    }

    fn byte_at_a_time_completes_exactly_at_the_last_byte(
        kind in 0u8..16,
        tenant in any::<u64>(),
        index in any::<u64>(),
        value in any::<f64>(),
        structure in any::<u16>(),
        flag in any::<bool>(),
        entries in prop::collection::vec((any::<u64>(), -1_000i64..1_000), 0..8),
    ) {
        let frame = make_frame(kind, tenant, index, value, structure, flag, &entries);
        let wire = encode(&frame);
        let mut codec = FrameCodec::new();
        let mut decoded = None;
        for (i, b) in wire.iter().enumerate() {
            match codec.feed(std::slice::from_ref(b)).unwrap() {
                Poll::Ready(f) => {
                    prop_assert_eq!(i, wire.len() - 1, "frame completed before its last byte");
                    decoded = Some(f);
                }
                Poll::Pending => prop_assert!(i < wire.len() - 1, "last byte left the codec pending"),
            }
        }
        prop_assert_eq!(decoded, Some(frame));
    }

    fn every_proper_prefix_is_pending(
        kind in 0u8..16,
        tenant in any::<u64>(),
        index in any::<u64>(),
        value in any::<f64>(),
        structure in any::<u16>(),
        flag in any::<bool>(),
        entries in prop::collection::vec((any::<u64>(), -1_000i64..1_000), 0..8),
    ) {
        let frame = make_frame(kind, tenant, index, value, structure, flag, &entries);
        let wire = encode(&frame);
        for cut in 0..wire.len() {
            let mut codec = FrameCodec::new();
            prop_assert_eq!(
                codec.feed(&wire[..cut]).unwrap(),
                Poll::Pending,
                "prefix of {} bytes out of {} was not pending", cut, wire.len()
            );
        }
    }

    fn single_bit_corruption_never_panics_and_never_forges(
        kind in 0u8..16,
        tenant in any::<u64>(),
        index in any::<u64>(),
        value in any::<f64>(),
        structure in any::<u16>(),
        flag in any::<bool>(),
        entries in prop::collection::vec((any::<u64>(), -1_000i64..1_000), 0..8),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let frame = make_frame(kind, tenant, index, value, structure, flag, &entries);
        let mut wire = encode(&frame);
        let pos = pos % wire.len();
        wire[pos] ^= 1 << bit;
        let mut codec = FrameCodec::new();
        match codec.feed(&wire) {
            // a bigger declared length just waits for more bytes
            Ok(Poll::Pending) => {}
            // a flipped tag can legitimately re-frame the payload (e.g. any
            // payload is a valid CheckpointUpload) — but never as the
            // original frame, since every byte participates in decoding
            Ok(Poll::Ready(decoded)) => prop_assert_ne!(decoded, frame),
            // and the typed rejection must persist: the codec is poisoned
            Err(e) => prop_assert_eq!(codec.poll().unwrap_err(), e),
        }
    }

    fn arbitrary_garbage_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let mut codec = FrameCodec::new();
        let first = codec.feed(&bytes);
        // whatever happened, the codec stays total: more polls and feeds
        // keep returning Results, and a poisoned codec repeats its error
        let again = codec.poll();
        if let Err(e) = first {
            prop_assert_eq!(again.unwrap_err(), e);
        }
        let _ = codec.feed(&bytes);
    }

    fn random_chunking_preserves_the_frame_sequence(
        kinds in prop::collection::vec(0u8..16, 1..6),
        chunk in 1usize..33,
        tenant in any::<u64>(),
        index in any::<u64>(),
        value in any::<f64>(),
        structure in any::<u16>(),
        flag in any::<bool>(),
        entries in prop::collection::vec((any::<u64>(), -1_000i64..1_000), 0..8),
    ) {
        // vary the fields per frame so equal kinds still differ
        let frames: Vec<Frame> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let i = i as u64;
                make_frame(
                    k,
                    tenant.wrapping_add(i),
                    index.wrapping_mul(i + 1),
                    value + i as f64,
                    structure.wrapping_add(i as u16),
                    flag ^ (i % 2 == 1),
                    &entries,
                )
            })
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            FrameCodec::encode(f, &mut wire);
        }
        let mut codec = FrameCodec::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            let mut step = codec.feed(piece).unwrap();
            while let Poll::Ready(f) = step {
                decoded.push(f);
                step = codec.poll().unwrap();
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(codec.buffered(), 0);
    }

    fn unsupported_version_is_rejected_at_the_version_bytes(
        version in any::<u16>(),
    ) {
        prop_assume!(version != PROTOCOL_VERSION);
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&version.to_le_bytes());
        let mut codec = FrameCodec::new();
        prop_assert_eq!(
            codec.feed(&wire).unwrap_err(),
            ProtoError::UnsupportedVersion { found: version }
        );
    }

    fn unknown_tags_are_rejected(
        tag in 8u16..=u16::MAX,
    ) {
        let mut wire = Vec::new();
        FrameCodec::encode(&Frame::Shutdown, &mut wire);
        wire[6..8].copy_from_slice(&tag.to_le_bytes());
        let mut codec = FrameCodec::new();
        prop_assert_eq!(codec.feed(&wire).unwrap_err(), ProtoError::UnknownFrameTag { found: tag });
    }

    fn checksum_corruption_is_specifically_typed(
        kind in 0u8..16,
        tenant in any::<u64>(),
        index in any::<u64>(),
        value in any::<f64>(),
        structure in any::<u16>(),
        flag in any::<bool>(),
        entries in prop::collection::vec((any::<u64>(), -1_000i64..1_000), 0..8),
        offset in 12usize..20,
        bit in 0u8..8,
    ) {
        let frame = make_frame(kind, tenant, index, value, structure, flag, &entries);
        let mut wire = encode(&frame);
        wire[offset] ^= 1 << bit;
        let mut codec = FrameCodec::new();
        prop_assert!(matches!(
            codec.feed(&wire).unwrap_err(),
            ProtoError::ChecksumMismatch { .. }
        ));
    }

    fn bad_magic_is_rejected_on_the_first_divergent_byte(
        pos in 0usize..4,
        byte in any::<u8>(),
    ) {
        prop_assume!(byte != FRAME_MAGIC[pos]);
        let mut wire = FRAME_MAGIC.to_vec();
        wire[pos] = byte;
        let mut codec = FrameCodec::new();
        // feeding even just past the divergent byte must already reject
        prop_assert!(matches!(
            codec.feed(&wire[..=pos]).unwrap_err(),
            ProtoError::BadMagic { .. }
        ));
    }

    fn update_batch_count_lies_are_rejected_without_allocation(
        claimed in 1u64..u64::MAX,
    ) {
        // a batch that claims `claimed` updates but carries none
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&claimed.to_le_bytes());
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        wire.extend_from_slice(&tags::UPDATE_BATCH.to_le_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&lps_registry::record_checksum(&payload).to_le_bytes());
        wire.extend_from_slice(&payload);
        let mut codec = FrameCodec::new();
        prop_assert_eq!(
            codec.feed(&wire).unwrap_err(),
            ProtoError::Malformed { context: "update count exceeds the payload bytes" }
        );
    }
}

//! In-process loopback integration: a real TCP (and Unix-socket) server,
//! real clients, and the digest-identity contract end to end.
//!
//! The load pattern mirrors the CI two-process harness at a smaller scale:
//! streamed update batches, a concurrent tenant feeder on a second
//! connection, live queries mid-ingestion, a complete shard-checkpoint
//! upload set, one deliberately mismatched (key-range) upload that must
//! come back as a typed `PlanMismatch` error *without* killing the
//! connection, and final digests compared against sequential local
//! references — bit-identical, because every catalog structure merges
//! exactly.

use std::net::TcpStream;

use lps_engine::{EngineBuilder, KeyRange, ShardIngest};
use lps_service::proto::tags as frame_tags;
use lps_service::{
    CatalogPrototypes, ErrorCode, Frame, FrameCodec, Query, RunningServer, ServiceClient,
    ServiceConfig, ServiceError, CATALOG_STRUCTURES,
};
use lps_sketch::persist::tags;
use lps_sketch::Mergeable;
use lps_stream::Update;

const DIM: u64 = 1 << 12;
const SEED: u64 = 0x51DE_CA7A;

/// Deterministic splitmix-style workload; `salt` decorrelates streams.
fn workload(n: usize, salt: u64) -> Vec<Update> {
    (0..n as u64)
        .map(|i| {
            let mut x = i.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let delta = ((x >> 33) % 5) as i64 - 2;
            Update { index: x % DIM, delta: if delta == 0 { 1 } else { delta } }
        })
        .collect()
}

fn config() -> ServiceConfig {
    ServiceConfig::new(DIM, SEED).shards(2).batch_size(256).publish_interval(4096)
}

#[test]
fn tcp_loopback_matches_sequential_references() {
    let main = workload(8_000, 1);
    let side = workload(3_000, 2);
    let tenant_stream = workload(1_000, 3);

    let server = RunningServer::bind_tcp("127.0.0.1:0", config()).expect("bind");
    let addr = server.local_addr().expect("tcp server has an address");
    let mut client = ServiceClient::connect_tcp(addr).expect("connect");

    // A second connection feeds tenant 7 concurrently with the main stream:
    // live ingestion on one socket must not block another.
    let feeder = {
        let tenant_stream = tenant_stream.clone();
        std::thread::spawn(move || {
            let mut client = ServiceClient::connect_tcp(addr).expect("feeder connect");
            for batch in tenant_stream.chunks(250) {
                client.send_updates(7, batch).expect("tenant batch accepted");
            }
        })
    };

    // Stream the main load into the shared catalog (tenant 0), with live
    // queries interleaved mid-ingestion.
    let mut last_accepted = 0;
    for (i, batch) in main.chunks(500).enumerate() {
        let accepted = client.send_updates(0, batch).expect("batch accepted");
        assert!(accepted > last_accepted, "accepted count must be monotone");
        last_accepted = accepted;
        if i == 7 {
            // mid-stream live reads answer from the published snapshot
            // without pausing ingestion; values are checked against the
            // references once the stream completes
            client.sample(tags::L0_SAMPLER).expect("live sample");
            client.point_estimate(tags::COUNT_MIN, main[0].index).expect("live estimate");
            client.duplicates(tags::SPARSE_RECOVERY).ok();
        }
    }
    feeder.join().expect("feeder thread");

    // Shard-checkpoint upload: a 3-shard round-robin session over the
    // identically seeded count-min prototype, checkpointed and uploaded
    // shard by shard. The set completes on the third upload and merges
    // into the service's count-min state.
    let protos = CatalogPrototypes::standard(DIM, SEED);
    let mut session = EngineBuilder::new(&protos.count_min).shards(3).batch_size(128).session();
    session.ingest_blocking(&side);
    let buffers = session.checkpoint().expect("local checkpoint");
    assert_eq!(buffers.len(), 3);
    for buffer in buffers {
        client.upload_checkpoint(buffer).expect("upload accepted");
    }

    // A key-range checkpoint violates the service's round-robin plan: the
    // envelope is rejected as a typed PlanMismatch error frame and the
    // connection keeps working.
    let mut wrong =
        EngineBuilder::new(&protos.count_min).plan(KeyRange::new(DIM, 2)).batch_size(128).session();
    wrong.ingest_blocking(&side[..64]);
    let wrong_buffers = wrong.checkpoint().expect("key-range checkpoint");
    match client.upload_checkpoint(wrong_buffers[0].clone()) {
        Err(ServiceError::Remote { code: ErrorCode::PlanMismatch, detail }) => {
            assert!(detail.contains("round_robin"), "detail names the expected plan: {detail}");
        }
        other => panic!("key-range upload should be a PlanMismatch error, got {other:?}"),
    }
    // connection survived the rejection:
    client.digest(tags::AMS).expect("connection still serves after a rejected upload");

    // Unknown structure tags and unsupported query kinds are typed, too.
    match client.digest(0x00FF) {
        Err(ServiceError::Remote { code: ErrorCode::UnknownStructure, .. }) => {}
        other => panic!("expected UnknownStructure, got {other:?}"),
    }
    match client.point_estimate(tags::AMS, 3) {
        Err(ServiceError::Remote { code: ErrorCode::Unsupported, .. }) => {}
        other => panic!("expected Unsupported, got {other:?}"),
    }

    // Sequential references: every catalog structure ingests the main
    // stream; count-min additionally absorbs the uploaded side stream; the
    // tenant prototype ingests the tenant stream.
    let mut reference = CatalogPrototypes::standard(DIM, SEED);
    reference.sparse_recovery.ingest_batch(&main);
    reference.l0_sampler.ingest_batch(&main);
    reference.fis_l0.ingest_batch(&main);
    reference.count_sketch.ingest_batch(&main);
    reference.count_min.ingest_batch(&main);
    reference.count_min.ingest_batch(&side);
    reference.count_median.ingest_batch(&main);
    reference.ams.ingest_batch(&main);
    reference.tenant_proto.ingest_batch(&tenant_stream);

    let expected: Vec<(&str, u16, u64)> = vec![
        ("sparse_recovery", tags::SPARSE_RECOVERY, reference.sparse_recovery.state_digest()),
        ("l0_sampler", tags::L0_SAMPLER, reference.l0_sampler.state_digest()),
        ("fis_l0", tags::FIS_L0_SAMPLER, reference.fis_l0.state_digest()),
        ("count_sketch", tags::COUNT_SKETCH, reference.count_sketch.state_digest()),
        ("count_min", tags::COUNT_MIN, reference.count_min.state_digest()),
        ("count_median", tags::COUNT_MEDIAN, reference.count_median.state_digest()),
        ("ams", tags::AMS, reference.ams.state_digest()),
    ];
    assert_eq!(expected.len(), CATALOG_STRUCTURES.len());
    for (name, tag, digest) in expected {
        assert_eq!(
            client.digest(tag).expect("digest query"),
            digest,
            "{name}: service digest diverged from sequential ingestion"
        );
    }

    // Tenant digests: exact for the fed tenant, absent for a stranger.
    assert_eq!(
        client.tenant_digest(7).expect("tenant digest"),
        Some(reference.tenant_proto.state_digest()),
        "tenant 7 digest diverged from its sequential reference"
    );
    assert_eq!(client.tenant_digest(99).expect("unknown tenant"), None);

    // Clean two-sided teardown: the client's shutdown ack carries the final
    // accepted count, and join() returns the same number.
    let total = (main.len() + tenant_stream.len()) as u64;
    assert_eq!(client.shutdown().expect("shutdown ack"), total);
    assert_eq!(server.join(), total);
}

#[cfg(unix)]
#[test]
fn unix_socket_loopback_smoke() {
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("lps-service-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = RunningServer::bind_unix(&path, config()).expect("bind unix");

    let updates = workload(2_000, 9);
    let mut reference = CatalogPrototypes::standard(DIM, SEED).count_min;
    reference.ingest_batch(&updates);

    let stream = UnixStream::connect(&path).expect("connect unix");
    let mut client = ServiceClient::handshake(stream).expect("handshake");
    for batch in updates.chunks(400) {
        client.send_updates(0, batch).expect("batch accepted");
    }
    assert_eq!(client.digest(tags::COUNT_MIN).expect("digest"), reference.state_digest());
    client.shutdown().expect("shutdown ack");
    server.join();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn version_mismatch_in_hello_is_rejected_and_closed() {
    use std::io::{Read, Write};
    use std::task::Poll;

    let server = RunningServer::bind_tcp("127.0.0.1:0", config()).expect("bind");
    let addr = server.local_addr().expect("address");

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut wire = Vec::new();
    FrameCodec::encode(&Frame::Hello { major: 99, minor: 0, token: None }, &mut wire);
    stream.write_all(&wire).expect("write hello");

    let mut codec = FrameCodec::new();
    let mut chunk = [0u8; 4096];
    let reply = loop {
        if let Poll::Ready(frame) = codec.poll().expect("well-framed reply") {
            break frame;
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed before answering");
        if let Poll::Ready(frame) = codec.feed(&chunk[..n]).expect("well-framed reply") {
            break frame;
        }
    };
    match reply {
        Frame::Error { code: ErrorCode::Unsupported, detail } => {
            assert!(detail.contains("99"), "detail names the offending version: {detail}");
        }
        other => panic!("expected an Unsupported error frame, got {other:?}"),
    }
    // ... and the server hangs up on us.
    assert_eq!(stream.read(&mut chunk).expect("read eof"), 0);

    server.stop();
}

#[test]
fn auth_token_gates_every_frame_until_a_matching_hello() {
    let server =
        RunningServer::bind_tcp("127.0.0.1:0", config().auth_token("open-sesame")).expect("bind");
    let addr = server.local_addr().expect("address");

    // Absent token: rejected with a typed Unauthorized error, then closed.
    match ServiceClient::connect_tcp(addr).err() {
        Some(ServiceError::Remote { code: ErrorCode::Unauthorized, detail }) => {
            assert!(!detail.contains("open-sesame"), "detail must not leak the token: {detail}");
        }
        other => panic!("tokenless handshake should be Unauthorized, got {other:?}"),
    }

    // Mismatched token: same rejection.
    match ServiceClient::connect_tcp_with_token(addr, "wrong").err() {
        Some(ServiceError::Remote { code: ErrorCode::Unauthorized, .. }) => {}
        other => panic!("mismatched token should be Unauthorized, got {other:?}"),
    }

    // A non-hello first frame is rejected and the connection closed.
    {
        use std::io::{Read, Write};
        use std::task::Poll;
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut wire = Vec::new();
        FrameCodec::encode(
            &Frame::UpdateBatch { tenant: 0, updates: vec![Update { index: 1, delta: 1 }] },
            &mut wire,
        );
        stream.write_all(&wire).expect("write batch");
        let mut codec = FrameCodec::new();
        let mut chunk = [0u8; 4096];
        let reply = loop {
            if let Poll::Ready(frame) = codec.poll().expect("well-framed reply") {
                break frame;
            }
            let n = stream.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed before answering");
            if let Poll::Ready(frame) = codec.feed(&chunk[..n]).expect("well-framed reply") {
                break frame;
            }
        };
        assert!(
            matches!(reply, Frame::Error { code: ErrorCode::Unauthorized, .. }),
            "pre-auth batch should be Unauthorized, got {reply:?}"
        );
        assert_eq!(stream.read(&mut chunk).expect("read eof"), 0, "server must hang up");
    }

    // The matching token authenticates and the connection serves normally.
    let updates = workload(1_000, 4);
    let mut reference = CatalogPrototypes::standard(DIM, SEED).count_min;
    reference.ingest_batch(&updates);
    let mut client =
        ServiceClient::connect_tcp_with_token(addr, "open-sesame").expect("authed connect");
    for batch in updates.chunks(250) {
        client.send_updates(0, batch).expect("batch accepted");
    }
    assert_eq!(client.digest(tags::COUNT_MIN).expect("digest"), reference.state_digest());
    client.shutdown().expect("shutdown ack");
    server.join();
}

#[test]
fn query_against_an_empty_service_answers_from_the_zero_snapshot() {
    let server = RunningServer::bind_tcp("127.0.0.1:0", config()).expect("bind");
    let addr = server.local_addr().expect("address");
    let mut client = ServiceClient::connect_tcp(addr).expect("connect");

    // before any update: the published zero-state snapshots answer
    assert_eq!(client.sample(tags::L0_SAMPLER).expect("sample"), None);
    assert_eq!(client.point_estimate(tags::COUNT_MIN, 0).expect("estimate"), 0.0);
    assert_eq!(client.duplicates(tags::SPARSE_RECOVERY).expect("duplicates"), vec![]);
    let zero = CatalogPrototypes::standard(DIM, SEED).ams.state_digest();
    assert_eq!(client.digest(tags::AMS).expect("digest"), zero);

    // raw Query frame kinds route consistently through the typed helper
    let reply = client.query(Query::TenantDigest { tenant: 42 }).expect("query");
    assert_eq!(reply, lps_service::Reply::TenantDigest { digest: None });

    drop(client);
    server.stop();
}

// Keep the frame-tag constants in the public API honest: the loopback
// harness and any external client dispatch on them.
#[test]
fn frame_tags_are_stable() {
    assert_eq!(frame_tags::HELLO, 0x0001);
    assert_eq!(frame_tags::UPDATE_BATCH, 0x0002);
    assert_eq!(frame_tags::CHECKPOINT_UPLOAD, 0x0003);
    assert_eq!(frame_tags::QUERY, 0x0004);
    assert_eq!(frame_tags::REPLY, 0x0005);
    assert_eq!(frame_tags::ERROR, 0x0006);
    assert_eq!(frame_tags::SHUTDOWN, 0x0007);
}

//! The AMS (Alon–Matias–Szegedy) "tug-of-war" sketch for L2 / F2 estimation.
//!
//! The precision sampler's recovery stage needs a constant-factor
//! approximation `s` of `‖z − ẑ‖₂` computed from a linear sketch
//! (`L'(z − ẑ) = L'(z) − L'(ẑ)`, step 3 of the Recovery Stage in Figure 1).
//! The AMS sketch provides exactly this: each counter is `Σ_i σ(i)·x_i` for a
//! 4-wise independent sign function σ, the square of a counter is an unbiased
//! estimator of `‖x‖₂²`, and a median-of-means over `groups × group_size`
//! counters gives a constant-factor approximation with high probability using
//! `O(log n)` counters.

use lps_hash::{FourWiseHash, SeedSequence};
use lps_stream::{counter_bits_for, SpaceBreakdown, SpaceUsage};

use crate::compensated::kahan_add;
use crate::linear::LinearSketch;
use crate::mergeable::{Mergeable, StateDigest};
use crate::persist::{tags, DecodeError, Persist, WireReader, WireWriter};

/// An AMS sketch with `groups × group_size` sign counters.
#[derive(Debug, Clone)]
pub struct AmsSketch {
    dimension: u64,
    groups: usize,
    group_size: usize,
    counters: Vec<f64>,
    /// Kahan compensation terms, parallel to `counters`. Identically zero
    /// for integer workloads (see [`crate::compensated`]).
    comp: Vec<f64>,
    signs: Vec<FourWiseHash>,
}

impl AmsSketch {
    /// Create a sketch with `groups` median groups of `group_size` averaged
    /// counters each.
    pub fn new(dimension: u64, groups: usize, group_size: usize, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0 && groups >= 1 && group_size >= 1);
        let total = groups * group_size;
        let signs = (0..total).map(|_| FourWiseHash::new(seeds)).collect();
        AmsSketch {
            dimension,
            groups,
            group_size,
            counters: vec![0.0; total],
            comp: vec![0.0; total],
            signs,
        }
    }

    /// A default shape giving a ≤ 2-factor approximation with high
    /// probability for dimensions up to `n`: `O(log n)` groups of 6 counters.
    pub fn with_default_shape(dimension: u64, seeds: &mut SeedSequence) -> Self {
        let groups = (((dimension.max(4) as f64).log2()).ceil() as usize).max(7) | 1;
        AmsSketch::new(dimension, groups, 6, seeds)
    }

    /// Number of median groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Counters per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Unbiased estimate of `‖x‖₂²` by median-of-means over counter squares.
    pub fn f2_estimate(&self) -> f64 {
        let mut group_means: Vec<f64> = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let start = g * self.group_size;
            let mean: f64 =
                self.counters[start..start + self.group_size].iter().map(|c| c * c).sum::<f64>()
                    / self.group_size as f64;
            group_means.push(mean);
        }
        crate::count_sketch::median(&mut group_means)
    }

    /// Estimate of the L2 norm `‖x‖₂`.
    pub fn l2_estimate(&self) -> f64 {
        self.f2_estimate().max(0.0).sqrt()
    }

    /// A value `s` with `‖x‖₂ ≤ s ≤ 2‖x‖₂` with high probability (the form
    /// needed by step 3 of the Recovery Stage): the raw estimate inflated by
    /// √2, so a (1 ± 1/3) estimate lands inside [1, 2]·‖x‖₂.
    pub fn l2_upper_estimate(&self) -> f64 {
        self.l2_estimate() * std::f64::consts::SQRT_2
    }

    /// Apply this sketch's linear map to an explicit sparse vector (same
    /// seeds, fresh counters) — used to form `L'(ẑ)` in the recovery stage.
    pub fn sketch_of_sparse(&self, entries: &[(u64, f64)]) -> AmsSketch {
        let mut fresh = AmsSketch {
            dimension: self.dimension,
            groups: self.groups,
            group_size: self.group_size,
            counters: vec![0.0; self.counters.len()],
            comp: vec![0.0; self.counters.len()],
            signs: self.signs.clone(),
        };
        for &(i, v) in entries {
            fresh.update(i, v);
        }
        fresh
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone (counter shape is `(groups, group_size)`, independent of `n`;
    /// exact recombination needs the same sign hashes over global
    /// coordinates).
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        crate::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// every counter sums contributions from all coordinates, so the union
    /// coincides with [`Mergeable::merge_from`].
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl LinearSketch for AmsSketch {
    fn update(&mut self, index: u64, delta: f64) {
        debug_assert!(index < self.dimension);
        for ((counter, comp), sign) in
            self.counters.iter_mut().zip(self.comp.iter_mut()).zip(self.signs.iter())
        {
            kahan_add(counter, comp, sign.sign(index) as f64 * delta);
        }
    }

    /// Batched fast path: coalesce repeated indices so each distinct index
    /// walks the `groups × group_size` sign hashes exactly once per batch.
    /// Signed-unit counters stay exact integers in f64 for integer
    /// workloads, so coalescing matches the sequential loop.
    ///
    /// This is the rows×keys shape: *many* sign polynomials evaluated at
    /// *one* key per entry. The batch path transposes the coefficient
    /// vectors into a [`lps_hash::simd::PolyBank`] once per batch (a few
    /// hundred word copies, amortised over every entry) and evaluates all
    /// sign hashes lane-parallel, then replays the Kahan accumulation in
    /// the exact counter order of [`AmsSketch::update`] — float state stays
    /// bit-identical to the sequential walk.
    fn process_batch(&mut self, updates: &[lps_stream::Update]) {
        let coalesced = lps_stream::coalesce_updates(updates);
        if coalesced.is_empty() {
            return;
        }
        let bank =
            lps_hash::simd::PolyBank::new(self.signs.iter().map(|h| h.kwise().coefficients()));
        let mut hashes = vec![0u64; self.counters.len()];
        for (index, delta) in coalesced {
            debug_assert!(index < self.dimension);
            bank.eval_key(index, &mut hashes);
            let delta = delta as f64;
            for ((counter, comp), &h) in
                self.counters.iter_mut().zip(self.comp.iter_mut()).zip(hashes.iter())
            {
                let sign = if h & 1 == 1 { 1.0 } else { -1.0 };
                kahan_add(counter, comp, sign * delta);
            }
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.counters.len(), other.counters.len());
        // Plain elementwise addition of both vectors keeps merge
        // bitwise-commutative, as Mergeable requires.
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.comp.iter_mut().zip(other.comp.iter()) {
            *a += b;
        }
    }

    fn subtract(&mut self, other: &Self) {
        assert_eq!(self.counters.len(), other.counters.len());
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a -= b;
        }
        for (a, b) in self.comp.iter_mut().zip(other.comp.iter()) {
            *a -= b;
        }
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }
}

impl Mergeable for AmsSketch {
    fn merge_from(&mut self, other: &Self) {
        LinearSketch::merge(self, other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.counters {
            d.write_f64(v);
        }
        for &v in &self.comp {
            d.write_f64(v);
        }
        d.finish()
    }
}

impl Persist for AmsSketch {
    const TAG: u16 = tags::AMS;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_len(self.groups);
        w.write_len(self.group_size);
        for h in &self.signs {
            h.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for &v in &self.counters {
            w.write_f64(v);
        }
        for &v in &self.comp {
            w.write_f64(v);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let dimension = seeds.read_u64()?;
        let groups = seeds.read_count(1)?;
        let group_size = seeds.read_count(0)?;
        if dimension == 0 || groups == 0 || group_size == 0 {
            return Err(DecodeError::Corrupt { context: "AMS shape must be non-zero" });
        }
        let total = groups
            .checked_mul(group_size)
            .ok_or(DecodeError::Corrupt { context: "AMS counter count overflows" })?;
        let signs = (0..total)
            .map(|_| FourWiseHash::decode_parts(seeds, counters))
            .collect::<Result<Vec<_>, _>>()?;
        let values = counters.read_f64s(total)?;
        let comp = counters.read_f64s(total)?;
        Ok(AmsSketch { dimension, groups, group_size, counters: values, comp, signs })
    }
}

impl SpaceUsage for AmsSketch {
    fn space(&self) -> SpaceBreakdown {
        let counters = self.counters.len() as u64;
        let counter_bits = counter_bits_for(self.dimension, self.dimension);
        let randomness = self.signs.iter().map(|h| h.random_bits()).sum();
        SpaceBreakdown::new(counters, counter_bits, randomness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn single_coordinate_is_exact() {
        let mut s = seeds(1);
        let mut ams = AmsSketch::with_default_shape(1024, &mut s);
        ams.update(17, 5.0);
        // every counter is ±5, so every square is 25 and the estimate exact
        assert!((ams.f2_estimate() - 25.0).abs() < 1e-9);
        assert!((ams.l2_estimate() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn l2_estimate_within_constant_factor() {
        let n = 1 << 12;
        let mut s = seeds(2);
        let mut ams = AmsSketch::new(n, 15, 8, &mut s);
        let mut truth_sq = 0.0;
        for i in 0..n {
            let v = ((i % 11) as f64) - 5.0;
            if v != 0.0 {
                ams.update(i, v);
                truth_sq += v * v;
            }
        }
        let truth = truth_sq.sqrt();
        let est = ams.l2_estimate();
        assert!(
            est > 0.6 * truth && est < 1.6 * truth,
            "AMS estimate {est} too far from truth {truth}"
        );
        let upper = ams.l2_upper_estimate();
        assert!(upper >= truth * 0.85, "upper estimate should rarely fall below the norm");
        assert!(upper <= 2.5 * truth);
    }

    #[test]
    fn zero_vector_estimates_zero() {
        let mut s = seeds(3);
        let ams = AmsSketch::with_default_shape(64, &mut s);
        assert_eq!(ams.f2_estimate(), 0.0);
        assert_eq!(ams.l2_estimate(), 0.0);
    }

    #[test]
    fn linearity_and_difference_norm() {
        // ‖x - y‖₂ via subtracting sketches — exactly how the sampler uses it.
        let n = 2048u64;
        let mut s = seeds(4);
        let proto = AmsSketch::new(n, 15, 8, &mut s);
        let mut sx = proto.clone();
        let mut sy = proto.clone();
        let x = [(3u64, 10.0), (700, -4.0), (1999, 2.0)];
        let y = [(3u64, 10.0), (700, -4.0)];
        for (i, v) in x {
            sx.update(i, v);
        }
        for (i, v) in y {
            sy.update(i, v);
        }
        let mut diff = sx.clone();
        diff.subtract(&sy);
        // x - y has a single coordinate of value 2 at index 1999
        assert!((diff.l2_estimate() - 2.0).abs() < 1e-9);
        // merge is the inverse of subtract
        let mut back = diff.clone();
        back.merge(&sy);
        assert!((back.l2_estimate() - sx.l2_estimate()).abs() < 1e-9);
    }

    #[test]
    fn sketch_of_sparse_matches_direct() {
        let mut s = seeds(5);
        let mut direct = AmsSketch::with_default_shape(256, &mut s);
        let entries = [(1u64, 2.0), (90, -3.5)];
        for (i, v) in entries {
            direct.update(i, v);
        }
        let derived = direct.sketch_of_sparse(&entries);
        assert_eq!(direct.counters, derived.counters);
    }

    #[test]
    fn space_accounting() {
        let mut s = seeds(6);
        let ams = AmsSketch::new(1024, 9, 6, &mut s);
        assert_eq!(ams.space().counters, 54);
        assert!(ams.space().randomness_bits >= 54 * 4 * 61);
    }
}

//! Kahan compensated summation for the float-accumulator sketches.
//!
//! The count-sketch, AMS, and p-stable sketches accumulate real-valued sums
//! in `f64` counters. Plain `+=` loses low-order bits once a counter's
//! magnitude dwarfs an incoming delta, and the loss is order-dependent —
//! exactly the drift the sharded-ingestion tests bound. Kahan's algorithm
//! carries one compensation term per counter, recovering the bits truncated
//! by each addition and folding them into the next, which shrinks worst-case
//! accumulation error from `O(n·ε)` to `O(ε)` for comparable magnitudes.
//!
//! Two properties the workspace depends on:
//!
//! * **Integer transparency.** When every addend is an integer of magnitude
//!   below 2^53 and the running sum stays below 2^53, each addition is exact:
//!   `y = v − 0 = v`, `t = sum + v` exact, `comp = (t − sum) − v = 0`. The
//!   compensation vector stays identically zero, so integer workloads keep
//!   the exact digests the engine's bit-identity tests pin.
//! * **Merge stays bitwise-commutative.** [`crate::Mergeable`] requires
//!   `merge` to commute at the bit level, so merging compensated sketches
//!   adds the primary counters and the compensation terms *elementwise and
//!   independently* — never a compensated add of one into the other, which
//!   would be order-sensitive.
//!
//! The compensation vector is part of the persisted state (wire format
//! version 2) and of the state digest: a checkpointed-and-restored sketch
//! resumes summation with bit-identical rounding to one that never left
//! memory.
//!
//! **Why compensation does not make the float structures `Exact`.** The
//! engine's `Tolerance::Exact` means shard merges recombine bit-identically
//! to sequential ingestion. Kahan keeps each shard's own running sum exact
//! to `O(ε)`, but a k-way shard merge adds k already-rounded partial sums in
//! a different association than the sequential interleaving — and `f64`
//! addition is not associative. The low-order bits each shard rounded away
//! were rounded against *its* partial-sum trajectory; no per-counter
//! compensation term computed on one trajectory can reconstruct the bits of
//! another. Compensation therefore tightens the drift bound (the `~2kε`
//! figure the equivalence tests pin) without ever closing it to zero, and
//! the float structures remain `Tolerance::Approximate` by construction
//! rather than by implementation laziness.

/// One step of Kahan summation: add `v` into `sum`, tracking the truncated
/// low-order bits in `comp`.
#[inline]
pub fn kahan_add(sum: &mut f64, comp: &mut f64, v: f64) {
    let y = v - *comp;
    let t = *sum + y;
    *comp = (t - *sum) - y;
    *sum = t;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_additions_keep_zero_compensation() {
        let mut sum = 0.0;
        let mut comp = 0.0;
        for v in [1.0, -3.0, 1e15, 7.0, -1e15] {
            kahan_add(&mut sum, &mut comp, v);
        }
        assert_eq!(sum, 5.0);
        assert_eq!(comp.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn compensation_beats_naive_summation() {
        // A large sum absorbing many tiny addends: naive `+=` rounds every
        // tiny addend away; Kahan recovers them via the compensation term.
        let n = 1_000_000u64;
        let tiny = 1e-16f64;
        let mut naive = 1.0f64;
        let mut sum = 1.0f64;
        let mut comp = 0.0f64;
        for _ in 0..n {
            naive += tiny;
            kahan_add(&mut sum, &mut comp, tiny);
        }
        let expected = 1.0 + n as f64 * tiny;
        assert_eq!(naive, 1.0, "naive summation should drop every tiny addend");
        assert!((sum - expected).abs() < 1e-13, "kahan sum {sum} comp {comp} vs {expected}");
    }
}

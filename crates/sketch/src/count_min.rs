//! Count-min and count-median sketches (Cormode–Muthukrishnan).
//!
//! These are the classic alternatives to count-sketch referenced in Section
//! 4.4 of the paper: the count-median algorithm of \[8\] gives the
//! `O(φ^{-1} log² n)` heavy hitter bound for `p = 1`, and the paper's point is
//! that count-sketch matches/generalises it to all `p ∈ (0, 2]`. We implement
//! both as comparison baselines for the heavy hitter experiments:
//!
//! * [`CountMinSketch`] — rows of non-negative counters, point query by
//!   minimum; only valid in the strict turnstile model (estimates are
//!   one-sided: never below the true value).
//! * [`CountMedianSketch`] — same table but point query by median, valid in
//!   the general update model, with two-sided error `‖x‖₁/width` per row.

use lps_hash::{PairwiseHash, SeedSequence};
use lps_stream::{counter_bits_for, SpaceBreakdown, SpaceUsage, Update, UpdateStream};

use crate::count_sketch::median;
use crate::linear::LinearSketch;
use crate::mergeable::{Mergeable, StateDigest};
use crate::persist::{tags, DecodeError, Persist, WireReader, WireWriter};

/// Shared decode of the `(dimension, rows, width, hashes)` shape both table
/// sketches in this module serialize identically.
#[allow(clippy::type_complexity)]
fn decode_table_shape(
    seeds: &mut WireReader<'_>,
    counters: &mut WireReader<'_>,
    context: &'static str,
) -> Result<(u64, usize, usize, Vec<PairwiseHash>, usize), DecodeError> {
    let dimension = seeds.read_u64()?;
    let rows = seeds.read_count(1)?;
    let width = seeds.read_count(0)?;
    if dimension == 0 || rows == 0 || width == 0 {
        return Err(DecodeError::Corrupt { context });
    }
    let hashes = (0..rows)
        .map(|_| PairwiseHash::decode_parts(seeds, counters))
        .collect::<Result<Vec<_>, _>>()?;
    let cells = rows.checked_mul(width).ok_or(DecodeError::Corrupt { context })?;
    Ok((dimension, rows, width, hashes, cells))
}

/// A count-min sketch over integer-valued strict-turnstile streams.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    dimension: u64,
    rows: usize,
    width: usize,
    table: Vec<i64>,
    hashes: Vec<PairwiseHash>,
}

impl CountMinSketch {
    /// Create a sketch with `rows` rows of `width` counters.
    pub fn new(dimension: u64, width: usize, rows: usize, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0 && width >= 1 && rows >= 1);
        let hashes = (0..rows).map(|_| PairwiseHash::new(seeds)).collect();
        CountMinSketch { dimension, rows, width, table: vec![0; rows * width], hashes }
    }

    /// Width per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Apply an integer update.
    pub fn update(&mut self, index: u64, delta: i64) {
        debug_assert!(index < self.dimension);
        for j in 0..self.rows {
            let k = self.hashes[j].bucket(index, self.width);
            self.table[j * self.width + k] += delta;
        }
    }

    /// Batched fast path: coalesce repeated indices and walk the table in
    /// row-major order. Pure integer counters, so the final state is
    /// identical to the sequential loop for any batch.
    pub fn process_batch(&mut self, updates: &[Update]) {
        let coalesced = lps_stream::coalesce_updates(updates);
        let keys: Vec<u64> = coalesced.iter().map(|&(i, _)| i).collect();
        let mut hash_scratch = vec![0u64; keys.len()];
        let mut buckets = vec![0usize; keys.len()];
        for j in 0..self.rows {
            let row = &mut self.table[j * self.width..(j + 1) * self.width];
            self.hashes[j].kwise().buckets_into(&keys, self.width, &mut hash_scratch, &mut buckets);
            for (&(index, delta), &b) in coalesced.iter().zip(buckets.iter()) {
                debug_assert!(index < self.dimension);
                row[b] += delta;
            }
        }
    }

    /// Process a whole stream through the batched fast path.
    pub fn process(&mut self, stream: &UpdateStream) {
        for chunk in stream.chunks(lps_stream::DEFAULT_BATCH_SIZE) {
            self.process_batch(chunk);
        }
    }

    /// Point query: the minimum over rows. In the strict turnstile model this
    /// never underestimates the true value.
    pub fn estimate(&self, index: u64) -> i64 {
        debug_assert!(index < self.dimension);
        (0..self.rows)
            .map(|j| {
                let k = self.hashes[j].bucket(index, self.width);
                self.table[j * self.width + k]
            })
            .min()
            .expect("at least one row")
    }

    /// Dimension of the underlying vector.
    pub fn dimension(&self) -> u64 {
        self.dimension
    }

    /// Add another sketch of the same shape and seeds (sketch of the
    /// concatenated streams). Integer counters, so merging is exact.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.table.len(), other.table.len(), "shape mismatch");
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
    }

    /// Subtract another sketch of the same shape and seeds (sketch of the
    /// difference vector).
    pub fn subtract(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension, "dimension mismatch");
        assert_eq!(self.table.len(), other.table.len(), "shape mismatch");
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a -= b;
        }
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone (table shape is `(rows, width)`, independent of `n`; exact
    /// recombination needs the same row hashes over global coordinates).
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        crate::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge: absorb a sibling shard whose ingested key range
    /// was disjoint from ours. Counters are integers shared across ranges by
    /// hashing, so the union is exactly [`CountMinSketch::merge`].
    pub fn merge_disjoint(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Mergeable for CountMinSketch {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.table {
            d.write_i64(v);
        }
        d.finish()
    }
}

impl Persist for CountMinSketch {
    const TAG: u16 = tags::COUNT_MIN;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_len(self.rows);
        w.write_len(self.width);
        for h in &self.hashes {
            h.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for &v in &self.table {
            w.write_i64(v);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let (dimension, rows, width, hashes, cells) =
            decode_table_shape(seeds, counters, "count-min shape invalid")?;
        let table = counters.read_i64s(cells)?;
        Ok(CountMinSketch { dimension, rows, width, table, hashes })
    }
}

impl SpaceUsage for CountMinSketch {
    fn space(&self) -> SpaceBreakdown {
        let counters = (self.rows * self.width) as u64;
        let counter_bits = counter_bits_for(self.dimension, self.dimension);
        let randomness = self.hashes.iter().map(|h| h.random_bits()).sum();
        SpaceBreakdown::new(counters, counter_bits, randomness)
    }
}

/// A count-median sketch: the same bucketed table, but point queries take the
/// median over rows, which tolerates general (possibly negative) updates.
#[derive(Debug, Clone)]
pub struct CountMedianSketch {
    dimension: u64,
    rows: usize,
    width: usize,
    table: Vec<f64>,
    hashes: Vec<PairwiseHash>,
}

impl CountMedianSketch {
    /// Create a sketch with `rows` rows of `width` counters. Rows should be
    /// odd so the median is a single bucket value.
    pub fn new(dimension: u64, width: usize, rows: usize, seeds: &mut SeedSequence) -> Self {
        assert!(dimension > 0 && width >= 1 && rows >= 1);
        let hashes = (0..rows).map(|_| PairwiseHash::new(seeds)).collect();
        CountMedianSketch { dimension, rows, width, table: vec![0.0; rows * width], hashes }
    }

    /// Width per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Point query: the median over rows of the containing bucket.
    pub fn estimate(&self, index: u64) -> f64 {
        debug_assert!(index < self.dimension);
        let mut vals: Vec<f64> = (0..self.rows)
            .map(|j| {
                let k = self.hashes[j].bucket(index, self.width);
                self.table[j * self.width + k]
            })
            .collect();
        median(&mut vals)
    }

    /// Process an integer update stream.
    pub fn process_stream(&mut self, stream: &UpdateStream) {
        for u in stream {
            self.update_int(*u);
        }
    }

    /// Apply an integer update (convenience mirroring [`CountMinSketch`]).
    pub fn update_signed(&mut self, u: Update) {
        self.update(u.index, u.delta as f64);
    }

    /// Build the shard structure that owns the key range `range` under
    /// key-range partitioned ingestion: an identically-seeded zero-state
    /// clone (see [`CountMinSketch::restrict_domain`]).
    pub fn restrict_domain(&self, range: std::ops::Range<u64>) -> Self {
        crate::check_shard_range(&range, self.dimension);
        self.clone()
    }

    /// Disjoint-union merge of a sibling shard with a disjoint key range;
    /// coincides with [`Mergeable::merge_from`] (bucketed counter addition).
    pub fn merge_disjoint(&mut self, other: &Self) {
        Mergeable::merge_from(self, other);
    }
}

impl LinearSketch for CountMedianSketch {
    fn update(&mut self, index: u64, delta: f64) {
        debug_assert!(index < self.dimension);
        for j in 0..self.rows {
            let k = self.hashes[j].bucket(index, self.width);
            self.table[j * self.width + k] += delta;
        }
    }

    /// Batched fast path: coalesce repeated indices (exact integer sums) and
    /// walk the table row-major; identical to the sequential loop for
    /// integer workloads (counters remain exact integers in f64).
    fn process_batch(&mut self, updates: &[Update]) {
        let coalesced = lps_stream::coalesce_updates(updates);
        let keys: Vec<u64> = coalesced.iter().map(|&(i, _)| i).collect();
        let mut hash_scratch = vec![0u64; keys.len()];
        let mut buckets = vec![0usize; keys.len()];
        for j in 0..self.rows {
            let row = &mut self.table[j * self.width..(j + 1) * self.width];
            self.hashes[j].kwise().buckets_into(&keys, self.width, &mut hash_scratch, &mut buckets);
            for (&(index, delta), &b) in coalesced.iter().zip(buckets.iter()) {
                debug_assert!(index < self.dimension);
                row[b] += delta as f64;
            }
        }
    }

    fn merge(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension);
        assert_eq!(self.table.len(), other.table.len());
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
    }

    fn subtract(&mut self, other: &Self) {
        assert_eq!(self.dimension, other.dimension);
        assert_eq!(self.table.len(), other.table.len());
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a -= b;
        }
    }

    fn dimension(&self) -> u64 {
        self.dimension
    }
}

impl Mergeable for CountMedianSketch {
    fn merge_from(&mut self, other: &Self) {
        LinearSketch::merge(self, other);
    }

    fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        for &v in &self.table {
            d.write_f64(v);
        }
        d.finish()
    }
}

impl Persist for CountMedianSketch {
    const TAG: u16 = tags::COUNT_MEDIAN;

    fn encode_seeds(&self, w: &mut WireWriter<'_>) {
        w.write_u64(self.dimension);
        w.write_len(self.rows);
        w.write_len(self.width);
        for h in &self.hashes {
            h.encode_seeds(w);
        }
    }

    fn encode_counters(&self, w: &mut WireWriter<'_>) {
        for &v in &self.table {
            w.write_f64(v);
        }
    }

    fn decode_parts(
        seeds: &mut WireReader<'_>,
        counters: &mut WireReader<'_>,
    ) -> Result<Self, DecodeError> {
        let (dimension, rows, width, hashes, cells) =
            decode_table_shape(seeds, counters, "count-median shape invalid")?;
        let table = counters.read_f64s(cells)?;
        Ok(CountMedianSketch { dimension, rows, width, table, hashes })
    }
}

impl SpaceUsage for CountMedianSketch {
    fn space(&self) -> SpaceBreakdown {
        let counters = (self.rows * self.width) as u64;
        let counter_bits = counter_bits_for(self.dimension, self.dimension);
        let randomness = self.hashes.iter().map(|h| h.random_bits()).sum();
        SpaceBreakdown::new(counters, counter_bits, randomness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lps_stream::{TurnstileModel, UpdateStream};

    fn seeds(seed: u64) -> SeedSequence {
        SeedSequence::new(seed)
    }

    #[test]
    fn count_min_never_underestimates() {
        let n = 1024u64;
        let mut s = seeds(1);
        let mut cm = CountMinSketch::new(n, 64, 5, &mut s);
        let mut stream = UpdateStream::new(n, TurnstileModel::InsertionOnly);
        for i in 0..n {
            for _ in 0..(i % 5) {
                stream.push_insert(i);
            }
        }
        cm.process(&stream);
        for i in 0..n {
            let truth = (i % 5) as i64;
            assert!(cm.estimate(i) >= truth, "count-min underestimated coordinate {i}");
        }
    }

    #[test]
    fn count_min_error_bounded_by_l1_over_width() {
        let n = 1 << 12;
        let width = 256usize;
        let mut s = seeds(2);
        let mut cm = CountMinSketch::new(n, width, 7, &mut s);
        let mut stream = UpdateStream::new(n, TurnstileModel::InsertionOnly);
        let mut l1 = 0i64;
        for i in 0..n {
            let c = (i % 3) as i64;
            for _ in 0..c {
                stream.push_insert(i);
            }
            l1 += c;
        }
        cm.process(&stream);
        // Expected overestimate per row is L1/width; the min over 7 rows is
        // below 2*L1/width except with tiny probability. Allow a few misses.
        let bound = 2 * l1 / width as i64;
        let mut violations = 0;
        for i in 0..n {
            let truth = (i % 3) as i64;
            if cm.estimate(i) - truth > bound {
                violations += 1;
            }
        }
        assert!(violations < (n / 100) as i32, "too many large overestimates: {violations}");
    }

    #[test]
    fn count_median_handles_negative_updates() {
        let n = 2048u64;
        let mut s = seeds(3);
        let mut cmed = CountMedianSketch::new(n, 128, 7, &mut s);
        cmed.update(5, 100.0);
        cmed.update(5, -40.0);
        cmed.update(9, -25.0);
        let e5 = cmed.estimate(5);
        let e9 = cmed.estimate(9);
        assert!((e5 - 60.0).abs() < 1e-9);
        assert!((e9 + 25.0).abs() < 1e-9);
    }

    #[test]
    fn count_median_linearity() {
        let n = 512u64;
        let mut s = seeds(4);
        let proto = CountMedianSketch::new(n, 32, 5, &mut s);
        let mut a = proto.clone();
        let mut b = proto.clone();
        let mut ab = proto.clone();
        for (i, v) in [(1u64, 3.0), (2, -1.0)] {
            a.update(i, v);
            ab.update(i, v);
        }
        for (i, v) in [(2u64, 5.0), (100, 7.0)] {
            b.update(i, v);
            ab.update(i, v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.table, ab.table);
        let mut diff = ab;
        diff.subtract(&b);
        assert_eq!(diff.table, a.table);
    }

    #[test]
    fn space_scales_with_width() {
        let mut s = seeds(5);
        let a = CountMinSketch::new(1024, 32, 5, &mut s);
        let b = CountMinSketch::new(1024, 64, 5, &mut s);
        assert!(b.bits_used() > a.bits_used());
        let c = CountMedianSketch::new(1024, 32, 5, &mut s);
        assert_eq!(c.space().counters, 32 * 5);
    }
}
